//! # provsem-prob
//!
//! The probabilistic-databases substrate of the *Provenance Semirings*
//! reproduction: tuple-independent probabilistic databases, event tables, the
//! Fuhr–Rölleke–Zimányi query answering algorithm (Figure 4 of the paper —
//! i.e. Definition 3.2 at `K = P(Ω)`), exact probability computation, and
//! probabilistic datalog (Section 8).
//!
//! ```
//! use provsem_prob::prelude::*;
//! use provsem_core::paper::section2_query;
//! use provsem_core::Tuple;
//!
//! // Figure 4: P(x)=0.6, P(y)=0.5, P(z)=0.1; the output tuple (a,e) has
//! // event x∩y and probability 0.3.
//! let db = TupleIndependentDb::figure4();
//! let p = db.tuple_probability(&section2_query(), &Tuple::new([("a", "a"), ("c", "e")])).unwrap();
//! assert!((p - 0.3).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datalog;
pub mod event_table;

/// Convenience prelude.
pub mod prelude {
    pub use crate::datalog::{evaluate_probabilistic_datalog, ProbabilisticAnswer};
    pub use crate::event_table::{posbool_probability, TupleIndependentDb};
}

pub use prelude::*;

//! Probabilistic datalog (Section 8 of the paper).
//!
//! Because `P(Ω)` is a finite distributive lattice, datalog on event tables
//! terminates (the paper's modification of All-Trees, or equivalently the
//! converging fixpoint); evaluating the resulting events against the world
//! distribution yields exact query probabilities — the paper notes this
//! generalizes Fuhr's probabilistic datalog.

use crate::event_table::TupleIndependentDb;
use provsem_datalog::{evaluate_lattice, Fact, FactStore, Program};
use provsem_semiring::Event;

/// The result of a probabilistic datalog evaluation: for every derived fact,
/// its event and its exact probability.
#[derive(Clone, Debug)]
pub struct ProbabilisticAnswer {
    /// Derived facts with their events and probabilities.
    pub facts: Vec<(Fact, Event, f64)>,
}

impl ProbabilisticAnswer {
    /// The probability of a fact (0 if not derivable).
    pub fn probability(&self, fact: &Fact) -> f64 {
        self.facts
            .iter()
            .find(|(f, _, _)| f == fact)
            .map(|(_, _, p)| *p)
            .unwrap_or(0.0)
    }

    /// The event of a fact, if derivable.
    pub fn event(&self, fact: &Fact) -> Option<&Event> {
        self.facts
            .iter()
            .find(|(f, _, _)| f == fact)
            .map(|(_, e, _)| e)
    }
}

/// Evaluates a datalog program over a tuple-independent probabilistic
/// database. `positional` fixes the column order of each relation when
/// converting the named tuples into positional datalog facts.
pub fn evaluate_probabilistic_datalog(
    program: &Program,
    db: &TupleIndependentDb,
    positional: &dyn Fn(&str) -> Vec<&'static str>,
) -> ProbabilisticAnswer {
    let event_db = db.to_event_database();
    let mut store: FactStore<Event> = FactStore::new();
    for (name, relation) in event_db.iter() {
        let order = positional(name);
        store.import_relation(name, relation, &order);
    }
    let out = evaluate_lattice(program, &store, 256)
        .expect("datalog over the finite lattice P(Ω) converges");
    let probs = db.world_probabilities();
    let facts = out
        .facts()
        .map(|(f, e)| {
            let p = e.probability(&probs);
            (f, e.clone(), p)
        })
        .collect();
    ProbabilisticAnswer { facts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provsem_core::Tuple;

    fn edge(src: &str, dst: &str) -> Tuple {
        Tuple::new([("src", src), ("dst", dst)])
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn probabilistic_reachability_on_a_chain() {
        // a→b with prob 0.5, b→c with prob 0.5: P(reach(a,c)) = 0.25.
        let mut db = TupleIndependentDb::new();
        db.insert("R", edge("a", "b"), 0.5);
        db.insert("R", edge("b", "c"), 0.5);
        let program = Program::transitive_closure("R", "Q");
        let answer = evaluate_probabilistic_datalog(&program, &db, &|_| vec!["src", "dst"]);
        assert!(close(answer.probability(&Fact::new("Q", ["a", "c"])), 0.25));
        assert!(close(answer.probability(&Fact::new("Q", ["a", "b"])), 0.5));
        assert_eq!(answer.probability(&Fact::new("Q", ["c", "a"])), 0.0);
    }

    #[test]
    fn probabilistic_reachability_with_two_paths() {
        // Diamond: a→b→d and a→c→d, each edge with prob 0.5.
        // P(reach(a,d)) = 1 - (1 - 0.25)² = 0.4375 (the two paths are
        // dependent only through the shared endpoints, here independent).
        let mut db = TupleIndependentDb::new();
        db.insert("R", edge("a", "b"), 0.5);
        db.insert("R", edge("b", "d"), 0.5);
        db.insert("R", edge("a", "c"), 0.5);
        db.insert("R", edge("c", "d"), 0.5);
        let program = Program::transitive_closure("R", "Q");
        let answer = evaluate_probabilistic_datalog(&program, &db, &|_| vec!["src", "dst"]);
        assert!(close(
            answer.probability(&Fact::new("Q", ["a", "d"])),
            0.4375
        ));
    }

    #[test]
    fn cyclic_graphs_terminate_and_give_correct_marginals() {
        // a→b (0.5), b→a (0.5): datalog terminates despite the cycle
        // (Section 8) and P(reach(a,a)) = P(both edges) = 0.25.
        let mut db = TupleIndependentDb::new();
        db.insert("R", edge("a", "b"), 0.5);
        db.insert("R", edge("b", "a"), 0.5);
        let program = Program::transitive_closure("R", "Q");
        let answer = evaluate_probabilistic_datalog(&program, &db, &|_| vec!["src", "dst"]);
        assert!(close(answer.probability(&Fact::new("Q", ["a", "a"])), 0.25));
        assert!(close(answer.probability(&Fact::new("Q", ["a", "b"])), 0.5));
        assert!(answer.event(&Fact::new("Q", ["a", "a"])).is_some());
    }

    #[test]
    fn certain_edges_give_certain_reachability() {
        let mut db = TupleIndependentDb::new();
        db.insert("R", edge("a", "b"), 1.0);
        db.insert("R", edge("b", "c"), 1.0);
        let program = Program::transitive_closure("R", "Q");
        let answer = evaluate_probabilistic_datalog(&program, &db, &|_| vec!["src", "dst"]);
        assert!(close(answer.probability(&Fact::new("Q", ["a", "c"])), 1.0));
    }
}

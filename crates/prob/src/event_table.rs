//! Event tables and tuple-independent probabilistic databases (Figure 4 of
//! the paper).
//!
//! A probabilistic database annotates each tuple with an event over a finite
//! sample space Ω of possible worlds; the Fuhr–Rölleke–Zimányi query
//! answering algorithm *is* the generalized RA⁺ of Definition 3.2 at
//! `K = (P(Ω), ∪, ∩, ∅, Ω)` (the [`provsem_semiring::Event`] semiring).
//! Probabilities of output tuples are obtained by summing world
//! probabilities over the output events.

use provsem_core::par;
use provsem_core::{
    Catalog, Database, EvalError, ExecContext, KRelation, Plan, RaExpr, Schema, Tuple,
};
use provsem_semiring::{Circuit, CircuitEval, Event, PosBool, Valuation, Variable};
use std::collections::BTreeMap;

/// A probabilistic database in the *tuple-independent* model: each tuple is
/// present independently with its own marginal probability.
///
/// Internally the sample space Ω is the set of all `2^n` joint outcomes of
/// the `n` uncertain tuples; each tuple's event is "the worlds in which my
/// bit is set". This is exactly how the paper sets up Figure 4 (events `x`,
/// `y`, `z` assumed independent).
#[derive(Clone, Debug, Default)]
pub struct TupleIndependentDb {
    tuples: Vec<(String, Tuple, f64)>,
    schemas: BTreeMap<String, Schema>,
}

impl TupleIndependentDb {
    /// An empty probabilistic database.
    pub fn new() -> Self {
        TupleIndependentDb::default()
    }

    /// Adds a tuple to relation `name` with marginal probability `p ∈ [0,1]`.
    pub fn insert(&mut self, name: &str, tuple: Tuple, p: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.schemas
            .entry(name.to_string())
            .or_insert_with(|| tuple.schema());
        self.tuples.push((name.to_string(), tuple, p));
        self
    }

    /// The number of uncertain tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The number of possible worlds `2^n`.
    pub fn num_worlds(&self) -> u32 {
        1u32 << self.tuples.len()
    }

    /// The probability of world `w` (bit `i` of `w` says whether tuple `i`
    /// is present), assuming independence.
    pub fn world_probability(&self, w: u32) -> f64 {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, (_, _, p))| if w & (1 << i) != 0 { *p } else { 1.0 - *p })
            .product()
    }

    /// All world probabilities, indexed by world id.
    pub fn world_probabilities(&self) -> Vec<f64> {
        (0..self.num_worlds())
            .map(|w| self.world_probability(w))
            .collect()
    }

    /// The event of uncertain tuple `i`: "worlds whose bit `i` is set" —
    /// the single place encoding the world-id bit convention.
    fn tuple_event(&self, i: usize) -> Event {
        assert!(
            self.tuples.len() < 25,
            "event-table construction limited to < 25 uncertain tuples"
        );
        let n = self.num_worlds();
        Event::of_worlds((0..n).filter(|w| w & (1 << i) != 0))
    }

    /// The planner's view of this database (schemas + per-relation
    /// cardinalities), shared by every query-answering route.
    fn catalog(&self) -> Catalog {
        let mut catalog = Catalog::new();
        for (name, schema) in &self.schemas {
            let cardinality = self.tuples.iter().filter(|(n, _, _)| n == name).count();
            catalog.add(name.clone(), schema.clone(), cardinality);
        }
        catalog
    }

    /// The event-annotated database: tuple `i` is annotated with the event
    /// "worlds whose bit `i` is set".
    pub fn to_event_database(&self) -> Database<Event> {
        let mut db = Database::new();
        for (name, schema) in &self.schemas {
            db.insert(name.clone(), KRelation::<Event>::empty(schema.clone()));
        }
        for (i, (name, tuple, _)) in self.tuples.iter().enumerate() {
            db.get_mut(name)
                .expect("relation created above")
                .insert(tuple.clone(), self.tuple_event(i));
        }
        db
    }

    /// The boolean-provenance view: tuple `i` is annotated with a fresh
    /// boolean variable; useful for the PosBool route to probabilities.
    pub fn to_posbool_database(&self) -> (Database<PosBool>, Vec<(Variable, f64)>) {
        let mut db = Database::new();
        for (name, schema) in &self.schemas {
            db.insert(name.clone(), KRelation::<PosBool>::empty(schema.clone()));
        }
        let mut vars = Vec::new();
        for (i, (name, tuple, p)) in self.tuples.iter().enumerate() {
            let var = Variable::indexed("t", i);
            vars.push((var.clone(), *p));
            db.get_mut(name)
                .expect("relation created above")
                .insert(tuple.clone(), PosBool::var(var));
        }
        (db, vars)
    }

    /// Answers an RA⁺ query, returning for every output tuple its event and
    /// its exact probability (sum of the probabilities of the worlds in the
    /// event).
    ///
    /// Evaluation goes through the planned engine of
    /// [`provsem_core::plan`]. Plans only need schemas, so the query is
    /// validated and optimized *before* the (exponential in `n`) event
    /// table is constructed — an invalid query fails fast.
    pub fn answer_query(&self, query: &RaExpr) -> Result<Vec<(Tuple, Event, f64)>, EvalError> {
        self.answer_query_with(query, &ExecContext::default())
    }

    /// [`TupleIndependentDb::answer_query`] with an explicit thread budget:
    /// the query itself runs on the morsel-driven parallel executor, and the
    /// per-tuple event probabilities (a sum over the worlds of each event —
    /// the expensive step once Ω is large) are computed by scoped workers
    /// over contiguous chunks of the output, reassembled in tuple order.
    pub fn answer_query_with(
        &self,
        query: &RaExpr,
        ctx: &ExecContext,
    ) -> Result<Vec<(Tuple, Event, f64)>, EvalError> {
        let plan = Plan::new(query, &self.catalog())?;
        let db = self.to_event_database();
        let out = plan.execute_with(&db, ctx);
        let probs = self.world_probabilities();
        let pairs: Vec<(&Tuple, &Event)> = out.iter().collect();
        let answers = par::par_map_chunks(par::chunked(pairs, ctx.threads), |_, chunk| {
            chunk
                .into_iter()
                .map(|(t, e)| (t.clone(), e.clone(), e.probability(&probs)))
                .collect::<Vec<_>>()
        });
        Ok(answers.into_iter().flatten().collect())
    }

    /// Like [`TupleIndependentDb::answer_query`], but the query runs over
    /// **provenance circuits** (one hash-consed variable per uncertain
    /// tuple) and the output events are produced by a single memoized
    /// `Eval_v : ℕ\[X\] → P(Ω)` pass shared across all output tuples — event
    /// subexpressions common to several answers (shared join subplans) are
    /// intersected/unioned once instead of once per tuple.
    ///
    /// Exactly the factorization theorem run at `K = P(Ω)`: the answers are
    /// identical to the direct event-table route (pinned by tests), but the
    /// per-row algebra during evaluation is O(1) node interning instead of
    /// world-set operations.
    ///
    /// The circuit nodes live in the thread-local arena of
    /// [`provsem_semiring::circuit`], which is append-only: a long-lived
    /// thread answering many structurally different queries should call
    /// `provsem_semiring::circuit::reset()` between them to reclaim it
    /// (resetting invalidates any circuit handles the caller still holds —
    /// this method returns none, so calling it right before or after is
    /// always safe).
    pub fn answer_query_via_circuit(
        &self,
        query: &RaExpr,
    ) -> Result<Vec<(Tuple, Event, f64)>, EvalError> {
        self.answer_query_via_circuit_with(query, &ExecContext::default())
    }

    /// [`TupleIndependentDb::answer_query_via_circuit`] with an explicit
    /// thread budget: the circuit query runs on the parallel executor
    /// (worker arenas merged back deterministically), the ℕ\[X\] → P(Ω)
    /// specialization fans out over chunks of the result tuples
    /// ([`provsem_core::provenance::specialize_circuit_with`]), and the
    /// probabilities are summed by the same workers as
    /// [`TupleIndependentDb::answer_query_with`]. Answers are identical to
    /// the serial route at every thread count.
    pub fn answer_query_via_circuit_with(
        &self,
        query: &RaExpr,
        ctx: &ExecContext,
    ) -> Result<Vec<(Tuple, Event, f64)>, EvalError> {
        // Plans only need schemas: validate/optimize before building
        // anything per-world, so invalid queries fail fast.
        let plan = Plan::new(query, &self.catalog())?;

        let mut db = Database::new();
        for (name, schema) in &self.schemas {
            db.insert(name.clone(), KRelation::<Circuit>::empty(schema.clone()));
        }
        let mut valuation: Valuation<Event> = Valuation::new();
        for (i, (name, tuple, _)) in self.tuples.iter().enumerate() {
            let var = Variable::indexed("t", i);
            valuation.assign(var.clone(), self.tuple_event(i));
            db.get_mut(name)
                .expect("relation created above")
                .insert(tuple.clone(), Circuit::var(var));
        }
        let out = plan.execute_with(&db, ctx);
        let probs = self.world_probabilities();
        if ctx.threads > 1 {
            let events = provsem_core::specialize_circuit_with(&out, &valuation, ctx);
            // Answers follow `out`'s tuples (a K-relation drops zero
            // annotations, the answer list never does); an event that
            // specialized to 0 reads back as `Event::never()`.
            let pairs: Vec<(&Tuple, Event)> =
                out.iter().map(|(t, _)| (t, events.annotation(t))).collect();
            let answers = par::par_map_chunks(par::chunked(pairs, ctx.threads), |_, chunk| {
                chunk
                    .into_iter()
                    .map(|(t, e)| {
                        let p = e.probability(&probs);
                        (t.clone(), e, p)
                    })
                    .collect::<Vec<_>>()
            });
            return Ok(answers.into_iter().flatten().collect());
        }
        let mut eval = CircuitEval::new(&valuation);
        Ok(out
            .iter()
            .map(|(t, c)| {
                let event = eval.eval(*c);
                let p = event.probability(&probs);
                (t.clone(), event, p)
            })
            .collect())
    }

    /// The probability of one output tuple under the query (0 if absent).
    pub fn tuple_probability(&self, query: &RaExpr, tuple: &Tuple) -> Result<f64, EvalError> {
        Ok(self
            .answer_query(query)?
            .into_iter()
            .find(|(t, _, _)| t == tuple)
            .map(|(_, _, p)| p)
            .unwrap_or(0.0))
    }

    /// The Figure 4(a) instance: the Section 2 relation with
    /// `P(x)=0.6, P(y)=0.5, P(z)=0.1`.
    pub fn figure4() -> TupleIndependentDb {
        let mut db = TupleIndependentDb::new();
        let tuples = provsem_core::paper::section2_tuples();
        let probs = [0.6, 0.5, 0.1];
        for (t, p) in tuples.into_iter().zip(probs) {
            db.insert("R", t, p);
        }
        db
    }
}

/// Computes the probability that a positive boolean event expression holds,
/// given independent variable marginals — by Shannon expansion over the
/// variables (exact, exponential in the number of *distinct variables in the
/// expression*, which is what the intensional Fuhr–Rölleke–Zimányi route
/// requires in general).
pub fn posbool_probability(expr: &PosBool, marginals: &BTreeMap<Variable, f64>) -> f64 {
    fn go(expr: &PosBool, vars: &[(&Variable, f64)], assignment: &mut Valuation<bool>) -> f64 {
        match vars.split_first() {
            None => {
                if expr.evaluate(assignment) {
                    1.0
                } else {
                    0.0
                }
            }
            Some(((var, p), rest)) => {
                assignment.assign((*var).clone(), true);
                let with = go(expr, rest, assignment);
                assignment.assign((*var).clone(), false);
                let without = go(expr, rest, assignment);
                p * with + (1.0 - p) * without
            }
        }
    }
    let vars: Vec<(Variable, f64)> = expr
        .variables()
        .into_iter()
        .map(|v| {
            let p = marginals.get(&v).copied().unwrap_or(0.0);
            (v, p)
        })
        .collect();
    // Hold references alive while recursing.
    let var_refs: Vec<(&Variable, f64)> = vars.iter().map(|(v, p)| (v, *p)).collect();
    go(expr, &var_refs, &mut Valuation::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use provsem_core::paper::section2_query;
    use provsem_semiring::Semiring;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn figure4_events_and_probabilities() {
        // Figure 4(b): the output events are x, x∩y, x∩y, y, z; with
        // P(x)=0.6, P(y)=0.5, P(z)=0.1 the probabilities are
        // 0.6, 0.3, 0.3, 0.5, 0.1.
        let db = TupleIndependentDb::figure4();
        let answer = db.answer_query(&section2_query()).unwrap();
        assert_eq!(answer.len(), 5);
        let prob = |a: &str, c: &str| {
            answer
                .iter()
                .find(|(t, _, _)| t == &Tuple::new([("a", a), ("c", c)]))
                .map(|(_, _, p)| *p)
                .unwrap()
        };
        assert!(close(prob("a", "c"), 0.6));
        assert!(close(prob("a", "e"), 0.3));
        assert!(close(prob("d", "c"), 0.3));
        assert!(close(prob("d", "e"), 0.5));
        assert!(close(prob("f", "e"), 0.1));
    }

    #[test]
    fn circuit_route_agrees_with_event_table_route() {
        // The memoized circuit pass must produce the exact same events and
        // probabilities as the direct P(Ω) evaluation, tuple for tuple.
        let db = TupleIndependentDb::figure4();
        let direct = db.answer_query(&section2_query()).unwrap();
        let via_circuit = db.answer_query_via_circuit(&section2_query()).unwrap();
        assert_eq!(direct.len(), via_circuit.len());
        for ((t1, e1, p1), (t2, e2, p2)) in direct.iter().zip(via_circuit.iter()) {
            assert_eq!(t1, t2);
            assert_eq!(e1, e2, "{t1:?}");
            assert!(close(*p1, *p2), "{t1:?}: {p1} vs {p2}");
        }
        // Invalid queries fail fast with the planner's error, like
        // `answer_query`.
        let bad = provsem_core::RaExpr::relation("Missing");
        assert_eq!(
            db.answer_query_via_circuit(&bad).unwrap_err(),
            db.answer_query(&bad).unwrap_err()
        );
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let db = TupleIndependentDb::figure4();
        assert_eq!(db.num_worlds(), 8);
        let total: f64 = db.world_probabilities().iter().sum();
        assert!(close(total, 1.0));
    }

    #[test]
    fn tuple_probability_of_absent_tuple_is_zero() {
        let db = TupleIndependentDb::figure4();
        let p = db
            .tuple_probability(&section2_query(), &Tuple::new([("a", "z"), ("c", "z")]))
            .unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn event_route_agrees_with_posbool_route() {
        // Intensional evaluation via PosBool provenance + Shannon expansion
        // gives the same probabilities as the event-table route — an instance
        // of Proposition 3.5 (the map PosBool → P(Ω) sending each variable to
        // its event is a homomorphism).
        let db = TupleIndependentDb::figure4();
        let (posbool_db, vars) = db.to_posbool_database();
        let marginals: BTreeMap<Variable, f64> = vars.into_iter().collect();
        let out = section2_query().eval(&posbool_db).unwrap();
        for (tuple, expr) in out.iter() {
            let p_posbool = posbool_probability(expr, &marginals);
            let p_event = db.tuple_probability(&section2_query(), tuple).unwrap();
            assert!(
                close(p_posbool, p_event),
                "{tuple:?}: {p_posbool} vs {p_event}"
            );
        }
    }

    #[test]
    fn posbool_probability_basic_cases() {
        let marginals: BTreeMap<Variable, f64> =
            [(Variable::new("x"), 0.5), (Variable::new("y"), 0.5)]
                .into_iter()
                .collect();
        let x = PosBool::var("x");
        let y = PosBool::var("y");
        assert!(close(posbool_probability(&PosBool::tt(), &marginals), 1.0));
        assert!(close(posbool_probability(&PosBool::ff(), &marginals), 0.0));
        assert!(close(posbool_probability(&x, &marginals), 0.5));
        assert!(close(posbool_probability(&x.times(&y), &marginals), 0.25));
        assert!(close(posbool_probability(&x.plus(&y), &marginals), 0.75));
    }

    #[test]
    fn independence_is_respected_by_world_construction() {
        let mut db = TupleIndependentDb::new();
        db.insert("R", Tuple::new([("x", "1")]), 0.25);
        db.insert("R", Tuple::new([("x", "2")]), 0.5);
        let events = db.to_event_database();
        let rel = events.get("R").unwrap();
        let probs = db.world_probabilities();
        let e1 = rel.annotation(&Tuple::new([("x", "1")]));
        let e2 = rel.annotation(&Tuple::new([("x", "2")]));
        assert!(close(e1.probability(&probs), 0.25));
        assert!(close(e2.probability(&probs), 0.5));
        // Joint event probability is the product (independence).
        assert!(close(e1.times(&e2).probability(&probs), 0.125));
    }
}

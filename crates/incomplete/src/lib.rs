//! # provsem-incomplete
//!
//! The incomplete-databases substrate of the *Provenance Semirings*
//! reproduction: maybe-tables, boolean c-tables, possible-world semantics and
//! the Imielinski–Lipski query answering algorithm (Figures 1 and 2 of the
//! paper, plus the Section 8 datalog-on-c-tables semantics via
//! `provsem-datalog`).
//!
//! The central point, reproduced as code: the Imielinski–Lipski algorithm is
//! *not* a separate implementation — it is the generalized positive
//! relational algebra of Definition 3.2 instantiated at `K = PosBool(B)`.
//!
//! ```
//! use provsem_incomplete::prelude::*;
//! use provsem_core::paper::section2_query;
//!
//! // Figure 1 → Figure 2: query the c-table form of the maybe-table.
//! let answer = CTable::figure1b().answer_query("R", &section2_query()).unwrap();
//! assert_eq!(answer.possible_worlds().len(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ctable;
pub mod maybe;
pub mod worlds;

/// Convenience prelude.
pub mod prelude {
    pub use crate::ctable::{figure2b_expected, CTable};
    pub use crate::maybe::MaybeTable;
    pub use crate::worlds::PossibleWorlds;
}

pub use prelude::*;

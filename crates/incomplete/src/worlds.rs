//! Possible-world semantics and representability checks.
//!
//! A representation system (maybe-tables, c-tables, …) denotes a *set of
//! possible worlds*; query answering is defined world-by-world. This module
//! provides the world-set abstraction, the world-by-world (certain answer)
//! semantics, and the representability check that powers the paper's
//! Figure 1 discussion: the answer world-set of the Section 2 query is not
//! representable by any maybe-table, but is captured exactly by a c-table.

use provsem_core::{Database, KRelation, RaExpr, Schema, Tuple};
use provsem_semiring::Bool;
use std::collections::BTreeSet;

/// A finite set of possible worlds, each a set of tuples over a common
/// schema.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PossibleWorlds {
    worlds: BTreeSet<BTreeSet<Tuple>>,
}

impl PossibleWorlds {
    /// Builds a world set (deduplicating identical worlds).
    pub fn new<I>(worlds: I) -> Self
    where
        I: IntoIterator<Item = BTreeSet<Tuple>>,
    {
        PossibleWorlds {
            worlds: worlds.into_iter().collect(),
        }
    }

    /// Number of distinct worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// Is the world set empty (no world at all — different from containing
    /// only the empty world)?
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Does the set contain this exact world?
    pub fn contains(&self, world: &BTreeSet<Tuple>) -> bool {
        self.worlds.contains(world)
    }

    /// Iterates over the worlds.
    pub fn iter(&self) -> impl Iterator<Item = &BTreeSet<Tuple>> {
        self.worlds.iter()
    }

    /// The *certain* tuples: those present in every world.
    pub fn certain_tuples(&self) -> BTreeSet<Tuple> {
        let mut iter = self.worlds.iter();
        let Some(first) = iter.next() else {
            return BTreeSet::new();
        };
        let mut certain = first.clone();
        for world in iter {
            certain = certain.intersection(world).cloned().collect();
        }
        certain
    }

    /// The *possible* tuples: those present in at least one world.
    pub fn possible_tuples(&self) -> BTreeSet<Tuple> {
        self.worlds.iter().flatten().cloned().collect()
    }

    /// Applies an RA⁺ query world-by-world: the semantics of queries on
    /// incomplete databases that representation systems must commute with.
    pub fn answer_query(
        &self,
        relation_name: &str,
        schema: &Schema,
        query: &RaExpr,
    ) -> Result<PossibleWorlds, provsem_core::EvalError> {
        let mut result = BTreeSet::new();
        for world in &self.worlds {
            let rel: KRelation<Bool> =
                KRelation::from_support(schema.clone(), world.iter().cloned());
            let db = Database::new().with(relation_name, rel);
            let out = query.eval(&db)?;
            result.insert(out.support().cloned().collect::<BTreeSet<Tuple>>());
        }
        Ok(PossibleWorlds { worlds: result })
    }

    /// Is this world set expressible by a maybe-table? A maybe-table's world
    /// set is exactly: all sets `C ∪ S` with `S ⊆ O`, where `C` is the set of
    /// certain tuples and `O` the optional ones. Equivalently, the world set
    /// is closed under union and intersection and contains every set between
    /// the certain tuples and the possible tuples that is a union of
    /// {certain} with any subset of {possible ∖ certain}. We check that
    /// criterion directly (the world count must be `2^|O|` and every such
    /// subset present).
    pub fn representable_by_maybe_table(&self) -> bool {
        if self.worlds.is_empty() {
            return false;
        }
        let certain = self.certain_tuples();
        let possible = self.possible_tuples();
        let optional: Vec<Tuple> = possible.difference(&certain).cloned().collect();
        if optional.len() >= 25 {
            // Too large to check exhaustively; callers only use this on small
            // instances (the paper's examples).
            return false;
        }
        let expected: usize = 1usize << optional.len();
        if self.worlds.len() != expected {
            return false;
        }
        for mask in 0u64..(1 << optional.len()) {
            let mut world = certain.clone();
            for (i, t) in optional.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    world.insert(t.clone());
                }
            }
            if !self.worlds.contains(&world) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctable::CTable;
    use crate::maybe::MaybeTable;
    use provsem_core::paper::{section2_query, section2_schema};

    #[test]
    fn figure1_worlds_and_query_answering() {
        // Evaluate the Section 2 query world-by-world over the 8 worlds of
        // the Figure 1(a) maybe-table: the result is the 8-world set of
        // Figure 1(c).
        let table = MaybeTable::figure1();
        let worlds = PossibleWorlds::new(table.possible_worlds());
        assert_eq!(worlds.len(), 8);
        let answer = worlds
            .answer_query("R", &section2_schema(), &section2_query())
            .unwrap();
        assert_eq!(answer.len(), 8);
        // The correlated world {(a,c),(a,e),(d,c),(d,e)} of Figure 1(c).
        let t = |a: &str, c: &str| Tuple::new([("a", a), ("c", c)]);
        let correlated: BTreeSet<Tuple> = [t("a", "c"), t("a", "e"), t("d", "c"), t("d", "e")]
            .into_iter()
            .collect();
        assert!(answer.contains(&correlated));
        // But the "broken" world with (a,e) alone is NOT possible.
        let broken: BTreeSet<Tuple> = [t("a", "e")].into_iter().collect();
        assert!(!answer.contains(&broken));
    }

    #[test]
    fn figure1_answer_is_not_representable_by_a_maybe_table() {
        // The paper: "this set of possible worlds cannot itself be
        // represented by a maybe-table".
        let table = MaybeTable::figure1();
        let worlds = PossibleWorlds::new(table.possible_worlds());
        assert!(worlds.representable_by_maybe_table());
        let answer = worlds
            .answer_query("R", &section2_schema(), &section2_query())
            .unwrap();
        assert!(!answer.representable_by_maybe_table());
    }

    #[test]
    fn ctable_answer_represents_exactly_the_world_by_world_answer() {
        // Closure of c-tables under RA⁺: the Imielinski–Lipski answer
        // c-table represents exactly the world-by-world answer set.
        let maybe = MaybeTable::figure1();
        let world_answer = PossibleWorlds::new(maybe.possible_worlds())
            .answer_query("R", &section2_schema(), &section2_query())
            .unwrap();
        let ctable_answer = CTable::figure1b()
            .answer_query("R", &section2_query())
            .unwrap()
            .possible_worlds();
        assert_eq!(world_answer, ctable_answer);
    }

    #[test]
    fn certain_and_possible_tuples_across_worlds() {
        let t1 = Tuple::new([("x", "1")]);
        let t2 = Tuple::new([("x", "2")]);
        let worlds = PossibleWorlds::new(vec![
            [t1.clone()].into_iter().collect(),
            [t1.clone(), t2.clone()].into_iter().collect(),
        ]);
        assert_eq!(worlds.certain_tuples(), [t1.clone()].into_iter().collect());
        assert_eq!(
            worlds.possible_tuples(),
            [t1, t2].into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn representability_edge_cases() {
        // A single world is always representable (no optional tuples).
        let t1 = Tuple::new([("x", "1")]);
        let single = PossibleWorlds::new(vec![[t1.clone()].into_iter().collect()]);
        assert!(single.representable_by_maybe_table());
        // Two worlds {t1} and {t2} (exclusive choice) are not representable.
        let t2 = Tuple::new([("x", "2")]);
        let exclusive = PossibleWorlds::new(vec![
            [t1.clone()].into_iter().collect(),
            [t2.clone()].into_iter().collect(),
        ]);
        assert!(!exclusive.representable_by_maybe_table());
        // The empty world-set is not a valid representation.
        assert!(!PossibleWorlds::default().representable_by_maybe_table());
    }
}

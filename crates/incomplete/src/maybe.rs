//! Maybe-tables: the simple representation system for incomplete databases
//! used in Figure 1 of the paper.
//!
//! A maybe-table is a relation in which some tuples are certain and some are
//! optional (annotated `?`). It represents the set of possible worlds
//! obtained by independently keeping or dropping each optional tuple. As the
//! paper recalls, maybe-tables are *not* closed under RA⁺ queries; c-tables
//! ([`crate::ctable`]) are.

use provsem_core::{KRelation, Schema, Tuple};
use provsem_semiring::{PosBool, Variable};
use std::collections::BTreeSet;

/// A maybe-table: certain tuples plus optional (`?`) tuples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MaybeTable {
    schema: Schema,
    certain: BTreeSet<Tuple>,
    optional: BTreeSet<Tuple>,
}

impl MaybeTable {
    /// An empty maybe-table over the given schema.
    pub fn new(schema: Schema) -> Self {
        MaybeTable {
            schema,
            certain: BTreeSet::new(),
            optional: BTreeSet::new(),
        }
    }

    /// Adds a certain tuple.
    pub fn insert_certain(&mut self, tuple: Tuple) -> &mut Self {
        assert_eq!(tuple.schema(), self.schema, "tuple schema mismatch");
        self.optional.remove(&tuple);
        self.certain.insert(tuple);
        self
    }

    /// Adds an optional (`?`) tuple.
    pub fn insert_optional(&mut self, tuple: Tuple) -> &mut Self {
        assert_eq!(tuple.schema(), self.schema, "tuple schema mismatch");
        if !self.certain.contains(&tuple) {
            self.optional.insert(tuple);
        }
        self
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The certain tuples.
    pub fn certain(&self) -> impl Iterator<Item = &Tuple> {
        self.certain.iter()
    }

    /// The optional tuples.
    pub fn optional(&self) -> impl Iterator<Item = &Tuple> {
        self.optional.iter()
    }

    /// Number of optional tuples (the number of boolean choices).
    pub fn num_optional(&self) -> usize {
        self.optional.len()
    }

    /// The set of possible worlds: every subset of the optional tuples,
    /// together with all certain tuples. `2^num_optional` worlds.
    pub fn possible_worlds(&self) -> Vec<BTreeSet<Tuple>> {
        let optional: Vec<&Tuple> = self.optional.iter().collect();
        let n = optional.len();
        assert!(
            n < 30,
            "possible-world enumeration limited to < 2^30 worlds"
        );
        let mut worlds = Vec::with_capacity(1 << n);
        for mask in 0u64..(1 << n) {
            let mut world: BTreeSet<Tuple> = self.certain.clone();
            for (i, t) in optional.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    world.insert((*t).clone());
                }
            }
            worlds.push(world);
        }
        worlds.sort();
        worlds.dedup();
        worlds
    }

    /// Converts the maybe-table into a boolean c-table (Figure 1(b)): each
    /// optional tuple is annotated with a fresh boolean variable
    /// `prefix1, prefix2, …` (in tuple order) and certain tuples with `true`.
    /// Returns the PosBool-annotated K-relation and the variables used.
    pub fn to_ctable(&self, prefix: &str) -> (KRelation<PosBool>, Vec<Variable>) {
        let mut rel = KRelation::empty(self.schema.clone());
        for t in &self.certain {
            rel.insert(t.clone(), PosBool::tt());
        }
        let mut vars = Vec::new();
        for (i, t) in self.optional.iter().enumerate() {
            let var = Variable::new(format!("{prefix}{}", i + 1));
            vars.push(var.clone());
            rel.insert(t.clone(), PosBool::var(var));
        }
        (rel, vars)
    }

    /// The Figure 1(a) maybe-table: the three tuples of the Section 2
    /// relation, all optional.
    pub fn figure1() -> MaybeTable {
        let schema = provsem_core::paper::section2_schema();
        let mut table = MaybeTable::new(schema);
        for t in provsem_core::paper::section2_tuples() {
            table.insert_optional(t);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provsem_semiring::Semiring;

    #[test]
    fn figure1_maybe_table_has_eight_worlds() {
        let table = MaybeTable::figure1();
        assert_eq!(table.num_optional(), 3);
        let worlds = table.possible_worlds();
        assert_eq!(worlds.len(), 8);
        // The empty world and the full world are both possible.
        assert!(worlds.iter().any(|w| w.is_empty()));
        assert!(worlds.iter().any(|w| w.len() == 3));
    }

    #[test]
    fn certain_tuples_appear_in_every_world() {
        let schema = Schema::new(["a"]);
        let mut table = MaybeTable::new(schema);
        let sure = Tuple::new([("a", "always")]);
        let maybe = Tuple::new([("a", "sometimes")]);
        table.insert_certain(sure.clone());
        table.insert_optional(maybe.clone());
        let worlds = table.possible_worlds();
        assert_eq!(worlds.len(), 2);
        assert!(worlds.iter().all(|w| w.contains(&sure)));
        assert!(worlds.iter().filter(|w| w.contains(&maybe)).count() == 1);
    }

    #[test]
    fn certain_overrides_optional() {
        let schema = Schema::new(["a"]);
        let mut table = MaybeTable::new(schema);
        let t = Tuple::new([("a", "x")]);
        table.insert_optional(t.clone());
        table.insert_certain(t.clone());
        assert_eq!(table.num_optional(), 0);
        assert_eq!(table.possible_worlds().len(), 1);
        // And the other way around: optional after certain is ignored.
        table.insert_optional(t.clone());
        assert_eq!(table.num_optional(), 0);
    }

    #[test]
    fn to_ctable_matches_figure1b() {
        let (rel, vars) = MaybeTable::figure1().to_ctable("b");
        assert_eq!(rel.len(), 3);
        assert_eq!(vars.len(), 3);
        // Each optional tuple gets its own distinct variable.
        let annotations: BTreeSet<PosBool> = rel.iter().map(|(_, k)| k.clone()).collect();
        assert_eq!(annotations.len(), 3);
        assert!(annotations.iter().all(|a| !a.is_one() && !a.is_zero()));
    }
}

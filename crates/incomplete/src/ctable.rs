//! Boolean c-tables and the Imielinski–Lipski query answering algorithm
//! (Figure 2 of the paper).
//!
//! A boolean c-table is a relation whose tuples are annotated with positive
//! boolean *conditions* over a set of variables; it represents one possible
//! world per truth assignment of the variables (the world containing exactly
//! the tuples whose condition is satisfied). The key insight reproduced here
//! is the paper's: **running the generalized RA⁺ of Definition 3.2 over
//! `PosBool(B)`-relations *is* the Imielinski–Lipski algorithm** — there is
//! no separate implementation, only [`provsem_core`] evaluated at
//! `K = PosBool`.

use crate::worlds::PossibleWorlds;
use provsem_core::{KRelation, NamedRelation, Plan, RaExpr, RelationSource, Schema, Tuple};
use provsem_semiring::{PosBool, Semiring, Valuation, Variable};
use std::collections::BTreeSet;

/// A boolean c-table: a `PosBool`-annotated relation plus the set of
/// condition variables it mentions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CTable {
    relation: KRelation<PosBool>,
    variables: BTreeSet<Variable>,
}

impl CTable {
    /// Wraps a `PosBool`-relation as a c-table (collecting its variables).
    pub fn new(relation: KRelation<PosBool>) -> Self {
        let variables = relation
            .iter()
            .flat_map(|(_, cond)| cond.variables())
            .collect();
        CTable {
            relation,
            variables,
        }
    }

    /// An empty c-table over a schema.
    pub fn empty(schema: Schema) -> Self {
        CTable::new(KRelation::empty(schema))
    }

    /// The underlying `PosBool`-relation.
    pub fn relation(&self) -> &KRelation<PosBool> {
        &self.relation
    }

    /// The condition variables.
    pub fn variables(&self) -> &BTreeSet<Variable> {
        &self.variables
    }

    /// The condition of a tuple (`false` if absent).
    pub fn condition(&self, tuple: &Tuple) -> PosBool {
        self.relation.annotation(tuple)
    }

    /// Adds a tuple with a condition.
    pub fn insert(&mut self, tuple: Tuple, condition: PosBool) {
        self.variables.extend(condition.variables());
        self.relation.insert(tuple, condition);
    }

    /// The world (set of tuples) selected by a truth assignment, given as the
    /// set of variables that are `true`.
    pub fn world(&self, true_vars: &BTreeSet<Variable>) -> BTreeSet<Tuple> {
        self.relation
            .iter()
            .filter(|(_, cond)| cond.evaluate_set(true_vars))
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// Enumerates every possible world (one per truth assignment of the
    /// variables, deduplicated). Exponential in the number of variables;
    /// guarded accordingly.
    pub fn possible_worlds(&self) -> PossibleWorlds {
        let vars: Vec<&Variable> = self.variables.iter().collect();
        let n = vars.len();
        assert!(
            n < 25,
            "possible-world enumeration limited to < 2^25 worlds"
        );
        let mut worlds = Vec::new();
        for mask in 0u64..(1 << n) {
            let true_vars: BTreeSet<Variable> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << *i) != 0)
                .map(|(_, v)| (*v).clone())
                .collect();
            worlds.push(self.world(&true_vars));
        }
        PossibleWorlds::new(worlds)
    }

    /// Imielinski–Lipski query answering: evaluates an RA⁺ expression over a
    /// database in which this c-table is the relation named `name`,
    /// producing the answer c-table. This is exactly Definition 3.2 at
    /// `K = PosBool(B)` — the computation of Figure 2(a), with the canonical
    /// form performing the simplification to Figure 2(b).
    ///
    /// Evaluation goes through the planned engine of
    /// [`provsem_core::plan`]; the c-table is exposed to it as a borrowed
    /// [`NamedRelation`] source, so no copy of the relation is made.
    pub fn answer_query(
        &self,
        name: &str,
        query: &RaExpr,
    ) -> Result<CTable, provsem_core::EvalError> {
        let source = NamedRelation::new(name, &self.relation);
        let plan = Plan::new(query, &source.catalog())?;
        Ok(CTable::new(plan.execute(&source)))
    }

    /// Substitutes conditions for variables (e.g. to compose c-tables or to
    /// specialize some variables to `true`/`false`).
    pub fn substitute(&self, valuation: &Valuation<PosBool>) -> CTable {
        CTable::new(
            self.relation
                .map_annotations(|cond| cond.substitute(valuation)),
        )
    }

    /// The *certain* tuples: tuples present in every possible world
    /// (condition equivalent to `true`).
    pub fn certain_tuples(&self) -> Vec<Tuple> {
        self.relation
            .iter()
            .filter(|(_, cond)| cond.is_one())
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// The *possible* tuples: tuples present in at least one world
    /// (condition not equivalent to `false` — always true for stored tuples
    /// thanks to the support invariant).
    pub fn possible_tuples(&self) -> Vec<Tuple> {
        self.relation.support().cloned().collect()
    }

    /// The Figure 1(b) c-table: the Section 2 relation with variables
    /// `b1, b2, b3`.
    pub fn figure1b() -> CTable {
        CTable::new(
            provsem_core::paper::figure1_ctable()
                .get("R")
                .expect("paper instance has relation R")
                .clone(),
        )
    }
}

/// The Figure 2(b) expected answer: the simplified c-table produced by the
/// Imielinski–Lipski computation on the Figure 1(b) input under the
/// Section 2 query, as `(a, c, condition)` triples.
pub fn figure2b_expected() -> Vec<(Tuple, PosBool)> {
    let b1 = PosBool::var("b1");
    let b2 = PosBool::var("b2");
    let b3 = PosBool::var("b3");
    let t = |a: &str, c: &str| Tuple::new([("a", a), ("c", c)]);
    vec![
        (t("a", "c"), b1.clone()),
        (t("a", "e"), b1.times(&b2)),
        (t("d", "c"), b1.times(&b2)),
        (t("d", "e"), b2.clone()),
        (t("f", "e"), b3.clone()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use provsem_core::paper::section2_query;

    #[test]
    fn figure2_imielinski_lipski_computation() {
        // Running the Section 2 query over the Figure 1(b) c-table produces
        // exactly the simplified c-table of Figure 2(b).
        let ctable = CTable::figure1b();
        let answer = ctable.answer_query("R", &section2_query()).unwrap();
        let expected = figure2b_expected();
        assert_eq!(answer.relation().len(), expected.len());
        for (tuple, condition) in expected {
            assert_eq!(answer.condition(&tuple), condition, "{tuple:?}");
        }
    }

    #[test]
    fn figure2a_simplifies_to_figure2b_via_canonical_forms() {
        // The unsimplified conditions of Figure 2(a), built literally,
        // normalize to the Figure 2(b) conditions.
        let b1 = PosBool::var("b1");
        let b2 = PosBool::var("b2");
        let b3 = PosBool::var("b3");
        // (b1 ∧ b1) ∨ (b1 ∧ b1) = b1
        assert_eq!(b1.times(&b1).plus(&b1.times(&b1)), b1);
        // (b2 ∧ b2) ∨ (b2 ∧ b2) ∨ (b2 ∧ b3) = b2
        assert_eq!(b2.times(&b2).plus(&b2.times(&b2)).plus(&b2.times(&b3)), b2);
        // (b3 ∧ b3) ∨ (b3 ∧ b3) ∨ (b2 ∧ b3) = b3
        assert_eq!(b3.times(&b3).plus(&b3.times(&b3)).plus(&b2.times(&b3)), b3);
    }

    #[test]
    fn worlds_of_the_answer_match_figure1c() {
        // The answer c-table represents exactly the 8 possible worlds of
        // Figure 1(c) — including the correlated world where (a,e) and (d,c)
        // force (a,c) and (d,e), which no maybe-table can express.
        let ctable = CTable::figure1b();
        let answer = ctable.answer_query("R", &section2_query()).unwrap();
        let worlds = answer.possible_worlds();
        assert_eq!(worlds.len(), 8);
        let t = |a: &str, c: &str| Tuple::new([("a", a), ("c", c)]);
        // Figure 1(c) worlds, written as tuple sets.
        let expected: Vec<Vec<Tuple>> = vec![
            vec![],
            vec![t("a", "c")],
            vec![t("d", "e")],
            vec![t("f", "e")],
            vec![t("a", "c"), t("a", "e"), t("d", "c"), t("d", "e")],
            vec![t("d", "e"), t("f", "e")],
            vec![t("a", "c"), t("f", "e")],
            vec![
                t("a", "c"),
                t("a", "e"),
                t("d", "c"),
                t("d", "e"),
                t("f", "e"),
            ],
        ];
        for world in expected {
            let set: BTreeSet<Tuple> = world.into_iter().collect();
            assert!(worlds.contains(&set), "missing world {set:?}");
        }
    }

    #[test]
    fn certain_and_possible_tuples() {
        let mut ctable = CTable::empty(Schema::new(["x"]));
        ctable.insert(Tuple::new([("x", "sure")]), PosBool::tt());
        ctable.insert(Tuple::new([("x", "maybe")]), PosBool::var("v"));
        assert_eq!(ctable.certain_tuples().len(), 1);
        assert_eq!(ctable.possible_tuples().len(), 2);
        assert_eq!(ctable.variables().len(), 1);
    }

    #[test]
    fn substitution_specializes_a_ctable() {
        let mut ctable = CTable::empty(Schema::new(["x"]));
        ctable.insert(Tuple::new([("x", "t1")]), PosBool::var("v1"));
        ctable.insert(
            Tuple::new([("x", "t2")]),
            PosBool::var("v1").times(&PosBool::var("v2")),
        );
        // Set v1 = true: t1 becomes certain, t2's condition reduces to v2.
        let mut val = Valuation::new();
        val.assign(Variable::new("v1"), PosBool::tt());
        let specialized = ctable.substitute(&val);
        assert_eq!(
            specialized.condition(&Tuple::new([("x", "t1")])),
            PosBool::tt()
        );
        assert_eq!(
            specialized.condition(&Tuple::new([("x", "t2")])),
            PosBool::var("v2")
        );
    }

    #[test]
    fn world_selection_by_assignment() {
        let ctable = CTable::figure1b();
        let only_b2: BTreeSet<Variable> = [Variable::new("b2")].into_iter().collect();
        let world = ctable.world(&only_b2);
        assert_eq!(world.len(), 1);
    }
}

//! Attributes and relation schemas (the *named perspective* of the
//! relational model, as used in Section 3 of the paper).

use std::fmt;
use std::sync::Arc;

/// An attribute name (`U` in the paper is a finite set of these).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attribute(Arc<str>);

impl Attribute {
    /// Creates an attribute with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Attribute(Arc::from(name.as_ref()))
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Attribute {
    fn from(s: &str) -> Self {
        Attribute::new(s)
    }
}

impl From<String> for Attribute {
    fn from(s: String) -> Self {
        Attribute::new(s)
    }
}

/// A relation schema: a finite set of attributes `U`, kept sorted so that
/// schema equality and iteration order are deterministic.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// The empty schema (schema of 0-ary relations).
    pub fn empty() -> Self {
        Schema::default()
    }

    /// Builds a schema from attribute names; duplicates are collapsed and the
    /// result is sorted.
    pub fn new<I, A>(attrs: I) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Attribute>,
    {
        let mut attributes: Vec<Attribute> = attrs.into_iter().map(Into::into).collect();
        attributes.sort();
        attributes.dedup();
        Schema { attributes }
    }

    /// The attributes, in sorted order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes (the arity).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Does the schema contain the given attribute?
    pub fn contains(&self, attr: &Attribute) -> bool {
        self.attributes.binary_search(attr).is_ok()
    }

    /// The column position of an attribute in the sorted attribute order —
    /// how the physical plan layer resolves names to indices at plan time.
    pub fn position(&self, attr: &Attribute) -> Option<usize> {
        self.attributes.binary_search(attr).ok()
    }

    /// Is `other` a subset of this schema (`V ⊆ U`, the precondition of
    /// projection)?
    pub fn contains_all(&self, other: &Schema) -> bool {
        other.attributes.iter().all(|a| self.contains(a))
    }

    /// The union of two schemas — the schema `U₁ ∪ U₂` of a natural join.
    pub fn union(&self, other: &Schema) -> Schema {
        Schema::new(
            self.attributes
                .iter()
                .chain(other.attributes.iter())
                .cloned(),
        )
    }

    /// The intersection of two schemas — the attributes on which a natural
    /// join requires agreement.
    pub fn intersection(&self, other: &Schema) -> Schema {
        Schema::new(
            self.attributes
                .iter()
                .filter(|a| other.contains(a))
                .cloned(),
        )
    }

    /// Are the two schemas disjoint?
    pub fn is_disjoint(&self, other: &Schema) -> bool {
        self.intersection(other).arity() == 0
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

/// A renaming `β : U → U'`, required by the paper to be a bijection.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Renaming {
    mapping: std::collections::BTreeMap<Attribute, Attribute>,
}

impl Renaming {
    /// The identity renaming.
    pub fn identity() -> Self {
        Renaming::default()
    }

    /// Builds a renaming from `(from, to)` pairs. Attributes not mentioned
    /// are left unchanged.
    pub fn new<I, A, B>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (A, B)>,
        A: Into<Attribute>,
        B: Into<Attribute>,
    {
        Renaming {
            mapping: pairs
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
        }
    }

    /// The explicit `(from, to)` pairs, in attribute order. Attributes not
    /// listed map to themselves.
    pub fn pairs(&self) -> impl Iterator<Item = (&Attribute, &Attribute)> {
        self.mapping.iter()
    }

    /// Renames one attribute.
    pub fn apply(&self, attr: &Attribute) -> Attribute {
        self.mapping
            .get(attr)
            .cloned()
            .unwrap_or_else(|| attr.clone())
    }

    /// Renames every attribute of a schema. Returns `None` if the renaming is
    /// not injective on this schema (the paper requires a bijection).
    pub fn apply_schema(&self, schema: &Schema) -> Option<Schema> {
        let renamed = Schema::new(schema.attributes().iter().map(|a| self.apply(a)));
        if renamed.arity() == schema.arity() {
            Some(renamed)
        } else {
            None
        }
    }

    /// The inverse renaming (swaps `from` and `to`); meaningful when the
    /// renaming is injective.
    pub fn inverse(&self) -> Renaming {
        Renaming {
            mapping: self
                .mapping
                .iter()
                .map(|(a, b)| (b.clone(), a.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_construction_sorts_and_dedups() {
        let s = Schema::new(["c", "a", "b", "a"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(
            s.attributes()
                .iter()
                .map(Attribute::name)
                .collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn containment_union_intersection() {
        let ab = Schema::new(["a", "b"]);
        let bc = Schema::new(["b", "c"]);
        let ac = Schema::new(["a", "c"]);
        assert!(ab.contains(&Attribute::new("a")));
        assert!(!ab.contains(&Attribute::new("c")));
        assert_eq!(ab.union(&bc), Schema::new(["a", "b", "c"]));
        assert_eq!(ab.intersection(&bc), Schema::new(["b"]));
        assert!(ab.intersection(&ac).contains(&Attribute::new("a")));
        assert!(!ab.is_disjoint(&bc));
        assert!(Schema::new(["a"]).is_disjoint(&Schema::new(["b"])));
        assert!(Schema::new(["a", "b", "c"]).contains_all(&ab));
        assert!(!ab.contains_all(&bc));
    }

    #[test]
    fn renaming_applies_and_inverts() {
        let rho = Renaming::new([("b", "b2")]);
        let abc = Schema::new(["a", "b", "c"]);
        let renamed = rho.apply_schema(&abc).unwrap();
        assert_eq!(renamed, Schema::new(["a", "b2", "c"]));
        let back = rho.inverse().apply_schema(&renamed).unwrap();
        assert_eq!(back, abc);
    }

    #[test]
    fn non_injective_renaming_is_rejected() {
        let rho = Renaming::new([("a", "x"), ("b", "x")]);
        assert_eq!(rho.apply_schema(&Schema::new(["a", "b"])), None);
    }

    #[test]
    fn empty_schema_has_arity_zero() {
        assert_eq!(Schema::empty().arity(), 0);
        assert!(Schema::new(["a"]).contains_all(&Schema::empty()));
    }
}

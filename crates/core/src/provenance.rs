//! Provenance-tracking evaluation: abstract tagging and the factorization
//! theorem (Section 4 of the paper).
//!
//! Given a K-relation `R`, its *abstractly tagged* version `R̄` annotates
//! every support tuple with its own tuple id, viewed as an ℕ\[X\]-relation.
//! Theorem 4.3 states that for every RA⁺ query `q`,
//! `q(R) = Eval_v ∘ q(R̄)` where `v` maps each tuple id to the original
//! annotation. In other words: run the query **once** over provenance
//! polynomials, then specialize to any semiring by evaluation.

use crate::database::Database;
use crate::expr::{EvalError, RaExpr};
use crate::relation::KRelation;
use crate::tuple::Tuple;
use provsem_semiring::{
    Circuit, CircuitEval, CommutativeSemiring, Monomial, Natural, Polynomial, ProvenancePolynomial,
    Semiring, Valuation, Variable,
};

/// The result of abstractly tagging a K-relation or database: the
/// ℕ\[X\]-annotated instance together with the valuation `v : X → K` that maps
/// each fresh tuple id back to the original annotation.
#[derive(Clone, Debug)]
pub struct Tagged<K> {
    /// The abstractly tagged instance `R̄` (each tuple annotated by its id).
    pub database: Database<ProvenancePolynomial>,
    /// The valuation sending tuple ids to the original K annotations.
    pub valuation: Valuation<K>,
    /// For reporting: which tuple each id refers to (`(relation, tuple)`).
    pub id_index: Vec<(Variable, String, Tuple)>,
}

/// What tagging a single relation produces: the ℕ\[X\]-annotated relation,
/// the valuation sending the fresh ids back to the original annotations,
/// and the id → `(relation, tuple)` index.
pub type TaggedRelation<K> = (
    KRelation<ProvenancePolynomial>,
    Valuation<K>,
    Vec<(Variable, String, Tuple)>,
);

/// Abstractly tags a single relation, generating ids `prefix_0, prefix_1, …`
/// for its support tuples (in tuple order, so ids are deterministic).
pub fn tag_relation<K: Semiring>(name: &str, relation: &KRelation<K>) -> TaggedRelation<K> {
    let mut tagged = KRelation::empty(relation.schema().clone());
    let mut valuation = Valuation::new();
    let mut index = Vec::new();
    for (i, (tuple, annotation)) in relation.iter().enumerate() {
        let id = Variable::indexed(name, i);
        tagged.insert(tuple.clone(), ProvenancePolynomial::var(id.clone()));
        valuation.assign(id.clone(), annotation.clone());
        index.push((id, name.to_string(), tuple.clone()));
    }
    (tagged, valuation, index)
}

/// Abstractly tags every relation of a database (Theorem 4.3's `R̄`,
/// extended to multi-relation instances).
pub fn tag_database<K: Semiring>(db: &Database<K>) -> Tagged<K> {
    let mut database = Database::new();
    let mut valuation = Valuation::new();
    let mut id_index = Vec::new();
    for (name, relation) in db.iter() {
        let (tagged, v, index) = tag_relation(name, relation);
        database.insert(name.clone(), tagged);
        for (var, val) in v.iter() {
            valuation.assign(var.clone(), val.clone());
        }
        id_index.extend(index);
    }
    Tagged {
        database,
        valuation,
        id_index,
    }
}

/// Tags a database with *caller-provided* variable names per tuple — used to
/// reproduce the paper's figures literally (`p`, `r`, `s` in Figure 5;
/// `m, n, p, r, s` in Figure 7).
pub fn tag_database_with_names<K: Semiring>(
    db: &Database<K>,
    names: &dyn Fn(&str, &Tuple) -> Variable,
) -> Tagged<K> {
    let mut database = Database::new();
    let mut valuation = Valuation::new();
    let mut id_index = Vec::new();
    for (name, relation) in db.iter() {
        let mut tagged = KRelation::empty(relation.schema().clone());
        for (tuple, annotation) in relation.iter() {
            let id = names(name, tuple);
            tagged.insert(tuple.clone(), ProvenancePolynomial::var(id.clone()));
            valuation.assign(id.clone(), annotation.clone());
            id_index.push((id, name.clone(), tuple.clone()));
        }
        database.insert(name.clone(), tagged);
    }
    Tagged {
        database,
        valuation,
        id_index,
    }
}

/// Evaluates a provenance-polynomial-annotated relation into `K` using the
/// valuation — tuple-wise `Eval_v`, the right-hand side of Theorem 4.3.
pub fn specialize<K: CommutativeSemiring>(
    relation: &KRelation<ProvenancePolynomial>,
    valuation: &Valuation<K>,
) -> KRelation<K> {
    relation.map_annotations(|p| p.eval(valuation))
}

/// [`specialize`] with a thread budget: the output tuples are split into
/// contiguous chunks and each chunk's polynomials are evaluated by its own
/// scoped worker (tuple-wise `Eval_v` is embarrassingly parallel — every
/// annotation is specialized independently). Results are reassembled in
/// tuple order, so the output is identical to the serial call at every
/// thread count.
pub fn specialize_with<K>(
    relation: &KRelation<ProvenancePolynomial>,
    valuation: &Valuation<K>,
    ctx: &crate::plan::ExecContext,
) -> KRelation<K>
where
    K: CommutativeSemiring + Send + Sync,
{
    if ctx.threads <= 1 {
        return specialize(relation, valuation);
    }
    let pairs: Vec<(&Tuple, &ProvenancePolynomial)> = relation.iter().collect();
    let chunks = crate::par::chunked(pairs, ctx.threads);
    let specialized = crate::par::par_map_chunks(chunks, |_, chunk| {
        chunk
            .into_iter()
            .map(|(tuple, p)| (tuple.clone(), p.eval(valuation)))
            .collect::<Vec<_>>()
    });
    let mut out = KRelation::empty(relation.schema().clone());
    for chunk in specialized {
        for (tuple, k) in chunk {
            out.insert(tuple, k);
        }
    }
    out
}

/// Runs a query with provenance: evaluates `q` over the abstractly tagged
/// database, returning the ℕ\[X\]-annotated result (the "how-provenance" of
/// every output tuple). Evaluation goes through the planned engine
/// ([`crate::plan`]), like every `RaExpr::eval`.
pub fn provenance_of_query<K: Semiring>(
    query: &RaExpr,
    db: &Database<K>,
) -> Result<(KRelation<ProvenancePolynomial>, Valuation<K>), EvalError> {
    let tagged = tag_database(db);
    let result = query.eval(&tagged.database)?;
    Ok((result, tagged.valuation))
}

/// Checks the factorization theorem (Theorem 4.3) on a concrete query and
/// database: evaluates directly in K and via provenance + `Eval_v`, and
/// returns whether the two results agree. Used extensively by tests and by
/// the benchmark harness as a self-check.
pub fn factorization_holds<K: CommutativeSemiring>(
    query: &RaExpr,
    db: &Database<K>,
) -> Result<bool, EvalError> {
    // Plans are semiring-independent, so one plan serves both sides of the
    // theorem: the direct K evaluation and the ℕ[X] provenance evaluation
    // (the tagged database has the same schemas and supports as `db`).
    use crate::plan::{Plan, RelationSource};
    let plan = Plan::new(query, &db.catalog())?;
    let direct = plan.execute(db);
    let tagged = tag_database(db);
    let prov = plan.execute(&tagged.database);
    Ok(specialize(&prov, &tagged.valuation) == direct)
}

/// The total size (number of monomials summed over all output tuples) of a
/// provenance-annotated result; a useful measure of provenance overhead in
/// the benchmarks.
pub fn provenance_size(relation: &KRelation<ProvenancePolynomial>) -> usize {
    relation.iter().map(|(_, p)| p.num_terms()).sum()
}

/// The result of abstractly tagging a database in **circuit form**: each
/// base tuple is annotated with a hash-consed [`Circuit`] variable instead
/// of an expanded ℕ\[X\] polynomial. Same theorem (4.3), shared
/// representation: query evaluation interns `Plus`/`Times` nodes in O(1)
/// and specialization is one memoized bottom-up pass over the DAG.
///
/// Variable names match [`tag_database`] exactly, so the two routes are
/// interchangeable (and differentially comparable) valuation-for-valuation.
/// Handles live in the thread-local circuit arena; call
/// `provsem_semiring::circuit::reset()` between independent queries to
/// reclaim it (which invalidates earlier `CircuitTagged` results).
#[derive(Clone, Debug)]
pub struct CircuitTagged<K> {
    /// The abstractly tagged instance `R̄`, annotated with circuit handles.
    pub database: Database<Circuit>,
    /// The valuation sending tuple ids to the original K annotations.
    pub valuation: Valuation<K>,
    /// For reporting: which tuple each id refers to (`(relation, tuple)`).
    pub id_index: Vec<(Variable, String, Tuple)>,
}

/// Abstractly tags every relation of a database with circuit variables —
/// the circuit-form counterpart of [`tag_database`].
pub fn tag_database_circuit<K: Semiring>(db: &Database<K>) -> CircuitTagged<K> {
    let mut database = Database::new();
    let mut valuation = Valuation::new();
    let mut id_index = Vec::new();
    for (name, relation) in db.iter() {
        let mut tagged = KRelation::empty(relation.schema().clone());
        for (i, (tuple, annotation)) in relation.iter().enumerate() {
            let id = Variable::indexed(name, i);
            tagged.insert(tuple.clone(), Circuit::var(id.clone()));
            valuation.assign(id.clone(), annotation.clone());
            id_index.push((id, name.clone(), tuple.clone()));
        }
        database.insert(name.clone(), tagged);
    }
    CircuitTagged {
        database,
        valuation,
        id_index,
    }
}

/// Evaluates a circuit-annotated relation into `K` — tuple-wise `Eval_v`
/// with **one shared memo across all tuples**: a subcircuit reused by many
/// output tuples is evaluated once (this is where the circuit route beats
/// specializing expanded polynomials tuple by tuple).
pub fn specialize_circuit<K: CommutativeSemiring>(
    relation: &KRelation<Circuit>,
    valuation: &Valuation<K>,
) -> KRelation<K> {
    let mut eval = CircuitEval::new(valuation);
    let mut out = KRelation::empty(relation.schema().clone());
    for (tuple, circuit) in relation.iter() {
        out.insert(tuple.clone(), eval.eval(*circuit));
    }
    out
}

/// [`specialize_circuit`] with a thread budget. Circuit handles live in the
/// calling thread's arena, so each chunk of root circuits is exported to an
/// arena-independent batch, re-interned into its worker's own arena, and
/// evaluated there with a per-worker memoized [`CircuitEval`]; the `K`
/// results (plain data) come back and are reassembled in tuple order —
/// identical output to the serial call.
///
/// Trade-off: a subcircuit shared by tuples of *different* chunks is
/// evaluated once per worker instead of once overall, buying wall-clock
/// parallelism with bounded duplicated work (at most one evaluation of the
/// shared core per worker).
pub fn specialize_circuit_with<K>(
    relation: &KRelation<Circuit>,
    valuation: &Valuation<K>,
    ctx: &crate::plan::ExecContext,
) -> KRelation<K>
where
    K: CommutativeSemiring + Send + Sync,
{
    if ctx.threads <= 1 || relation.len() < crate::par::SPAWN_THRESHOLD {
        return specialize_circuit(relation, valuation);
    }
    let roots: Vec<Circuit> = relation.iter().map(|(_, c)| *c).collect();
    // Seal each chunk on the coordinator (handles are meaningless in the
    // workers' arenas), one portable token per worker.
    let sealed: Vec<provsem_semiring::Portable> = crate::par::chunked(roots, ctx.threads)
        .into_iter()
        .map(Circuit::to_portable)
        .collect();
    let evaluated: Vec<Vec<K>> = crate::par::spawn_map(sealed, |token| {
        let circuits = Circuit::from_portable(token);
        let mut eval = CircuitEval::new(valuation);
        circuits.into_iter().map(|c| eval.eval(c)).collect()
    });
    let mut out = KRelation::empty(relation.schema().clone());
    for (tuple, k) in relation
        .iter()
        .map(|(tuple, _)| tuple)
        .zip(evaluated.into_iter().flatten())
    {
        out.insert(tuple.clone(), k);
    }
    out
}

/// Runs a query with circuit provenance: evaluates `q` over the
/// circuit-tagged database — the circuit-form counterpart of
/// [`provenance_of_query`].
pub fn circuit_provenance_of_query<K: Semiring>(
    query: &RaExpr,
    db: &Database<K>,
) -> Result<(KRelation<Circuit>, Valuation<K>), EvalError> {
    let tagged = tag_database_circuit(db);
    let result = query.eval(&tagged.database)?;
    Ok((result, tagged.valuation))
}

/// Checks Theorem 4.3 along the circuit route: evaluating directly in K
/// agrees with evaluating over circuits and specializing via the memoized
/// `Eval_v`. One plan serves both evaluations, like
/// [`factorization_holds`].
pub fn circuit_factorization_holds<K: CommutativeSemiring>(
    query: &RaExpr,
    db: &Database<K>,
) -> Result<bool, EvalError> {
    use crate::plan::{Plan, RelationSource};
    let plan = Plan::new(query, &db.catalog())?;
    let direct = plan.execute(db);
    let tagged = tag_database_circuit(db);
    let prov = plan.execute(&tagged.database);
    Ok(specialize_circuit(&prov, &tagged.valuation) == direct)
}

/// The total number of distinct circuit nodes reachable from a
/// circuit-annotated result — the *with-sharing* counterpart of
/// [`provenance_size`] (which counts expanded monomials).
pub fn circuit_provenance_size(relation: &KRelation<Circuit>) -> usize {
    provsem_semiring::circuit::shared_node_count(relation.iter().map(|(_, c)| *c))
}

/// Builds a provenance polynomial from an explicit list of
/// `(coefficient, [variables])` terms; a convenience for writing expected
/// values in tests that mirror the paper's figures.
pub fn poly(terms: &[(u64, &[&str])]) -> ProvenancePolynomial {
    Polynomial::from_terms(
        terms
            .iter()
            .map(|(c, vars)| (Monomial::from_bag(vars.iter().copied()), Natural::from(*c))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::paper_example_query;
    use crate::schema::Schema;
    use provsem_semiring::{Bool, NatInf, PosBool, Tropical, WhySet};

    fn nat(n: u64) -> Natural {
        Natural::from(n)
    }

    /// Figure 5(a): R tagged with ids p, r, s.
    fn figure5_db() -> Database<Natural> {
        let schema = Schema::new(["a", "b", "c"]);
        let r = KRelation::from_tuples(
            schema,
            [
                (Tuple::new([("a", "a"), ("b", "b"), ("c", "c")]), nat(2)),
                (Tuple::new([("a", "d"), ("b", "b"), ("c", "e")]), nat(5)),
                (Tuple::new([("a", "f"), ("b", "g"), ("c", "e")]), nat(1)),
            ],
        );
        Database::new().with("R", r)
    }

    fn paper_names(_rel: &str, t: &Tuple) -> Variable {
        match t.get_named("a").and_then(|v| v.as_str()) {
            Some("a") => Variable::new("p"),
            Some("d") => Variable::new("r"),
            Some("f") => Variable::new("s"),
            other => panic!("unexpected tuple {other:?}"),
        }
    }

    #[test]
    fn figure5c_provenance_polynomials() {
        // Figure 5(c): q(R̄) = {(a,c)↦2p², (a,e)↦pr, (d,c)↦pr, (d,e)↦2r²+rs,
        // (f,e)↦2s²+rs}.
        let db = figure5_db();
        let tagged = tag_database_with_names(&db, &paper_names);
        let q = paper_example_query("R");
        let out = q.eval(&tagged.database).unwrap();
        let at = |a: &str, c: &str| out.annotation(&Tuple::new([("a", a), ("c", c)]));
        assert_eq!(at("a", "c"), poly(&[(2, &["p", "p"])]));
        assert_eq!(at("a", "e"), poly(&[(1, &["p", "r"])]));
        assert_eq!(at("d", "c"), poly(&[(1, &["p", "r"])]));
        assert_eq!(at("d", "e"), poly(&[(2, &["r", "r"]), (1, &["r", "s"])]));
        assert_eq!(at("f", "e"), poly(&[(2, &["s", "s"]), (1, &["r", "s"])]));
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn theorem_4_3_factorization_into_bag_semantics() {
        let db = figure5_db();
        let q = paper_example_query("R");
        assert!(factorization_holds(&q, &db).unwrap());
    }

    #[test]
    fn theorem_4_3_factorization_into_other_semirings() {
        // The same provenance result specializes into 𝔹, PosBool, Tropical,
        // ℕ∞ — evaluating directly agrees with evaluating via ℕ[X].
        let db_nat = figure5_db();
        let q = paper_example_query("R");

        let db_bool: Database<Bool> = db_nat.map_annotations(|n| Bool::from(!n.is_zero()));
        assert!(factorization_holds(&q, &db_bool).unwrap());

        let db_ninf: Database<NatInf> = db_nat.map_annotations(|n| NatInf::Fin(n.value()));
        assert!(factorization_holds(&q, &db_ninf).unwrap());

        let db_trop: Database<Tropical> = db_nat.map_annotations(|n| Tropical::cost(n.value()));
        assert!(factorization_holds(&q, &db_trop).unwrap());

        let mut db_posbool: Database<PosBool> = Database::new();
        let schema = Schema::new(["a", "b", "c"]);
        let rel = KRelation::from_tuples(
            schema,
            [
                (
                    Tuple::new([("a", "a"), ("b", "b"), ("c", "c")]),
                    PosBool::var("b1"),
                ),
                (
                    Tuple::new([("a", "d"), ("b", "b"), ("c", "e")]),
                    PosBool::var("b2"),
                ),
                (
                    Tuple::new([("a", "f"), ("b", "g"), ("c", "e")]),
                    PosBool::var("b3"),
                ),
            ],
        );
        db_posbool.insert("R", rel);
        assert!(factorization_holds(&q, &db_posbool).unwrap());
    }

    #[test]
    fn specialization_reproduces_figure2_and_figure3_from_figure5() {
        // One provenance computation, two specializations: the c-table of
        // Figure 2(b) (via b1, b2, b3) and the bag result of Figure 3(b)
        // (via 2, 5, 1).
        let db = figure5_db();
        let tagged = tag_database_with_names(&db, &paper_names);
        let q = paper_example_query("R");
        let prov = q.eval(&tagged.database).unwrap();

        // Bag specialization.
        let v_bag = Valuation::from_pairs([("p", nat(2)), ("r", nat(5)), ("s", nat(1))]);
        let bag = specialize(&prov, &v_bag);
        assert_eq!(
            bag.annotation(&Tuple::new([("a", "d"), ("c", "e")])),
            nat(55)
        );
        assert_eq!(
            bag.annotation(&Tuple::new([("a", "f"), ("c", "e")])),
            nat(7)
        );

        // c-table specialization (Figure 2(b)).
        let v_ctable = Valuation::from_pairs([
            ("p", PosBool::var("b1")),
            ("r", PosBool::var("b2")),
            ("s", PosBool::var("b3")),
        ]);
        let ctable = specialize(&prov, &v_ctable);
        assert_eq!(
            ctable.annotation(&Tuple::new([("a", "a"), ("c", "c")])),
            PosBool::var("b1")
        );
        assert_eq!(
            ctable.annotation(&Tuple::new([("a", "a"), ("c", "e")])),
            PosBool::var("b1").times(&PosBool::var("b2"))
        );
        assert_eq!(
            ctable.annotation(&Tuple::new([("a", "d"), ("c", "e")])),
            PosBool::var("b2")
        );
        assert_eq!(
            ctable.annotation(&Tuple::new([("a", "f"), ("c", "e")])),
            PosBool::var("b3")
        );
    }

    #[test]
    fn why_provenance_from_polynomials_matches_figure5b() {
        let db = figure5_db();
        let tagged = tag_database_with_names(&db, &paper_names);
        let q = paper_example_query("R");
        let prov = q.eval(&tagged.database).unwrap();
        let why = prov.map_annotations(ProvenancePolynomial::why_provenance);
        assert_eq!(
            why.annotation(&Tuple::new([("a", "a"), ("c", "c")])),
            WhySet::var("p")
        );
        assert_eq!(
            why.annotation(&Tuple::new([("a", "d"), ("c", "e")])),
            WhySet::from_vars(["r", "s"])
        );
        assert_eq!(
            why.annotation(&Tuple::new([("a", "f"), ("c", "e")])),
            WhySet::from_vars(["r", "s"])
        );
    }

    #[test]
    fn automatic_tagging_generates_distinct_ids() {
        let db = figure5_db();
        let tagged = tag_database(&db);
        assert_eq!(tagged.id_index.len(), 3);
        let ids: std::collections::BTreeSet<_> =
            tagged.id_index.iter().map(|(v, _, _)| v.clone()).collect();
        assert_eq!(ids.len(), 3);
        // The valuation maps each id back to the original annotation.
        for (id, rel, tuple) in &tagged.id_index {
            let original = db.get(rel).unwrap().annotation(tuple);
            assert_eq!(tagged.valuation.get(id), Some(&original));
        }
    }

    #[test]
    fn provenance_size_counts_monomials() {
        let db = figure5_db();
        let (prov, _) = provenance_of_query(&paper_example_query("R"), &db).unwrap();
        // 1 + 1 + 1 + 2 + 2 monomials across the five output tuples.
        assert_eq!(provenance_size(&prov), 7);
    }

    #[test]
    fn circuit_route_agrees_with_polynomial_route_on_figure5() {
        let db = figure5_db();
        let q = paper_example_query("R");
        let (poly_prov, poly_val) = provenance_of_query(&q, &db).unwrap();
        let (circ_prov, circ_val) = circuit_provenance_of_query(&q, &db).unwrap();
        // Same support, and tuple-wise the circuit lowers to the exact same
        // ℕ[X] polynomial (the tagging uses identical variable names).
        assert_eq!(circ_prov.len(), poly_prov.len());
        for (tuple, circuit) in circ_prov.iter() {
            assert_eq!(
                circuit.to_polynomial(),
                poly_prov.annotation(tuple),
                "{tuple}"
            );
        }
        // And both specializations reproduce the direct bag result.
        let via_poly = specialize(&poly_prov, &poly_val);
        let via_circ = specialize_circuit(&circ_prov, &circ_val);
        assert_eq!(via_poly, via_circ);
        assert!(circuit_factorization_holds(&q, &db).unwrap());
    }

    #[test]
    fn circuit_tagging_matches_polynomial_tagging_ids() {
        let db = figure5_db();
        let tagged = tag_database(&db);
        let circ = tag_database_circuit(&db);
        let poly_ids: Vec<_> = tagged.id_index.iter().map(|(v, r, t)| (v, r, t)).collect();
        let circ_ids: Vec<_> = circ.id_index.iter().map(|(v, r, t)| (v, r, t)).collect();
        assert_eq!(poly_ids, circ_ids);
        for (id, _, _) in &circ.id_index {
            assert_eq!(circ.valuation.get(id), tagged.valuation.get(id));
        }
    }

    #[test]
    fn circuit_provenance_size_measures_sharing() {
        let db = figure5_db();
        let (prov, _) = circuit_provenance_of_query(&paper_example_query("R"), &db).unwrap();
        // A handful of shared nodes over the three tuple variables — far
        // fewer than one expansion per output tuple, and bounded by the
        // arena (which holds every node of both sides of each Plus/Times).
        let nodes = circuit_provenance_size(&prov);
        assert!(nodes >= 3, "at least the three variables: {nodes}");
        assert!(
            nodes <= provsem_semiring::circuit::arena_node_count(),
            "reachable nodes are a subset of the arena"
        );
    }
}

//! The columnar kernel surface: one public module re-exporting the typed
//! column vectors, batch containers, and join/grouping kernels that the
//! batch executor (`plan::batch`), the columnar IVM state
//! (`plan::maintain`), and the snapshot-resident [`BatchCache`] are built
//! on — so that sibling crates (the datalog fixpoint in particular) reuse
//! the exact kernels instead of re-implementing them.
//!
//! The split of responsibilities mirrors the row engine's:
//!
//! * [`ColBuilder`] / [`Column`] — per-attribute typed storage, starting
//!   typed (`i64` vectors, dictionary-encoded strings) and degrading to
//!   plain values on type mix or dictionary overflow ([`DICT_MAX`]).
//!   `ColBuilder` is the *retained*, append-only form (IVM join-side
//!   state, the datalog fact index); `Column` is the frozen form batches
//!   carry.
//! * [`Batch`] — columns plus a parallel annotation column: the
//!   K-relation annotation rides as "one more column".
//! * [`hash_combine`] / [`HASH_SEED`] / [`Value::content_hash`] — the
//!   content-based row-hash scheme every kernel and index shares, so a
//!   probe hash built from one representation matches buckets built from
//!   any other.
//! * [`join_batches`] — hash build/probe over whole batch lists (the RA
//!   hash-join kernel); [`group_batches`] — hash grouping with exact
//!   verification and stream-order annotation summing (the duplicate
//!   aggregation kernel).
//!
//! Every kernel verifies hash candidates with exact typed comparisons, so
//! collisions affect performance, never results — the property the
//! differential suites lean on when pinning batch-vs-row byte-identity.
//!
//! ```
//! use provsem_core::kernels::{group_batches, Batch};
//! use provsem_core::value::Value;
//! use provsem_semiring::Natural;
//!
//! // Two contributions to the same row sum at the grouping point, exactly
//! // like the row engine's duplicate aggregation.
//! let rows = vec![
//!     (vec![Value::int(1)].into_boxed_slice(), Natural::from(2u64)),
//!     (vec![Value::int(1)].into_boxed_slice(), Natural::from(3u64)),
//! ];
//! let batch = Batch::from_rows(1, rows);
//! let merged = group_batches(vec![batch], &[0]).into_batch(1).into_rows();
//! assert_eq!(merged, vec![(vec![Value::int(1)].into_boxed_slice(), Natural::from(5u64))]);
//! ```

pub use crate::column::{
    column_values_equal, columns_rows_equal, group_batches, hash_combine, relation_to_batches,
    Batch, BatchCache, BatchCacheStats, BatchProvenance, ColBuilder, Column, Grouped, StrDict,
    BATCH_ROWS, DICT_MAX, HASH_SEED,
};
pub use crate::plan::batch::join_batches;
pub use crate::plan::physical::ColSource;
#[doc(no_inline)]
pub use crate::value::Value;

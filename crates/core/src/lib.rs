//! # provsem-core
//!
//! K-relations and the generalized positive relational algebra of
//! *Provenance Semirings* (Green, Karvounarakis, Tannen; PODS 2007),
//! Sections 3–4:
//!
//! * [`relation::KRelation`] — annotated relations `R : U-Tup → K` with
//!   finite support (Definition 3.1);
//! * the RA⁺ operators ∅, ∪, π, σ, ⋈, ρ on K-relations (Definition 3.2),
//!   both as methods ([`algebra`]) and as an expression AST ([`expr::RaExpr`]);
//! * the planned query engine ([`plan`]): logical plan → optimizer →
//!   positional physical operators, which `RaExpr::eval` routes through
//!   (the tree-walking interpreter survives as
//!   `RaExpr::eval_interpreted`);
//! * provenance-tracking evaluation and the factorization theorem
//!   ([`provenance`], Theorem 4.3);
//! * the paper's running examples ([`paper`]).
//!
//! ```
//! use provsem_core::prelude::*;
//! use provsem_semiring::prelude::*;
//!
//! // Figure 3: bag semantics. Build R with multiplicities 2, 5, 1 and run
//! // the Section 2 query; the tuple (d,e) comes out with multiplicity 55.
//! let db = paper::figure3_bag();
//! let out = paper::section2_query().eval(&db).unwrap();
//! assert_eq!(
//!     out.annotation(&Tuple::new([("a", "d"), ("c", "e")])),
//!     Natural::from(55u64)
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod column;
pub mod database;
pub mod expr;
pub mod kernels;
pub mod paper;
pub mod par;
pub mod plan;
pub mod predicate;
pub mod provenance;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod tuple;
pub mod value;

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::database::Database;
    pub use crate::expr::{paper_example_query, EvalError, RaExpr};
    pub use crate::paper;
    pub use crate::plan::{
        Catalog, DeltaBatch, ExecContext, MaterializedView, NamedRelation, Plan, RelationSource,
    };
    pub use crate::predicate::Predicate;
    pub use crate::provenance::{
        circuit_factorization_holds, circuit_provenance_of_query, circuit_provenance_size,
        factorization_holds, poly, provenance_of_query, provenance_size, specialize,
        specialize_circuit, specialize_circuit_with, specialize_with, tag_database,
        tag_database_circuit, tag_database_with_names, tag_relation, CircuitTagged, Tagged,
    };
    pub use crate::relation::KRelation;
    pub use crate::schema::{Attribute, Renaming, Schema};
    pub use crate::snapshot::{DbSnapshot, SharedDatabase};
    pub use crate::tuple::Tuple;
    pub use crate::value::Value;
}

pub use prelude::*;

//! Columnar batches: typed column vectors with dictionary-encoded strings
//! and a parallel annotation column — the system's storage representation.
//!
//! This is the data layer under the batch executor (`plan::batch`), the
//! columnar IVM state (`plan::maintain`), and the snapshot-resident
//! [`BatchCache`]. A `Batch` holds one `Column` per output attribute
//! (in the operator's sorted schema order), a parallel `Vec<K>` of
//! annotations — the K-relation annotation is "just one more column"
//! riding next to the data — and an optional *selection vector* of
//! surviving row indices. The domain has no NULLs, so the layout is dense
//! and validity-free.
//!
//! Columns are typed by their content, decided per scan (or per rebuilt
//! batch) at conversion time:
//!
//! * `Column::I64` — every value is an integer; stored as a flat `i64`
//!   vector.
//! * `Column::Str` — every value is a string; stored as `u32` codes into
//!   a per-scan `StrDict`. Equality against a constant becomes a single
//!   dictionary probe plus a code-comparison loop; equality between two
//!   columns of the *same* dictionary is a code loop, and across
//!   dictionaries a code-translation table built once per batch.
//! * `Column::Val` — the fallback for mixed-type columns and for
//!   dictionaries that overflow `DICT_MAX` distinct strings: plain
//!   `Value`s, compared and hashed row-at-a-time like the row engine.
//!
//! Column payloads are behind `Arc`, so the projection/renaming kernels
//! (a permutation of the column *list*) and batch transport between morsel
//! workers never copy data; selections only refine the selection vector.
//! Data is gathered (copied) only at pipeline breakers — hash-join
//! build/probe, pre-join aggregation, exchanges, and the root conversion
//! back to a `KRelation` — exactly the places the row engine already
//! materializes.
//!
//! Hashing is content-based (`Value::content_hash`), not representation-based: an
//! integer hashes the same in an `I64` and a `Val` column, a string the
//! same under any dictionary (dictionaries precompute one hash per code at
//! interning time, so the per-row kernel is a table lookup). Grouping and
//! join matching verify candidates with exact typed comparisons
//! (`columns_rows_equal`), so hash collisions are harmless.

use crate::relation::KRelation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{int_content_hash, str_content_hash, Value};
use provsem_semiring::fxhash::FxHashMap;
use provsem_semiring::Semiring;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Row budget per scan batch: scans larger than this split into multiple
/// batches (sharing their per-scan dictionaries), which is also the unit
/// the morsel executor ships between workers.
pub const BATCH_ROWS: usize = 4096;

/// Distinct-string budget of a [`StrDict`]. A scan column with more
/// distinct strings than this stops paying for dictionary encoding (the
/// code array no longer stays hot and the dictionary itself rivals the
/// data); it degrades to a plain [`Column::Val`].
pub const DICT_MAX: usize = 1 << 16;

/// A string dictionary: distinct strings mapped to dense `u32` codes, with
/// the content hash of every entry precomputed so the hash kernels are a
/// table lookup per row. Built once per scan column (shared by all of the
/// scan's batches), immutable behind an [`Arc`] afterwards.
#[derive(Clone, Debug)]
pub struct StrDict {
    strings: Vec<Arc<str>>,
    hashes: Vec<u64>,
    index: FxHashMap<Arc<str>, u32>,
}

impl StrDict {
    fn new() -> StrDict {
        StrDict {
            strings: Vec::new(),
            hashes: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the dictionary holds no strings yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Interns a string, returning its code — or `None` when the dictionary
    /// is at [`DICT_MAX`] and the string is new (the overflow signal that
    /// degrades the column to plain values).
    fn intern(&mut self, s: &Arc<str>) -> Option<u32> {
        if let Some(&code) = self.index.get(s) {
            return Some(code);
        }
        if self.strings.len() >= DICT_MAX {
            return None;
        }
        let code = self.strings.len() as u32;
        self.strings.push(s.clone());
        self.hashes.push(str_content_hash(s));
        self.index.insert(s.clone(), code);
        Some(code)
    }

    /// The code of a string already in the dictionary — `None` means no row
    /// of any column using this dictionary holds the string, which is what
    /// lets `σ_{col=const}` on a dictionary column short-circuit to
    /// all-false once per batch.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string behind a code.
    pub fn resolve(&self, code: u32) -> &Arc<str> {
        &self.strings[code as usize]
    }
}

/// A typed column vector. Payloads are `Arc`-shared: cloning a column (the
/// projection/permutation kernels, batch transport) is O(1).
#[derive(Clone, Debug)]
pub enum Column {
    /// All-integer column.
    I64(Arc<Vec<i64>>),
    /// All-string column, dictionary-encoded.
    Str {
        /// The (per-scan or per-rebuild) dictionary.
        dict: Arc<StrDict>,
        /// One code per row.
        codes: Arc<Vec<u32>>,
    },
    /// Mixed-type or dictionary-overflow fallback: plain values.
    Val(Arc<Vec<Value>>),
}

impl Column {
    /// Number of (physical) rows.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
            Column::Val(v) => v.len(),
        }
    }

    /// Whether the column holds no physical rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A short encoding tag for explain output.
    pub fn encoding(&self) -> String {
        match self {
            Column::I64(_) => "i64".to_string(),
            Column::Str { dict, .. } => format!("dict({})", dict.len()),
            Column::Val(_) => "val".to_string(),
        }
    }

    /// The value at a physical row, cloned out (an `Arc` bump for strings).
    pub fn value_at(&self, row: u32) -> Value {
        match self {
            Column::I64(v) => Value::Int(v[row as usize]),
            Column::Str { dict, codes } => Value::Str(dict.resolve(codes[row as usize]).clone()),
            Column::Val(v) => v[row as usize].clone(),
        }
    }

    /// Does the value at `row` equal `v`? Typed fast paths: on a
    /// dictionary column the constant is resolved to a code by the caller
    /// (the predicate-mask kernel does); this method is the per-row
    /// fallback, also used by the datalog batch engine to validate probe
    /// candidates.
    pub fn value_eq_at(&self, row: u32, v: &Value) -> bool {
        match (self, v) {
            (Column::I64(col), Value::Int(x)) => col[row as usize] == *x,
            (Column::I64(_), Value::Str(_)) => false,
            (Column::Str { dict, codes }, Value::Str(s)) => {
                dict.resolve(codes[row as usize]).as_ref() == s.as_ref()
            }
            (Column::Str { .. }, Value::Int(_)) => false,
            (Column::Val(col), v) => col[row as usize] == *v,
        }
    }

    /// Combines this column's per-row content hashes into the running row
    /// hashes — the hash kernel. Content-based and representation-
    /// independent (dictionary columns read the per-code table precomputed
    /// at interning time); the representation is dispatched once per
    /// column, so the row loop is tight.
    fn hash_into(&self, hashes: &mut [u64]) {
        match self {
            Column::I64(v) => {
                for (h, x) in hashes.iter_mut().zip(v.iter()) {
                    *h = hash_combine(*h, int_content_hash(*x));
                }
            }
            Column::Str { dict, codes } => {
                for (h, &c) in hashes.iter_mut().zip(codes.iter()) {
                    *h = hash_combine(*h, dict.hashes[c as usize]);
                }
            }
            Column::Val(v) => {
                for (h, val) in hashes.iter_mut().zip(v.iter()) {
                    *h = hash_combine(*h, val.content_hash());
                }
            }
        }
    }

    /// Gathers the rows at `rows` (physical indices, repetitions allowed)
    /// into a new column of the same type (same dictionary for strings).
    pub fn gather(&self, rows: &[u32]) -> Column {
        match self {
            Column::I64(v) => Column::I64(Arc::new(
                rows.iter().map(|&r| v[r as usize]).collect::<Vec<_>>(),
            )),
            Column::Str { dict, codes } => Column::Str {
                dict: dict.clone(),
                codes: Arc::new(rows.iter().map(|&r| codes[r as usize]).collect::<Vec<_>>()),
            },
            Column::Val(v) => Column::Val(Arc::new(
                rows.iter()
                    .map(|&r| v[r as usize].clone())
                    .collect::<Vec<_>>(),
            )),
        }
    }
}

/// Are the values at `(a, ra)` and `(b, rb)` equal? Typed fast paths:
/// integer columns compare `i64`s, string columns of the *same* dictionary
/// compare codes, different dictionaries compare the resolved strings, and
/// the mixed fallback compares values.
pub fn column_values_equal(a: &Column, ra: u32, b: &Column, rb: u32) -> bool {
    match (a, b) {
        (Column::I64(va), Column::I64(vb)) => va[ra as usize] == vb[rb as usize],
        (
            Column::Str {
                dict: da,
                codes: ca,
            },
            Column::Str {
                dict: db,
                codes: cb,
            },
        ) => {
            if Arc::ptr_eq(da, db) {
                ca[ra as usize] == cb[rb as usize]
            } else {
                da.resolve(ca[ra as usize]) == db.resolve(cb[rb as usize])
            }
        }
        (Column::I64(_), Column::Str { .. }) | (Column::Str { .. }, Column::I64(_)) => false,
        (Column::Val(va), b) => b.value_eq_at(rb, &va[ra as usize]),
        (a, Column::Val(vb)) => a.value_eq_at(ra, &vb[rb as usize]),
    }
}

/// Do two rows agree on their key columns? `akeys`/`bkeys` pair up
/// positionally (the join key columns of the two sides, or the full column
/// lists for whole-row grouping).
pub fn columns_rows_equal(
    acols: &[Column],
    ra: u32,
    akeys: &[usize],
    bcols: &[Column],
    rb: u32,
    bkeys: &[usize],
) -> bool {
    debug_assert_eq!(akeys.len(), bkeys.len());
    akeys
        .iter()
        .zip(bkeys)
        .all(|(&i, &j)| column_values_equal(&acols[i], ra, &bcols[j], rb))
}

// --- content hashing -------------------------------------------------------

/// Combines a per-column value hash into a running row hash (an FxHash-style
/// mix; column order matters, mirroring the row engine's positional key
/// hashing).
pub fn hash_combine(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Seed of an empty row hash (zero key columns hash every row equal, which
/// is what makes zero-arity grouping collapse to a single group).
pub const HASH_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

// --- column building -------------------------------------------------------

/// Builds one column from a stream of values, starting typed and degrading
/// to [`Column::Val`] on the first type mix or dictionary overflow. Also
/// the *retained* columnar representation of IVM join-side state
/// (`plan::maintain`), which keeps appending across delta batches — hence
/// the random-access and hashing accessors below.
#[derive(Clone, Debug)]
pub enum ColBuilder {
    /// No rows yet: the first value decides the type.
    Start,
    /// All integers so far.
    I64(Vec<i64>),
    /// All strings so far, dictionary-encoded.
    Str {
        /// The growing dictionary.
        dict: StrDict,
        /// One code per row.
        codes: Vec<u32>,
    },
    /// Mixed types or overflowed dictionary: plain values.
    Val(Vec<Value>),
}

impl Default for ColBuilder {
    fn default() -> Self {
        ColBuilder::new()
    }
}

impl ColBuilder {
    /// An empty column.
    pub fn new() -> ColBuilder {
        ColBuilder::Start
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        match self {
            ColBuilder::Start => 0,
            ColBuilder::I64(col) => col.len(),
            ColBuilder::Str { codes, .. } => codes.len(),
            ColBuilder::Val(col) => col.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A short encoding tag for explain output (see [`Column::encoding`]).
    pub fn encoding(&self) -> String {
        match self {
            ColBuilder::Start => "val".to_string(),
            ColBuilder::I64(_) => "i64".to_string(),
            ColBuilder::Str { dict, .. } => format!("dict({})", dict.len()),
            ColBuilder::Val(_) => "val".to_string(),
        }
    }

    /// The content hash of the value at `row` — the same hash the
    /// `Column` hash kernel computes, so probes built from retained
    /// builder columns agree with batch-side key hashes. Dictionary
    /// columns read the per-code hash table precomputed at interning
    /// time.
    pub fn content_hash_at(&self, row: u32) -> u64 {
        match self {
            ColBuilder::Start => unreachable!("content_hash_at on an empty column"),
            ColBuilder::I64(col) => int_content_hash(col[row as usize]),
            ColBuilder::Str { dict, codes } => dict.hashes[codes[row as usize] as usize],
            ColBuilder::Val(col) => col[row as usize].content_hash(),
        }
    }

    /// Appends a value, degrading the representation if needed.
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (ColBuilder::Start, Value::Int(x)) => *self = ColBuilder::I64(vec![x]),
            (ColBuilder::Start, Value::Str(s)) => {
                let mut dict = StrDict::new();
                let code = dict.intern(&s).expect("fresh dictionary has room");
                *self = ColBuilder::Str {
                    dict,
                    codes: vec![code],
                };
            }
            (ColBuilder::I64(col), Value::Int(x)) => col.push(x),
            (ColBuilder::I64(col), v @ Value::Str(_)) => {
                let mut values: Vec<Value> = col.drain(..).map(Value::Int).collect();
                values.push(v);
                *self = ColBuilder::Val(values);
            }
            (ColBuilder::Str { dict, codes }, Value::Str(s)) => match dict.intern(&s) {
                Some(code) => codes.push(code),
                None => {
                    // Dictionary overflow: degrade to plain strings.
                    let mut values: Vec<Value> = codes
                        .drain(..)
                        .map(|c| Value::Str(dict.resolve(c).clone()))
                        .collect();
                    values.push(Value::Str(s));
                    *self = ColBuilder::Val(values);
                }
            },
            (ColBuilder::Str { dict, codes }, v @ Value::Int(_)) => {
                let mut values: Vec<Value> = codes
                    .drain(..)
                    .map(|c| Value::Str(dict.resolve(c).clone()))
                    .collect();
                values.push(v);
                *self = ColBuilder::Val(values);
            }
            (ColBuilder::Val(col), v) => col.push(v),
        }
    }

    /// The value at a row, cloned out (an `Arc` bump for strings).
    pub fn value_at(&self, row: u32) -> Value {
        match self {
            ColBuilder::Start => unreachable!("value_at on an empty column"),
            ColBuilder::I64(col) => Value::Int(col[row as usize]),
            ColBuilder::Str { dict, codes } => {
                Value::Str(dict.resolve(codes[row as usize]).clone())
            }
            ColBuilder::Val(col) => col[row as usize].clone(),
        }
    }

    /// Does the value at `row` equal `v`?
    pub fn value_eq_at(&self, row: u32, v: &Value) -> bool {
        match (self, v) {
            (ColBuilder::Start, _) => false,
            (ColBuilder::I64(col), Value::Int(x)) => col[row as usize] == *x,
            (ColBuilder::I64(_), Value::Str(_)) => false,
            (ColBuilder::Str { dict, codes }, Value::Str(s)) => {
                dict.resolve(codes[row as usize]).as_ref() == s.as_ref()
            }
            (ColBuilder::Str { .. }, Value::Int(_)) => false,
            (ColBuilder::Val(col), v) => col[row as usize] == *v,
        }
    }

    /// Finishes the column. An empty builder yields an empty `Val` column.
    pub fn finish(self) -> Column {
        match self {
            ColBuilder::Start => Column::Val(Arc::new(Vec::new())),
            ColBuilder::I64(col) => Column::I64(Arc::new(col)),
            ColBuilder::Str { dict, codes } => Column::Str {
                dict: Arc::new(dict),
                codes: Arc::new(codes),
            },
            ColBuilder::Val(col) => Column::Val(Arc::new(col)),
        }
    }
}

/// Gathers column `col` of possibly many source batches at `refs`
/// (`(batch, row)` pairs). Stays typed when every source agrees — all
/// integer, or all string under the *same* dictionary — and otherwise
/// rebuilds through a [`ColBuilder`] (minting a fresh per-batch dictionary,
/// which is how unions of differently-dictionaried scans re-normalize).
pub fn gather_multi(sources: &[&[Column]], col: usize, refs: &[(u32, u32)]) -> Column {
    let all_i64 = sources.iter().all(|s| matches!(s[col], Column::I64(_)));
    if all_i64 {
        let out: Vec<i64> = refs
            .iter()
            .map(|&(b, r)| match &sources[b as usize][col] {
                Column::I64(v) => v[r as usize],
                _ => unreachable!(),
            })
            .collect();
        return Column::I64(Arc::new(out));
    }
    let shared_dict = sources.first().and_then(|s| match &s[col] {
        Column::Str { dict, .. } => sources
            .iter()
            .all(|s| matches!(&s[col], Column::Str { dict: d, .. } if Arc::ptr_eq(d, dict)))
            .then(|| dict.clone()),
        _ => None,
    });
    if let Some(dict) = shared_dict {
        let out: Vec<u32> = refs
            .iter()
            .map(|&(b, r)| match &sources[b as usize][col] {
                Column::Str { codes, .. } => codes[r as usize],
                _ => unreachable!(),
            })
            .collect();
        return Column::Str {
            dict,
            codes: Arc::new(out),
        };
    }
    let mut builder = ColBuilder::new();
    for &(b, r) in refs {
        builder.push(sources[b as usize][col].value_at(r));
    }
    builder.finish()
}

// --- batches ---------------------------------------------------------------

/// A columnar batch: typed columns (one per output attribute, in sorted
/// schema order), a parallel annotation column, and an optional selection
/// vector. `sel` holds the *logical* view: when present, only the listed
/// physical rows (strictly increasing — selections only ever filter in
/// stream order) are alive; columns and annotations are untouched until a
/// pipeline breaker materializes the view.
#[derive(Clone, Debug)]
pub struct Batch<K> {
    len: usize,
    columns: Vec<Column>,
    anns: Vec<K>,
    sel: Option<Vec<u32>>,
}

impl<K: Semiring> Batch<K> {
    /// A batch from freshly built full columns (no selection).
    pub fn new(len: usize, columns: Vec<Column>, anns: Vec<K>) -> Batch<K> {
        debug_assert!(columns.iter().all(|c| c.len() == len));
        debug_assert_eq!(anns.len(), len);
        Batch {
            len,
            columns,
            anns,
            sel: None,
        }
    }

    /// Number of live (logical) rows.
    pub fn live_rows(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.len,
        }
    }

    /// Number of physical rows (the length of the column vectors; dead rows
    /// filtered by `sel` included). Predicate masks are indexed by physical
    /// row.
    pub fn phys_rows(&self) -> usize {
        self.len
    }

    /// The columns (physical; apply `sel` for the logical view).
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The annotation column (physical; parallel to the data columns).
    pub fn anns(&self) -> &[K] {
        &self.anns
    }

    /// Applies a predicate mask (indexed by physical row) to the selection
    /// vector — the σ kernel's final step. No column or annotation data
    /// moves.
    pub fn refine(&mut self, mask: &[bool]) {
        debug_assert_eq!(mask.len(), self.len);
        self.sel = Some(match self.sel.take() {
            Some(sel) => sel.into_iter().filter(|&r| mask[r as usize]).collect(),
            None => (0..self.len as u32).filter(|&r| mask[r as usize]).collect(),
        });
    }

    /// Replaces the column list with a permutation/subset of itself — the
    /// π/ρ kernel. Pure `Arc` moves; no data is copied.
    pub fn permute_columns(&mut self, perm: &[usize]) {
        self.columns = perm.iter().map(|&i| self.columns[i].clone()).collect();
    }

    /// Materializes the logical view: gathers columns and annotations down
    /// to the selected rows and drops the selection vector. Annotations of
    /// surviving rows are *moved*, not cloned (the selection vector is
    /// strictly increasing). No-op when nothing is filtered.
    pub fn materialize(self) -> Batch<K> {
        let Some(sel) = self.sel else { return self };
        let columns = self
            .columns
            .iter()
            .map(|c| c.gather(&sel))
            .collect::<Vec<_>>();
        let mut keep = sel.iter().copied().peekable();
        let anns = self
            .anns
            .into_iter()
            .enumerate()
            .filter_map(|(i, k)| {
                if keep.peek() == Some(&(i as u32)) {
                    keep.next();
                    Some(k)
                } else {
                    None
                }
            })
            .collect();
        Batch {
            len: sel.len(),
            columns,
            anns,
            sel: None,
        }
    }

    /// Content hashes of the key columns, one per physical row of a
    /// materialized batch — the column-wise join/group hash kernel (columns
    /// iterate outer, rows inner).
    ///
    /// # Panics
    /// Debug-panics on an unmaterialized batch.
    pub fn key_hashes(&self, keys: &[usize]) -> Vec<u64> {
        debug_assert!(
            self.sel.is_none(),
            "hash kernels run on materialized batches"
        );
        let mut hashes = vec![HASH_SEED; self.len];
        for &key in keys {
            self.columns[key].hash_into(&mut hashes);
        }
        hashes
    }

    /// Splits a materialized batch into `parts` sub-batches by an
    /// assignment vector (`assign[row] < parts`), preserving relative row
    /// order within each part — the exchange kernel. Annotations move;
    /// column data is gathered once.
    pub fn split_by(self, assign: &[u32], parts: usize) -> Vec<Batch<K>> {
        debug_assert!(self.sel.is_none());
        debug_assert_eq!(assign.len(), self.len);
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); parts];
        for (row, &p) in assign.iter().enumerate() {
            rows[p as usize].push(row as u32);
        }
        let mut anns: Vec<Vec<K>> = (0..parts).map(|_| Vec::new()).collect();
        for (row, k) in self.anns.into_iter().enumerate() {
            anns[assign[row] as usize].push(k);
        }
        rows.into_iter()
            .zip(anns)
            .map(|(rows, anns)| {
                let columns = self.columns.iter().map(|c| c.gather(&rows)).collect();
                Batch::new(rows.len(), columns, anns)
            })
            .collect()
    }

    /// Decomposes a materialized batch.
    pub fn into_parts(self) -> (usize, Vec<Column>, Vec<K>) {
        debug_assert!(self.sel.is_none());
        (self.len, self.columns, self.anns)
    }

    /// Converts the live rows back to positional rows with owned
    /// annotations — the boundary back into the row world (used by the
    /// batch-mode IVM delta kernels).
    pub fn into_rows(self) -> Vec<(Box<[Value]>, K)> {
        let batch = self.materialize();
        let row_of = |cols: &[Column], r: u32| -> Box<[Value]> {
            cols.iter().map(|c| c.value_at(r)).collect()
        };
        let (len, columns, anns) = batch.into_parts();
        anns.into_iter()
            .enumerate()
            .map(|(r, k)| {
                debug_assert!(r < len);
                (row_of(&columns, r as u32), k)
            })
            .collect()
    }

    /// Builds a batch from positional rows (the IVM delta boundary: delta
    /// chunks enter the columnar kernels through here).
    pub fn from_rows(arity: usize, rows: Vec<(Box<[Value]>, K)>) -> Batch<K> {
        let mut builders: Vec<ColBuilder> = (0..arity).map(|_| ColBuilder::new()).collect();
        let mut anns = Vec::with_capacity(rows.len());
        let mut len = 0usize;
        for (row, k) in rows {
            debug_assert_eq!(row.len(), arity);
            for (builder, v) in builders.iter_mut().zip(row.into_vec()) {
                builder.push(v);
            }
            anns.push(k);
            len += 1;
        }
        Batch::new(
            len,
            builders.into_iter().map(ColBuilder::finish).collect(),
            anns,
        )
    }
}

/// Converts a scanned [`KRelation`] into batches — the row→column boundary.
/// Columns are typed over the *whole* scan (one dictionary per string
/// column, shared by every batch of the scan), then split into batches of
/// at most [`BATCH_ROWS`] rows. Annotations are cloned out of the relation
/// exactly once. The split depends only on the relation — never on the
/// execution context — so the result is shareable across every execution
/// and thread count, which is what lets the [`BatchCache`] memoize it.
pub fn relation_to_batches<K: Semiring>(relation: &KRelation<K>) -> Vec<Batch<K>> {
    let arity = relation.schema().arity();
    let mut builders: Vec<ColBuilder> = (0..arity).map(|_| ColBuilder::new()).collect();
    let mut anns: Vec<K> = Vec::with_capacity(relation.len());
    for (tuple, k) in relation.iter() {
        for (builder, v) in builders.iter_mut().zip(tuple.values()) {
            builder.push(v.clone());
        }
        anns.push(k.clone());
    }
    let len = anns.len();
    let columns: Vec<Column> = builders.into_iter().map(ColBuilder::finish).collect();
    if len == 0 {
        return Vec::new();
    }
    let parts = len.div_ceil(BATCH_ROWS);
    if parts == 1 {
        return vec![Batch::new(len, columns, anns)];
    }
    // Contiguous near-equal split, mirroring `par::chunked`. Annotations
    // move into their chunk; column data is gathered once per chunk.
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut anns_iter = anns.into_iter();
    let mut lo = 0usize;
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        let hi = lo + take;
        let rows: Vec<u32> = (lo as u32..hi as u32).collect();
        let chunk_cols: Vec<Column> = columns.iter().map(|c| c.gather(&rows)).collect();
        let chunk_anns: Vec<K> = anns_iter.by_ref().take(take).collect();
        out.push(Batch::new(take, chunk_cols, chunk_anns));
        lo = hi;
    }
    out
}

// --- the snapshot-resident batch cache -------------------------------------

/// Where a scan's batches came from, as reported by
/// [`Plan::explain_batches`](crate::plan::Plan::explain_batches): freshly
/// converted this execution, served from the [`BatchCache`] as converted,
/// or served from the cache after one or more commit patches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchProvenance {
    /// No cache entry — the scan columnarizes the relation itself.
    Converted,
    /// A cache entry built by an earlier execution, unpatched.
    Cached,
    /// A cache entry carried across this many commits by delta patching.
    Patched(u64),
}

struct CacheEntry<K> {
    /// The source relation. A `Weak` both signals staleness (dead once
    /// every snapshot holding the relation is gone) and — because a weak
    /// reference pins the allocation — guarantees the pointer key below is
    /// never reused while the entry lives, so identity checks are exact.
    source: Weak<KRelation<K>>,
    batches: Arc<Vec<Batch<K>>>,
    /// Epoch the entry was converted (or last patched) at.
    epoch: u64,
    /// Rows of the original conversion.
    base_rows: usize,
    /// Rows appended by commit patches since — once these outgrow
    /// `base_rows`, re-converting is cheaper than carrying the deltas and
    /// the entry is evicted.
    patch_rows: usize,
    /// Number of commit patches absorbed.
    patched: u64,
}

/// The storage-layer columnar cache: memoizes `relation_to_batches` per
/// relation *version*, shared by every execution against the owning
/// [`SharedDatabase`](crate::snapshot::SharedDatabase)'s snapshots.
///
/// Entries are keyed by the identity of the relation's `Arc` (a relation
/// version never mutates — commits copy-on-write), so readers at different
/// epochs hit independent entries and a patched entry can never serve a
/// stale relation. On commit, instead of invalidating, the writer *patches*
/// the touched entries: the delta's own batches are appended to the cached
/// ones, which is exact for any commutative semiring — duplicate tuples
/// re-sum and delete-to-zero rows cancel at the next grouping point
/// (aggregation or the plan root), the same places the executor already
/// merges duplicates.
///
/// Counters (see [`BatchCacheStats`]) are served by the `STATS` verb of the
/// query service.
#[derive(Debug)]
pub struct BatchCache<K> {
    entries: Mutex<FxHashMap<usize, CacheEntry<K>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    patches: AtomicU64,
}

impl<K: Semiring> Default for BatchCache<K> {
    fn default() -> Self {
        BatchCache::new()
    }
}

impl<K> std::fmt::Debug for CacheEntry<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheEntry")
            .field("epoch", &self.epoch)
            .field("base_rows", &self.base_rows)
            .field("patch_rows", &self.patch_rows)
            .field("patched", &self.patched)
            .finish_non_exhaustive()
    }
}

/// A point-in-time read of the [`BatchCache`] counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchCacheStats {
    /// Scans served from a cached (possibly patched) conversion.
    pub hits: u64,
    /// Scans that had to columnarize their relation.
    pub misses: u64,
    /// Commit deltas absorbed by patching a cached conversion.
    pub patches: u64,
    /// Live entries.
    pub entries: usize,
}

fn entry_key<K>(relation: &Arc<KRelation<K>>) -> usize {
    Arc::as_ptr(relation) as usize
}

impl<K: Semiring> BatchCache<K> {
    /// An empty cache.
    pub fn new() -> BatchCache<K> {
        BatchCache {
            entries: Mutex::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            patches: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FxHashMap<usize, CacheEntry<K>>> {
        self.entries.lock().expect("batch cache poisoned")
    }

    /// The batches of `relation`, converting and memoizing on first use.
    /// The conversion runs outside the lock; on a race the first insert
    /// wins (both conversions are identical, so either result is fine).
    pub fn get_or_convert(&self, epoch: u64, relation: &Arc<KRelation<K>>) -> Arc<Vec<Batch<K>>> {
        let key = entry_key(relation);
        if let Some(entry) = self.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return entry.batches.clone();
        }
        let batches = Arc::new(relation_to_batches(relation.as_ref()));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.lock();
        entries.retain(|_, e| e.source.strong_count() > 0);
        let entry = entries.entry(key).or_insert_with(|| CacheEntry {
            source: Arc::downgrade(relation),
            batches,
            epoch,
            base_rows: relation.len(),
            patch_rows: 0,
            patched: 0,
        });
        entry.batches.clone()
    }

    /// A non-counting read for explain output: the cached batches and
    /// their provenance, if `relation` has an entry.
    pub fn peek(
        &self,
        relation: &Arc<KRelation<K>>,
    ) -> Option<(Arc<Vec<Batch<K>>>, BatchProvenance)> {
        let entries = self.lock();
        let entry = entries.get(&entry_key(relation))?;
        let provenance = match entry.patched {
            0 => BatchProvenance::Cached,
            n => BatchProvenance::Patched(n),
        };
        Some((entry.batches.clone(), provenance))
    }

    /// Carries `old`'s cache entry (if any) forward to `new` = `old` +
    /// `delta` by appending the delta's own batches — called by the commit
    /// path under the writer lock. Once the accumulated patch rows outgrow
    /// the base conversion the entry is dropped instead (the next scan
    /// re-converts, which also compacts cancelled deletions away).
    pub fn patch(
        &self,
        old: &Arc<KRelation<K>>,
        new: &Arc<KRelation<K>>,
        delta: &KRelation<K>,
        epoch: u64,
    ) {
        let mut entries = self.lock();
        let Some(entry) = entries.remove(&entry_key(old)) else {
            return;
        };
        if entry.patch_rows + delta.len() > entry.base_rows.max(BATCH_ROWS) {
            return;
        }
        let mut batches = entry.batches.as_ref().clone();
        batches.extend(relation_to_batches(delta));
        self.patches.fetch_add(1, Ordering::Relaxed);
        entries.insert(
            entry_key(new),
            CacheEntry {
                source: Arc::downgrade(new),
                batches: Arc::new(batches),
                epoch,
                base_rows: entry.base_rows,
                patch_rows: entry.patch_rows + delta.len(),
                patched: entry.patched + 1,
            },
        );
    }

    /// A point-in-time read of the counters.
    pub fn stats(&self) -> BatchCacheStats {
        BatchCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            patches: self.patches.load(Ordering::Relaxed),
            entries: self.lock().len(),
        }
    }
}

// --- grouping --------------------------------------------------------------

/// A hash-grouping of the live rows of many batches by key columns: groups
/// appear in first-occurrence (stream) order, keyed by content hash with
/// exact verification — the shared kernel under pre-join duplicate
/// aggregation, the root merge, and the hash-join build side.
pub struct Grouped<K> {
    /// Per-batch materialized columns (sources for gathering).
    pub sources: Vec<Vec<Column>>,
    /// One representative `(batch, row)` ref per group, in first-occurrence
    /// order.
    pub reps: Vec<(u32, u32)>,
    /// Summed annotation per group (stream order within each group).
    pub anns: Vec<K>,
}

/// Groups the live rows of `batches` by the given key columns, summing
/// annotations of equal-key rows in stream order. With `keys` spanning the
/// whole row this is exactly the row engine's duplicate aggregation.
pub fn group_batches<K: Semiring>(batches: Vec<Batch<K>>, keys: &[usize]) -> Grouped<K> {
    let mut sources: Vec<Vec<Column>> = Vec::with_capacity(batches.len());
    let mut reps: Vec<(u32, u32)> = Vec::new();
    let mut anns: Vec<K> = Vec::new();
    // hash → group ids with that hash (collisions verified exactly).
    let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for batch in batches {
        let batch = batch.materialize();
        let hashes = batch.key_hashes(keys);
        let (len, columns, batch_anns) = batch.into_parts();
        debug_assert_eq!(len, batch_anns.len());
        let bidx = sources.len() as u32;
        table.reserve(len);
        for (row, k) in batch_anns.into_iter().enumerate() {
            let h = hashes[row];
            let candidates = table.entry(h).or_default();
            let found = candidates.iter().copied().find(|&g| {
                let (rb, rr) = reps[g as usize];
                let rep_cols: &[Column] = if rb == bidx {
                    &columns
                } else {
                    &sources[rb as usize]
                };
                columns_rows_equal(&columns, row as u32, keys, rep_cols, rr, keys)
            });
            match found {
                Some(g) => anns[g as usize].plus_assign(&k),
                None => {
                    let g = reps.len() as u32;
                    reps.push((bidx, row as u32));
                    anns.push(k);
                    candidates.push(g);
                }
            }
        }
        sources.push(columns);
    }
    Grouped {
        sources,
        reps,
        anns,
    }
}

impl<K: Semiring> Grouped<K> {
    /// Emits the groups as one batch (first-occurrence order), dropping
    /// zero-summed groups — the aggregation kernel's output. `arity` is the
    /// column count (needed when there are no source batches).
    pub fn into_batch(self, arity: usize) -> Batch<K> {
        let live: Vec<(u32, u32)> = self
            .reps
            .iter()
            .zip(&self.anns)
            .filter(|(_, k)| !k.is_zero())
            .map(|(&r, _)| r)
            .collect();
        let anns: Vec<K> = self.anns.into_iter().filter(|k| !k.is_zero()).collect();
        let source_refs: Vec<&[Column]> = self.sources.iter().map(Vec::as_slice).collect();
        let columns = (0..arity)
            .map(|c| gather_multi(&source_refs, c, &live))
            .collect();
        Batch::new(anns.len(), columns, anns)
    }

    /// Converts the groups straight into a [`KRelation`] — the column→row
    /// boundary at the plan root. Each distinct row builds its [`Tuple`]
    /// exactly once, however many duplicates the pipeline streamed.
    pub fn into_relation(self, schema: &Schema) -> KRelation<K> {
        let mut result = KRelation::empty(schema.clone());
        for ((b, r), k) in self.reps.into_iter().zip(self.anns) {
            if k.is_zero() {
                continue;
            }
            let cols = &self.sources[b as usize];
            let tuple = Tuple::from_schema_row(schema, cols.iter().map(|c| c.value_at(r)));
            result.insert_same_schema(tuple, k);
        }
        result
    }
}

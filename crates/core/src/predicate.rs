//! Selection predicates.
//!
//! Definition 3.2 leaves open which `{0,1}`-valued functions may be used as
//! selection predicates, requiring only that the constant predicates `true`
//! and `false` are available. We provide the usual equality/comparison
//! predicates on attributes and constants, closed under conjunction and
//! disjunction (all of which remain `{0,1}`-valued, as required).

use crate::schema::Attribute;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A selection predicate `P : U-Tup → {0, 1}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Predicate {
    /// The constantly-true predicate (`σ_true(R) = R`).
    True,
    /// The constantly-false predicate (`σ_false(R) = ∅`).
    False,
    /// Attribute equals a constant value.
    AttrEqValue(Attribute, Value),
    /// Two attributes are equal.
    AttrEqAttr(Attribute, Attribute),
    /// Attribute differs from a constant value.
    AttrNeValue(Attribute, Value),
    /// Conjunction of two predicates.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction of two predicates.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// `attr = value`.
    pub fn eq_value(attr: impl Into<Attribute>, value: impl Into<Value>) -> Self {
        Predicate::AttrEqValue(attr.into(), value.into())
    }

    /// `attr ≠ value`.
    pub fn ne_value(attr: impl Into<Attribute>, value: impl Into<Value>) -> Self {
        Predicate::AttrNeValue(attr.into(), value.into())
    }

    /// `attr₁ = attr₂`.
    pub fn eq_attrs(a: impl Into<Attribute>, b: impl Into<Attribute>) -> Self {
        Predicate::AttrEqAttr(a.into(), b.into())
    }

    /// Conjunction.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates the predicate on a tuple, returning `true` (1) or `false`
    /// (0). Missing attributes make equality tests fail (return 0) rather
    /// than panic, so selections over the "wrong" schema are simply empty.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::AttrEqValue(a, v) => tuple.get(a) == Some(v),
            Predicate::AttrNeValue(a, v) => match tuple.get(a) {
                Some(w) => w != v,
                None => false,
            },
            Predicate::AttrEqAttr(a, b) => match (tuple.get(a), tuple.get(b)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
            Predicate::And(p, q) => p.eval(tuple) && q.eval(tuple),
            Predicate::Or(p, q) => p.eval(tuple) || q.eval(tuple),
        }
    }

    /// The attributes the predicate mentions — what the planner needs to
    /// decide whether a selection can move below a projection, renaming or
    /// join input.
    pub fn referenced_attributes(&self) -> BTreeSet<Attribute> {
        fn collect(p: &Predicate, out: &mut BTreeSet<Attribute>) {
            match p {
                Predicate::True | Predicate::False => {}
                Predicate::AttrEqValue(a, _) | Predicate::AttrNeValue(a, _) => {
                    out.insert(a.clone());
                }
                Predicate::AttrEqAttr(a, b) => {
                    out.insert(a.clone());
                    out.insert(b.clone());
                }
                Predicate::And(p, q) | Predicate::Or(p, q) => {
                    collect(p, out);
                    collect(q, out);
                }
            }
        }
        let mut out = BTreeSet::new();
        collect(self, &mut out);
        out
    }

    /// Rewrites every attribute reference through `f` — used by the planner
    /// to push selections below renamings.
    pub fn map_attributes(&self, f: &impl Fn(&Attribute) -> Attribute) -> Predicate {
        match self {
            Predicate::True => Predicate::True,
            Predicate::False => Predicate::False,
            Predicate::AttrEqValue(a, v) => Predicate::AttrEqValue(f(a), v.clone()),
            Predicate::AttrNeValue(a, v) => Predicate::AttrNeValue(f(a), v.clone()),
            Predicate::AttrEqAttr(a, b) => Predicate::AttrEqAttr(f(a), f(b)),
            Predicate::And(p, q) => {
                Predicate::And(Box::new(p.map_attributes(f)), Box::new(q.map_attributes(f)))
            }
            Predicate::Or(p, q) => {
                Predicate::Or(Box::new(p.map_attributes(f)), Box::new(q.map_attributes(f)))
            }
        }
    }

    /// Does the predicate only test attribute (in)equality against other
    /// attributes and constants? (Propositions 5.3 and 6.2 restrict to
    /// equality-only selections when translating RA⁺ to datalog.)
    pub fn is_equality_only(&self) -> bool {
        match self {
            Predicate::True | Predicate::False => true,
            Predicate::AttrEqValue(_, _) | Predicate::AttrEqAttr(_, _) => true,
            Predicate::AttrNeValue(_, _) => false,
            Predicate::And(p, q) | Predicate::Or(p, q) => {
                p.is_equality_only() && q.is_equality_only()
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::AttrEqValue(a, v) => write!(f, "{a}={v}"),
            Predicate::AttrNeValue(a, v) => write!(f, "{a}≠{v}"),
            Predicate::AttrEqAttr(a, b) => write!(f, "{a}={b}"),
            Predicate::And(p, q) => write!(f, "({p} ∧ {q})"),
            Predicate::Or(p, q) => write!(f, "({p} ∨ {q})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new([("a", "1"), ("b", "1"), ("c", "2")])
    }

    #[test]
    fn constant_predicates() {
        assert!(Predicate::True.eval(&t()));
        assert!(!Predicate::False.eval(&t()));
    }

    #[test]
    fn equality_with_value_and_attribute() {
        assert!(Predicate::eq_value("a", "1").eval(&t()));
        assert!(!Predicate::eq_value("a", "2").eval(&t()));
        assert!(Predicate::eq_attrs("a", "b").eval(&t()));
        assert!(!Predicate::eq_attrs("a", "c").eval(&t()));
    }

    #[test]
    fn inequality_and_missing_attributes() {
        assert!(Predicate::ne_value("c", "1").eval(&t()));
        assert!(!Predicate::ne_value("c", "2").eval(&t()));
        // Missing attribute: all comparisons are false.
        assert!(!Predicate::eq_value("z", "1").eval(&t()));
        assert!(!Predicate::ne_value("z", "1").eval(&t()));
        assert!(!Predicate::eq_attrs("a", "z").eval(&t()));
    }

    #[test]
    fn boolean_combinations() {
        let p = Predicate::eq_value("a", "1").and(Predicate::eq_value("c", "2"));
        assert!(p.eval(&t()));
        let q = Predicate::eq_value("a", "9").or(Predicate::eq_attrs("a", "b"));
        assert!(q.eval(&t()));
        let r = Predicate::eq_value("a", "9").and(Predicate::True);
        assert!(!r.eval(&t()));
    }

    #[test]
    fn equality_only_classification() {
        assert!(Predicate::eq_value("a", "1")
            .and(Predicate::eq_attrs("a", "b"))
            .is_equality_only());
        assert!(!Predicate::ne_value("a", "1").is_equality_only());
        assert!(!Predicate::eq_value("a", "1")
            .or(Predicate::ne_value("b", "2"))
            .is_equality_only());
        assert!(Predicate::True.is_equality_only());
    }

    #[test]
    fn display_renders_infix() {
        let p = Predicate::eq_value("a", "1").and(Predicate::eq_attrs("b", "c"));
        assert_eq!(format!("{p}"), "(a=1 ∧ b=c)");
    }
}

//! K-relations (Definition 3.1 of the paper): functions `R : U-Tup → K` with
//! finite support, where `K` is (at least) a commutative semiring.

use crate::schema::Schema;
use crate::tuple::Tuple;
use provsem_semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// A K-relation over a schema `U`.
///
/// Only the *support* — tuples with non-zero annotation — is stored; the
/// invariant `R(t) ≠ 0` for stored tuples is maintained by every mutating
/// operation (tuples whose annotation becomes 0 are removed). All tuples
/// must be over the relation's schema.
#[derive(Clone, PartialEq, Eq)]
pub struct KRelation<K> {
    schema: Schema,
    tuples: BTreeMap<Tuple, K>,
}

impl<K: Semiring> KRelation<K> {
    /// The empty K-relation over `schema` (`∅(t) = 0` for every `t`).
    pub fn empty(schema: Schema) -> Self {
        KRelation {
            schema,
            tuples: BTreeMap::new(),
        }
    }

    /// Builds a K-relation from `(tuple, annotation)` pairs. Annotations of
    /// duplicate tuples are summed; zero annotations are dropped.
    ///
    /// # Panics
    /// Panics if a tuple's schema differs from `schema`.
    pub fn from_tuples<I>(schema: Schema, pairs: I) -> Self
    where
        I: IntoIterator<Item = (Tuple, K)>,
    {
        let mut rel = KRelation::empty(schema);
        rel.extend(pairs);
        rel
    }

    /// Builds a set-like K-relation in which every listed tuple is annotated
    /// with `1`.
    pub fn from_support<I>(schema: Schema, tuples: I) -> Self
    where
        I: IntoIterator<Item = Tuple>,
    {
        KRelation::from_tuples(schema, tuples.into_iter().map(|t| (t, K::one())))
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The annotation of a tuple; `K::zero()` for tuples outside the support.
    pub fn annotation(&self, tuple: &Tuple) -> K {
        self.tuples.get(tuple).cloned().unwrap_or_else(K::zero)
    }

    /// Returns `true` iff `tuple` is in the support.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains_key(tuple)
    }

    /// Adds `annotation` to the tuple's current annotation (semiring `+`),
    /// maintaining the support invariant.
    ///
    /// # Panics
    /// Panics if the tuple's schema differs from the relation's schema.
    pub fn insert(&mut self, tuple: Tuple, annotation: K) {
        assert_eq!(
            tuple.schema(),
            self.schema,
            "tuple schema must match relation schema"
        );
        if annotation.is_zero() {
            return;
        }
        match self.tuples.get_mut(&tuple) {
            Some(existing) => {
                existing.plus_assign(&annotation);
                if existing.is_zero() {
                    self.tuples.remove(&tuple);
                }
            }
            None => {
                self.tuples.insert(tuple, annotation);
            }
        }
    }

    /// Like [`KRelation::insert`] but trusts the caller that the tuple is
    /// over this relation's schema (checked only in debug builds). The hot
    /// path of the physical engine's root materialization — both engines:
    /// the row engine inserts once per output row, the batch engine once
    /// per distinct row after columnar grouping — where building a
    /// `Schema` per row just to assert it away would dominate.
    pub(crate) fn insert_same_schema(&mut self, tuple: Tuple, annotation: K) {
        debug_assert_eq!(
            tuple.schema(),
            self.schema,
            "tuple schema must match relation schema"
        );
        if annotation.is_zero() {
            return;
        }
        match self.tuples.get_mut(&tuple) {
            Some(existing) => {
                existing.plus_assign(&annotation);
                if existing.is_zero() {
                    self.tuples.remove(&tuple);
                }
            }
            None => {
                self.tuples.insert(tuple, annotation);
            }
        }
    }

    /// In-place union (semiring `+` per tuple): adds every annotation of
    /// `other` to this relation without cloning it wholesale — the
    /// allocation-free form of [`KRelation::union`].
    ///
    /// # Panics
    /// Panics if the two relations have different schemas.
    pub fn union_into(&mut self, other: &KRelation<K>) {
        assert_eq!(
            self.schema(),
            other.schema(),
            "union requires identical schemas"
        );
        for (t, k) in other.iter() {
            self.insert_same_schema(t.clone(), k.clone());
        }
    }

    /// Adds a batch of owned `(tuple, annotation)` pairs (semiring `+` per
    /// tuple), maintaining the support invariant.
    ///
    /// # Panics
    /// Panics if a tuple's schema differs from the relation's schema.
    pub fn extend<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = (Tuple, K)>,
    {
        for (t, k) in pairs {
            self.insert(t, k);
        }
    }

    /// Replaces the annotation of a tuple (rather than adding to it).
    /// A zero annotation removes the tuple.
    pub fn set(&mut self, tuple: Tuple, annotation: K) {
        assert_eq!(
            tuple.schema(),
            self.schema,
            "tuple schema must match relation schema"
        );
        if annotation.is_zero() {
            self.tuples.remove(&tuple);
        } else {
            self.tuples.insert(tuple, annotation);
        }
    }

    /// The support `supp(R) = { t | R(t) ≠ 0 }`, iterated in tuple order.
    pub fn support(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.keys()
    }

    /// Iterates over `(tuple, annotation)` pairs of the support.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &K)> {
        self.tuples.iter()
    }

    /// The size of the support.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the support empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Applies a function to every annotation (Proposition 3.5's tuple-wise
    /// transformation `h(R)`); annotations mapped to zero are removed, so the
    /// support may shrink but never grow — exactly as the paper notes.
    pub fn map_annotations<K2: Semiring, F: Fn(&K) -> K2>(&self, f: F) -> KRelation<K2> {
        KRelation::from_tuples(
            self.schema.clone(),
            self.tuples.iter().map(|(t, k)| (t.clone(), f(k))),
        )
    }

    /// Drops annotations, returning the support as plain tuples. Together
    /// with [`KRelation::from_support`] this mediates between K-relations and
    /// ordinary (set-semantics) relations.
    pub fn to_set(&self) -> Vec<Tuple> {
        self.tuples.keys().cloned().collect()
    }
}

impl<K: Semiring + fmt::Debug> fmt::Debug for KRelation<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "KRelation{:?} {{", self.schema)?;
        for (t, k) in &self.tuples {
            writeln!(f, "  {t:?} ↦ {k:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provsem_semiring::{Bool, Natural};

    fn schema_ab() -> Schema {
        Schema::new(["a", "b"])
    }

    fn t(a: &str, b: &str) -> Tuple {
        Tuple::new([("a", a), ("b", b)])
    }

    #[test]
    fn empty_relation_annotates_everything_zero() {
        let r: KRelation<Natural> = KRelation::empty(schema_ab());
        assert!(r.is_empty());
        assert_eq!(r.annotation(&t("x", "y")), Natural::zero());
        assert_eq!(r.support().count(), 0);
    }

    #[test]
    fn insert_sums_annotations_and_prunes_zero() {
        let mut r: KRelation<Natural> = KRelation::empty(schema_ab());
        r.insert(t("x", "y"), Natural::from(2u64));
        r.insert(t("x", "y"), Natural::from(3u64));
        r.insert(t("u", "v"), Natural::zero());
        assert_eq!(r.annotation(&t("x", "y")), Natural::from(5u64));
        assert_eq!(r.len(), 1);
        assert!(!r.contains(&t("u", "v")));
    }

    #[test]
    #[should_panic(expected = "schema")]
    fn insert_rejects_mismatched_schema() {
        let mut r: KRelation<Natural> = KRelation::empty(schema_ab());
        r.insert(Tuple::new([("a", "x")]), Natural::one());
    }

    #[test]
    fn set_overwrites_and_removes() {
        let mut r: KRelation<Natural> = KRelation::empty(schema_ab());
        r.set(t("x", "y"), Natural::from(4u64));
        r.set(t("x", "y"), Natural::from(7u64));
        assert_eq!(r.annotation(&t("x", "y")), Natural::from(7u64));
        r.set(t("x", "y"), Natural::zero());
        assert!(r.is_empty());
    }

    #[test]
    fn from_support_gives_unit_annotations() {
        let r: KRelation<Bool> = KRelation::from_support(schema_ab(), [t("x", "y"), t("u", "v")]);
        assert_eq!(r.annotation(&t("x", "y")), Bool::one());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn map_annotations_shrinks_support_on_zero() {
        let r: KRelation<Natural> = KRelation::from_tuples(
            schema_ab(),
            [
                (t("x", "y"), Natural::from(2u64)),
                (t("u", "v"), Natural::from(1u64)),
            ],
        );
        // Map 1 ↦ false, everything else ↦ true.
        let b: KRelation<Bool> = r.map_annotations(|n| Bool::from(n.value() >= 2));
        assert_eq!(b.len(), 1);
        assert!(b.contains(&t("x", "y")));
        assert!(!b.contains(&t("u", "v")));
    }

    #[test]
    fn duplicate_tuples_in_from_tuples_are_summed() {
        let r: KRelation<Natural> = KRelation::from_tuples(
            schema_ab(),
            [
                (t("x", "y"), Natural::from(2u64)),
                (t("x", "y"), Natural::from(5u64)),
            ],
        );
        assert_eq!(r.annotation(&t("x", "y")), Natural::from(7u64));
    }
}

//! Tuples in the named perspective: functions `t : U → D` from attributes to
//! domain values (Section 3 of the paper).

use crate::schema::{Attribute, Renaming, Schema};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A tuple over some schema `U`: a total map from the attributes of `U` to
/// values. Stored as a sorted map so tuples are hashable and ordered.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple {
    fields: BTreeMap<Attribute, Value>,
}

impl Tuple {
    /// The empty tuple (over the empty schema).
    pub fn empty() -> Self {
        Tuple::default()
    }

    /// Builds a tuple from `(attribute, value)` pairs.
    pub fn new<I, A, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (A, V)>,
        A: Into<Attribute>,
        V: Into<Value>,
    {
        Tuple {
            fields: pairs
                .into_iter()
                .map(|(a, v)| (a.into(), v.into()))
                .collect(),
        }
    }

    /// Builds a tuple over `schema` from values listed in the schema's
    /// (sorted) attribute order. Panics if the lengths differ.
    pub fn from_values<I, V>(schema: &Schema, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let values: Vec<Value> = values.into_iter().map(Into::into).collect();
        assert_eq!(
            values.len(),
            schema.arity(),
            "value count must match schema arity"
        );
        Tuple {
            fields: schema.attributes().iter().cloned().zip(values).collect(),
        }
    }

    /// Builds a tuple from a positional row whose columns follow `schema`'s
    /// sorted attribute order — the physical plan layer's boundary
    /// conversion back into the named perspective (the row engine's root
    /// merge, and the batch engine's root grouping, which calls this once
    /// per *distinct* output row). Unlike [`Tuple::from_values`] this is
    /// infallible by construction (the planner guarantees the arity).
    pub(crate) fn from_schema_row<I>(schema: &Schema, values: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        let tuple = Tuple {
            fields: schema.attributes().iter().cloned().zip(values).collect(),
        };
        debug_assert_eq!(tuple.arity(), schema.arity(), "row arity matches schema");
        tuple
    }

    /// The schema this tuple is over.
    pub fn schema(&self) -> Schema {
        Schema::new(self.fields.keys().cloned())
    }

    /// The value of an attribute, if present.
    pub fn get(&self, attr: &Attribute) -> Option<&Value> {
        self.fields.get(attr)
    }

    /// The value of an attribute by name, if present.
    pub fn get_named(&self, attr: &str) -> Option<&Value> {
        self.fields.get(&Attribute::new(attr))
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Iterates over `(attribute, value)` pairs in attribute order.
    pub fn fields(&self) -> impl Iterator<Item = (&Attribute, &Value)> {
        self.fields.iter()
    }

    /// The values in attribute order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.fields.values()
    }

    /// Restriction of the tuple to a sub-schema `V ⊆ U` (written `t` on `V`
    /// in the paper's projection definition). Attributes outside the tuple
    /// are ignored.
    pub fn restrict(&self, schema: &Schema) -> Tuple {
        Tuple {
            fields: self
                .fields
                .iter()
                .filter(|(a, _)| schema.contains(a))
                .map(|(a, v)| (a.clone(), v.clone()))
                .collect(),
        }
    }

    /// Do two tuples agree on every attribute they share? (The compatibility
    /// condition of natural join.)
    pub fn compatible_with(&self, other: &Tuple) -> bool {
        self.fields.iter().all(|(a, v)| match other.fields.get(a) {
            Some(w) => v == w,
            None => true,
        })
    }

    /// Merges two compatible tuples into a tuple over the union of their
    /// schemas. Returns `None` if they disagree on a shared attribute.
    pub fn merge(&self, other: &Tuple) -> Option<Tuple> {
        if !self.compatible_with(other) {
            return None;
        }
        let mut fields = self.fields.clone();
        for (a, v) in &other.fields {
            fields.insert(a.clone(), v.clone());
        }
        Some(Tuple { fields })
    }

    /// Applies a renaming `β : U → U'`. Following the paper
    /// (`ρ_β R (t) = R(t ∘ β)`), renaming a tuple relabels its attributes.
    pub fn rename(&self, renaming: &Renaming) -> Tuple {
        Tuple {
            fields: self
                .fields
                .iter()
                .map(|(a, v)| (renaming.apply(a), v.clone()))
                .collect(),
        }
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (a, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}={v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t_abc() -> Tuple {
        Tuple::new([("a", "1"), ("b", "2"), ("c", "3")])
    }

    #[test]
    fn construction_and_access() {
        let t = t_abc();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get_named("a"), Some(&Value::from("1")));
        assert_eq!(t.get_named("z"), None);
        assert_eq!(t.schema(), Schema::new(["a", "b", "c"]));
    }

    #[test]
    fn from_values_follows_schema_order() {
        let schema = Schema::new(["b", "a"]);
        // Sorted attribute order is a, b.
        let t = Tuple::from_values(&schema, ["x", "y"]);
        assert_eq!(t.get_named("a"), Some(&Value::from("x")));
        assert_eq!(t.get_named("b"), Some(&Value::from("y")));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn from_values_rejects_wrong_arity() {
        let _ = Tuple::from_values(&Schema::new(["a", "b"]), ["only-one"]);
    }

    #[test]
    fn restriction_projects_attributes() {
        let t = t_abc();
        let restricted = t.restrict(&Schema::new(["a", "c"]));
        assert_eq!(restricted, Tuple::new([("a", "1"), ("c", "3")]));
        assert_eq!(t.restrict(&Schema::empty()), Tuple::empty());
    }

    #[test]
    fn compatibility_and_merge() {
        let t1 = Tuple::new([("a", "1"), ("b", "2")]);
        let t2 = Tuple::new([("b", "2"), ("c", "3")]);
        let t3 = Tuple::new([("b", "9")]);
        assert!(t1.compatible_with(&t2));
        assert!(!t1.compatible_with(&t3));
        assert_eq!(t1.merge(&t2), Some(t_abc()));
        assert_eq!(t1.merge(&t3), None);
        // Merging with the empty tuple is the identity.
        assert_eq!(t1.merge(&Tuple::empty()), Some(t1.clone()));
    }

    #[test]
    fn renaming_relabels_attributes() {
        let t = Tuple::new([("a", "1"), ("b", "2")]);
        let rho = Renaming::new([("b", "b2")]);
        assert_eq!(t.rename(&rho), Tuple::new([("a", "1"), ("b2", "2")]));
    }

    #[test]
    fn tuples_with_mixed_value_types() {
        let t = Tuple::new([("name", Value::from("alice")), ("age", Value::from(30i64))]);
        assert_eq!(t.get_named("age"), Some(&Value::Int(30)));
        assert_eq!(t.get_named("name").unwrap().as_str(), Some("alice"));
    }
}

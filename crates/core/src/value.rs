//! Domain values.
//!
//! The paper fixes an abstract domain `D` of values; we provide a small
//! concrete domain of strings and integers, which is all the paper's examples
//! (and realistic relational workloads) need. Values are ordered and hashable
//! so that tuples can key hash maps and be sorted deterministically for
//! display and testing.

use provsem_semiring::fxhash::FxHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A value of the domain `D`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A string constant such as `"a"` or `"alice"`.
    Str(Arc<str>),
    /// An integer constant.
    Int(i64),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Creates an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the string content if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Returns the integer content if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Str(_) => None,
            Value::Int(i) => Some(*i),
        }
    }

    /// Content hash of the value, independent of how a column stores it:
    /// equal to `int_content_hash` for integers and `str_content_hash`
    /// for strings, which is what lets the columnar kernels
    /// (`plan::column`) hash typed, dictionary-encoded, and plain-value
    /// columns interchangeably — and what the datalog fact index keys its
    /// hash buckets by. Type-tagged so `1` and `"1"` do not collide
    /// structurally.
    pub fn content_hash(&self) -> u64 {
        match self {
            Value::Int(x) => int_content_hash(*x),
            Value::Str(s) => str_content_hash(s),
        }
    }
}

/// The content hash an integer value contributes to row hashing, whether it
/// sits in a typed `i64` column or a plain [`Value`] column.
pub(crate) fn int_content_hash(x: i64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(0);
    h.write_i64(x);
    h.finish()
}

/// The content hash a string value contributes to row hashing, whether it
/// sits dictionary-encoded (hashed once per distinct string at interning
/// time) or in a plain [`Value`] column.
pub(crate) fn str_content_hash(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(1);
    s.hash(&mut h);
    h.finish()
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = Value::str("a");
        let i = Value::int(42);
        assert_eq!(s.as_str(), Some("a"));
        assert_eq!(s.as_int(), None);
        assert_eq!(i.as_int(), Some(42));
        assert_eq!(i.as_str(), None);
    }

    #[test]
    fn equality_and_ordering() {
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_ne!(Value::from("a"), Value::from("b"));
        assert_ne!(Value::from("1"), Value::from(1i64));
        let mut vs = [
            Value::str("b"),
            Value::str("a"),
            Value::int(3),
            Value::int(1),
        ];
        vs.sort();
        assert_eq!(vs.len(), 4);
    }

    #[test]
    fn display_is_bare() {
        assert_eq!(format!("{}", Value::str("abc")), "abc");
        assert_eq!(format!("{}", Value::int(-7)), "-7");
    }
}

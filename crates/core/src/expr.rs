//! RA⁺ expressions: an AST for positive relational algebra queries and their
//! evaluation against a [`Database`].
//!
//! Having queries as values (rather than only as Rust method chains) is what
//! lets the same query be run over *different* semirings — the heart of the
//! paper's message — and lets the provenance machinery (Theorem 4.3) and the
//! containment tests (Section 9) manipulate queries symbolically.

use crate::database::Database;
use crate::predicate::Predicate;
use crate::relation::KRelation;
use crate::schema::{Renaming, Schema};
use provsem_semiring::Semiring;
use std::fmt;

/// A positive relational algebra expression.
#[derive(Clone, PartialEq, Debug)]
pub enum RaExpr {
    /// A named base relation.
    Relation(String),
    /// The empty relation over a given schema.
    Empty(Schema),
    /// Union of two expressions (same schema).
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Projection onto a schema.
    Project(Schema, Box<RaExpr>),
    /// Selection by a predicate.
    Select(Predicate, Box<RaExpr>),
    /// Natural join.
    Join(Box<RaExpr>, Box<RaExpr>),
    /// Renaming of attributes.
    Rename(Renaming, Box<RaExpr>),
}

/// Errors raised when evaluating an [`RaExpr`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// The expression references a relation that the database does not have.
    UnknownRelation(String),
    /// A union combined two sub-expressions with different schemas.
    SchemaMismatch {
        /// Schema of the left operand.
        left: Schema,
        /// Schema of the right operand.
        right: Schema,
    },
    /// A projection targeted attributes that are not produced by its input.
    InvalidProjection {
        /// The requested projection schema.
        requested: Schema,
        /// The schema actually produced by the input expression.
        available: Schema,
    },
    /// A renaming was not injective on the input schema.
    InvalidRenaming(Schema),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            EvalError::SchemaMismatch { left, right } => {
                write!(f, "union schema mismatch: {left:?} vs {right:?}")
            }
            EvalError::InvalidProjection {
                requested,
                available,
            } => write!(
                f,
                "projection onto {requested:?} not contained in {available:?}"
            ),
            EvalError::InvalidRenaming(schema) => {
                write!(f, "renaming is not a bijection on {schema:?}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl RaExpr {
    /// A reference to a named base relation.
    pub fn relation(name: impl Into<String>) -> Self {
        RaExpr::Relation(name.into())
    }

    /// Union with another expression.
    pub fn union(self, other: RaExpr) -> Self {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// Projection onto the named attributes.
    pub fn project<'a, I: IntoIterator<Item = &'a str>>(self, attrs: I) -> Self {
        RaExpr::Project(Schema::new(attrs), Box::new(self))
    }

    /// Selection by a predicate.
    pub fn select(self, predicate: Predicate) -> Self {
        RaExpr::Select(predicate, Box::new(self))
    }

    /// Natural join with another expression.
    pub fn join(self, other: RaExpr) -> Self {
        RaExpr::Join(Box::new(self), Box::new(other))
    }

    /// Renaming of attributes.
    pub fn rename(self, renaming: Renaming) -> Self {
        RaExpr::Rename(renaming, Box::new(self))
    }

    /// The names of the base relations referenced by this expression.
    pub fn base_relations(&self) -> Vec<String> {
        let mut names = Vec::new();
        self.collect_base_relations(&mut names);
        names.sort();
        names.dedup();
        names
    }

    fn collect_base_relations(&self, out: &mut Vec<String>) {
        match self {
            RaExpr::Relation(name) => out.push(name.clone()),
            RaExpr::Empty(_) => {}
            RaExpr::Union(a, b) | RaExpr::Join(a, b) => {
                a.collect_base_relations(out);
                b.collect_base_relations(out);
            }
            RaExpr::Project(_, e) | RaExpr::Select(_, e) | RaExpr::Rename(_, e) => {
                e.collect_base_relations(out)
            }
        }
    }

    /// Evaluates the expression over a database of K-relations
    /// (Definition 3.2).
    ///
    /// This routes through the planned engine
    /// ([`crate::plan`]): the expression is validated once, optimized
    /// (selection/projection pushdown, join-input pruning, rename fusion),
    /// and executed by positional physical operators. Results — including
    /// errors — are identical to the tree-walking reference interpreter
    /// [`RaExpr::eval_interpreted`], which the differential test suite
    /// checks on every supported semiring. Callers that run one query many
    /// times (or over several semirings) should build a
    /// [`Plan`](crate::plan::Plan) directly and reuse it.
    pub fn eval<K: Semiring>(&self, db: &Database<K>) -> Result<KRelation<K>, EvalError> {
        use crate::plan::{Plan, RelationSource};
        Ok(Plan::new(self, &db.catalog())?.execute(db))
    }

    /// Evaluates the expression by walking the tree and materializing a
    /// named [`KRelation`] at every node (Definition 3.2, applied
    /// compositionally) — the original interpreter, kept as the reference
    /// implementation the planned engine is differentially tested against.
    pub fn eval_interpreted<K: Semiring>(
        &self,
        db: &Database<K>,
    ) -> Result<KRelation<K>, EvalError> {
        match self {
            RaExpr::Relation(name) => db
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::UnknownRelation(name.clone())),
            RaExpr::Empty(schema) => Ok(KRelation::empty(schema.clone())),
            RaExpr::Union(a, b) => {
                let mut ra = a.eval_interpreted(db)?;
                let rb = b.eval_interpreted(db)?;
                if ra.schema() != rb.schema() {
                    return Err(EvalError::SchemaMismatch {
                        left: ra.schema().clone(),
                        right: rb.schema().clone(),
                    });
                }
                ra.union_into(&rb);
                Ok(ra)
            }
            RaExpr::Project(schema, e) => {
                let r = e.eval_interpreted(db)?;
                if !r.schema().contains_all(schema) {
                    return Err(EvalError::InvalidProjection {
                        requested: schema.clone(),
                        available: r.schema().clone(),
                    });
                }
                Ok(r.project(schema))
            }
            RaExpr::Select(p, e) => Ok(e.eval_interpreted(db)?.select(p)),
            RaExpr::Join(a, b) => Ok(a.eval_interpreted(db)?.join(&b.eval_interpreted(db)?)),
            RaExpr::Rename(rho, e) => {
                let r = e.eval_interpreted(db)?;
                if rho.apply_schema(r.schema()).is_none() {
                    return Err(EvalError::InvalidRenaming(r.schema().clone()));
                }
                Ok(r.rename(rho))
            }
        }
    }

    /// The output schema of the expression given the schemas of the base
    /// relations, without evaluating it. Errors mirror those of `eval`.
    pub fn output_schema<K: Semiring>(&self, db: &Database<K>) -> Result<Schema, EvalError> {
        match self {
            RaExpr::Relation(name) => db
                .schema_of(name)
                .cloned()
                .ok_or_else(|| EvalError::UnknownRelation(name.clone())),
            RaExpr::Empty(schema) => Ok(schema.clone()),
            RaExpr::Union(a, b) => {
                let sa = a.output_schema(db)?;
                let sb = b.output_schema(db)?;
                if sa != sb {
                    return Err(EvalError::SchemaMismatch {
                        left: sa,
                        right: sb,
                    });
                }
                Ok(sa)
            }
            RaExpr::Project(schema, e) => {
                let inner = e.output_schema(db)?;
                if !inner.contains_all(schema) {
                    return Err(EvalError::InvalidProjection {
                        requested: schema.clone(),
                        available: inner,
                    });
                }
                Ok(schema.clone())
            }
            RaExpr::Select(_, e) => e.output_schema(db),
            RaExpr::Join(a, b) => Ok(a.output_schema(db)?.union(&b.output_schema(db)?)),
            RaExpr::Rename(rho, e) => {
                let inner = e.output_schema(db)?;
                rho.apply_schema(&inner)
                    .ok_or(EvalError::InvalidRenaming(inner))
            }
        }
    }
}

/// Builds the running-example query of Section 2 of the paper:
///
/// ```text
/// q(R) = π_ac( π_ab R ⋈ π_bc R  ∪  π_ac R ⋈ π_bc R )
/// ```
///
/// over a base relation named `relation_name` with attributes `a`, `b`, `c`.
/// (Both join operands produce relations over `{a,b,c}`, so the union is
/// well-typed and the final projection keeps `a` and `c` — this is the query
/// used in Figures 1–5.)
pub fn paper_example_query(relation_name: &str) -> RaExpr {
    let r = || RaExpr::relation(relation_name);
    let left = r().project(["a", "b"]).join(r().project(["b", "c"]));
    let right = r().project(["a", "c"]).join(r().project(["b", "c"]));
    left.union(right).project(["a", "c"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use provsem_semiring::Natural;

    fn nat(n: u64) -> Natural {
        Natural::from(n)
    }

    fn figure3_db() -> Database<Natural> {
        let schema = Schema::new(["a", "b", "c"]);
        let r = KRelation::from_tuples(
            schema,
            [
                (Tuple::new([("a", "a"), ("b", "b"), ("c", "c")]), nat(2)),
                (Tuple::new([("a", "d"), ("b", "b"), ("c", "e")]), nat(5)),
                (Tuple::new([("a", "f"), ("b", "g"), ("c", "e")]), nat(1)),
            ],
        );
        Database::new().with("R", r)
    }

    #[test]
    fn figure3_bag_semantics_result() {
        // Figure 3(b): q(R) = {(a,c)↦8, (a,e)↦10, (d,c)↦10, (d,e)↦55, (f,e)↦7}.
        let q = paper_example_query("R");
        let out = q.eval(&figure3_db()).unwrap();
        let expect = |a: &str, c: &str, n: u64| {
            assert_eq!(
                out.annotation(&Tuple::new([("a", a), ("c", c)])),
                nat(n),
                "annotation of ({a},{c})"
            );
        };
        expect("a", "c", 8);
        expect("a", "e", 10);
        expect("d", "c", 10);
        expect("d", "e", 55);
        expect("f", "e", 7);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn output_schema_matches_evaluation() {
        let q = paper_example_query("R");
        let db = figure3_db();
        assert_eq!(q.output_schema(&db).unwrap(), Schema::new(["a", "c"]));
        assert_eq!(
            q.eval(&db).unwrap().schema(),
            &q.output_schema(&db).unwrap()
        );
    }

    #[test]
    fn unknown_relation_is_reported() {
        let q = RaExpr::relation("Missing").project(["a"]);
        assert_eq!(
            q.eval(&figure3_db()),
            Err(EvalError::UnknownRelation("Missing".into()))
        );
    }

    #[test]
    fn schema_mismatch_in_union_is_reported() {
        let q = RaExpr::relation("R")
            .project(["a"])
            .union(RaExpr::relation("R").project(["b"]));
        match q.eval(&figure3_db()) {
            Err(EvalError::SchemaMismatch { .. }) => {}
            other => panic!("expected schema mismatch, got {other:?}"),
        }
    }

    #[test]
    fn invalid_projection_is_reported() {
        let q = RaExpr::relation("R").project(["z"]);
        match q.eval(&figure3_db()) {
            Err(EvalError::InvalidProjection { .. }) => {}
            other => panic!("expected invalid projection, got {other:?}"),
        }
    }

    #[test]
    fn empty_expression_evaluates_to_empty_relation() {
        let q = RaExpr::Empty(Schema::new(["a", "c"]));
        let out = q.eval(&figure3_db()).unwrap();
        assert!(out.is_empty());
        // ∅ is the identity of union (one of the Proposition 3.4 identities).
        let q2 = paper_example_query("R").union(RaExpr::Empty(Schema::new(["a", "c"])));
        assert_eq!(
            q2.eval(&figure3_db()).unwrap(),
            paper_example_query("R").eval(&figure3_db()).unwrap()
        );
    }

    #[test]
    fn base_relations_are_collected() {
        let q = paper_example_query("R").join(RaExpr::relation("S"));
        assert_eq!(q.base_relations(), vec!["R".to_string(), "S".to_string()]);
    }

    #[test]
    fn select_true_false_identities() {
        // Proposition 3.4: σ_false(R) = ∅ and σ_true(R) = R.
        let db = figure3_db();
        let r = RaExpr::relation("R");
        assert!(r
            .clone()
            .select(Predicate::False)
            .eval(&db)
            .unwrap()
            .is_empty());
        assert_eq!(
            r.clone().select(Predicate::True).eval(&db).unwrap(),
            r.eval(&db).unwrap()
        );
    }

    #[test]
    fn rename_roundtrip_via_expression() {
        let db = figure3_db();
        let rho = Renaming::new([("a", "x")]);
        let q = RaExpr::relation("R")
            .rename(rho.clone())
            .rename(rho.inverse());
        assert_eq!(
            q.eval(&db).unwrap(),
            RaExpr::relation("R").eval(&db).unwrap()
        );
    }
}

//! Scoped-thread fan-out helpers shared by the parallel engines.
//!
//! Everything here is deliberately boring: contiguous chunking, one scoped
//! worker per chunk ([`std::thread::scope`] — no runtime, no work stealing),
//! and results concatenated **in chunk order**, so a parallel map is a
//! reordering-free drop-in for its serial loop. The morsel-driven executor
//! ([`crate::plan`]), the parallel specializations of
//! [`crate::provenance`], and the parallel semi-naive rounds of
//! `provsem-datalog` all build on these two functions; the determinism
//! story documented in the README's "Parallel execution" section bottoms
//! out here.

/// Below this many items a parallel map runs inline on the calling thread:
/// spawning workers costs tens of microseconds, which tiny inputs never
/// recoup. Chosen so the unit-test fixtures (a handful of tuples) take the
/// serial path while every benchmark workload parallelizes.
pub const SPAWN_THRESHOLD: usize = 128;

/// The partition a hashed key belongs to under a `parts`-way exchange.
/// Shared by the row engine's chunk exchange and the batch engine's
/// batch-splitting exchange so both partition identically: equal keys land
/// in equal partitions whichever representation is flowing.
pub(crate) fn part_of(hash: u64, parts: usize) -> usize {
    (hash % parts as u64) as usize
}

/// Splits `items` into at most `parts` contiguous chunks of near-equal
/// length, preserving order. Returns fewer chunks when there are fewer
/// items than parts; never returns an empty chunk.
pub fn chunked<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let parts = parts.clamp(1, items.len().max(1));
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts;
    let mut chunks = Vec::with_capacity(parts);
    let mut items = items.into_iter();
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        if take == 0 {
            break;
        }
        chunks.push(items.by_ref().take(take).collect());
    }
    chunks
}

/// Maps `work` over owned chunks — one scoped worker thread per chunk when
/// the input is large enough, inline otherwise — and returns the outputs in
/// chunk order. `work` receives the chunk index and the chunk; with
/// deterministic chunking (contiguous, order-preserving) and in-order
/// collection, the result is identical to the serial
/// `chunks.map(work).collect()` whatever the thread interleaving was.
///
/// Worker panics are re-raised on the calling thread with their original
/// payload.
pub fn par_map_chunks<T, R, F>(chunks: Vec<Vec<T>>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, Vec<T>) -> R + Sync,
{
    let total: usize = chunks.iter().map(Vec::len).sum();
    if chunks.len() <= 1 || total < SPAWN_THRESHOLD {
        return chunks
            .into_iter()
            .enumerate()
            .map(|(i, chunk)| f(i, chunk))
            .collect();
    }
    let indexed: Vec<(usize, Vec<T>)> = chunks.into_iter().enumerate().collect();
    spawn_map(indexed, |(i, chunk)| f(i, chunk))
}

/// Unconditionally spawns one scoped worker per item and collects the
/// results in item order, re-raising worker panics with their original
/// payload. The low-level primitive under [`par_map_chunks`]; callers that
/// pre-package their work (e.g. the physical executor, which seals
/// annotation batches into `Send` tokens before crossing threads) use it
/// directly after making their own inline-vs-spawn decision.
pub fn spawn_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| {
                let f = &f;
                scope.spawn(move || f(item))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(result) => result,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_contiguous_and_balanced() {
        let chunks = chunked((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(
            chunks,
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7], vec![8, 9]]
        );
        assert_eq!(chunked(Vec::<u8>::new(), 4), Vec::<Vec<u8>>::new());
        assert_eq!(chunked(vec![1], 4), vec![vec![1]]);
        // More parts than items: one chunk per item, none empty.
        assert_eq!(chunked(vec![1, 2], 8), vec![vec![1], vec![2]]);
    }

    #[test]
    fn par_map_matches_serial_map_and_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let serial: Vec<Vec<u64>> = chunked(items.clone(), 4)
            .into_iter()
            .enumerate()
            .map(|(i, c)| c.into_iter().map(|x| x * 2 + i as u64).collect())
            .collect();
        let parallel = par_map_chunks(chunked(items, 4), |i, c| {
            c.into_iter().map(|x| x * 2 + i as u64).collect::<Vec<_>>()
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_panics_propagate() {
        let chunks = chunked((0..10_000).collect::<Vec<u64>>(), 4);
        let err = std::panic::catch_unwind(|| {
            par_map_chunks(chunks, |i, _| {
                assert!(i != 2, "boom in worker {i}");
                i
            })
        })
        .expect_err("worker panic must surface");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("boom in worker 2"), "{message}");
    }
}

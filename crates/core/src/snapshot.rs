//! Snapshot databases: epoch-stamped, immutable views of a shared,
//! concurrently committed [`Database`].
//!
//! This is the concurrency substrate of the query service. A
//! [`SharedDatabase`] holds the authoritative instance; readers take an
//! O(#relations) [`DbSnapshot`] (an [`Arc`] per relation — no tuple data is
//! copied) and keep it for as long as they like, while writers commit
//! [`DeltaBatch`]es through a serialized commit path. The guarantees, pinned
//! by `core/tests/snapshot_isolation.rs` and the concurrency differential
//! suite:
//!
//! * **Snapshot isolation.** A commit builds the next database by cloning
//!   the current one (pointer copies) and applying the batch copy-on-write,
//!   then publishes it atomically. A reader's snapshot therefore observes
//!   either all of a batch or none of it — never a torn batch — and stays
//!   valid, immutable, and queryable forever after.
//! * **Contiguous epochs.** Every commit bumps the **catalog epoch** by
//!   exactly one (registering a standing view bumps it too: the queryable
//!   catalog changed). Epoch `e` names one specific database state, which
//!   makes the epoch the cache key of the server's plan cache.
//! * **Maintained views advance with commits.** A standing view registered
//!   with [`SharedDatabase::register_view`] is materialized once and then
//!   absorbed incrementally ([`Plan::maintain_with`]) inside every commit,
//!   before the new snapshot is published — so a snapshot's view results
//!   are always exactly `recompute(snapshot)`. Views whose base relations a
//!   batch does not touch are skipped, their published results shared by
//!   `Arc` across epochs.
//!
//! Writers never block readers (the [`RwLock`] write section is a pointer
//! swap); concurrent committers serialize on the writer mutex, so epochs
//! form a single total commit order — the order the differential harness
//! replays serially.

use crate::column::{BatchCache, BatchCacheStats};
use crate::database::Database;
use crate::expr::{EvalError, RaExpr};
use crate::plan::{Catalog, DeltaBatch, ExecContext, MaterializedView, Plan, RelationSource};
use crate::relation::KRelation;
use provsem_semiring::Semiring;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// An immutable, epoch-stamped view of a [`SharedDatabase`]: the database
/// state plus every standing view's result as of one commit. Cloning is
/// O(1) (a few `Arc` bumps); the snapshot stays queryable regardless of how
/// many commits happen after it was taken.
///
/// Snapshots also carry their `SharedDatabase`'s [`BatchCache`]: the batch
/// executor's scans resolve through it, so the first execution against any
/// relation version columnarizes it for every later execution — across
/// sessions, threads, and (via commit patching) epochs.
#[derive(Clone)]
pub struct DbSnapshot<K: Semiring> {
    epoch: u64,
    db: Arc<Database<K>>,
    views: Arc<BTreeMap<String, Arc<KRelation<K>>>>,
    batch_cache: Arc<BatchCache<K>>,
}

impl<K: Semiring> DbSnapshot<K> {
    /// The catalog epoch this snapshot was taken at. Epoch `e` names one
    /// specific database state; two snapshots with equal epochs are
    /// indistinguishable.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The database state at this snapshot's epoch.
    pub fn database(&self) -> &Database<K> {
        &self.db
    }

    /// The result of a standing view, maintained up to exactly this
    /// snapshot's epoch.
    pub fn view(&self, name: &str) -> Option<&KRelation<K>> {
        self.views.get(name).map(Arc::as_ref)
    }

    /// Like [`DbSnapshot::view`] but shares the result's `Arc` — the handle
    /// readers need to resolve the view through the snapshot's
    /// [`BatchCache`] (entries are keyed by relation-version pointer).
    pub fn view_shared(&self, name: &str) -> Option<Arc<KRelation<K>>> {
        self.views.get(name).cloned()
    }

    /// The standing views visible in this snapshot, in name order.
    pub fn view_names(&self) -> impl Iterator<Item = &String> {
        self.views.keys()
    }

    /// A point-in-time read of the owning [`SharedDatabase`]'s columnar
    /// batch-cache counters (the cache is shared across snapshots, so this
    /// reflects every reader and commit, not just this snapshot).
    pub fn batch_cache_stats(&self) -> BatchCacheStats {
        self.batch_cache.stats()
    }
}

impl<K: Semiring> RelationSource<K> for DbSnapshot<K> {
    fn catalog(&self) -> Catalog {
        self.db.catalog()
    }

    fn relation(&self, name: &str) -> Option<&KRelation<K>> {
        self.db.get(name)
    }

    fn relation_shared(&self, name: &str) -> Option<Arc<KRelation<K>>> {
        self.db.get_shared(name)
    }

    fn batch_cache(&self) -> Option<(&BatchCache<K>, u64)> {
        Some((self.batch_cache.as_ref(), self.epoch))
    }
}

/// A standing view riding the commit path: the plan that defines it, the
/// incrementally maintained state, and the set of base relations whose
/// deltas can change it.
struct StandingView<K: Semiring> {
    plan: Plan,
    view: MaterializedView<K>,
    base_relations: BTreeSet<String>,
}

/// Commit-side state, serialized behind the writer mutex.
struct WriterState<K: Semiring> {
    views: BTreeMap<String, StandingView<K>>,
}

/// The authoritative, concurrently shared database: readers take immutable
/// [`DbSnapshot`]s, writers commit [`DeltaBatch`]es. See the [module
/// docs](self) for the isolation and epoch guarantees.
pub struct SharedDatabase<K: Semiring> {
    current: RwLock<DbSnapshot<K>>,
    writer: Mutex<WriterState<K>>,
}

fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

impl<K: Semiring> SharedDatabase<K> {
    /// Wraps an initial database state as epoch 0.
    pub fn new(db: Database<K>) -> Self {
        SharedDatabase {
            current: RwLock::new(DbSnapshot {
                epoch: 0,
                db: Arc::new(db),
                views: Arc::new(BTreeMap::new()),
                batch_cache: Arc::new(BatchCache::new()),
            }),
            writer: Mutex::new(WriterState {
                views: BTreeMap::new(),
            }),
        }
    }

    /// The current snapshot — an O(#Arc-bumps) read that never blocks on
    /// writers for longer than their publish pointer swap.
    pub fn snapshot(&self) -> DbSnapshot<K> {
        read_lock(&self.current).clone()
    }

    /// The current catalog epoch (the epoch of [`SharedDatabase::snapshot`]).
    pub fn epoch(&self) -> u64 {
        read_lock(&self.current).epoch
    }

    fn writer_lock(&self) -> MutexGuard<'_, WriterState<K>> {
        self.writer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Publishes `snapshot` as the new current state. Called with the writer
    /// lock held; the write section is a pointer swap.
    fn publish(&self, snapshot: DbSnapshot<K>) {
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = snapshot;
    }

    /// Commits a batch of base-relation changes under the default
    /// [`ExecContext`], returning the new epoch. See
    /// [`SharedDatabase::commit_with`].
    pub fn commit(&self, batch: &DeltaBatch<K>) -> u64 {
        self.commit_with(batch, &ExecContext::default())
    }

    /// Commits a batch with an explicit thread budget for view maintenance,
    /// returning the (contiguous) new epoch.
    ///
    /// The commit path: clone the current database (pointer copies), apply
    /// the batch copy-on-write (`new = old + Δ` per tuple — only touched
    /// relations are deep-copied), maintain every standing view whose base
    /// relations the batch touches, then publish the new snapshot
    /// atomically. Readers holding older snapshots are unaffected; a reader
    /// taking a snapshot concurrently gets either the old epoch or the new
    /// one, never a mix. Concurrent committers serialize: epochs are a
    /// total order, each exactly one above its predecessor.
    ///
    /// Touched relations that have a cached columnar conversion get it
    /// *patched* forward (`BatchCache::patch`) instead of invalidated:
    /// the delta's own batches are appended under the new relation version,
    /// so the next batch-engine scan at the new epoch still hits.
    pub fn commit_with(&self, batch: &DeltaBatch<K>, ctx: &ExecContext) -> u64 {
        let mut writer = self.writer_lock();
        let previous = self.snapshot();
        let mut db = (*previous.db).clone();
        batch.apply_to(&mut db);
        let changed: BTreeSet<&String> = batch.iter().map(|(name, _)| name).collect();
        let mut views = (*previous.views).clone();
        for (name, standing) in writer.views.iter_mut() {
            if standing
                .base_relations
                .iter()
                .any(|base| changed.contains(base))
            {
                // The maintenance pass reports the view-output delta, so a
                // cached columnar conversion of the view's result is
                // patched forward by exactly that delta — the view is never
                // re-converted wholesale on the commit path.
                let output_delta = standing
                    .plan
                    .maintain_returning(&mut standing.view, batch, ctx);
                let new_result = Arc::new(standing.view.result().clone());
                if let Some(old_result) = views.get(name) {
                    previous.batch_cache.patch(
                        old_result,
                        &new_result,
                        &output_delta,
                        previous.epoch + 1,
                    );
                }
                views.insert(name.clone(), new_result);
            }
            // Untouched views keep sharing their previous Arc'd result.
        }
        let db = Arc::new(db);
        for (name, delta) in batch.iter() {
            if let (Some(old), Some(new)) = (previous.db.get_shared(name), db.get_shared(name)) {
                if !Arc::ptr_eq(&old, &new) {
                    previous
                        .batch_cache
                        .patch(&old, &new, delta, previous.epoch + 1);
                }
            }
        }
        let next = DbSnapshot {
            epoch: previous.epoch + 1,
            db,
            views: Arc::new(views),
            batch_cache: Arc::clone(&previous.batch_cache),
        };
        self.publish(next.clone());
        drop(writer);
        next.epoch
    }

    /// Registers a standing view: plans `expr` against the current catalog,
    /// materializes it, and publishes a new snapshot (epoch bumped — the
    /// queryable catalog changed) in which the view's result is visible.
    /// From then on every commit maintains the view incrementally.
    ///
    /// Replacing an existing view name is allowed and re-materializes it.
    pub fn register_view(&self, name: impl Into<String>, expr: &RaExpr) -> Result<u64, EvalError> {
        let name = name.into();
        let mut writer = self.writer_lock();
        let previous = self.snapshot();
        let plan = Plan::new(expr, &previous.db.catalog())?;
        let view = plan.materialize(&previous);
        let result = Arc::new(view.result().clone());
        // Seed the batch cache with the view's result so the first columnar
        // read of the view is already a hit, and commits can patch the
        // entry forward with the view's own maintenance delta.
        previous
            .batch_cache
            .get_or_convert(previous.epoch + 1, &result);
        let mut views = (*previous.views).clone();
        views.insert(name.clone(), result);
        writer.views.insert(
            name,
            StandingView {
                plan,
                view,
                base_relations: expr.base_relations().into_iter().collect(),
            },
        );
        let next = DbSnapshot {
            epoch: previous.epoch + 1,
            db: Arc::clone(&previous.db),
            views: Arc::new(views),
            batch_cache: Arc::clone(&previous.batch_cache),
        };
        let epoch = next.epoch;
        self.publish(next);
        drop(writer);
        Ok(epoch)
    }

    /// Drops a standing view (a no-op if it does not exist), publishing a
    /// new snapshot without it. Returns the new epoch.
    pub fn drop_view(&self, name: &str) -> u64 {
        let mut writer = self.writer_lock();
        let previous = self.snapshot();
        writer.views.remove(name);
        let mut views = (*previous.views).clone();
        views.remove(name);
        let next = DbSnapshot {
            epoch: previous.epoch + 1,
            db: Arc::clone(&previous.db),
            views: Arc::new(views),
            batch_cache: Arc::clone(&previous.batch_cache),
        };
        let epoch = next.epoch;
        self.publish(next);
        drop(writer);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::paper_example_query;
    use crate::paper;
    use crate::tuple::Tuple;
    use provsem_semiring::ring::Integers;
    use provsem_semiring::Natural;

    fn z_db() -> Database<Integers> {
        let mut db =
            paper::figure3_bag().map_annotations(|n: &Natural| Integers::new(n.value() as i64));
        db.insert_tuple("S", Tuple::new([("x", "1"), ("y", "2")]), Integers::new(2));
        db
    }

    fn insert_batch() -> DeltaBatch<Integers> {
        let mut batch = DeltaBatch::new();
        batch.insert(
            "R",
            Tuple::new([("a", "new"), ("b", "b"), ("c", "new")]),
            Integers::new(3),
        );
        batch
    }

    #[test]
    fn snapshots_are_isolated_from_later_commits() {
        let shared = SharedDatabase::new(z_db());
        let before = shared.snapshot();
        assert_eq!(before.epoch(), 0);
        let epoch = shared.commit(&insert_batch());
        assert_eq!(epoch, 1);
        let after = shared.snapshot();
        // The old snapshot still sees the old state; the new one the new.
        assert_eq!(
            before.database().total_tuples() + 1,
            after.database().total_tuples()
        );
        // Untouched relations share storage across the epochs.
        assert!(Arc::ptr_eq(
            &before.database().get_shared("S").unwrap(),
            &after.database().get_shared("S").unwrap()
        ));
        assert!(!Arc::ptr_eq(
            &before.database().get_shared("R").unwrap(),
            &after.database().get_shared("R").unwrap()
        ));
    }

    #[test]
    fn standing_views_advance_with_commits() {
        let shared = SharedDatabase::new(z_db());
        let query = paper_example_query("R");
        shared.register_view("Q", &query).unwrap();
        let plan = Plan::new(&query, &shared.snapshot().catalog()).unwrap();
        // At registration the view equals recompute.
        let snap = shared.snapshot();
        assert_eq!(snap.view("Q").unwrap(), &plan.execute(&snap));
        // After a commit it advances to the new state...
        shared.commit(&insert_batch());
        let snap2 = shared.snapshot();
        assert_eq!(snap2.view("Q").unwrap(), &plan.execute(&snap2));
        assert_ne!(snap2.view("Q").unwrap(), snap.view("Q").unwrap());
        // ...while the old snapshot keeps the old result.
        assert_eq!(snap.view("Q").unwrap(), &plan.execute(&snap));
    }

    #[test]
    fn commits_skip_views_over_untouched_relations() {
        let shared = SharedDatabase::new(z_db());
        shared.register_view("SV", &RaExpr::relation("S")).unwrap();
        let before = shared.snapshot();
        shared.commit(&insert_batch()); // touches only R
        let after = shared.snapshot();
        let b = Arc::clone(before.views.get("SV").unwrap());
        let a = Arc::clone(after.views.get("SV").unwrap());
        assert!(Arc::ptr_eq(&b, &a), "untouched view result is shared");
    }

    #[test]
    fn epochs_are_contiguous_and_catalog_changes_bump_them() {
        let shared = SharedDatabase::new(z_db());
        assert_eq!(shared.epoch(), 0);
        assert_eq!(shared.commit(&insert_batch()), 1);
        assert_eq!(
            shared.register_view("Q", &RaExpr::relation("R")).unwrap(),
            2
        );
        assert_eq!(shared.commit(&insert_batch()), 3);
        assert_eq!(shared.drop_view("Q"), 4);
        assert_eq!(shared.epoch(), 4);
        assert!(shared.snapshot().view("Q").is_none());
    }

    #[test]
    fn commits_patch_cached_batch_conversions() {
        use crate::column::BatchProvenance;
        let shared = SharedDatabase::new(z_db());
        let before = shared.snapshot();
        let r = before.database().get_shared("R").unwrap();
        // First conversion populates the cache (a miss)...
        before.batch_cache.get_or_convert(before.epoch(), &r);
        assert_eq!(before.batch_cache_stats().misses, 1);
        // ...and a commit carries the entry to the new relation version by
        // appending the delta's batches instead of invalidating.
        shared.commit(&insert_batch());
        let after = shared.snapshot();
        let r2 = after.database().get_shared("R").unwrap();
        let (batches, provenance) = after.batch_cache.peek(&r2).unwrap();
        assert_eq!(provenance, BatchProvenance::Patched(1));
        let rows: usize = batches.iter().map(|b| b.live_rows()).sum();
        assert_eq!(rows, r.len() + 1, "base rows plus the appended delta row");
        let stats = after.batch_cache_stats();
        assert_eq!((stats.patches, stats.entries), (1, 1));
        // The old version's entry is gone; a fresh scan of it re-converts.
        assert!(before.batch_cache.peek(&r).is_none());
    }

    #[test]
    fn standing_view_results_ride_the_batch_cache() {
        use crate::column::BatchProvenance;
        let shared = SharedDatabase::new(z_db());
        let query = paper_example_query("R");
        shared.register_view("Q", &query).unwrap();
        let snap = shared.snapshot();
        let q = snap.view_shared("Q").unwrap();
        // Registration seeded the cache: the entry exists before any read.
        let (_, provenance) = snap.batch_cache.peek(&q).unwrap();
        assert_eq!(provenance, BatchProvenance::Cached);
        // A commit touching R patches the entry with the view's own
        // maintenance output delta — no re-conversion.
        let patches_before = snap.batch_cache_stats().patches;
        shared.commit(&insert_batch());
        let snap2 = shared.snapshot();
        let q2 = snap2.view_shared("Q").unwrap();
        let (batches, provenance) = snap2.batch_cache.peek(&q2).unwrap();
        assert_eq!(provenance, BatchProvenance::Patched(1));
        assert!(snap2.batch_cache_stats().patches > patches_before);
        // Folding the patched batches reproduces the view result exactly.
        let mut folded = KRelation::empty(q2.schema().clone());
        for batch in batches.iter().cloned() {
            for (row, k) in batch.into_rows() {
                folded
                    .insert_same_schema(crate::tuple::Tuple::from_schema_row(q2.schema(), row), k);
            }
        }
        assert_eq!(&folded, q2.as_ref());
        // The old version's entry moved forward; the old Arc misses.
        assert!(snap.batch_cache.peek(&q).is_none());
    }

    #[test]
    fn unknown_view_expressions_are_rejected() {
        let shared = SharedDatabase::new(z_db());
        let err = shared
            .register_view("bad", &RaExpr::relation("NoSuch"))
            .unwrap_err();
        assert!(matches!(err, EvalError::UnknownRelation(_)));
    }
}

//! The columnar batch executor: the [`PhysOp`] tree evaluated over
//! [`Batch`]es of typed column vectors instead of row-at-a-time streams.
//!
//! This is the `PROVSEM_EXEC=batch` (default) execution mode dispatched by
//! [`super::physical::execute`]. The operator algebra is identical to the
//! row engine — same physical tree, same materialization points — but the
//! unit of work is a whole batch:
//!
//! * **σ** compiles to a per-column selection loop ([`eval_predicate_mask`])
//!   producing a boolean mask that refines the batch's selection vector; on
//!   a dictionary column an `AttrEqValue` resolves the constant to a code
//!   *once per batch* and the loop compares `u32`s.
//! * **π/ρ** permute the column *list* (`Arc` moves, no data copied).
//! * **Pre-join aggregation** and the **root merge** group by content-hashed
//!   key columns ([`group_batches`]): hashes are computed column-wise, and
//!   the root builds each output [`Tuple`](crate::tuple::Tuple) once per
//!   *distinct* row, however many duplicates the pipeline streamed.
//! * **Hash join** builds a `hash → build-row refs` index over the build
//!   batches and probes it with column-wise key hashes, assembling each
//!   output batch column-by-column (typed gathers).
//!
//! In parallel mode the morsel exchange ships whole batches between
//! workers: batches are split by key-hash partition ([`Batch::split_by`],
//! same `hash % threads` assignment as the row engine via
//! [`crate::par::part_of`]), column payloads cross threads as plain `Send`
//! data, and annotation vectors travel sealed through the semiring's
//! [`Portable`] encoding — exactly the transport discipline of the row
//! engine's chunk exchange.
//!
//! Determinism: partitioning is by content hash (representation- and
//! dictionary-independent), groups and join matches are emitted in
//! first-occurrence stream order, and partition outputs merge in index
//! order — so, with semiring `+` commutative (a property-tested law), the
//! result `KRelation` is identical to the row engine's at every thread
//! count. `core/tests/columnar_differential.rs` pins row-vs-batch equality
//! across five semirings and thread counts.

use super::physical::{scan_relation, ColSource, CompiledPredicate, PhysOp};
use crate::column::{
    column_values_equal, columns_rows_equal, group_batches, relation_to_batches, Batch, Column,
};
use crate::plan::{ExecContext, RelationSource};
use crate::relation::KRelation;
use crate::schema::Schema;
use crate::value::Value;
use provsem_semiring::fxhash::FxHashMap;
use provsem_semiring::{Portable, Semiring};
use std::sync::Arc;

// --- vectorized predicate evaluation ---------------------------------------

/// Evaluates a compiled predicate over whole columns, producing one boolean
/// per *physical* row. Constants against dictionary columns resolve to a
/// code once per batch (absent constants short-circuit to a constant mask);
/// cross-dictionary column equality builds a code-translation table once
/// per batch instead of comparing strings per row.
pub(crate) fn eval_predicate_mask(
    pred: &CompiledPredicate,
    cols: &[Column],
    len: usize,
) -> Vec<bool> {
    match pred {
        CompiledPredicate::Const(b) => vec![*b; len],
        CompiledPredicate::ColEqValue(i, v) => col_eq_value_mask(&cols[*i], v, len),
        CompiledPredicate::ColNeValue(i, v) => {
            let mut mask = col_eq_value_mask(&cols[*i], v, len);
            for m in &mut mask {
                *m = !*m;
            }
            mask
        }
        CompiledPredicate::ColEqCol(i, j) => col_eq_col_mask(&cols[*i], &cols[*j], len),
        CompiledPredicate::And(p, q) => {
            let mut mask = eval_predicate_mask(p, cols, len);
            let other = eval_predicate_mask(q, cols, len);
            for (m, o) in mask.iter_mut().zip(other) {
                *m = *m && o;
            }
            mask
        }
        CompiledPredicate::Or(p, q) => {
            let mut mask = eval_predicate_mask(p, cols, len);
            let other = eval_predicate_mask(q, cols, len);
            for (m, o) in mask.iter_mut().zip(other) {
                *m = *m || o;
            }
            mask
        }
    }
}

/// `column == constant`, one comparison kernel per column representation.
fn col_eq_value_mask(col: &Column, v: &Value, len: usize) -> Vec<bool> {
    match (col, v) {
        (Column::I64(data), Value::Int(x)) => data.iter().map(|d| d == x).collect(),
        (Column::I64(_), Value::Str(_)) | (Column::Str { .. }, Value::Int(_)) => {
            vec![false; len]
        }
        (Column::Str { dict, codes }, Value::Str(s)) => match dict.code_of(s) {
            // The constant resolves to a code once; the loop compares u32s.
            Some(code) => codes.iter().map(|&c| c == code).collect(),
            // The constant is not in the dictionary: no row can match.
            None => vec![false; len],
        },
        (Column::Val(data), v) => data.iter().map(|d| d == v).collect(),
    }
}

/// `column == column`, with typed fast paths: same-dictionary code loops,
/// cross-dictionary code translation built once per batch, and a per-row
/// value fallback only when a `Val` column is involved.
fn col_eq_col_mask(a: &Column, b: &Column, len: usize) -> Vec<bool> {
    match (a, b) {
        (Column::I64(va), Column::I64(vb)) => {
            va.iter().zip(vb.iter()).map(|(x, y)| x == y).collect()
        }
        (Column::I64(_), Column::Str { .. }) | (Column::Str { .. }, Column::I64(_)) => {
            vec![false; len]
        }
        (
            Column::Str {
                dict: da,
                codes: ca,
            },
            Column::Str {
                dict: db,
                codes: cb,
            },
        ) => {
            if Arc::ptr_eq(da, db) {
                ca.iter().zip(cb.iter()).map(|(x, y)| x == y).collect()
            } else {
                // Translate a's codes into b's dictionary once; rows whose
                // string is absent from b's dictionary can never match.
                let translate: Vec<Option<u32>> = (0..da.len() as u32)
                    .map(|c| db.code_of(da.resolve(c)))
                    .collect();
                ca.iter()
                    .zip(cb.iter())
                    .map(|(&x, &y)| translate[x as usize] == Some(y))
                    .collect()
            }
        }
        (a, b) => (0..len as u32)
            .map(|r| column_values_equal(a, r, b, r))
            .collect(),
    }
}

// --- batch transport (exchange between morsel workers) ---------------------

/// A batch sealed for the thread boundary: column payloads are plain `Send`
/// data, the annotation vector travels through the semiring's [`Portable`]
/// encoding.
type SealedBatch = (usize, Vec<Column>, Portable);

fn seal_batch<K: Semiring>(batch: Batch<K>) -> SealedBatch {
    let (len, columns, anns) = batch.materialize().into_parts();
    (len, columns, K::to_portable(anns))
}

fn open_batch<K: Semiring>((len, columns, token): SealedBatch) -> Batch<K> {
    Batch::new(len, columns, K::from_portable(token))
}

/// Maps `work` over per-partition batch lists — one scoped worker per
/// partition when the input is large enough, inline otherwise — returning
/// outputs in partition order.
fn par_map_batches<K, F>(parts: Vec<Vec<Batch<K>>>, work: F) -> Vec<Vec<Batch<K>>>
where
    K: Semiring,
    F: Fn(Vec<Batch<K>>) -> Vec<Batch<K>> + Sync,
{
    let total: usize = parts
        .iter()
        .flat_map(|p| p.iter())
        .map(Batch::live_rows)
        .sum();
    if parts.len() <= 1 || total < crate::par::SPAWN_THRESHOLD {
        return parts.into_iter().map(work).collect();
    }
    let sealed: Vec<Vec<SealedBatch>> = parts
        .into_iter()
        .map(|batches| batches.into_iter().map(seal_batch).collect())
        .collect();
    crate::par::spawn_map(sealed, |batches: Vec<SealedBatch>| {
        let opened = batches.into_iter().map(open_batch).collect();
        work(opened)
            .into_iter()
            .map(seal_batch)
            .collect::<Vec<SealedBatch>>()
    })
    .into_iter()
    .map(|batches| batches.into_iter().map(open_batch).collect())
    .collect()
}

/// One (build, probe) batch-list pair per hash-join key partition.
type PartitionPairs<K> = Vec<(Vec<Batch<K>>, Vec<Batch<K>>)>;

/// [`par_map_batches`] for the partitioned hash join: one (build, probe)
/// batch-list pair per key partition.
fn par_map_batch_pairs<K, F>(pairs: PartitionPairs<K>, work: F) -> Vec<Vec<Batch<K>>>
where
    K: Semiring,
    F: Fn(Vec<Batch<K>>, Vec<Batch<K>>) -> Vec<Batch<K>> + Sync,
{
    let total: usize = pairs
        .iter()
        .flat_map(|(b, p)| b.iter().chain(p))
        .map(Batch::live_rows)
        .sum();
    if pairs.len() <= 1 || total < crate::par::SPAWN_THRESHOLD {
        return pairs
            .into_iter()
            .map(|(build, probe)| work(build, probe))
            .collect();
    }
    let sealed: Vec<(Vec<SealedBatch>, Vec<SealedBatch>)> = pairs
        .into_iter()
        .map(|(build, probe)| {
            (
                build.into_iter().map(seal_batch).collect(),
                probe.into_iter().map(seal_batch).collect(),
            )
        })
        .collect();
    crate::par::spawn_map(sealed, |(build, probe)| {
        let build = build.into_iter().map(open_batch).collect();
        let probe = probe.into_iter().map(open_batch).collect();
        work(build, probe)
            .into_iter()
            .map(seal_batch)
            .collect::<Vec<SealedBatch>>()
    })
    .into_iter()
    .map(|batches| batches.into_iter().map(open_batch).collect())
    .collect()
}

/// Hash-partitions materialized batches into exactly `parts` per-partition
/// batch lists by the content hash of the key columns — the batch engine's
/// exchange. Equal keys land in the same partition (and in stream order
/// within it); an empty key column list sends everything to partition 0.
fn exchange_batches<K: Semiring>(
    batches: Vec<Batch<K>>,
    keys: &[usize],
    parts: usize,
) -> Vec<Vec<Batch<K>>> {
    let mut out: Vec<Vec<Batch<K>>> = (0..parts).map(|_| Vec::new()).collect();
    for batch in batches {
        let batch = batch.materialize();
        let hashes = batch.key_hashes(keys);
        let assign: Vec<u32> = hashes
            .iter()
            .map(|&h| crate::par::part_of(h, parts) as u32)
            .collect();
        for (part, sub) in batch.split_by(&assign, parts).into_iter().enumerate() {
            if sub.phys_rows() > 0 {
                out[part].push(sub);
            }
        }
    }
    out
}

// --- operators --------------------------------------------------------------

/// One step of a peeled unary σ/π/ρ chain, in columnar form.
enum BatchStep<'a> {
    /// Refine the selection vector by a predicate mask.
    Filter(&'a CompiledPredicate),
    /// Permute/subset the column list.
    Gather(&'a [usize]),
}

/// Applies a unary chain (innermost step first) to a batch: masks refine
/// the selection vector, gathers move `Arc`s — nothing copies row data.
fn apply_batch_steps<K: Semiring>(mut batch: Batch<K>, steps: &[BatchStep<'_>]) -> Batch<K> {
    for step in steps {
        match step {
            BatchStep::Filter(predicate) => {
                let mask = eval_predicate_mask(predicate, batch.columns(), batch.phys_rows());
                batch.refine(&mask);
            }
            BatchStep::Gather(cols) => batch.permute_columns(cols),
        }
    }
    batch
}

/// Aggregates batches by their whole row (the pre-join duplicate
/// aggregation): serial grouping below the spawn threshold, otherwise a
/// whole-row-hash exchange and one grouping worker per partition.
fn aggregate_batches<K: Semiring>(inputs: Vec<Batch<K>>, threads: usize) -> Vec<Batch<K>> {
    let Some(first) = inputs.first() else {
        return Vec::new();
    };
    let arity = first.columns().len();
    let keys: Vec<usize> = (0..arity).collect();
    let total: usize = inputs.iter().map(Batch::live_rows).sum();
    if threads <= 1 || total < crate::par::SPAWN_THRESHOLD {
        let out = group_batches(inputs, &keys).into_batch(arity);
        return if out.phys_rows() == 0 {
            Vec::new()
        } else {
            vec![out]
        };
    }
    let parts = exchange_batches(inputs, &keys, threads);
    par_map_batches(parts, |batches| {
        if batches.is_empty() {
            return Vec::new();
        }
        let out = group_batches(batches, &keys).into_batch(arity);
        if out.phys_rows() == 0 {
            Vec::new()
        } else {
            vec![out]
        }
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Joins build and probe batch lists within one key partition (or the whole
/// input in serial mode): a `hash → build-row refs` index over the
/// materialized build batches, probed batch-by-batch with column-wise key
/// hashes; each probe batch assembles one output batch column-by-column.
///
/// Exported through [`crate::kernels`] for callers outside the planner
/// (the datalog bench bodies use it directly). The semi-naive fixpoint
/// itself does *not* call this per round — it probes its retained,
/// append-only fact-index columns instead, because rebuilding the build
/// hash table every round would swamp the delta-sized probes.
pub fn join_batches<K: Semiring>(
    build: Vec<Batch<K>>,
    probe: Vec<Batch<K>>,
    build_keys: &[usize],
    probe_keys: &[usize],
    output: &[ColSource],
    swapped: bool,
) -> Vec<Batch<K>> {
    // Build side: materialized columns + annotations per batch, indexed by
    // key hash. Candidate lists keep build stream order; matches verify the
    // key columns exactly, so hash collisions are harmless.
    let mut build_cols: Vec<Vec<Column>> = Vec::with_capacity(build.len());
    let mut build_anns: Vec<Vec<K>> = Vec::with_capacity(build.len());
    let mut index: FxHashMap<u64, Vec<(u32, u32)>> = FxHashMap::default();
    for batch in build {
        let batch = batch.materialize();
        let hashes = batch.key_hashes(build_keys);
        let (len, columns, anns) = batch.into_parts();
        let bidx = build_cols.len() as u32;
        index.reserve(len);
        for (row, &h) in hashes.iter().enumerate().take(len) {
            index.entry(h).or_default().push((bidx, row as u32));
        }
        build_cols.push(columns);
        build_anns.push(anns);
    }
    let build_col_refs: Vec<&[Column]> = build_cols.iter().map(Vec::as_slice).collect();

    let mut out: Vec<Batch<K>> = Vec::new();
    for pbatch in probe {
        let pbatch = pbatch.materialize();
        let hashes = pbatch.key_hashes(probe_keys);
        let (plen, pcols, panns) = pbatch.into_parts();
        // Matches in probe-stream-major, build-stream-minor order — the
        // same nesting as the row engine's probe loop.
        let mut match_build: Vec<(u32, u32)> = Vec::new();
        let mut match_probe: Vec<u32> = Vec::new();
        let mut anns: Vec<K> = Vec::new();
        for (prow, pk) in panns.iter().enumerate().take(plen) {
            let Some(candidates) = index.get(&hashes[prow]) else {
                continue;
            };
            for &(b, r) in candidates {
                if columns_rows_equal(
                    &pcols,
                    prow as u32,
                    probe_keys,
                    &build_cols[b as usize],
                    r,
                    build_keys,
                ) {
                    let bk = &build_anns[b as usize][r as usize];
                    anns.push(if swapped { pk.times(bk) } else { bk.times(pk) });
                    match_build.push((b, r));
                    match_probe.push(prow as u32);
                }
            }
        }
        if anns.is_empty() {
            continue;
        }
        let columns: Vec<Column> = output
            .iter()
            .map(|src| match src {
                ColSource::Build(i) => {
                    crate::column::gather_multi(&build_col_refs, *i, &match_build)
                }
                ColSource::Probe(i) => pcols[*i].gather(&match_probe),
            })
            .collect();
        out.push(Batch::new(anns.len(), columns, anns));
    }
    out
}

/// Per-execution view of scan conversions, keyed by the scanned relation's
/// address: a plan that scans the same relation several times (self-joins —
/// the Section 2 query scans `R` four times) resolves it once. The batches
/// themselves come from the storage layer when the source carries a
/// [`BatchCache`](crate::column::BatchCache) (snapshots of a
/// `SharedDatabase` do — repeated *executions* then skip conversion too,
/// and commits patch the cached batches instead of invalidating them);
/// otherwise the scan converts here, once per execution. Reuses share the
/// typed columns by `Arc` and the *same* string dictionaries, so downstream
/// equality kernels between the scans compare dictionary codes instead of
/// strings. Only the annotation vectors are cloned per use — exactly the
/// clones the row engine pays per scan.
type ScanCache<K> = FxHashMap<usize, Arc<Vec<Batch<K>>>>;

/// Recursively executes an operator into batches, peeling unary σ/π/ρ
/// chains off the top and applying them as mask/permutation kernels —
/// mirroring the row engine's fused [`RowStep`](super::physical) chains.
/// `threads > 1` only when the semiring is portable.
fn exec_batches<K, S>(
    op: &PhysOp,
    source: &S,
    threads: usize,
    cache: &mut ScanCache<K>,
) -> Vec<Batch<K>>
where
    K: Semiring,
    S: RelationSource<K>,
{
    let mut steps: Vec<BatchStep<'_>> = Vec::new();
    let mut op = op;
    loop {
        match op {
            PhysOp::Select { input, predicate } => {
                steps.push(BatchStep::Filter(predicate));
                op = input;
            }
            PhysOp::Project { input, keep } => {
                steps.push(BatchStep::Gather(keep));
                op = input;
            }
            PhysOp::Permute { input, perm } => {
                steps.push(BatchStep::Gather(perm));
                op = input;
            }
            _ => break,
        }
    }
    steps.reverse();

    let inputs: Vec<Batch<K>> = match op {
        PhysOp::Scan { name, schema } => {
            let relation = scan_relation(name, schema, source);
            let key = relation as *const KRelation<K> as usize;
            match cache.get(&key) {
                Some(batches) => batches.as_ref().clone(),
                None => {
                    let batches = match (source.batch_cache(), source.relation_shared(name)) {
                        (Some((store, epoch)), Some(shared)) => {
                            store.get_or_convert(epoch, &shared)
                        }
                        _ => Arc::new(relation_to_batches(relation)),
                    };
                    let out = batches.as_ref().clone();
                    cache.insert(key, batches);
                    out
                }
            }
        }
        PhysOp::Empty => Vec::new(),
        PhysOp::Union { left, right } => {
            let mut batches = exec_batches(left, source, threads, cache);
            batches.extend(exec_batches(right, source, threads, cache));
            batches
        }
        PhysOp::Aggregate { input } => {
            aggregate_batches(exec_batches(input, source, threads, cache), threads)
        }
        PhysOp::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            output,
            swapped,
        } => {
            let build_in = exec_batches(build, source, threads, cache);
            let probe_in = exec_batches(probe, source, threads, cache);
            let total: usize = build_in.iter().chain(&probe_in).map(Batch::live_rows).sum();
            if threads <= 1 || total < crate::par::SPAWN_THRESHOLD {
                join_batches(build_in, probe_in, build_keys, probe_keys, output, *swapped)
            } else {
                let pairs: Vec<_> = exchange_batches(build_in, build_keys, threads)
                    .into_iter()
                    .zip(exchange_batches(probe_in, probe_keys, threads))
                    .collect();
                par_map_batch_pairs(pairs, |bpart, ppart| {
                    join_batches(bpart, ppart, build_keys, probe_keys, output, *swapped)
                })
                .into_iter()
                .flatten()
                .collect()
            }
        }
        PhysOp::Select { .. } | PhysOp::Project { .. } | PhysOp::Permute { .. } => {
            unreachable!("unary operators were peeled above")
        }
    };
    if steps.is_empty() {
        inputs
    } else {
        inputs
            .into_iter()
            .map(|batch| apply_batch_steps(batch, &steps))
            .collect()
    }
}

/// Runs a physical plan to completion through the columnar kernels,
/// materializing the result relation. The root merge groups the output
/// batches by *all* columns — the final `Σ` of duplicate rows — and builds
/// each distinct tuple exactly once.
pub(crate) fn execute<K, S>(
    op: &PhysOp,
    schema: &Schema,
    source: &S,
    ctx: &ExecContext,
) -> KRelation<K>
where
    K: Semiring,
    S: RelationSource<K>,
{
    let threads = if ctx.threads > 1 && K::is_portable() {
        ctx.threads
    } else {
        1
    };
    let batches = exec_batches(op, source, threads, &mut ScanCache::default());
    let keys: Vec<usize> = (0..schema.arity()).collect();
    group_batches(batches, &keys).into_relation(schema)
}

#[cfg(test)]
mod profiling {
    use super::*;
    use crate::database::Database;
    use crate::paper::section2_query;
    use crate::plan::Plan;
    use crate::tuple::Tuple;
    use provsem_semiring::Natural;
    use std::time::Instant;

    fn db300() -> Database<Natural> {
        let mut x = 42u64;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) % 10
        };
        let mut rel = KRelation::empty(Schema::new(["a", "b", "c"]));
        for _ in 0..300 {
            rel.insert(
                Tuple::new([
                    ("a", format!("v{}", next())),
                    ("b", format!("v{}", next())),
                    ("c", format!("v{}", next())),
                ]),
                Natural::from(1 + next() % 5),
            );
        }
        Database::new().with("R", rel)
    }

    fn time_it(label: &str, iters: usize, mut body: impl FnMut()) {
        for _ in 0..iters / 10 {
            body();
        }
        let t = Instant::now();
        for _ in 0..iters {
            body();
        }
        println!(
            "{label}: {:.1}us",
            t.elapsed().as_secs_f64() * 1e6 / iters as f64
        );
    }

    #[test]
    #[ignore]
    fn profile_direct_bag() {
        let db = db300();
        let plan = Plan::new(&section2_query(), &db.catalog()).unwrap();
        let rel = db.get("R").unwrap();
        time_it("relation_to_batches(R)", 2000, || {
            let _ = relation_to_batches(rel);
        });
        time_it("exec_batches(full tree)", 2000, || {
            let _: Vec<Batch<Natural>> =
                exec_batches(&plan.physical, &db, 1, &mut ScanCache::default());
        });
        time_it("execute(full, incl root)", 2000, || {
            let _ = super::execute::<Natural, _>(
                &plan.physical,
                &plan.schema,
                &db,
                &ExecContext::serial(),
            );
        });
        let batches: Vec<Batch<Natural>> =
            exec_batches(&plan.physical, &db, 1, &mut ScanCache::default());
        let keys: Vec<usize> = (0..plan.schema.arity()).collect();
        time_it("root group+into_relation", 2000, || {
            let _ = group_batches(batches.clone(), &keys).into_relation(&plan.schema);
        });
    }
}

//! The planned query engine: logical plan → optimizer → positional physical
//! operators.
//!
//! [`RaExpr::eval`](crate::expr::RaExpr::eval) routes through this module:
//! the expression is validated once against a [`Catalog`] (schemas inferred
//! for every node up front), rewritten by the optimizer (selection pushdown,
//! projection pushdown and join-input pruning, rename fusion,
//! cascaded-projection collapse, `∅` propagation — see
//! [`logical::optimize`]), and compiled to physical operators that work on
//! positional rows with attributes resolved to column indices at plan time
//! (the `physical` module). The original tree-walking interpreter is still
//! available as [`RaExpr::eval_interpreted`](crate::expr::RaExpr::eval_interpreted)
//! and serves as the differential-testing reference.
//!
//! Plans are independent of the annotation semiring: [`Plan::new`] needs
//! only schemas and cardinalities, and one plan can be executed over
//! databases annotated in *different* semirings — which is exactly the shape
//! of the paper's factorization theorem (run once over ℕ\[X\], specialize
//! everywhere) and is how
//! [`factorization_holds`](crate::provenance::factorization_holds) shares a
//! single plan between the direct and the provenance evaluation.
//!
//! ```
//! use provsem_core::plan::Plan;
//! use provsem_core::prelude::*;
//! use provsem_semiring::Natural;
//!
//! let db = paper::figure3_bag();
//! let plan = Plan::new(&paper::section2_query(), &db.catalog()).unwrap();
//! println!("{}", plan.explain()); // optimized operator tree
//! let out: KRelation<Natural> = plan.execute(&db);
//! assert_eq!(out.len(), 5);
//! ```

pub(crate) mod batch;
pub mod logical;
mod maintain;
pub(crate) mod physical;

use crate::column;

use crate::database::Database;
use crate::expr::{EvalError, RaExpr};
use crate::relation::KRelation;
use crate::schema::Schema;
use provsem_semiring::Semiring;
use std::collections::BTreeMap;

pub use logical::LogicalPlan;
pub use maintain::{DeltaBatch, MaterializedView};

/// Which physical engine executes a plan.
///
/// Both engines run the identical physical operator tree and produce the
/// identical result `KRelation` (pinned by
/// `core/tests/columnar_differential.rs` across semirings and thread
/// counts); they differ only in the unit of work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Row-at-a-time: pipelined `Box<[Value]>` streams with borrowed-`Cow`
    /// annotations — the engine that predates columnar execution.
    Row,
    /// Columnar batches: typed column vectors (dictionary-encoded strings),
    /// vectorized selection/hash kernels, annotations as a parallel column.
    Batch,
    /// Decide per plan at execution time: plans whose catalog estimates
    /// read at least [`Plan::AUTO_BATCH_MIN_ROWS`] total scan rows run on
    /// the batch engine, smaller ones on the row engine (whose lack of a
    /// row→column conversion wins on tiny inputs). The default.
    Auto,
}

impl ExecMode {
    /// The process-wide default: `PROVSEM_EXEC=row` forces the
    /// row-at-a-time engine, `PROVSEM_EXEC=batch` forces the columnar
    /// batch engine, anything else (including unset) selects
    /// [`ExecMode::Auto`]. The environment is read once and cached.
    pub fn from_env() -> ExecMode {
        static MODE: std::sync::OnceLock<ExecMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("PROVSEM_EXEC") {
            Ok(value) if value.trim().eq_ignore_ascii_case("row") => ExecMode::Row,
            Ok(value) if value.trim().eq_ignore_ascii_case("batch") => ExecMode::Batch,
            _ => ExecMode::Auto,
        })
    }
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::from_env()
    }
}

/// How a plan executes: the thread budget of the morsel-driven parallel
/// executor, and which engine ([`ExecMode`]) runs the operators.
///
/// With `threads == 1` execution is serial. With more threads, scans are
/// split into contiguous morsels, hash joins and pre-join aggregations
/// hash-partition their inputs on the key (one worker per partition), and
/// partitions are merged in deterministic partition order — so the result
/// `KRelation` is identical to serial execution at every thread count (see
/// the README's "Parallel execution" section for the exact guarantee).
///
/// The default context reads the `PROVSEM_THREADS` environment variable
/// (cached on first use) and falls back to
/// [`std::thread::available_parallelism`]; the engine reads `PROVSEM_EXEC`
/// (see [`ExecMode::from_env`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecContext {
    /// Number of worker threads (and hash partitions); at least 1.
    pub threads: usize,
    /// Which engine runs the physical operators.
    pub mode: ExecMode,
}

impl ExecContext {
    /// One thread: the serial code path (engine per `PROVSEM_EXEC`).
    pub fn serial() -> ExecContext {
        ExecContext {
            threads: 1,
            mode: ExecMode::from_env(),
        }
    }

    /// An explicit thread budget (clamped to at least 1; engine per
    /// `PROVSEM_EXEC`).
    pub fn with_threads(threads: usize) -> ExecContext {
        ExecContext {
            threads: threads.max(1),
            mode: ExecMode::from_env(),
        }
    }

    /// Builder-style engine override (environment-independent — what the
    /// differential suites use to pin row-vs-batch agreement).
    pub fn with_mode(mut self, mode: ExecMode) -> ExecContext {
        self.mode = mode;
        self
    }

    /// The process-wide default: `PROVSEM_THREADS` if set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`]. The
    /// environment is read once and cached.
    pub fn from_env() -> ExecContext {
        static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let threads = *THREADS.get_or_init(|| {
            std::env::var("PROVSEM_THREADS")
                .ok()
                .and_then(|value| value.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                })
        });
        ExecContext {
            threads,
            mode: ExecMode::from_env(),
        }
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::from_env()
    }
}

/// The planner's view of a database: relation names mapped to schemas and
/// cardinalities. Plans are built against a catalog, never against the data
/// itself, which keeps them independent of the annotation semiring.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    relations: BTreeMap<String, (Schema, usize)>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a relation.
    pub fn add(&mut self, name: impl Into<String>, schema: Schema, cardinality: usize) {
        self.relations.insert(name.into(), (schema, cardinality));
    }

    /// Builder-style [`Catalog::add`].
    pub fn with(mut self, name: impl Into<String>, schema: Schema, cardinality: usize) -> Self {
        self.add(name, schema, cardinality);
        self
    }

    /// Looks up a relation's schema and cardinality.
    pub fn get(&self, name: &str) -> Option<(&Schema, usize)> {
        self.relations
            .get(name)
            .map(|(schema, card)| (schema, *card))
    }
}

/// Anything a physical plan can read base relations from.
///
/// [`Database`] is the usual source; [`NamedRelation`] lets callers holding
/// a single relation (such as a c-table) evaluate queries without cloning it
/// into a temporary database.
pub trait RelationSource<K> {
    /// The catalog describing this source (used to build plans against it).
    fn catalog(&self) -> Catalog;

    /// Resolves a base relation by name.
    fn relation(&self, name: &str) -> Option<&KRelation<K>>;

    /// The shared handle of a base relation, for sources that store
    /// relations behind `Arc`s (snapshots do). `None` — the default — means
    /// the source only hands out borrows, and scans columnarize per
    /// execution.
    fn relation_shared(&self, _name: &str) -> Option<std::sync::Arc<KRelation<K>>> {
        None
    }

    /// The storage-layer [`BatchCache`](crate::column::BatchCache) attached
    /// to this source, plus the epoch new entries should record, if the
    /// source has one ([`DbSnapshot`](crate::snapshot::DbSnapshot) does).
    /// When present, the batch engine's scans are served from (and memoized
    /// into) the cache instead of converting per execution.
    fn batch_cache(&self) -> Option<(&column::BatchCache<K>, u64)> {
        None
    }
}

impl<K: Semiring> RelationSource<K> for Database<K> {
    fn catalog(&self) -> Catalog {
        let mut catalog = Catalog::new();
        for (name, relation) in self.iter() {
            catalog.add(name.clone(), relation.schema().clone(), relation.len());
        }
        catalog
    }

    fn relation(&self, name: &str) -> Option<&KRelation<K>> {
        self.get(name)
    }
}

/// A single borrowed relation exposed under a name — the cheapest possible
/// [`RelationSource`].
#[derive(Clone, Copy, Debug)]
pub struct NamedRelation<'a, K: Semiring> {
    name: &'a str,
    relation: &'a KRelation<K>,
}

impl<'a, K: Semiring> NamedRelation<'a, K> {
    /// Wraps a relation reference under `name`.
    pub fn new(name: &'a str, relation: &'a KRelation<K>) -> Self {
        NamedRelation { name, relation }
    }
}

impl<K: Semiring> RelationSource<K> for NamedRelation<'_, K> {
    fn catalog(&self) -> Catalog {
        Catalog::new().with(
            self.name,
            self.relation.schema().clone(),
            self.relation.len(),
        )
    }

    fn relation(&self, name: &str) -> Option<&KRelation<K>> {
        (name == self.name).then_some(self.relation)
    }
}

/// A fully prepared query: the optimized logical plan plus its physical
/// compilation. Build once with [`Plan::new`], execute any number of times
/// (over sources annotated in any semiring) with [`Plan::execute`].
#[derive(Clone, Debug)]
pub struct Plan {
    logical: LogicalPlan,
    physical: physical::PhysOp,
    schema: Schema,
    /// Total catalog-estimated rows read by the plan's scans — the input
    /// to the [`ExecMode::Auto`] engine pick, frozen at plan time.
    scan_rows: usize,
}

impl Plan {
    /// Scan-row threshold of the [`ExecMode::Auto`] engine pick: plans
    /// whose scans read at least this many rows (by catalog estimate, at
    /// plan time) run on the batch engine; smaller plans — e.g. the
    /// Section 9 canonical databases of under ten facts — stay on the row
    /// engine, where the row→column conversion they cannot amortize never
    /// happens.
    pub const AUTO_BATCH_MIN_ROWS: usize = 64;

    /// Validates `expr` against `catalog`, optimizes it, and compiles the
    /// physical operators. Errors are exactly those `RaExpr::eval` would
    /// report.
    pub fn new(expr: &RaExpr, catalog: &Catalog) -> Result<Plan, EvalError> {
        let validated = LogicalPlan::from_expr(expr, catalog)?;
        let optimized = logical::optimize(validated);
        let physical = physical::compile(&optimized);
        let schema = optimized.schema().clone();
        let scan_rows = optimized.scan_rows();
        Ok(Plan {
            logical: optimized,
            physical,
            schema,
            scan_rows,
        })
    }

    /// The engine `ctx` resolves to for this plan: [`ExecMode::Auto`]
    /// picks per the scan-row estimate (see [`Plan::AUTO_BATCH_MIN_ROWS`]);
    /// explicit modes pass through.
    pub fn resolved_mode(&self, ctx: &ExecContext) -> ExecMode {
        match ctx.mode {
            ExecMode::Auto => {
                if self.scan_rows >= Plan::AUTO_BATCH_MIN_ROWS {
                    ExecMode::Batch
                } else {
                    ExecMode::Row
                }
            }
            mode => mode,
        }
    }

    /// The plan's output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The optimized logical plan.
    pub fn logical(&self) -> &LogicalPlan {
        &self.logical
    }

    /// Renders the optimized plan as an indented operator tree, one node per
    /// line, annotated with schemas, predicates, join keys and hash-join
    /// build sides.
    pub fn explain(&self) -> String {
        self.logical.render()
    }

    /// Renders the compiled *physical* operator tree. Unlike
    /// [`Plan::explain`] this shows the materialization points — `agg`
    /// nodes (pre-join aggregations inserted for duplicate-streaming join
    /// inputs) and hash-join build sides with their key columns — which is
    /// what the pre-join aggregation tests pin down. Rendered for the
    /// default [`ExecContext`], so with more than one thread the parallel
    /// operators also show their morsel/partition counts; for a
    /// snapshot-stable rendering pass an explicit context to
    /// [`Plan::explain_physical_with`].
    pub fn explain_physical(&self) -> String {
        self.explain_physical_with(&ExecContext::default())
    }

    /// Renders the physical operator tree for the given context: with
    /// `threads == 1` exactly the serial tree, otherwise each scan is
    /// annotated with the context's morsel budget and each hash join /
    /// pre-join aggregation with its hash-partition count. The counts are
    /// the *budget*, not runtime cardinalities: a scan smaller than the
    /// budget splits into fewer morsels at execution time. The first line
    /// states the engine decision — which engine runs and whether it was
    /// forced or picked by [`ExecMode::Auto`] from the scan-row estimate —
    /// and under the batch engine each scan additionally shows the batch
    /// row budget (`[batch=4096]`).
    pub fn explain_physical_with(&self, ctx: &ExecContext) -> String {
        let mode = self.resolved_mode(ctx);
        let decision = match (ctx.mode, mode) {
            (ExecMode::Auto, ExecMode::Batch) => format!(
                "engine: batch (auto: ~{} scan rows ≥ {})",
                self.scan_rows,
                Plan::AUTO_BATCH_MIN_ROWS
            ),
            (ExecMode::Auto, ExecMode::Row) => format!(
                "engine: row (auto: ~{} scan rows < {})",
                self.scan_rows,
                Plan::AUTO_BATCH_MIN_ROWS
            ),
            (_, ExecMode::Row) => "engine: row (forced)".to_string(),
            _ => "engine: batch (forced)".to_string(),
        };
        let batch_rows = (mode == ExecMode::Batch).then_some(column::BATCH_ROWS);
        format!(
            "{decision}\n{}",
            self.physical.render(ctx.threads, batch_rows)
        )
    }

    /// Describes, per scan of the physical plan, how the batch engine will
    /// lay the relation out against a concrete source: row count, number of
    /// batches, the per-column encodings — `i64` (typed integers),
    /// `dict(n)` (dictionary-encoded strings with `n` distinct entries), or
    /// `val` (the mixed-type / dictionary-overflow fallback) — and, when
    /// the source carries a storage-layer batch cache, where the batches
    /// come from (`converted`, `cached`, or `patched(n)`).
    ///
    /// # Panics
    /// Panics under the same source/catalog-mismatch conditions as
    /// [`Plan::execute`].
    pub fn explain_batches<K: Semiring>(&self, source: &impl RelationSource<K>) -> String {
        physical::describe_scan_batches(&self.physical, source)
    }

    /// Executes the plan against a source under the default [`ExecContext`]
    /// (`PROVSEM_THREADS`, or all available cores; semirings that cannot
    /// cross threads run serially regardless).
    ///
    /// # Panics
    /// Panics if `source` is inconsistent with the catalog the plan was
    /// built against (a scanned relation missing or with a changed schema).
    pub fn execute<K: Semiring>(&self, source: &impl RelationSource<K>) -> KRelation<K> {
        self.execute_with(source, &ExecContext::default())
    }

    /// Executes the plan with an explicit thread budget. `threads == 1`
    /// reproduces the serial pipelined path exactly; any other budget
    /// produces the identical `KRelation` via the morsel-driven executor
    /// (deterministic partitioning and merge — see [`ExecContext`]).
    pub fn execute_with<K: Semiring>(
        &self,
        source: &impl RelationSource<K>,
        ctx: &ExecContext,
    ) -> KRelation<K> {
        let ctx = ctx.with_mode(self.resolved_mode(ctx));
        physical::execute(&self.physical, &self.schema, source, &ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::paper_example_query;
    use crate::paper;
    use crate::predicate::Predicate;
    use crate::schema::Renaming;
    use crate::tuple::Tuple;
    use provsem_semiring::Natural;

    fn plan_for(expr: &RaExpr) -> Plan {
        Plan::new(expr, &paper::figure3_bag().catalog()).unwrap()
    }

    #[test]
    fn planned_execution_matches_interpreter_on_the_paper_query() {
        let db = paper::figure3_bag();
        let q = paper_example_query("R");
        let planned = q.eval(&db).unwrap();
        let interpreted = q.eval_interpreted(&db).unwrap();
        assert_eq!(planned, interpreted);
        assert_eq!(
            planned.annotation(&Tuple::new([("a", "d"), ("c", "e")])),
            Natural::from(55u64)
        );
    }

    #[test]
    fn one_plan_executes_over_multiple_semirings() {
        let db = paper::figure3_bag();
        let plan = plan_for(&paper_example_query("R"));
        let bag: KRelation<Natural> = plan.execute(&db);
        let boolean =
            plan.execute(&db.map_annotations(|n| provsem_semiring::Bool::from(!n.is_zero())));
        assert_eq!(bag.len(), 5);
        assert_eq!(boolean.len(), 5);
    }

    #[test]
    fn explain_shows_pushed_projections() {
        // The Section 2 query projects onto {a, c} at the top; pruning must
        // narrow the scans to the columns each join input needs.
        let plan = plan_for(&paper_example_query("R"));
        let explain = plan.explain();
        assert!(explain.contains("π {a, b}"), "explain:\n{explain}");
        assert!(explain.contains("⋈ on {b}"), "explain:\n{explain}");
    }

    #[test]
    fn selection_pushdown_through_rename_rewrites_attributes() {
        let q = RaExpr::relation("R")
            .rename(Renaming::new([("a", "x")]))
            .select(Predicate::eq_value("x", "a"));
        let plan = plan_for(&q);
        let explain = plan.explain();
        // The selection must sit below the rename, rewritten to attribute a.
        let select_line = explain
            .lines()
            .position(|l| l.contains("σ a=a"))
            .expect("pushed selection present");
        let rename_line = explain
            .lines()
            .position(|l| l.contains("ρ a→x"))
            .expect("rename present");
        assert!(rename_line < select_line, "explain:\n{explain}");
        let db = paper::figure3_bag();
        assert_eq!(q.eval(&db).unwrap(), q.eval_interpreted(&db).unwrap());
    }

    #[test]
    fn plan_errors_match_interpreter_errors() {
        let db = paper::figure3_bag();
        let catalog = db.catalog();
        for q in [
            RaExpr::relation("Missing"),
            RaExpr::relation("R").project(["z"]),
            RaExpr::relation("R").union(RaExpr::relation("R").project(["a"])),
            RaExpr::relation("R").rename(Renaming::new([("a", "b")])),
        ] {
            let planned = Plan::new(&q, &catalog).map(|_| ());
            let interpreted = q.eval_interpreted(&db).map(|_| ());
            assert_eq!(planned, interpreted, "query {q:?}");
        }
    }

    #[test]
    fn named_relation_source_evaluates_without_a_database() {
        let db = paper::figure3_bag();
        let relation = db.get("R").unwrap();
        let source = NamedRelation::new("R", relation);
        let plan = Plan::new(&paper_example_query("R"), &source.catalog()).unwrap();
        assert_eq!(
            plan.execute(&source),
            paper_example_query("R").eval(&db).unwrap()
        );
    }
}

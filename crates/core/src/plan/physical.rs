//! Physical operators over *positional* tuples.
//!
//! At plan time every attribute is resolved to a column index, so the
//! operators never touch attribute names: rows are `Box<[Value]>` slices
//! whose columns follow the node's output schema (attributes in sorted
//! order, matching [`Schema::attributes`]), and predicates are compiled to
//! column-index form ([`CompiledPredicate`]).
//!
//! Serial execution (`threads == 1`) is pipelined (iterator-style):
//! selection, projection, renaming (a column permutation) and union stream
//! rows without materializing anything. Materialization happens in exactly
//! three places: the **build side of a hash join** (an index from key
//! columns to rows), a **pre-join aggregation** on any join input that
//! could stream duplicate rows per
//! [`LogicalPlan::may_produce_duplicate_rows`] (so joins always see
//! distinct, annotation-summed rows — see [`PhysOp::Aggregate`];
//! rename-like projections that only drop constant-pinned or
//! equality-determined columns stay pipelined), and the **plan root** (the
//! output [`KRelation`], which performs the final `Σ` of duplicate rows).
//! Annotations are borrowed from the scans ([`Cow`]) until an operator
//! actually combines them, so filtered-out and passthrough rows never clone
//! a (possibly expensive) annotation.
//!
//! With a multi-threaded [`ExecContext`] (and a semiring whose annotations
//! can cross threads, [`Semiring::is_portable`]) execution switches to the
//! **morsel-driven parallel** mode at the bottom of this file: scans split
//! into contiguous morsels, joins and aggregations hash-partition their
//! inputs, and the pipeline fragments between those exchanges run one
//! scoped worker per partition — producing the identical `KRelation` at
//! every thread count (deterministic partitioning and in-order merges; see
//! the comment block above [`exec_partitions`]).
//!
//! Everything above describes the row-at-a-time engine
//! ([`ExecMode::Row`](crate::plan::ExecMode)). Its **columnar twin**
//! (`super::batch`, `PROVSEM_EXEC=batch`) executes the same physical tree
//! over batches of typed column vectors ([`crate::column`]), where *a
//! morsel is a batch* — scans resolve against the storage layer (served
//! from the snapshot-resident [`crate::column::BatchCache`] when the source
//! has one, converted per execution otherwise), the parallel exchanges ship
//! whole batches between workers (column payloads as `Send` data,
//! annotation vectors sealed through [`Portable`]), and the unary chains
//! fuse into selection-vector and column-permutation kernels instead of
//! per-row loops. Both engines share this module's [`PhysOp`] tree,
//! [`CompiledPredicate`]s, partition assignment ([`crate::par::part_of`])
//! and determinism contract; `execute` dispatches on
//! [`ExecContext::mode`](crate::plan::ExecContext), which the planner
//! resolves per plan under the default `PROVSEM_EXEC=auto` (small scans
//! run row-at-a-time, everything else columnar).

use crate::plan::{ExecContext, RelationSource};
use crate::predicate::Predicate;
use crate::relation::KRelation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use provsem_semiring::fxhash::{fx_hash_one, FxHashMap, FxHasher};
use provsem_semiring::{Portable, Semiring};
use std::borrow::Cow;
use std::hash::{Hash, Hasher};

use super::logical::LogicalPlan;

/// A positional row: one value per output column of the producing operator.
pub(crate) type Row = Box<[Value]>;

/// An annotation flowing through the pipeline. Scans lend their annotations
/// (`Cow::Borrowed`) so that rows a selection filters out — or that only
/// pass through to the root — never pay a clone of a potentially expensive
/// annotation (an expanded ℕ\[X\] polynomial, say); ownership materializes
/// only where an operator actually combines annotations.
type Ann<'a, K> = Cow<'a, K>;

/// Where a hash join output column comes from.
#[derive(Clone, Debug)]
pub enum ColSource {
    /// Column index into the build-side row.
    Build(usize),
    /// Column index into the probe-side row.
    Probe(usize),
}

/// A selection predicate compiled to column indices. Attributes missing
/// from the operator's schema compile to constant `false` comparisons,
/// mirroring [`Predicate::eval`]'s missing-attribute semantics.
#[derive(Clone, Debug)]
pub(crate) enum CompiledPredicate {
    /// A constant.
    Const(bool),
    /// Column equals a constant value.
    ColEqValue(usize, Value),
    /// Column differs from a constant value.
    ColNeValue(usize, Value),
    /// Two columns are equal.
    ColEqCol(usize, usize),
    /// Conjunction.
    And(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Disjunction.
    Or(Box<CompiledPredicate>, Box<CompiledPredicate>),
}

impl CompiledPredicate {
    /// Compiles a named predicate against a schema, resolving attributes to
    /// column positions and constant-folding where possible.
    pub(crate) fn compile(predicate: &Predicate, schema: &Schema) -> CompiledPredicate {
        use CompiledPredicate as C;
        match predicate {
            Predicate::True => C::Const(true),
            Predicate::False => C::Const(false),
            Predicate::AttrEqValue(a, v) => match schema.position(a) {
                Some(i) => C::ColEqValue(i, v.clone()),
                None => C::Const(false),
            },
            Predicate::AttrNeValue(a, v) => match schema.position(a) {
                Some(i) => C::ColNeValue(i, v.clone()),
                None => C::Const(false),
            },
            Predicate::AttrEqAttr(a, b) => match (schema.position(a), schema.position(b)) {
                (Some(i), Some(j)) => C::ColEqCol(i, j),
                _ => C::Const(false),
            },
            Predicate::And(p, q) => match (C::compile(p, schema), C::compile(q, schema)) {
                (C::Const(false), _) | (_, C::Const(false)) => C::Const(false),
                (C::Const(true), other) | (other, C::Const(true)) => other,
                (cp, cq) => C::And(Box::new(cp), Box::new(cq)),
            },
            Predicate::Or(p, q) => match (C::compile(p, schema), C::compile(q, schema)) {
                (C::Const(true), _) | (_, C::Const(true)) => C::Const(true),
                (C::Const(false), other) | (other, C::Const(false)) => other,
                (cp, cq) => C::Or(Box::new(cp), Box::new(cq)),
            },
        }
    }

    /// Evaluates the compiled predicate on a row.
    pub(crate) fn eval(&self, row: &[Value]) -> bool {
        match self {
            CompiledPredicate::Const(b) => *b,
            CompiledPredicate::ColEqValue(i, v) => row[*i] == *v,
            CompiledPredicate::ColNeValue(i, v) => row[*i] != *v,
            CompiledPredicate::ColEqCol(i, j) => row[*i] == row[*j],
            CompiledPredicate::And(p, q) => p.eval(row) && q.eval(row),
            CompiledPredicate::Or(p, q) => p.eval(row) || q.eval(row),
        }
    }
}

/// A physical operator tree, structurally parallel to the optimized
/// [`LogicalPlan`] it was compiled from.
#[derive(Clone, Debug)]
pub(crate) enum PhysOp {
    /// Scan of a base relation; rows follow the relation's sorted schema.
    Scan {
        /// Relation name to resolve against the [`RelationSource`].
        name: String,
        /// Expected schema (checked against the source at execution time).
        schema: Schema,
    },
    /// Produces no rows.
    Empty,
    /// Pipelined filter.
    Select {
        /// Input operator.
        input: Box<PhysOp>,
        /// Compiled predicate.
        predicate: CompiledPredicate,
    },
    /// Pipelined column projection: output column `j` is input column
    /// `keep[j]`. Duplicate rows are *not* summed here — that happens at
    /// the next materialization point (join build side or plan root).
    Project {
        /// Input operator.
        input: Box<PhysOp>,
        /// Input column index per output column.
        keep: Vec<usize>,
    },
    /// Pipelined column permutation (the physical form of a renaming:
    /// renamed attributes sort differently, so columns move).
    Permute {
        /// Input operator.
        input: Box<PhysOp>,
        /// Input column index per output column.
        perm: Vec<usize>,
    },
    /// Pipelined concatenation; duplicate-row summation happens at the next
    /// materialization point.
    Union {
        /// Left input.
        left: Box<PhysOp>,
        /// Right input.
        right: Box<PhysOp>,
    },
    /// Hash aggregation: materializes the input, summing the annotations of
    /// duplicate rows (the `Σ` of Definition 3.2's projection). Inserted
    /// below join inputs that could stream duplicate rows (per the logical
    /// [`LogicalPlan::may_produce_duplicate_rows`] analysis: unions, and
    /// projections that drop a column not determined by the kept ones), so
    /// joins always see distinct rows — without this, pipelined projections
    /// would feed every un-collapsed duplicate into the join and the output
    /// blows up multiplicatively.
    Aggregate {
        /// Input operator.
        input: Box<PhysOp>,
    },
    /// Hash join: materializes the build side indexed by its key columns,
    /// then streams the probe side.
    HashJoin {
        /// Build-side operator (fully materialized into the hash index).
        build: Box<PhysOp>,
        /// Probe-side operator (streamed).
        probe: Box<PhysOp>,
        /// Key column indices on the build side.
        build_keys: Vec<usize>,
        /// Key column indices on the probe side.
        probe_keys: Vec<usize>,
        /// Source of each output column.
        output: Vec<ColSource>,
        /// `true` when build = the *right* logical input, in which case the
        /// annotation product is `probe · build` to preserve the
        /// left-times-right order of Definition 3.2.
        swapped: bool,
    },
}

impl PhysOp {
    /// Wraps a join input in an [`PhysOp::Aggregate`] when the logical
    /// analysis ([`LogicalPlan::may_produce_duplicate_rows`]) says it could
    /// stream duplicate rows. The analysis lives on the logical plan
    /// because it needs schemas and selection predicates — it keeps
    /// rename-like projections (dropping only constant-pinned or
    /// equality-determined columns) pipelined.
    fn collapsed_if(self, may_duplicate: bool) -> PhysOp {
        if may_duplicate {
            PhysOp::Aggregate {
                input: Box::new(self),
            }
        } else {
            self
        }
    }

    /// Renders the physical operator tree — the body of
    /// [`Plan::explain_physical`](crate::plan::Plan::explain_physical).
    /// Unlike the logical `explain`, this shows the materialization points:
    /// `agg` nodes (pre-join aggregations) and hash-join build sides. With
    /// `threads > 1` the parallel operators additionally show how execution
    /// fans out: scans their morsel count, hash joins and aggregations
    /// their hash-partition count. Under the batch engine (`batch_rows` set)
    /// scans also show the batch row budget.
    pub(crate) fn render(&self, threads: usize, batch_rows: Option<usize>) -> String {
        let mut out = String::new();
        self.render_node(&mut out, "", "", threads, batch_rows);
        out
    }

    fn describe(&self, threads: usize, batch_rows: Option<usize>) -> String {
        let fanout = |label: &str| {
            if threads > 1 {
                format!(" [{label}={threads}]")
            } else {
                String::new()
            }
        };
        match self {
            PhysOp::Scan { name, schema } => {
                let batch = match batch_rows {
                    Some(n) => format!(" [batch={n}]"),
                    None => String::new(),
                };
                format!("scan {name} {schema:?}{batch}{}", fanout("morsels"))
            }
            PhysOp::Empty => "∅".to_string(),
            PhysOp::Select { .. } => "σ".to_string(),
            PhysOp::Project { keep, .. } => format!("π cols{keep:?}"),
            PhysOp::Permute { perm, .. } => format!("permute{perm:?}"),
            PhysOp::Union { .. } => "∪".to_string(),
            PhysOp::Aggregate { .. } => format!("agg{}", fanout("partitions")),
            PhysOp::HashJoin {
                build_keys,
                probe_keys,
                swapped,
                ..
            } => {
                let side = if *swapped { "right" } else { "left" };
                format!(
                    "hash-join build={side} keys{build_keys:?}/{probe_keys:?}{}",
                    fanout("partitions")
                )
            }
        }
    }

    fn children(&self) -> Vec<&PhysOp> {
        match self {
            PhysOp::Scan { .. } | PhysOp::Empty => Vec::new(),
            PhysOp::Select { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::Permute { input, .. }
            | PhysOp::Aggregate { input } => vec![input],
            PhysOp::Union { left, right } => vec![left, right],
            PhysOp::HashJoin { build, probe, .. } => vec![build, probe],
        }
    }

    fn render_node(
        &self,
        out: &mut String,
        prefix: &str,
        child_prefix: &str,
        threads: usize,
        batch_rows: Option<usize>,
    ) {
        out.push_str(prefix);
        out.push_str(&self.describe(threads, batch_rows));
        out.push('\n');
        let children = self.children();
        for (i, child) in children.iter().enumerate() {
            let last = i + 1 == children.len();
            let (branch, extension) = if last {
                ("└─ ", "   ")
            } else {
                ("├─ ", "│  ")
            };
            child.render_node(
                out,
                &format!("{child_prefix}{branch}"),
                &format!("{child_prefix}{extension}"),
                threads,
                batch_rows,
            );
        }
    }
}

/// Walks the physical tree and describes, per scan, the columnar layout the
/// batch engine will build against `source`: row count, batch count, and
/// each column's encoding — the body of
/// [`Plan::explain_batches`](crate::plan::Plan::explain_batches).
pub(crate) fn describe_scan_batches<K, S>(op: &PhysOp, source: &S) -> String
where
    K: Semiring,
    S: RelationSource<K>,
{
    fn walk<K, S>(op: &PhysOp, source: &S, out: &mut String)
    where
        K: Semiring,
        S: RelationSource<K>,
    {
        if let PhysOp::Scan { name, schema } = op {
            use crate::column::BatchProvenance;
            let relation = scan_relation(name, schema, source);
            let cached = source.batch_cache().and_then(|(cache, _)| {
                source
                    .relation_shared(name)
                    .and_then(|shared| cache.peek(&shared))
            });
            let (batches, provenance) = match cached {
                Some((batches, provenance)) => (batches, provenance),
                None => (
                    std::sync::Arc::new(crate::column::relation_to_batches(relation)),
                    BatchProvenance::Converted,
                ),
            };
            let provenance = match provenance {
                BatchProvenance::Converted => "converted".to_string(),
                BatchProvenance::Cached => "cached".to_string(),
                BatchProvenance::Patched(n) => format!("patched({n})"),
            };
            let encodings: Vec<String> = match batches.first() {
                Some(batch) => schema
                    .attributes()
                    .iter()
                    .zip(batch.columns())
                    .map(|(attr, col)| format!("{attr:?}={}", col.encoding()))
                    .collect(),
                None => schema
                    .attributes()
                    .iter()
                    .map(|attr| format!("{attr:?}=empty"))
                    .collect(),
            };
            out.push_str(&format!(
                "scan {name}: rows={} batches={} cols[{}] source={provenance}\n",
                relation.len(),
                batches.len(),
                encodings.join(", ")
            ));
        }
        for child in op.children() {
            walk(child, source, out);
        }
    }
    let mut out = String::new();
    walk(op, source, &mut out);
    out
}

/// Compiles an optimized logical plan into a physical operator tree.
pub(crate) fn compile(plan: &LogicalPlan) -> PhysOp {
    match plan {
        LogicalPlan::Scan { name, schema, .. } => PhysOp::Scan {
            name: name.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Empty { .. } => PhysOp::Empty,
        LogicalPlan::Union { left, right } => PhysOp::Union {
            left: Box::new(compile(left)),
            right: Box::new(compile(right)),
        },
        LogicalPlan::Select { predicate, input } => PhysOp::Select {
            predicate: CompiledPredicate::compile(predicate, input.schema()),
            input: Box::new(compile(input)),
        },
        LogicalPlan::Project { schema, input } => {
            let source = input.schema();
            let keep = schema
                .attributes()
                .iter()
                .map(|a| {
                    source
                        .position(a)
                        .expect("validated projection targets exist in the input schema")
                })
                .collect();
            PhysOp::Project {
                input: Box::new(compile(input)),
                keep,
            }
        }
        LogicalPlan::Rename {
            renaming,
            schema,
            input,
        } => {
            // Output column j holds the input column whose renamed image is
            // the j-th output attribute.
            let source = input.schema();
            let mut image_to_source = vec![usize::MAX; schema.arity()];
            for (i, a) in source.attributes().iter().enumerate() {
                let target = renaming.apply(a);
                let j = schema
                    .position(&target)
                    .expect("validated renaming maps the input schema onto the output schema");
                image_to_source[j] = i;
            }
            PhysOp::Permute {
                input: Box::new(compile(input)),
                perm: image_to_source,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            schema,
        } => {
            let shared = left.schema().intersection(right.schema());
            let builds_left = LogicalPlan::join_builds_left(left, right);
            let (build, probe) = if builds_left {
                (left, right)
            } else {
                (right, left)
            };
            let key_positions = |side: &LogicalPlan| {
                shared
                    .attributes()
                    .iter()
                    .map(|a| {
                        side.schema()
                            .position(a)
                            .expect("join keys exist on both inputs")
                    })
                    .collect::<Vec<usize>>()
            };
            let output = schema
                .attributes()
                .iter()
                .map(|a| match build.schema().position(a) {
                    Some(i) => ColSource::Build(i),
                    None => ColSource::Probe(
                        probe
                            .schema()
                            .position(a)
                            .expect("every join output attribute comes from an input"),
                    ),
                })
                .collect();
            PhysOp::HashJoin {
                build_keys: key_positions(build),
                probe_keys: key_positions(probe),
                build: Box::new(compile(build).collapsed_if(build.may_produce_duplicate_rows())),
                probe: Box::new(compile(probe).collapsed_if(probe.may_produce_duplicate_rows())),
                output,
                swapped: !builds_left,
            }
        }
    }
}

/// Streams the `(row, annotation)` pairs produced by an operator.
/// Annotations are [`Cow`]s borrowed from the scanned relations until an
/// operator combines them (see [`Ann`]).
///
/// # Panics
/// Panics if a scanned relation is missing from `source` or its schema
/// differs from the one the plan was built against — both indicate the plan
/// is being executed against a source inconsistent with its catalog.
fn stream<'a, K, S>(
    op: &'a PhysOp,
    source: &'a S,
) -> Box<dyn Iterator<Item = (Row, Ann<'a, K>)> + 'a>
where
    K: Semiring + 'a,
    S: RelationSource<K>,
{
    match op {
        PhysOp::Scan { name, schema } => {
            let relation = scan_relation(name, schema, source);
            Box::new(relation.iter().map(|(tuple, k)| {
                // Tuple fields iterate in sorted attribute order, which is
                // exactly the positional column order. The annotation is
                // lent, not cloned: ownership materializes only where an
                // operator combines annotations.
                let row: Row = tuple.values().cloned().collect();
                (row, Cow::Borrowed(k))
            }))
        }
        PhysOp::Empty => Box::new(std::iter::empty()),
        PhysOp::Select { input, predicate } => {
            Box::new(stream(input, source).filter(move |(row, _)| predicate.eval(row)))
        }
        PhysOp::Project { input, keep } => Box::new(stream(input, source).map(move |(row, k)| {
            let out: Row = keep.iter().map(|&i| row[i].clone()).collect();
            (out, k)
        })),
        PhysOp::Permute { input, perm } => Box::new(stream(input, source).map(move |(row, k)| {
            let out: Row = perm.iter().map(|&i| row[i].clone()).collect();
            (out, k)
        })),
        PhysOp::Union { left, right } => {
            Box::new(stream(left, source).chain(stream(right, source)))
        }
        PhysOp::Aggregate { input } => {
            let mut groups: FxHashMap<Row, K> = FxHashMap::default();
            for (row, k) in stream(input, source) {
                match groups.get_mut(&row) {
                    Some(existing) => existing.plus_assign(k.as_ref()),
                    None => {
                        groups.insert(row, k.into_owned());
                    }
                }
            }
            // Zero-summed rows are dropped: they cannot contribute to any
            // downstream product or materialization.
            Box::new(
                groups
                    .into_iter()
                    .filter(|(_, k)| !k.is_zero())
                    .map(|(row, k)| (row, Cow::Owned(k))),
            )
        }
        PhysOp::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            output,
            swapped,
        } => {
            let mut index: FxHashMap<Row, Vec<(Row, K)>> = FxHashMap::default();
            for (row, k) in stream(build, source) {
                let key: Row = build_keys.iter().map(|&i| row[i].clone()).collect();
                index.entry(key).or_default().push((row, k.into_owned()));
            }
            let probe_rows = stream(probe, source);
            // The probe key is assembled in a scratch buffer reused across
            // probe rows; the index is queried through `Borrow<[Value]>`,
            // so no per-row key allocation happens.
            let mut key_buf: Vec<Value> = Vec::with_capacity(probe_keys.len());
            Box::new(probe_rows.flat_map(move |(prow, pk)| {
                key_buf.clear();
                key_buf.extend(probe_keys.iter().map(|&i| prow[i].clone()));
                let mut matches = Vec::new();
                if let Some(entries) = index.get(key_buf.as_slice()) {
                    matches.reserve(entries.len());
                    for (brow, bk) in entries {
                        let row: Row = output
                            .iter()
                            .map(|src| match src {
                                ColSource::Build(i) => brow[*i].clone(),
                                ColSource::Probe(i) => prow[*i].clone(),
                            })
                            .collect();
                        let k = if *swapped {
                            pk.as_ref().times(bk)
                        } else {
                            bk.times(pk.as_ref())
                        };
                        matches.push((row, Cow::Owned(k)));
                    }
                }
                matches
            }))
        }
    }
}

/// Resolves a scanned relation against the execution source, with the
/// consistency panics shared by [`stream`] and the [`execute`] fast path.
pub(crate) fn scan_relation<'a, K, S>(
    name: &str,
    schema: &Schema,
    source: &'a S,
) -> &'a KRelation<K>
where
    K: Semiring,
    S: RelationSource<K>,
{
    let relation = source
        .relation(name)
        .unwrap_or_else(|| panic!("relation {name} missing from the execution source"));
    assert_eq!(
        relation.schema(),
        schema,
        "relation {name} changed schema between planning and execution"
    );
    relation
}

/// Runs a physical plan to completion, materializing the result relation
/// (summing the annotations of duplicate rows, per Definition 3.2).
///
/// With `ctx.threads == 1` — or for a semiring that cannot cross threads
/// ([`Semiring::is_portable`] is `false`) — this is the serial pipelined
/// path. Otherwise execution is morsel-driven (see [`exec_partitions`]) and
/// the partitions are folded into the result in partition order, which
/// together with commutativity of `+` makes the output identical to the
/// serial run.
pub(crate) fn execute<K, S>(
    op: &PhysOp,
    schema: &Schema,
    source: &S,
    ctx: &ExecContext,
) -> KRelation<K>
where
    K: Semiring,
    S: RelationSource<K>,
{
    // A plan that optimized down to a bare scan is the whole base relation:
    // skip the row round-trip (named tuple → positional row → named tuple)
    // entirely and clone the relation wholesale.
    if let PhysOp::Scan { name, schema: s } = op {
        return scan_relation(name, s, source).clone();
    }
    if ctx.mode == crate::plan::ExecMode::Batch {
        return super::batch::execute(op, schema, source, ctx);
    }
    let mut result = KRelation::empty(schema.clone());
    if ctx.threads > 1 && K::is_portable() {
        for chunk in exec_partitions(op, source, ctx.threads) {
            for (row, k) in chunk {
                result.insert_same_schema(Tuple::from_schema_row(schema, row), k);
            }
        }
    } else {
        for (row, k) in stream(op, source) {
            let tuple = Tuple::from_schema_row(schema, row);
            result.insert_same_schema(tuple, k.into_owned());
        }
    }
    result
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel execution
// ---------------------------------------------------------------------------
//
// The parallel executor works partition-at-a-time instead of row-at-a-time:
// every operator produces a list of materialized partitions (`Vec<Chunk>`),
// and the work *between* materialization points runs one scoped worker per
// partition. Scans split into contiguous morsels; hash joins and pre-join
// aggregations re-partition their inputs by FxHash of the key (an
// "exchange"), so each worker owns a complete key range and builds/probes —
// or aggregates — its partition independently, with no shared mutable state
// and no locks.
//
// Determinism: partitioning is by the seedless FxHash, exchanges preserve
// the relative row order of their input, workers are pure functions of
// their partition, and every merge walks partitions in index order. Two
// duplicate output rows either live in the same partition (equal rows hash
// equal) where their relative order matches the serial stream, or are
// summed at the root in partition order — and semiring `+` is commutative
// (a law, property-tested), so the folded annotation is the same value the
// serial path computes. Hence `execute` returns identical `KRelation`s at
// every thread count.
//
// Annotations cross the worker boundary through the semiring's portable
// encoding (`Semiring::to_portable` / `from_portable`): plain data
// semirings travel as-is, circuit handles are re-encoded into the worker's
// thread-local arena and the results merged back into the coordinator's
// arena in partition order (the share-safe arena story of
// `provsem_semiring::circuit`).

/// A materialized slice of an operator's output: rows with owned
/// annotations.
pub(crate) type Chunk<K> = Vec<(Row, K)>;

/// What an exchange hash-partitions on.
enum PartitionKey<'a> {
    /// The values at these column indices (join keys).
    Columns(&'a [usize]),
    /// Every column (pre-join aggregation: duplicates of a row must meet in
    /// one partition).
    WholeRow,
}

/// Hash-partitions materialized chunks into exactly `partitions` output
/// partitions, preserving the relative order of rows within each partition.
/// Rows with equal keys always land in the same partition; an empty column
/// key sends everything to partition 0 (a cross join cannot be split by
/// key).
///
/// The pass is a coordinator-side move (hash + `Vec` push per row, no
/// annotation clones and no semiring ops), but it is still a serial
/// O(rows) fraction of every pipeline breaker — pushing the partitioning
/// into the producing workers (each returning `partitions` sub-chunks,
/// concatenated per index in producer order) is the known next step if
/// multi-core profiles show exchanges on the critical path.
fn exchange<K>(chunks: Vec<Chunk<K>>, partitions: usize, key: PartitionKey<'_>) -> Vec<Chunk<K>> {
    let mut out: Vec<Chunk<K>> = (0..partitions).map(|_| Vec::new()).collect();
    for chunk in chunks {
        for (row, k) in chunk {
            let h = match key {
                PartitionKey::Columns(cols) => {
                    let mut hasher = FxHasher::default();
                    for &c in cols {
                        row[c].hash(&mut hasher);
                    }
                    hasher.finish()
                }
                PartitionKey::WholeRow => fx_hash_one(&row),
            };
            out[crate::par::part_of(h, partitions)].push((row, k));
        }
    }
    out
}

/// Seals a chunk for transport to another thread: rows are plain `Send`
/// data, annotations go through the semiring's portable encoding.
fn seal<K: Semiring>(chunk: Chunk<K>) -> (Vec<Row>, Portable) {
    let (rows, anns): (Vec<Row>, Vec<K>) = chunk.into_iter().unzip();
    let token = K::to_portable(anns);
    (rows, token)
}

/// Opens a sealed chunk in the current thread.
fn open<K: Semiring>((rows, token): (Vec<Row>, Portable)) -> Chunk<K> {
    rows.into_iter().zip(K::from_portable(token)).collect()
}

/// Caps the number of partitions at `parts` by concatenating runs of
/// adjacent partitions (order-preserving), so a deep union tree cannot
/// oversubscribe the thread budget.
fn coalesce<K>(chunks: Vec<Chunk<K>>, parts: usize) -> Vec<Chunk<K>> {
    if chunks.len() <= parts {
        return chunks;
    }
    let per = chunks.len().div_ceil(parts);
    let mut out: Vec<Chunk<K>> = Vec::with_capacity(parts);
    for (i, chunk) in chunks.into_iter().enumerate() {
        if i % per == 0 {
            out.push(chunk);
        } else {
            out.last_mut().expect("pushed above").extend(chunk);
        }
    }
    out
}

/// Maps `work` over the chunks — one scoped worker per chunk when the input
/// is large enough, inline otherwise — returning output chunks in input
/// order. The annotation batches cross the thread boundary sealed
/// ([`seal`]/[`open`]), so this compiles for *every* semiring; callers gate
/// on [`Semiring::is_portable`].
pub(crate) fn par_map_chunks<K, F>(chunks: Vec<Chunk<K>>, threads: usize, work: F) -> Vec<Chunk<K>>
where
    K: Semiring,
    F: Fn(usize, Chunk<K>) -> Chunk<K> + Sync,
{
    let chunks = coalesce(chunks, threads);
    let total: usize = chunks.iter().map(Vec::len).sum();
    if chunks.len() <= 1 || total < crate::par::SPAWN_THRESHOLD {
        return chunks
            .into_iter()
            .enumerate()
            .map(|(i, chunk)| work(i, chunk))
            .collect();
    }
    let sealed: Vec<_> = chunks.into_iter().map(seal::<K>).enumerate().collect();
    let outputs = crate::par::spawn_map(sealed, |(i, payload)| seal(work(i, open::<K>(payload))));
    outputs.into_iter().map(open::<K>).collect()
}

/// [`par_map_chunks`] for operators with two inputs per partition (the
/// partitioned hash join: build chunk + probe chunk, one worker per key
/// partition).
fn par_map_chunk_pairs<K, F>(pairs: Vec<(Chunk<K>, Chunk<K>)>, work: F) -> Vec<Chunk<K>>
where
    K: Semiring,
    F: Fn(Chunk<K>, Chunk<K>) -> Chunk<K> + Sync,
{
    let total: usize = pairs.iter().map(|(b, p)| b.len() + p.len()).sum();
    if pairs.len() <= 1 || total < crate::par::SPAWN_THRESHOLD {
        return pairs
            .into_iter()
            .map(|(build, probe)| work(build, probe))
            .collect();
    }
    let sealed: Vec<_> = pairs
        .into_iter()
        .map(|(build, probe)| (seal::<K>(build), seal::<K>(probe)))
        .collect();
    let outputs = crate::par::spawn_map(sealed, |(build, probe)| {
        seal(work(open::<K>(build), open::<K>(probe)))
    });
    outputs.into_iter().map(open::<K>).collect()
}

/// Aggregates one partition: duplicates of a row were exchanged into the
/// same partition, so a per-partition hash aggregation is globally exact.
/// Output follows the deterministic FxHash map iteration order.
pub(crate) fn aggregate_chunk<K: Semiring>(chunk: Chunk<K>) -> Chunk<K> {
    let mut groups: FxHashMap<Row, K> = FxHashMap::default();
    for (row, k) in chunk {
        match groups.get_mut(&row) {
            Some(existing) => existing.plus_assign(&k),
            None => {
                groups.insert(row, k);
            }
        }
    }
    groups.into_iter().filter(|(_, k)| !k.is_zero()).collect()
}

/// Joins one key partition: build a local hash index over the build chunk
/// (in chunk order), stream the probe chunk through it (in chunk order) —
/// the per-partition mirror of the serial [`PhysOp::HashJoin`] streaming.
fn join_chunk<K: Semiring>(
    build: Chunk<K>,
    probe: Chunk<K>,
    build_keys: &[usize],
    probe_keys: &[usize],
    output: &[ColSource],
    swapped: bool,
) -> Chunk<K> {
    let mut index: FxHashMap<Row, Vec<(Row, K)>> = FxHashMap::default();
    for (row, k) in build {
        let key: Row = build_keys.iter().map(|&i| row[i].clone()).collect();
        index.entry(key).or_default().push((row, k));
    }
    let mut out: Chunk<K> = Vec::new();
    let mut key_buf: Vec<Value> = Vec::with_capacity(probe_keys.len());
    for (prow, pk) in probe {
        key_buf.clear();
        key_buf.extend(probe_keys.iter().map(|&i| prow[i].clone()));
        if let Some(entries) = index.get(key_buf.as_slice()) {
            out.reserve(entries.len());
            for (brow, bk) in entries {
                let row: Row = output
                    .iter()
                    .map(|src| match src {
                        ColSource::Build(i) => brow[*i].clone(),
                        ColSource::Probe(i) => prow[*i].clone(),
                    })
                    .collect();
                let k = if swapped { pk.times(bk) } else { bk.times(&pk) };
                out.push((row, k));
            }
        }
    }
    out
}

/// One step of a pipelined unary chain (σ/π/permute), compiled to row form.
/// Projection and permutation are the same physical operation — gather
/// columns by index — so the chain is just filters and gathers.
enum RowStep<'a> {
    /// Keep the row iff the predicate holds.
    Filter(&'a CompiledPredicate),
    /// Rebuild the row from the given input column indices.
    Gather(&'a [usize]),
}

/// Applies a unary chain (innermost step first) to one row; `None` when a
/// filter rejects it. Annotations are untouched — callers clone or move the
/// annotation only for rows that survive.
fn apply_steps(mut row: Row, steps: &[RowStep<'_>]) -> Option<Row> {
    for step in steps {
        match step {
            RowStep::Filter(predicate) => {
                if !predicate.eval(&row) {
                    return None;
                }
            }
            RowStep::Gather(cols) => row = cols.iter().map(|&i| row[i].clone()).collect(),
        }
    }
    Some(row)
}

/// Recursively executes an operator into materialized partitions.
///
/// * scans split into (up to) `threads` contiguous morsels;
/// * chains of σ/π/permute are **fused**: peeled off the operator tree into
///   a [`RowStep`] list and applied in a single per-partition pass — during
///   morsel materialization when they sit directly over a scan (so filtered
///   rows never clone their annotation, mirroring the serial path's
///   borrowed-`Cow` discipline), or in one worker wave above a pipeline
///   breaker (never one wave per operator);
/// * ∪ concatenates its inputs' partitions (left before right);
/// * aggregation exchanges on the whole row, then aggregates per partition;
/// * hash joins exchange both inputs on the join key and run one
///   build+probe worker per key partition.
fn exec_partitions<K, S>(op: &PhysOp, source: &S, threads: usize) -> Vec<Chunk<K>>
where
    K: Semiring,
    S: RelationSource<K>,
{
    // Peel the unary streaming chain off the top of `op`, outermost first…
    let mut steps: Vec<RowStep<'_>> = Vec::new();
    let mut op = op;
    loop {
        match op {
            PhysOp::Select { input, predicate } => {
                steps.push(RowStep::Filter(predicate));
                op = input;
            }
            PhysOp::Project { input, keep } => {
                steps.push(RowStep::Gather(keep));
                op = input;
            }
            PhysOp::Permute { input, perm } => {
                steps.push(RowStep::Gather(perm));
                op = input;
            }
            _ => break,
        }
    }
    // …then flip it so `apply_steps` runs innermost-first.
    steps.reverse();

    match op {
        PhysOp::Scan { name, schema } => {
            // The *filter prefix* of the chain (selections pushed to the
            // bottom by the optimizer) runs during morsel materialization,
            // so rejected rows never clone their annotation — the parallel
            // counterpart of the serial path's borrowed-`Cow` discipline.
            // Everything after the first gather runs in the workers.
            let filters = steps
                .iter()
                .take_while(|step| matches!(step, RowStep::Filter(_)))
                .count();
            let (prefix, rest) = steps.split_at(filters);
            let relation = scan_relation(name, schema, source);
            let rows: Chunk<K> = relation
                .iter()
                .filter_map(|(tuple, k)| {
                    let row: Row = tuple.values().cloned().collect();
                    apply_steps(row, prefix).map(|row| (row, k.clone()))
                })
                .collect();
            let parts = crate::par::chunked(rows, threads);
            if rest.is_empty() {
                return parts;
            }
            par_map_chunks(parts, threads, |_, chunk: Chunk<K>| {
                chunk
                    .into_iter()
                    .filter_map(|(row, k)| apply_steps(row, rest).map(|row| (row, k)))
                    .collect()
            })
        }
        PhysOp::Empty => Vec::new(),
        breaker => {
            let parts = exec_breaker(breaker, source, threads);
            if steps.is_empty() {
                return parts;
            }
            par_map_chunks(parts, threads, |_, chunk: Chunk<K>| {
                chunk
                    .into_iter()
                    .filter_map(|(row, k)| apply_steps(row, &steps).map(|row| (row, k)))
                    .collect()
            })
        }
    }
}

/// Executes a pipeline breaker (∪/aggregation/hash join) into partitions;
/// the unary chains above it were already peeled off by
/// [`exec_partitions`].
fn exec_breaker<K, S>(op: &PhysOp, source: &S, threads: usize) -> Vec<Chunk<K>>
where
    K: Semiring,
    S: RelationSource<K>,
{
    match op {
        PhysOp::Scan { .. }
        | PhysOp::Empty
        | PhysOp::Select { .. }
        | PhysOp::Project { .. }
        | PhysOp::Permute { .. } => {
            unreachable!("exec_partitions handles scans and peels unary operators")
        }
        PhysOp::Union { left, right } => {
            let mut parts = exec_partitions(left, source, threads);
            parts.extend(exec_partitions(right, source, threads));
            parts
        }
        PhysOp::Aggregate { input } => {
            let parts = exchange(
                exec_partitions(input, source, threads),
                threads,
                PartitionKey::WholeRow,
            );
            par_map_chunks(parts, threads, |_, chunk| aggregate_chunk(chunk))
        }
        PhysOp::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            output,
            swapped,
        } => {
            let build_parts = exchange(
                exec_partitions(build, source, threads),
                threads,
                PartitionKey::Columns(build_keys),
            );
            let probe_parts = exchange(
                exec_partitions(probe, source, threads),
                threads,
                PartitionKey::Columns(probe_keys),
            );
            let pairs: Vec<_> = build_parts.into_iter().zip(probe_parts).collect();
            par_map_chunk_pairs(pairs, |bchunk, pchunk| {
                join_chunk(bchunk, pchunk, build_keys, probe_keys, output, *swapped)
            })
        }
    }
}

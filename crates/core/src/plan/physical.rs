//! Physical operators over *positional* tuples.
//!
//! At plan time every attribute is resolved to a column index, so the
//! operators never touch attribute names: rows are `Box<[Value]>` slices
//! whose columns follow the node's output schema (attributes in sorted
//! order, matching [`Schema::attributes`]), and predicates are compiled to
//! column-index form ([`CompiledPredicate`]).
//!
//! Execution is pipelined (iterator-style): selection, projection, renaming
//! (a column permutation) and union stream rows without materializing
//! anything. Materialization happens in exactly three places: the **build
//! side of a hash join** (an index from key columns to rows), a
//! **pre-join aggregation** on any join input that could stream duplicate
//! rows per [`LogicalPlan::may_produce_duplicate_rows`] (so joins always
//! see distinct, annotation-summed rows — see [`PhysOp::Aggregate`];
//! rename-like projections that only drop constant-pinned or
//! equality-determined columns stay pipelined), and the **plan root** (the
//! output [`KRelation`], which performs the final `Σ` of duplicate rows).
//! Annotations are borrowed from the scans ([`Cow`]) until an operator
//! actually combines them, so filtered-out and passthrough rows never clone
//! a (possibly expensive) annotation.

use crate::plan::RelationSource;
use crate::predicate::Predicate;
use crate::relation::KRelation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use provsem_semiring::Semiring;
use std::borrow::Cow;
use std::collections::HashMap;

use super::logical::LogicalPlan;

/// A positional row: one value per output column of the producing operator.
pub(crate) type Row = Box<[Value]>;

/// An annotation flowing through the pipeline. Scans lend their annotations
/// (`Cow::Borrowed`) so that rows a selection filters out — or that only
/// pass through to the root — never pay a clone of a potentially expensive
/// annotation (an expanded ℕ\[X\] polynomial, say); ownership materializes
/// only where an operator actually combines annotations.
type Ann<'a, K> = Cow<'a, K>;

/// Where a hash join output column comes from.
#[derive(Clone, Debug)]
pub(crate) enum ColSource {
    /// Column index into the build-side row.
    Build(usize),
    /// Column index into the probe-side row.
    Probe(usize),
}

/// A selection predicate compiled to column indices. Attributes missing
/// from the operator's schema compile to constant `false` comparisons,
/// mirroring [`Predicate::eval`]'s missing-attribute semantics.
#[derive(Clone, Debug)]
pub(crate) enum CompiledPredicate {
    /// A constant.
    Const(bool),
    /// Column equals a constant value.
    ColEqValue(usize, Value),
    /// Column differs from a constant value.
    ColNeValue(usize, Value),
    /// Two columns are equal.
    ColEqCol(usize, usize),
    /// Conjunction.
    And(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Disjunction.
    Or(Box<CompiledPredicate>, Box<CompiledPredicate>),
}

impl CompiledPredicate {
    /// Compiles a named predicate against a schema, resolving attributes to
    /// column positions and constant-folding where possible.
    pub(crate) fn compile(predicate: &Predicate, schema: &Schema) -> CompiledPredicate {
        use CompiledPredicate as C;
        match predicate {
            Predicate::True => C::Const(true),
            Predicate::False => C::Const(false),
            Predicate::AttrEqValue(a, v) => match schema.position(a) {
                Some(i) => C::ColEqValue(i, v.clone()),
                None => C::Const(false),
            },
            Predicate::AttrNeValue(a, v) => match schema.position(a) {
                Some(i) => C::ColNeValue(i, v.clone()),
                None => C::Const(false),
            },
            Predicate::AttrEqAttr(a, b) => match (schema.position(a), schema.position(b)) {
                (Some(i), Some(j)) => C::ColEqCol(i, j),
                _ => C::Const(false),
            },
            Predicate::And(p, q) => match (C::compile(p, schema), C::compile(q, schema)) {
                (C::Const(false), _) | (_, C::Const(false)) => C::Const(false),
                (C::Const(true), other) | (other, C::Const(true)) => other,
                (cp, cq) => C::And(Box::new(cp), Box::new(cq)),
            },
            Predicate::Or(p, q) => match (C::compile(p, schema), C::compile(q, schema)) {
                (C::Const(true), _) | (_, C::Const(true)) => C::Const(true),
                (C::Const(false), other) | (other, C::Const(false)) => other,
                (cp, cq) => C::Or(Box::new(cp), Box::new(cq)),
            },
        }
    }

    /// Evaluates the compiled predicate on a row.
    pub(crate) fn eval(&self, row: &[Value]) -> bool {
        match self {
            CompiledPredicate::Const(b) => *b,
            CompiledPredicate::ColEqValue(i, v) => row[*i] == *v,
            CompiledPredicate::ColNeValue(i, v) => row[*i] != *v,
            CompiledPredicate::ColEqCol(i, j) => row[*i] == row[*j],
            CompiledPredicate::And(p, q) => p.eval(row) && q.eval(row),
            CompiledPredicate::Or(p, q) => p.eval(row) || q.eval(row),
        }
    }
}

/// A physical operator tree, structurally parallel to the optimized
/// [`LogicalPlan`] it was compiled from.
#[derive(Clone, Debug)]
pub(crate) enum PhysOp {
    /// Scan of a base relation; rows follow the relation's sorted schema.
    Scan {
        /// Relation name to resolve against the [`RelationSource`].
        name: String,
        /// Expected schema (checked against the source at execution time).
        schema: Schema,
    },
    /// Produces no rows.
    Empty,
    /// Pipelined filter.
    Select {
        /// Input operator.
        input: Box<PhysOp>,
        /// Compiled predicate.
        predicate: CompiledPredicate,
    },
    /// Pipelined column projection: output column `j` is input column
    /// `keep[j]`. Duplicate rows are *not* summed here — that happens at
    /// the next materialization point (join build side or plan root).
    Project {
        /// Input operator.
        input: Box<PhysOp>,
        /// Input column index per output column.
        keep: Vec<usize>,
    },
    /// Pipelined column permutation (the physical form of a renaming:
    /// renamed attributes sort differently, so columns move).
    Permute {
        /// Input operator.
        input: Box<PhysOp>,
        /// Input column index per output column.
        perm: Vec<usize>,
    },
    /// Pipelined concatenation; duplicate-row summation happens at the next
    /// materialization point.
    Union {
        /// Left input.
        left: Box<PhysOp>,
        /// Right input.
        right: Box<PhysOp>,
    },
    /// Hash aggregation: materializes the input, summing the annotations of
    /// duplicate rows (the `Σ` of Definition 3.2's projection). Inserted
    /// below join inputs that could stream duplicate rows (per the logical
    /// [`LogicalPlan::may_produce_duplicate_rows`] analysis: unions, and
    /// projections that drop a column not determined by the kept ones), so
    /// joins always see distinct rows — without this, pipelined projections
    /// would feed every un-collapsed duplicate into the join and the output
    /// blows up multiplicatively.
    Aggregate {
        /// Input operator.
        input: Box<PhysOp>,
    },
    /// Hash join: materializes the build side indexed by its key columns,
    /// then streams the probe side.
    HashJoin {
        /// Build-side operator (fully materialized into the hash index).
        build: Box<PhysOp>,
        /// Probe-side operator (streamed).
        probe: Box<PhysOp>,
        /// Key column indices on the build side.
        build_keys: Vec<usize>,
        /// Key column indices on the probe side.
        probe_keys: Vec<usize>,
        /// Source of each output column.
        output: Vec<ColSource>,
        /// `true` when build = the *right* logical input, in which case the
        /// annotation product is `probe · build` to preserve the
        /// left-times-right order of Definition 3.2.
        swapped: bool,
    },
}

impl PhysOp {
    /// Wraps a join input in an [`PhysOp::Aggregate`] when the logical
    /// analysis ([`LogicalPlan::may_produce_duplicate_rows`]) says it could
    /// stream duplicate rows. The analysis lives on the logical plan
    /// because it needs schemas and selection predicates — it keeps
    /// rename-like projections (dropping only constant-pinned or
    /// equality-determined columns) pipelined.
    fn collapsed_if(self, may_duplicate: bool) -> PhysOp {
        if may_duplicate {
            PhysOp::Aggregate {
                input: Box::new(self),
            }
        } else {
            self
        }
    }

    /// Renders the physical operator tree — the body of
    /// [`Plan::explain_physical`](crate::plan::Plan::explain_physical).
    /// Unlike the logical `explain`, this shows the materialization points:
    /// `agg` nodes (pre-join aggregations) and hash-join build sides.
    pub(crate) fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(&mut out, "", "");
        out
    }

    fn describe(&self) -> String {
        match self {
            PhysOp::Scan { name, schema } => format!("scan {name} {schema:?}"),
            PhysOp::Empty => "∅".to_string(),
            PhysOp::Select { .. } => "σ".to_string(),
            PhysOp::Project { keep, .. } => format!("π cols{keep:?}"),
            PhysOp::Permute { perm, .. } => format!("permute{perm:?}"),
            PhysOp::Union { .. } => "∪".to_string(),
            PhysOp::Aggregate { .. } => "agg".to_string(),
            PhysOp::HashJoin {
                build_keys,
                probe_keys,
                swapped,
                ..
            } => {
                let side = if *swapped { "right" } else { "left" };
                format!("hash-join build={side} keys{build_keys:?}/{probe_keys:?}")
            }
        }
    }

    fn children(&self) -> Vec<&PhysOp> {
        match self {
            PhysOp::Scan { .. } | PhysOp::Empty => Vec::new(),
            PhysOp::Select { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::Permute { input, .. }
            | PhysOp::Aggregate { input } => vec![input],
            PhysOp::Union { left, right } => vec![left, right],
            PhysOp::HashJoin { build, probe, .. } => vec![build, probe],
        }
    }

    fn render_node(&self, out: &mut String, prefix: &str, child_prefix: &str) {
        out.push_str(prefix);
        out.push_str(&self.describe());
        out.push('\n');
        let children = self.children();
        for (i, child) in children.iter().enumerate() {
            let last = i + 1 == children.len();
            let (branch, extension) = if last {
                ("└─ ", "   ")
            } else {
                ("├─ ", "│  ")
            };
            child.render_node(
                out,
                &format!("{child_prefix}{branch}"),
                &format!("{child_prefix}{extension}"),
            );
        }
    }
}

/// Compiles an optimized logical plan into a physical operator tree.
pub(crate) fn compile(plan: &LogicalPlan) -> PhysOp {
    match plan {
        LogicalPlan::Scan { name, schema, .. } => PhysOp::Scan {
            name: name.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Empty { .. } => PhysOp::Empty,
        LogicalPlan::Union { left, right } => PhysOp::Union {
            left: Box::new(compile(left)),
            right: Box::new(compile(right)),
        },
        LogicalPlan::Select { predicate, input } => PhysOp::Select {
            predicate: CompiledPredicate::compile(predicate, input.schema()),
            input: Box::new(compile(input)),
        },
        LogicalPlan::Project { schema, input } => {
            let source = input.schema();
            let keep = schema
                .attributes()
                .iter()
                .map(|a| {
                    source
                        .position(a)
                        .expect("validated projection targets exist in the input schema")
                })
                .collect();
            PhysOp::Project {
                input: Box::new(compile(input)),
                keep,
            }
        }
        LogicalPlan::Rename {
            renaming,
            schema,
            input,
        } => {
            // Output column j holds the input column whose renamed image is
            // the j-th output attribute.
            let source = input.schema();
            let mut image_to_source = vec![usize::MAX; schema.arity()];
            for (i, a) in source.attributes().iter().enumerate() {
                let target = renaming.apply(a);
                let j = schema
                    .position(&target)
                    .expect("validated renaming maps the input schema onto the output schema");
                image_to_source[j] = i;
            }
            PhysOp::Permute {
                input: Box::new(compile(input)),
                perm: image_to_source,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            schema,
        } => {
            let shared = left.schema().intersection(right.schema());
            let builds_left = LogicalPlan::join_builds_left(left, right);
            let (build, probe) = if builds_left {
                (left, right)
            } else {
                (right, left)
            };
            let key_positions = |side: &LogicalPlan| {
                shared
                    .attributes()
                    .iter()
                    .map(|a| {
                        side.schema()
                            .position(a)
                            .expect("join keys exist on both inputs")
                    })
                    .collect::<Vec<usize>>()
            };
            let output = schema
                .attributes()
                .iter()
                .map(|a| match build.schema().position(a) {
                    Some(i) => ColSource::Build(i),
                    None => ColSource::Probe(
                        probe
                            .schema()
                            .position(a)
                            .expect("every join output attribute comes from an input"),
                    ),
                })
                .collect();
            PhysOp::HashJoin {
                build_keys: key_positions(build),
                probe_keys: key_positions(probe),
                build: Box::new(compile(build).collapsed_if(build.may_produce_duplicate_rows())),
                probe: Box::new(compile(probe).collapsed_if(probe.may_produce_duplicate_rows())),
                output,
                swapped: !builds_left,
            }
        }
    }
}

/// Streams the `(row, annotation)` pairs produced by an operator.
/// Annotations are [`Cow`]s borrowed from the scanned relations until an
/// operator combines them (see [`Ann`]).
///
/// # Panics
/// Panics if a scanned relation is missing from `source` or its schema
/// differs from the one the plan was built against — both indicate the plan
/// is being executed against a source inconsistent with its catalog.
fn stream<'a, K, S>(
    op: &'a PhysOp,
    source: &'a S,
) -> Box<dyn Iterator<Item = (Row, Ann<'a, K>)> + 'a>
where
    K: Semiring + 'a,
    S: RelationSource<K>,
{
    match op {
        PhysOp::Scan { name, schema } => {
            let relation = scan_relation(name, schema, source);
            Box::new(relation.iter().map(|(tuple, k)| {
                // Tuple fields iterate in sorted attribute order, which is
                // exactly the positional column order. The annotation is
                // lent, not cloned: ownership materializes only where an
                // operator combines annotations.
                let row: Row = tuple.values().cloned().collect();
                (row, Cow::Borrowed(k))
            }))
        }
        PhysOp::Empty => Box::new(std::iter::empty()),
        PhysOp::Select { input, predicate } => {
            Box::new(stream(input, source).filter(move |(row, _)| predicate.eval(row)))
        }
        PhysOp::Project { input, keep } => Box::new(stream(input, source).map(move |(row, k)| {
            let out: Row = keep.iter().map(|&i| row[i].clone()).collect();
            (out, k)
        })),
        PhysOp::Permute { input, perm } => Box::new(stream(input, source).map(move |(row, k)| {
            let out: Row = perm.iter().map(|&i| row[i].clone()).collect();
            (out, k)
        })),
        PhysOp::Union { left, right } => {
            Box::new(stream(left, source).chain(stream(right, source)))
        }
        PhysOp::Aggregate { input } => {
            let mut groups: HashMap<Row, K> = HashMap::new();
            for (row, k) in stream(input, source) {
                match groups.get_mut(&row) {
                    Some(existing) => existing.plus_assign(k.as_ref()),
                    None => {
                        groups.insert(row, k.into_owned());
                    }
                }
            }
            // Zero-summed rows are dropped: they cannot contribute to any
            // downstream product or materialization.
            Box::new(
                groups
                    .into_iter()
                    .filter(|(_, k)| !k.is_zero())
                    .map(|(row, k)| (row, Cow::Owned(k))),
            )
        }
        PhysOp::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            output,
            swapped,
        } => {
            let mut index: HashMap<Row, Vec<(Row, K)>> = HashMap::new();
            for (row, k) in stream(build, source) {
                let key: Row = build_keys.iter().map(|&i| row[i].clone()).collect();
                index.entry(key).or_default().push((row, k.into_owned()));
            }
            let probe_rows = stream(probe, source);
            // The probe key is assembled in a scratch buffer reused across
            // probe rows; the index is queried through `Borrow<[Value]>`,
            // so no per-row key allocation happens.
            let mut key_buf: Vec<Value> = Vec::with_capacity(probe_keys.len());
            Box::new(probe_rows.flat_map(move |(prow, pk)| {
                key_buf.clear();
                key_buf.extend(probe_keys.iter().map(|&i| prow[i].clone()));
                let mut matches = Vec::new();
                if let Some(entries) = index.get(key_buf.as_slice()) {
                    matches.reserve(entries.len());
                    for (brow, bk) in entries {
                        let row: Row = output
                            .iter()
                            .map(|src| match src {
                                ColSource::Build(i) => brow[*i].clone(),
                                ColSource::Probe(i) => prow[*i].clone(),
                            })
                            .collect();
                        let k = if *swapped {
                            pk.as_ref().times(bk)
                        } else {
                            bk.times(pk.as_ref())
                        };
                        matches.push((row, Cow::Owned(k)));
                    }
                }
                matches
            }))
        }
    }
}

/// Resolves a scanned relation against the execution source, with the
/// consistency panics shared by [`stream`] and the [`execute`] fast path.
fn scan_relation<'a, K, S>(name: &str, schema: &Schema, source: &'a S) -> &'a KRelation<K>
where
    K: Semiring,
    S: RelationSource<K>,
{
    let relation = source
        .relation(name)
        .unwrap_or_else(|| panic!("relation {name} missing from the execution source"));
    assert_eq!(
        relation.schema(),
        schema,
        "relation {name} changed schema between planning and execution"
    );
    relation
}

/// Runs a physical plan to completion, materializing the result relation
/// (summing the annotations of duplicate rows, per Definition 3.2).
pub(crate) fn execute<K, S>(op: &PhysOp, schema: &Schema, source: &S) -> KRelation<K>
where
    K: Semiring,
    S: RelationSource<K>,
{
    // A plan that optimized down to a bare scan is the whole base relation:
    // skip the row round-trip (named tuple → positional row → named tuple)
    // entirely and clone the relation wholesale.
    if let PhysOp::Scan { name, schema: s } = op {
        return scan_relation(name, s, source).clone();
    }
    let mut result = KRelation::empty(schema.clone());
    for (row, k) in stream(op, source) {
        let tuple = Tuple::from_schema_row(schema, row);
        result.insert_same_schema(tuple, k.into_owned());
    }
    result
}

//! Incremental view maintenance over the positional physical operators.
//!
//! A [`MaterializedView`] is a plan's output [`KRelation`] plus the retained
//! per-operator state needed to absorb changes without re-executing: every
//! hash join keeps both of its sides indexed by the join key. Changes arrive
//! as a [`DeltaBatch`] — per-relation K-relations of *signed* annotation
//! deltas (`new = old + Δ`), so over a [`Ring`](provsem_semiring::ring::Ring)
//! such as ℤ a deletion is just an insertion of `-k` — and propagate through
//! the operator tree by the classic delta rules:
//!
//! | operator      | delta rule |
//! |---------------|------------|
//! | σ_P(R)        | `Δ = σ_P(ΔR)` |
//! | π_U(R)        | `Δ = π_U(ΔR)` |
//! | ρ_β(R)        | `Δ = ρ_β(ΔR)` |
//! | R ∪ S         | `Δ = ΔR ∪ ΔS` |
//! | Σ-aggregate   | `Δ = agg(ΔR)` (annotation sums are linear) |
//! | R ⋈ S         | `Δ = ΔR ⋈ S ∪ R ⋈ ΔS ∪ ΔR ⋈ ΔS` |
//!
//! every rule is *linear* in the annotations (a consequence of Definition
//! 3.2's semiring algebra: `+` distributes through each operator), so the
//! propagated delta is exact — [`Plan::maintain`] leaves the view equal to
//! re-executing the plan against the updated base, annotation-for-annotation.
//! The join rule is evaluated in two passes to avoid the three-way product:
//! `ΔB ⋈ P_old`, then (after folding `ΔB` into the retained build index)
//! `B_new ⋈ ΔP`, which expands to exactly the three terms above.
//!
//! The work done per batch is proportional to |Δ| (and the fan-out it
//! touches), never to |base| — the `fig_ivm_maintenance` bench group pins
//! this.
//!
//! Determinism mirrors the executor's PR-5 guarantee: delta propagation
//! visits rows in a canonical order (batch relations iterate sorted, all
//! stateful updates run on the coordinator), and the only parallel pieces —
//! the stateless σ/π/ρ transforms, split into contiguous morsels by
//! [`crate::par::chunked`] and re-concatenated in chunk order — produce the
//! byte-identical row sequence at every thread count. Hence
//! [`Plan::maintain_with`] yields the same view (result *and* retained
//! state) for every [`ExecContext`].

use crate::database::Database;
use crate::plan::batch::eval_predicate_mask;
use crate::plan::column::Batch;
use crate::plan::physical::{
    aggregate_chunk, par_map_chunks, scan_relation, Chunk, ColSource, CompiledPredicate, PhysOp,
    Row,
};
use crate::plan::{ExecContext, ExecMode, Plan, RelationSource};
use crate::relation::KRelation;
use crate::tuple::Tuple;
use crate::value::Value;
use provsem_semiring::fxhash::FxHashMap;
use provsem_semiring::ring::Ring;
use provsem_semiring::Semiring;
use std::collections::BTreeMap;

/// A batch of base-relation changes: for each named relation, a K-relation
/// of annotation *deltas*. Applying the batch means `new = old + Δ`
/// tuple-wise; inserting the same tuple twice sums the deltas, and a delta
/// that sums to the annotation's inverse deletes the tuple (the K-relation
/// zero-pruning drops it from the support).
#[derive(Clone, Debug)]
pub struct DeltaBatch<K: Semiring> {
    relations: BTreeMap<String, KRelation<K>>,
}

impl<K: Semiring> Default for DeltaBatch<K> {
    fn default() -> Self {
        DeltaBatch {
            relations: BTreeMap::new(),
        }
    }
}

impl<K: Semiring> DeltaBatch<K> {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Adds `delta` to `tuple`'s annotation in `relation`. An insertion of a
    /// new tuple is a delta from `0`; repeated inserts of the same tuple
    /// accumulate.
    ///
    /// # Panics
    /// Panics if `tuple`'s schema differs from earlier tuples recorded for
    /// the same relation.
    pub fn insert(&mut self, relation: impl Into<String>, tuple: Tuple, delta: K) {
        if delta.is_zero() {
            return;
        }
        let name = relation.into();
        let rel = self
            .relations
            .entry(name)
            .or_insert_with(|| KRelation::empty(tuple.schema()));
        rel.insert(tuple, delta);
    }

    /// Records a deletion: subtracts `annotation` from `tuple` in
    /// `relation`. Requires a [`Ring`], because a deletion is an insertion
    /// of the additive inverse — this is the precise sense in which
    /// ℤ-relations make deletions first-class.
    pub fn delete(&mut self, relation: impl Into<String>, tuple: Tuple, annotation: K)
    where
        K: Ring,
    {
        self.insert(relation, tuple, annotation.neg());
    }

    /// Deletes one "copy" of `tuple` (subtracts `1`).
    pub fn delete_one(&mut self, relation: impl Into<String>, tuple: Tuple)
    where
        K: Ring,
    {
        self.delete(relation, tuple, K::one());
    }

    /// The delta K-relation recorded for `name`, if any.
    pub fn relation(&self, name: &str) -> Option<&KRelation<K>> {
        self.relations.get(name)
    }

    /// Iterates the changed relations in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &KRelation<K>)> {
        self.relations.iter()
    }

    /// Whether the batch records no changes.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(KRelation::is_empty)
    }

    /// Total number of changed tuples across all relations.
    pub fn len(&self) -> usize {
        self.relations.values().map(KRelation::len).sum()
    }

    /// Applies the batch to a database: `new = old + Δ` per tuple.
    /// Relations unknown to the database are created. This is the
    /// "re-execution" side of the maintenance contract: after
    /// `batch.apply_to(&mut db)`, `plan.execute(&db)` equals the maintained
    /// view.
    pub fn apply_to(&self, db: &mut Database<K>) {
        for (name, delta) in &self.relations {
            match db.get_mut(name) {
                Some(rel) => {
                    for (tuple, k) in delta.iter() {
                        rel.insert(tuple.clone(), k.clone());
                    }
                }
                None => {
                    db.insert(name.clone(), delta.clone());
                }
            }
        }
    }
}

/// A standing query result maintained under [`DeltaBatch`]es: the output
/// [`KRelation`] plus the retained operator state (both sides of every hash
/// join, indexed by join key). Built by [`Plan::materialize`], updated in
/// place by [`Plan::maintain`]; a view must only ever be maintained through
/// the plan that materialized it.
#[derive(Clone, Debug)]
pub struct MaterializedView<K: Semiring> {
    result: KRelation<K>,
    state: OpState<K>,
}

impl<K: Semiring> MaterializedView<K> {
    /// The maintained result relation.
    pub fn result(&self) -> &KRelation<K> {
        &self.result
    }

    /// Consumes the view, returning the result relation.
    pub fn into_result(self) -> KRelation<K> {
        self.result
    }
}

/// One hash-join side retained for maintenance: join key → the rows (and
/// net annotations) currently on that side. Entry vectors keep first-insert
/// order; a net-zero annotation removes its row, an emptied key its entry —
/// so the index is exactly the support of the side's current output.
type SideIndex<K> = FxHashMap<Row, Vec<(Row, K)>>;

/// Retained state, mirroring the shape of the physical operator tree.
/// Stateless operators (scan/σ/π/ρ/∪/aggregate) keep only their children's
/// state; each hash join retains both input sides so either delta can be
/// joined against the other side's current contents.
#[derive(Clone, Debug)]
enum OpState<K> {
    /// A stateless operator's node: children states in operator order.
    Stateless(Vec<OpState<K>>),
    /// A hash join's retained sides.
    Join {
        build: Box<OpState<K>>,
        probe: Box<OpState<K>>,
        build_index: SideIndex<K>,
        probe_index: SideIndex<K>,
    },
}

fn state_mismatch() -> ! {
    panic!("maintain: view state does not match the plan; a MaterializedView must only be maintained by the plan that materialized it")
}

/// Assembles a join output row from its build/probe sources.
fn joined_row(output: &[ColSource], brow: &[Value], prow: &[Value]) -> Row {
    output
        .iter()
        .map(|src| match src {
            ColSource::Build(i) => brow[*i].clone(),
            ColSource::Probe(i) => prow[*i].clone(),
        })
        .collect()
}

/// Extracts the join key of `row` at `keys`.
fn key_of(row: &[Value], keys: &[usize]) -> Vec<Value> {
    keys.iter().map(|&i| row[i].clone()).collect()
}

/// Folds one delta row into a retained side index, summing annotations of
/// an existing row and pruning net-zero rows/keys so the index stays the
/// exact support of the side. `Vec::remove` preserves the relative order of
/// the surviving rows, keeping future probe output deterministic.
fn upsert<K: Semiring>(index: &mut SideIndex<K>, keys: &[usize], row: Row, k: K) {
    let key = key_of(&row, keys);
    if let Some(entries) = index.get_mut(key.as_slice()) {
        if let Some(pos) = entries.iter().position(|(r, _)| *r == row) {
            entries[pos].1.plus_assign(&k);
            if entries[pos].1.is_zero() {
                entries.remove(pos);
            }
        } else if !k.is_zero() {
            entries.push((row, k));
        }
        if entries.is_empty() {
            index.remove(key.as_slice());
        }
    } else if !k.is_zero() {
        index.insert(key.into_boxed_slice(), vec![(row, k)]);
    }
}

/// Initial materialization: computes each operator's full output chunk (in
/// the serial streaming order) and builds the retained join indexes from
/// those chunks. Always serial — the chunks, and therefore the index entry
/// orders, are identical to what the serial executor streams, which is what
/// makes later maintenance deterministic at every thread count.
fn init_op<K, S>(op: &PhysOp, source: &S) -> (Chunk<K>, OpState<K>)
where
    K: Semiring,
    S: RelationSource<K>,
{
    match op {
        PhysOp::Scan { name, schema } => {
            let relation = scan_relation(name, schema, source);
            let chunk = relation
                .iter()
                .map(|(tuple, k)| {
                    let row: Row = tuple.values().cloned().collect();
                    (row, k.clone())
                })
                .collect();
            (chunk, OpState::Stateless(Vec::new()))
        }
        PhysOp::Empty => (Vec::new(), OpState::Stateless(Vec::new())),
        PhysOp::Select { input, predicate } => {
            let (chunk, state) = init_op(input, source);
            let chunk = chunk
                .into_iter()
                .filter(|(row, _)| predicate.eval(row))
                .collect();
            (chunk, OpState::Stateless(vec![state]))
        }
        PhysOp::Project { input, keep } => {
            let (chunk, state) = init_op(input, source);
            let chunk = chunk
                .into_iter()
                .map(|(row, k)| (key_of(&row, keep).into_boxed_slice(), k))
                .collect();
            (chunk, OpState::Stateless(vec![state]))
        }
        PhysOp::Permute { input, perm } => {
            let (chunk, state) = init_op(input, source);
            let chunk = chunk
                .into_iter()
                .map(|(row, k)| (key_of(&row, perm).into_boxed_slice(), k))
                .collect();
            (chunk, OpState::Stateless(vec![state]))
        }
        PhysOp::Union { left, right } => {
            let (mut chunk, lstate) = init_op(left, source);
            let (rchunk, rstate) = init_op(right, source);
            chunk.extend(rchunk);
            (chunk, OpState::Stateless(vec![lstate, rstate]))
        }
        PhysOp::Aggregate { input } => {
            let (chunk, state) = init_op(input, source);
            (aggregate_chunk(chunk), OpState::Stateless(vec![state]))
        }
        PhysOp::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            output,
            swapped,
        } => {
            let (bchunk, bstate) = init_op(build, source);
            let (pchunk, pstate) = init_op(probe, source);
            let mut build_index: SideIndex<K> = FxHashMap::default();
            for (row, k) in bchunk {
                upsert(&mut build_index, build_keys, row, k);
            }
            let mut probe_index: SideIndex<K> = FxHashMap::default();
            let mut out: Chunk<K> = Vec::new();
            for (prow, pk) in pchunk {
                if let Some(entries) = build_index.get(key_of(&prow, probe_keys).as_slice()) {
                    out.reserve(entries.len());
                    for (brow, bk) in entries {
                        let k = if *swapped {
                            pk.times(bk)
                        } else {
                            bk.times(&pk)
                        };
                        out.push((joined_row(output, brow, &prow), k));
                    }
                }
                upsert(&mut probe_index, probe_keys, prow, pk);
            }
            (
                out,
                OpState::Join {
                    build: Box::new(bstate),
                    probe: Box::new(pstate),
                    build_index,
                    probe_index,
                },
            )
        }
    }
}

/// A stateless per-row delta transform: the σ (filter) and π/ρ (column
/// gather) delta rules, shared between the row and batch engines.
enum DeltaTransform<'a> {
    /// Keep the delta row iff the predicate holds.
    Filter(&'a CompiledPredicate),
    /// Rebuild the delta row from the given input column indices.
    Gather(&'a [usize]),
}

/// Applies a stateless transform to a delta chunk.
///
/// Under [`ExecMode::Batch`] the chunk takes a round trip through the
/// columnar kernels — [`Batch::from_rows`], a predicate mask / column
/// permutation, [`Batch::into_rows`] — all of which preserve row order
/// exactly, so the output sequence is byte-identical to the row path.
/// Under [`ExecMode::Row`] the transform fans out to contiguous morsels
/// when the context (and the semiring's portability) allows; outputs are
/// re-concatenated in morsel order. Either way the row sequence is the
/// same at every thread count and in both engines.
fn transform_chunk<K>(chunk: Chunk<K>, ctx: &ExecContext, transform: DeltaTransform<'_>) -> Chunk<K>
where
    K: Semiring,
{
    if chunk.is_empty() {
        return chunk;
    }
    if ctx.mode == ExecMode::Batch {
        let arity = chunk[0].0.len();
        let mut batch = Batch::from_rows(arity, chunk);
        match transform {
            DeltaTransform::Filter(predicate) => {
                let mask = eval_predicate_mask(predicate, batch.columns(), batch.phys_rows());
                batch.refine(&mask);
            }
            DeltaTransform::Gather(cols) => batch.permute_columns(cols),
        }
        return batch.into_rows();
    }
    let f = |row: Row, k: K| match transform {
        DeltaTransform::Filter(predicate) => predicate.eval(&row).then_some((row, k)),
        DeltaTransform::Gather(cols) => Some((key_of(&row, cols).into_boxed_slice(), k)),
    };
    if ctx.threads > 1 && K::is_portable() && chunk.len() >= crate::par::SPAWN_THRESHOLD {
        let parts = crate::par::chunked(chunk, ctx.threads);
        par_map_chunks(parts, ctx.threads, |_, part: Chunk<K>| {
            part.into_iter().filter_map(|(row, k)| f(row, k)).collect()
        })
        .into_iter()
        .flatten()
        .collect()
    } else {
        chunk.into_iter().filter_map(|(row, k)| f(row, k)).collect()
    }
}

/// Propagates a delta batch through one operator, updating retained state
/// and returning the operator's output delta (rows with signed annotation
/// changes; the same row may appear multiple times, summed by the caller's
/// materialization point).
fn delta_op<K: Semiring>(
    op: &PhysOp,
    state: &mut OpState<K>,
    batch: &DeltaBatch<K>,
    ctx: &ExecContext,
) -> Chunk<K> {
    match op {
        PhysOp::Scan { name, schema } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            debug_assert!(children.is_empty());
            match batch.relation(name) {
                Some(delta) => {
                    assert_eq!(
                        delta.schema(),
                        schema,
                        "delta batch for {name} does not match the planned schema"
                    );
                    delta
                        .iter()
                        .map(|(tuple, k)| {
                            let row: Row = tuple.values().cloned().collect();
                            (row, k.clone())
                        })
                        .collect()
                }
                None => Vec::new(),
            }
        }
        PhysOp::Empty => Vec::new(),
        PhysOp::Select { input, predicate } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            let [child] = children.as_mut_slice() else {
                state_mismatch()
            };
            let chunk = delta_op(input, child, batch, ctx);
            transform_chunk(chunk, ctx, DeltaTransform::Filter(predicate))
        }
        PhysOp::Project { input, keep } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            let [child] = children.as_mut_slice() else {
                state_mismatch()
            };
            let chunk = delta_op(input, child, batch, ctx);
            transform_chunk(chunk, ctx, DeltaTransform::Gather(keep))
        }
        PhysOp::Permute { input, perm } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            let [child] = children.as_mut_slice() else {
                state_mismatch()
            };
            let chunk = delta_op(input, child, batch, ctx);
            transform_chunk(chunk, ctx, DeltaTransform::Gather(perm))
        }
        PhysOp::Union { left, right } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            let [lstate, rstate] = children.as_mut_slice() else {
                state_mismatch()
            };
            let mut chunk = delta_op(left, lstate, batch, ctx);
            chunk.extend(delta_op(right, rstate, batch, ctx));
            chunk
        }
        PhysOp::Aggregate { input } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            let [child] = children.as_mut_slice() else {
                state_mismatch()
            };
            // Aggregation is linear in the annotations, so the delta of the
            // aggregate is the aggregate of the delta — no retained groups
            // needed. Zero-summed delta groups contribute nothing downstream
            // and are dropped.
            aggregate_chunk(delta_op(input, child, batch, ctx))
        }
        PhysOp::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            output,
            swapped,
        } => {
            let OpState::Join {
                build: bstate,
                probe: pstate,
                build_index,
                probe_index,
            } = state
            else {
                state_mismatch()
            };
            let delta_build = delta_op(build, bstate, batch, ctx);
            let delta_probe = delta_op(probe, pstate, batch, ctx);
            let mut out: Chunk<K> = Vec::new();
            // Pass 1: ΔB ⋈ P_old (probe the retained probe-side index).
            for (brow, bk) in &delta_build {
                if let Some(entries) = probe_index.get(key_of(brow, build_keys).as_slice()) {
                    out.reserve(entries.len());
                    for (prow, pk) in entries {
                        let k = if *swapped { pk.times(bk) } else { bk.times(pk) };
                        out.push((joined_row(output, brow, prow), k));
                    }
                }
            }
            // Fold ΔB into the build side: the second pass then sees B_new.
            for (row, k) in delta_build {
                upsert(build_index, build_keys, row, k);
            }
            // Pass 2: B_new ⋈ ΔP. Together the passes expand to exactly
            // ΔB⋈P + B⋈ΔP + ΔB⋈ΔP.
            for (prow, pk) in &delta_probe {
                if let Some(entries) = build_index.get(key_of(prow, probe_keys).as_slice()) {
                    out.reserve(entries.len());
                    for (brow, bk) in entries {
                        let k = if *swapped { pk.times(bk) } else { bk.times(pk) };
                        out.push((joined_row(output, brow, prow), k));
                    }
                }
            }
            for (row, k) in delta_probe {
                upsert(probe_index, probe_keys, row, k);
            }
            out
        }
    }
}

impl Plan {
    /// Executes the plan and retains the operator state needed to maintain
    /// the result incrementally. The returned view's
    /// [`result`](MaterializedView::result) equals [`Plan::execute`] on the
    /// same source (materialization itself always runs serially; by the
    /// executor's determinism guarantee that is the same relation every
    /// execution mode produces).
    pub fn materialize<K: Semiring>(&self, source: &impl RelationSource<K>) -> MaterializedView<K> {
        let (chunk, state) = init_op(&self.physical, source);
        let mut result = KRelation::empty(self.schema.clone());
        for (row, k) in chunk {
            result.insert_same_schema(Tuple::from_schema_row(&self.schema, row), k);
        }
        MaterializedView { result, state }
    }

    /// Absorbs a batch of base-relation changes into a materialized view
    /// under the default [`ExecContext`].
    ///
    /// Contract (pinned by `core/tests/ivm_differential.rs`): after
    /// `plan.maintain(&mut view, &batch)`, `view.result()` equals
    /// `plan.execute(&db')` where `db'` is the base with `batch` applied
    /// (`new = old + Δ` per tuple) — identical support and annotations.
    /// Work is proportional to the batch size and its fan-out, not to the
    /// base size.
    ///
    /// # Panics
    /// Panics if `view` was materialized by a different plan, or if a delta
    /// relation's schema differs from the planned schema.
    pub fn maintain<K: Semiring>(&self, view: &mut MaterializedView<K>, batch: &DeltaBatch<K>) {
        self.maintain_with(view, batch, &ExecContext::default());
    }

    /// [`Plan::maintain`] with an explicit thread budget. Exactly like
    /// parallel execution, the result — and the retained state, hence all
    /// future maintenance — is byte-identical at every thread count: delta
    /// morsels are contiguous, stateless transforms merge in morsel order,
    /// and every stateful update runs on the coordinator in canonical
    /// order.
    pub fn maintain_with<K: Semiring>(
        &self,
        view: &mut MaterializedView<K>,
        batch: &DeltaBatch<K>,
        ctx: &ExecContext,
    ) {
        let delta = delta_op(&self.physical, &mut view.state, batch, ctx);
        for (row, k) in delta {
            view.result
                .insert_same_schema(Tuple::from_schema_row(&self.schema, row), k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{paper_example_query, RaExpr};
    use crate::paper;
    use provsem_semiring::ring::Integers;
    use provsem_semiring::Natural;

    fn z_db() -> Database<Integers> {
        paper::figure3_bag().map_annotations(|n: &Natural| Integers::new(n.value() as i64))
    }

    #[test]
    fn maintain_matches_reexecution_on_the_paper_query() {
        let mut db = z_db();
        let plan = Plan::new(&paper_example_query("R"), &db.catalog()).unwrap();
        let mut view = plan.materialize(&db);
        assert_eq!(view.result(), &plan.execute(&db));

        let mut batch = DeltaBatch::new();
        let r = db.get("R").unwrap().clone();
        let (first, ann) = r.iter().next().unwrap();
        batch.delete("R", first.clone(), *ann);
        batch.insert(
            "R",
            Tuple::new([("a", "new"), ("b", "b"), ("c", "new")]),
            Integers::new(3),
        );

        plan.maintain(&mut view, &batch);
        batch.apply_to(&mut db);
        assert_eq!(view.result(), &plan.execute(&db));
    }

    #[test]
    fn delete_to_zero_empties_the_view() {
        let mut db = z_db();
        let q = RaExpr::relation("R").project(["a"]);
        let plan = Plan::new(&q, &db.catalog()).unwrap();
        let mut view = plan.materialize(&db);
        let mut batch = DeltaBatch::new();
        for (tuple, k) in db.get("R").unwrap().iter() {
            batch.delete("R", tuple.clone(), *k);
        }
        plan.maintain(&mut view, &batch);
        batch.apply_to(&mut db);
        assert!(db.get("R").unwrap().is_empty());
        assert!(view.result().is_empty());
    }

    #[test]
    #[should_panic(expected = "maintained by the plan that materialized it")]
    fn maintaining_with_the_wrong_plan_panics() {
        let db = z_db();
        let scan = RaExpr::relation("R");
        let join_plan = Plan::new(&paper_example_query("R"), &db.catalog()).unwrap();
        let scan_plan = Plan::new(&scan, &db.catalog()).unwrap();
        let mut view = scan_plan.materialize(&db);
        let mut batch = DeltaBatch::new();
        batch.insert(
            "R",
            Tuple::new([("a", "x"), ("b", "y"), ("c", "z")]),
            Integers::new(1),
        );
        join_plan.maintain(&mut view, &batch);
    }
}

//! Incremental view maintenance over the positional physical operators,
//! with **columnar retained state**: the maintained side of every hash join
//! lives in the same typed, dictionary-encoded column representation the
//! batch executor scans ([`crate::column`]), and deltas flow through the
//! operator tree as [`Batch`]es driven by the columnar kernels.
//!
//! A [`MaterializedView`] is a plan's output [`KRelation`] plus the retained
//! per-operator state needed to absorb changes without re-executing: every
//! hash join keeps both of its sides as a [`JoinSide`] — append-only
//! [`ColBuilder`] columns, a parallel net-annotation column, and a content-
//! hash index from join key to stored row ids. Changes arrive as a
//! [`DeltaBatch`] — per-relation K-relations of *signed* annotation deltas
//! (`new = old + Δ`), so over a [`Ring`](provsem_semiring::ring::Ring) such
//! as ℤ a deletion is just an insertion of `-k` — and propagate through the
//! operator tree by the classic delta rules:
//!
//! | operator      | delta rule | kernel |
//! |---------------|------------|--------|
//! | σ_P(R)        | `Δ = σ_P(ΔR)` | predicate mask + selection refine |
//! | π_U(R)        | `Δ = π_U(ΔR)` | column-list permutation |
//! | ρ_β(R)        | `Δ = ρ_β(ΔR)` | column-list permutation |
//! | R ∪ S         | `Δ = ΔR ∪ ΔS` | batch concatenation |
//! | Σ-aggregate   | `Δ = agg(ΔR)` | whole-row [`group_batches`] |
//! | R ⋈ S         | `Δ = ΔR ⋈ S ∪ R ⋈ ΔS ∪ ΔR ⋈ ΔS` | hash probe of the retained sides |
//!
//! every rule is *linear* in the annotations (a consequence of Definition
//! 3.2's semiring algebra: `+` distributes through each operator), so the
//! propagated delta is exact — [`Plan::maintain`] leaves the view equal to
//! re-executing the plan against the updated base, annotation-for-annotation.
//! The join rule is evaluated in two passes to avoid the three-way product:
//! `ΔB ⋈ P_old`, then (after folding `ΔB` into the retained build side)
//! `B_new ⋈ ΔP`, which expands to exactly the three terms above. A deletion
//! that nets a stored row's annotation to zero leaves a tombstone: the row
//! keeps its slot (columns are append-only) but drops out of the probe
//! support until a later delta revives it.
//!
//! The work done per batch is proportional to |Δ| (and the fan-out it
//! touches), never to |base| — the `fig_ivm_maintenance` bench group pins
//! this. Initial materialization scans through the source's
//! [`BatchCache`](crate::column::BatchCache) when it carries one (snapshots
//! of a [`SharedDatabase`](crate::snapshot::SharedDatabase) do), so
//! registering a view against a warm snapshot skips columnarization.
//!
//! Maintenance runs serially on the coordinator regardless of the
//! [`ExecContext`]: deltas are small by contract, and a serial pass over
//! columnar state is byte-identical at every thread count *by construction*
//! — there is no merge order to canonicalize. Hence [`Plan::maintain_with`]
//! yields the same view (result *and* retained state) for every context.

use crate::column::{
    group_batches, hash_combine, relation_to_batches, Batch, ColBuilder, HASH_SEED,
};
use crate::database::Database;
use crate::plan::batch::eval_predicate_mask;
use crate::plan::physical::{scan_relation, ColSource, CompiledPredicate, PhysOp};
use crate::plan::{ExecContext, Plan, RelationSource};
use crate::relation::KRelation;
use crate::tuple::Tuple;
use crate::value::Value;
use provsem_semiring::fxhash::FxHashMap;
use provsem_semiring::ring::Ring;
use provsem_semiring::Semiring;
use std::collections::BTreeMap;

/// A batch of base-relation changes: for each named relation, a K-relation
/// of annotation *deltas*. Applying the batch means `new = old + Δ`
/// tuple-wise; inserting the same tuple twice sums the deltas, and a delta
/// that sums to the annotation's inverse deletes the tuple (the K-relation
/// zero-pruning drops it from the support).
#[derive(Clone, Debug)]
pub struct DeltaBatch<K: Semiring> {
    relations: BTreeMap<String, KRelation<K>>,
}

impl<K: Semiring> Default for DeltaBatch<K> {
    fn default() -> Self {
        DeltaBatch {
            relations: BTreeMap::new(),
        }
    }
}

impl<K: Semiring> DeltaBatch<K> {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Adds `delta` to `tuple`'s annotation in `relation`. An insertion of a
    /// new tuple is a delta from `0`; repeated inserts of the same tuple
    /// accumulate.
    ///
    /// # Panics
    /// Panics if `tuple`'s schema differs from earlier tuples recorded for
    /// the same relation.
    pub fn insert(&mut self, relation: impl Into<String>, tuple: Tuple, delta: K) {
        if delta.is_zero() {
            return;
        }
        let name = relation.into();
        let rel = self
            .relations
            .entry(name)
            .or_insert_with(|| KRelation::empty(tuple.schema()));
        rel.insert(tuple, delta);
    }

    /// Records a deletion: subtracts `annotation` from `tuple` in
    /// `relation`. Requires a [`Ring`], because a deletion is an insertion
    /// of the additive inverse — this is the precise sense in which
    /// ℤ-relations make deletions first-class.
    pub fn delete(&mut self, relation: impl Into<String>, tuple: Tuple, annotation: K)
    where
        K: Ring,
    {
        self.insert(relation, tuple, annotation.neg());
    }

    /// Deletes one "copy" of `tuple` (subtracts `1`).
    pub fn delete_one(&mut self, relation: impl Into<String>, tuple: Tuple)
    where
        K: Ring,
    {
        self.delete(relation, tuple, K::one());
    }

    /// The delta K-relation recorded for `name`, if any.
    pub fn relation(&self, name: &str) -> Option<&KRelation<K>> {
        self.relations.get(name)
    }

    /// Iterates the changed relations in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &KRelation<K>)> {
        self.relations.iter()
    }

    /// Whether the batch records no changes.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(KRelation::is_empty)
    }

    /// Total number of changed tuples across all relations.
    pub fn len(&self) -> usize {
        self.relations.values().map(KRelation::len).sum()
    }

    /// Applies the batch to a database: `new = old + Δ` per tuple.
    /// Relations unknown to the database are created. This is the
    /// "re-execution" side of the maintenance contract: after
    /// `batch.apply_to(&mut db)`, `plan.execute(&db)` equals the maintained
    /// view.
    pub fn apply_to(&self, db: &mut Database<K>) {
        for (name, delta) in &self.relations {
            match db.get_mut(name) {
                Some(rel) => {
                    for (tuple, k) in delta.iter() {
                        rel.insert(tuple.clone(), k.clone());
                    }
                }
                None => {
                    db.insert(name.clone(), delta.clone());
                }
            }
        }
    }
}

/// A standing query result maintained under [`DeltaBatch`]es: the output
/// [`KRelation`] plus the retained operator state (both sides of every hash
/// join, held columnarly). Built by [`Plan::materialize`], updated in place
/// by [`Plan::maintain`]; a view must only ever be maintained through the
/// plan that materialized it.
#[derive(Clone, Debug)]
pub struct MaterializedView<K: Semiring> {
    result: KRelation<K>,
    state: OpState<K>,
}

impl<K: Semiring> MaterializedView<K> {
    /// The maintained result relation.
    pub fn result(&self) -> &KRelation<K> {
        &self.result
    }

    /// Consumes the view, returning the result relation.
    pub fn into_result(self) -> KRelation<K> {
        self.result
    }
}

/// One hash-join side retained columnarly for maintenance: append-only
/// typed columns (one [`ColBuilder`] per attribute — the same
/// representation streamed batches use, degrading on type mixes or
/// dictionary overflow), a parallel net-annotation column, and a content-
/// hash index from join key to the stored row ids under it. A row whose
/// net annotation reaches zero becomes a *tombstone*: it keeps its slot
/// but is skipped by probes, and a later delta on the same row revives it
/// in place — so the probe support is exactly the side's current output.
#[derive(Clone, Debug)]
struct JoinSide<K> {
    /// Stored rows, column-major. Empty until the first row fixes arity.
    cols: Vec<ColBuilder>,
    /// Net annotation per stored row; zero marks a tombstone.
    anns: Vec<K>,
    /// Join-key content hash → stored row ids (live and tombstoned).
    by_key: FxHashMap<u64, Vec<u32>>,
    /// Full-row content hash → stored row ids: the upsert index. Join keys
    /// can be heavily skewed (a handful of distinct values over thousands
    /// of rows), so locating a delta row through `by_key` would scan whole
    /// key buckets; the full-row hash keeps upserts O(1) expected.
    by_row: FxHashMap<u64, Vec<u32>>,
    /// This side's join key columns.
    key_cols: Vec<usize>,
}

/// The content hash of `row`'s values at `keys`, in key order — the same
/// per-value hashes and combiner the columnar kernels use, so a delta row
/// hashed here finds the stored rows hashed by [`JoinSide::upsert`].
fn row_key_hash(keys: &[usize], row: &[Value]) -> u64 {
    keys.iter()
        .fold(HASH_SEED, |h, &c| hash_combine(h, row[c].content_hash()))
}

impl<K: Semiring> JoinSide<K> {
    fn new(key_cols: &[usize]) -> JoinSide<K> {
        JoinSide {
            cols: Vec::new(),
            anns: Vec::new(),
            by_key: FxHashMap::default(),
            by_row: FxHashMap::default(),
            key_cols: key_cols.to_vec(),
        }
    }

    /// The stored rows matching `row`'s join key, where `row`'s key sits at
    /// `other_keys` (the opposite side's key columns, paired positionally
    /// with this side's). Hash candidates are verified exactly; tombstones
    /// are skipped.
    fn matches(&self, hash: u64, other_keys: &[usize], row: &[Value]) -> Vec<u32> {
        let Some(ids) = self.by_key.get(&hash) else {
            return Vec::new();
        };
        ids.iter()
            .copied()
            .filter(|&id| {
                !self.anns[id as usize].is_zero()
                    && self
                        .key_cols
                        .iter()
                        .zip(other_keys)
                        .all(|(&sc, &oc)| self.cols[sc].value_eq_at(id, &row[oc]))
            })
            .collect()
    }

    fn value_at(&self, id: u32, col: usize) -> Value {
        self.cols[col].value_at(id)
    }

    fn ann(&self, id: u32) -> &K {
        &self.anns[id as usize]
    }

    /// Folds one delta row into the side: sums the annotation of an
    /// existing row (possibly tombstoning it, or reviving a tombstone) or
    /// appends a new row to the columns and the key index.
    fn upsert(&mut self, row: &[Value], k: K) {
        if k.is_zero() {
            return;
        }
        if self.cols.is_empty() {
            self.cols = row.iter().map(|_| ColBuilder::new()).collect();
        }
        let row_hash = row
            .iter()
            .fold(HASH_SEED, |h, v| hash_combine(h, v.content_hash()));
        let row_ids = self.by_row.entry(row_hash).or_default();
        for &id in row_ids.iter() {
            if row
                .iter()
                .enumerate()
                .all(|(c, v)| self.cols[c].value_eq_at(id, v))
            {
                self.anns[id as usize].plus_assign(&k);
                return;
            }
        }
        let id = self.anns.len() as u32;
        for (col, v) in self.cols.iter_mut().zip(row.iter()) {
            col.push(v.clone());
        }
        self.anns.push(k);
        row_ids.push(id);
        let key_hash = row_key_hash(&self.key_cols, row);
        self.by_key.entry(key_hash).or_default().push(id);
    }
}

/// Retained state, mirroring the shape of the physical operator tree.
/// Stateless operators (scan/σ/π/ρ/∪/aggregate) keep only their children's
/// state; each hash join retains both input sides columnarly so either
/// delta can be joined against the other side's current contents.
#[derive(Clone, Debug)]
enum OpState<K> {
    /// A stateless operator's node: children states in operator order.
    Stateless(Vec<OpState<K>>),
    /// A hash join's retained sides.
    Join {
        build: Box<OpState<K>>,
        probe: Box<OpState<K>>,
        build_side: Box<JoinSide<K>>,
        probe_side: Box<JoinSide<K>>,
    },
}

fn state_mismatch() -> ! {
    panic!("maintain: view state does not match the plan; a MaterializedView must only be maintained by the plan that materialized it")
}

/// Assembles a join output row from its build/probe value sources.
fn assemble_row(
    output: &[ColSource],
    brow: impl Fn(usize) -> Value,
    prow: impl Fn(usize) -> Value,
) -> Box<[Value]> {
    output
        .iter()
        .map(|src| match src {
            ColSource::Build(i) => brow(*i),
            ColSource::Probe(i) => prow(*i),
        })
        .collect()
}

/// The σ delta/init rule: mask each batch against the predicate and refine
/// its selection vector. Fully filtered batches are dropped.
fn filter_batches<K: Semiring>(
    batches: Vec<Batch<K>>,
    predicate: &CompiledPredicate,
) -> Vec<Batch<K>> {
    batches
        .into_iter()
        .filter_map(|mut batch| {
            let mask = eval_predicate_mask(predicate, batch.columns(), batch.phys_rows());
            batch.refine(&mask);
            (batch.live_rows() > 0).then_some(batch)
        })
        .collect()
}

/// The π/ρ delta/init rule: permute each batch's column list (`Arc` moves).
fn permute_batches<K: Semiring>(mut batches: Vec<Batch<K>>, perm: &[usize]) -> Vec<Batch<K>> {
    for batch in &mut batches {
        batch.permute_columns(perm);
    }
    batches
}

/// The aggregate delta/init rule: whole-row grouping, summing equal rows
/// and dropping zero-summed groups (they contribute nothing downstream —
/// annotation sums are linear, so the delta of the aggregate is the
/// aggregate of the delta and no retained groups are needed).
fn aggregate_batches<K: Semiring>(batches: Vec<Batch<K>>) -> Vec<Batch<K>> {
    let Some(arity) = batches.first().map(|b| b.columns().len()) else {
        return Vec::new();
    };
    let keys: Vec<usize> = (0..arity).collect();
    let out = group_batches(batches, &keys).into_batch(arity);
    if out.live_rows() == 0 {
        Vec::new()
    } else {
        vec![out]
    }
}

/// Wraps loose join-output rows back into a batch (dropping the empty
/// case), re-entering the columnar representation.
fn rows_to_batches<K: Semiring>(arity: usize, rows: Vec<(Box<[Value]>, K)>) -> Vec<Batch<K>> {
    if rows.is_empty() {
        Vec::new()
    } else {
        vec![Batch::from_rows(arity, rows)]
    }
}

/// Initial materialization: computes each operator's full output as
/// columnar batches and builds the retained join sides from them. Scans go
/// through the source's [`BatchCache`](crate::column::BatchCache) when it
/// carries one, so materializing against a warm snapshot reuses the cached
/// conversion. Always serial — stored row ids and index orders depend only
/// on the source contents, which is what makes later maintenance
/// deterministic at every thread count.
fn init_op<K, S>(op: &PhysOp, source: &S) -> (Vec<Batch<K>>, OpState<K>)
where
    K: Semiring,
    S: RelationSource<K>,
{
    match op {
        PhysOp::Scan { name, schema } => {
            let relation = scan_relation(name, schema, source);
            let batches = match (source.batch_cache(), source.relation_shared(name)) {
                (Some((store, epoch)), Some(shared)) => {
                    store.get_or_convert(epoch, &shared).as_ref().clone()
                }
                _ => relation_to_batches(relation),
            };
            (batches, OpState::Stateless(Vec::new()))
        }
        PhysOp::Empty => (Vec::new(), OpState::Stateless(Vec::new())),
        PhysOp::Select { input, predicate } => {
            let (batches, state) = init_op(input, source);
            (
                filter_batches(batches, predicate),
                OpState::Stateless(vec![state]),
            )
        }
        PhysOp::Project { input, keep } => {
            let (batches, state) = init_op(input, source);
            (
                permute_batches(batches, keep),
                OpState::Stateless(vec![state]),
            )
        }
        PhysOp::Permute { input, perm } => {
            let (batches, state) = init_op(input, source);
            (
                permute_batches(batches, perm),
                OpState::Stateless(vec![state]),
            )
        }
        PhysOp::Union { left, right } => {
            let (mut batches, lstate) = init_op(left, source);
            let (rbatches, rstate) = init_op(right, source);
            batches.extend(rbatches);
            (batches, OpState::Stateless(vec![lstate, rstate]))
        }
        PhysOp::Aggregate { input } => {
            let (batches, state) = init_op(input, source);
            (aggregate_batches(batches), OpState::Stateless(vec![state]))
        }
        PhysOp::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            output,
            swapped,
        } => {
            let (bbatches, bstate) = init_op(build, source);
            let (pbatches, pstate) = init_op(probe, source);
            let mut build_side: JoinSide<K> = JoinSide::new(build_keys);
            let mut probe_side: JoinSide<K> = JoinSide::new(probe_keys);
            for batch in bbatches {
                for (row, k) in batch.into_rows() {
                    build_side.upsert(&row, k);
                }
            }
            let mut out: Vec<(Box<[Value]>, K)> = Vec::new();
            for batch in pbatches {
                for (prow, pk) in batch.into_rows() {
                    let hash = row_key_hash(probe_keys, &prow);
                    for id in build_side.matches(hash, probe_keys, &prow) {
                        let bk = build_side.ann(id);
                        let k = if *swapped {
                            pk.times(bk)
                        } else {
                            bk.times(&pk)
                        };
                        out.push((
                            assemble_row(
                                output,
                                |i| build_side.value_at(id, i),
                                |i| prow[i].clone(),
                            ),
                            k,
                        ));
                    }
                    probe_side.upsert(&prow, pk);
                }
            }
            (
                rows_to_batches(output.len(), out),
                OpState::Join {
                    build: Box::new(bstate),
                    probe: Box::new(pstate),
                    build_side: Box::new(build_side),
                    probe_side: Box::new(probe_side),
                },
            )
        }
    }
}

/// Propagates a delta batch through one operator, updating retained state
/// and returning the operator's output delta as columnar batches (the same
/// logical row may appear in several batches or rows; the caller's
/// materialization point sums them).
fn delta_op<K: Semiring>(
    op: &PhysOp,
    state: &mut OpState<K>,
    batch: &DeltaBatch<K>,
) -> Vec<Batch<K>> {
    match op {
        PhysOp::Scan { name, schema } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            debug_assert!(children.is_empty());
            match batch.relation(name) {
                Some(delta) => {
                    assert_eq!(
                        delta.schema(),
                        schema,
                        "delta batch for {name} does not match the planned schema"
                    );
                    relation_to_batches(delta)
                }
                None => Vec::new(),
            }
        }
        PhysOp::Empty => Vec::new(),
        PhysOp::Select { input, predicate } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            let [child] = children.as_mut_slice() else {
                state_mismatch()
            };
            filter_batches(delta_op(input, child, batch), predicate)
        }
        PhysOp::Project { input, keep } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            let [child] = children.as_mut_slice() else {
                state_mismatch()
            };
            permute_batches(delta_op(input, child, batch), keep)
        }
        PhysOp::Permute { input, perm } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            let [child] = children.as_mut_slice() else {
                state_mismatch()
            };
            permute_batches(delta_op(input, child, batch), perm)
        }
        PhysOp::Union { left, right } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            let [lstate, rstate] = children.as_mut_slice() else {
                state_mismatch()
            };
            let mut batches = delta_op(left, lstate, batch);
            batches.extend(delta_op(right, rstate, batch));
            batches
        }
        PhysOp::Aggregate { input } => {
            let OpState::Stateless(children) = state else {
                state_mismatch()
            };
            let [child] = children.as_mut_slice() else {
                state_mismatch()
            };
            aggregate_batches(delta_op(input, child, batch))
        }
        PhysOp::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            output,
            swapped,
        } => {
            let OpState::Join {
                build: bstate,
                probe: pstate,
                build_side,
                probe_side,
            } = state
            else {
                state_mismatch()
            };
            let delta_build: Vec<(Box<[Value]>, K)> = delta_op(build, bstate, batch)
                .into_iter()
                .flat_map(Batch::into_rows)
                .collect();
            let delta_probe: Vec<(Box<[Value]>, K)> = delta_op(probe, pstate, batch)
                .into_iter()
                .flat_map(Batch::into_rows)
                .collect();
            let mut out: Vec<(Box<[Value]>, K)> = Vec::new();
            // Pass 1: ΔB ⋈ P_old (probe the retained probe side).
            for (brow, bk) in &delta_build {
                let hash = row_key_hash(build_keys, brow);
                for id in probe_side.matches(hash, build_keys, brow) {
                    let pk = probe_side.ann(id);
                    let k = if *swapped { pk.times(bk) } else { bk.times(pk) };
                    out.push((
                        assemble_row(output, |i| brow[i].clone(), |i| probe_side.value_at(id, i)),
                        k,
                    ));
                }
            }
            // Fold ΔB into the build side: the second pass then sees B_new.
            for (row, k) in delta_build {
                build_side.upsert(&row, k);
            }
            // Pass 2: B_new ⋈ ΔP. Together the passes expand to exactly
            // ΔB⋈P + B⋈ΔP + ΔB⋈ΔP.
            for (prow, pk) in &delta_probe {
                let hash = row_key_hash(probe_keys, prow);
                for id in build_side.matches(hash, probe_keys, prow) {
                    let bk = build_side.ann(id);
                    let k = if *swapped { pk.times(bk) } else { bk.times(pk) };
                    out.push((
                        assemble_row(output, |i| build_side.value_at(id, i), |i| prow[i].clone()),
                        k,
                    ));
                }
            }
            for (row, k) in delta_probe {
                probe_side.upsert(&row, k);
            }
            rows_to_batches(output.len(), out)
        }
    }
}

impl Plan {
    /// Executes the plan and retains the columnar operator state needed to
    /// maintain the result incrementally. The returned view's
    /// [`result`](MaterializedView::result) equals [`Plan::execute`] on the
    /// same source (materialization itself always runs serially; by the
    /// executor's determinism guarantee that is the same relation every
    /// execution mode produces). Scans reuse the source's cached batches
    /// when it carries a [`BatchCache`](crate::column::BatchCache).
    pub fn materialize<K: Semiring>(&self, source: &impl RelationSource<K>) -> MaterializedView<K> {
        let (batches, state) = init_op(&self.physical, source);
        let mut result = KRelation::empty(self.schema.clone());
        for batch in batches {
            for (row, k) in batch.into_rows() {
                result.insert_same_schema(Tuple::from_schema_row(&self.schema, row), k);
            }
        }
        MaterializedView { result, state }
    }

    /// Absorbs a batch of base-relation changes into a materialized view
    /// under the default [`ExecContext`].
    ///
    /// Contract (pinned by `core/tests/ivm_differential.rs`): after
    /// `plan.maintain(&mut view, &batch)`, `view.result()` equals
    /// `plan.execute(&db')` where `db'` is the base with `batch` applied
    /// (`new = old + Δ` per tuple) — identical support and annotations.
    /// Work is proportional to the batch size and its fan-out, not to the
    /// base size.
    ///
    /// # Panics
    /// Panics if `view` was materialized by a different plan, or if a delta
    /// relation's schema differs from the planned schema.
    pub fn maintain<K: Semiring>(&self, view: &mut MaterializedView<K>, batch: &DeltaBatch<K>) {
        self.maintain_with(view, batch, &ExecContext::default());
    }

    /// [`Plan::maintain`] with an explicit [`ExecContext`]. Maintenance is
    /// serial and batch-native regardless of the context's engine or thread
    /// budget — deltas are small by contract, and a serial pass over the
    /// columnar retained state is byte-identical at every thread count and
    /// in both engines *by construction*. The context is accepted for
    /// symmetry with [`Plan::execute_with`] on the commit path.
    pub fn maintain_with<K: Semiring>(
        &self,
        view: &mut MaterializedView<K>,
        batch: &DeltaBatch<K>,
        _ctx: &ExecContext,
    ) {
        let delta = delta_op(&self.physical, &mut view.state, batch);
        for batch in delta {
            for (row, k) in batch.into_rows() {
                view.result
                    .insert_same_schema(Tuple::from_schema_row(&self.schema, row), k);
            }
        }
    }

    /// [`Plan::maintain_with`] that additionally returns the **view-output
    /// delta** — the net change to the view's result, as a relation over
    /// the plan's schema (annotations summed per tuple, zero changes
    /// dropped). `view.result()` before + the returned delta = `view.
    /// result()` after, per tuple. The commit path uses this to patch a
    /// cached columnar conversion of the view's result forward
    /// ([`BatchCache::patch`](crate::column::BatchCache::patch)) instead of
    /// re-converting the whole view after every commit.
    pub fn maintain_returning<K: Semiring>(
        &self,
        view: &mut MaterializedView<K>,
        batch: &DeltaBatch<K>,
        _ctx: &ExecContext,
    ) -> KRelation<K> {
        let mut output_delta = KRelation::empty(self.schema.clone());
        let delta = delta_op(&self.physical, &mut view.state, batch);
        for batch in delta {
            for (row, k) in batch.into_rows() {
                let tuple = Tuple::from_schema_row(&self.schema, row);
                view.result.insert_same_schema(tuple.clone(), k.clone());
                output_delta.insert_same_schema(tuple, k);
            }
        }
        output_delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{paper_example_query, RaExpr};
    use crate::paper;
    use provsem_semiring::ring::Integers;
    use provsem_semiring::Natural;

    fn z_db() -> Database<Integers> {
        paper::figure3_bag().map_annotations(|n: &Natural| Integers::new(n.value() as i64))
    }

    #[test]
    fn maintain_matches_reexecution_on_the_paper_query() {
        let mut db = z_db();
        let plan = Plan::new(&paper_example_query("R"), &db.catalog()).unwrap();
        let mut view = plan.materialize(&db);
        assert_eq!(view.result(), &plan.execute(&db));

        let mut batch = DeltaBatch::new();
        let r = db.get("R").unwrap().clone();
        let (first, ann) = r.iter().next().unwrap();
        batch.delete("R", first.clone(), *ann);
        batch.insert(
            "R",
            Tuple::new([("a", "new"), ("b", "b"), ("c", "new")]),
            Integers::new(3),
        );

        plan.maintain(&mut view, &batch);
        batch.apply_to(&mut db);
        assert_eq!(view.result(), &plan.execute(&db));
    }

    #[test]
    fn delete_to_zero_empties_the_view() {
        let mut db = z_db();
        let q = RaExpr::relation("R").project(["a"]);
        let plan = Plan::new(&q, &db.catalog()).unwrap();
        let mut view = plan.materialize(&db);
        let mut batch = DeltaBatch::new();
        for (tuple, k) in db.get("R").unwrap().iter() {
            batch.delete("R", tuple.clone(), *k);
        }
        plan.maintain(&mut view, &batch);
        batch.apply_to(&mut db);
        assert!(db.get("R").unwrap().is_empty());
        assert!(view.result().is_empty());
    }

    #[test]
    fn delete_then_reinsert_revives_a_tombstoned_join_row() {
        let mut db = z_db();
        let plan = Plan::new(&paper_example_query("R"), &db.catalog()).unwrap();
        let mut view = plan.materialize(&db);
        let (first, ann) = {
            let r = db.get("R").unwrap();
            let (t, k) = r.iter().next().unwrap();
            (t.clone(), *k)
        };
        // Delete a row to a zero net annotation, then bring it back.
        let mut del = DeltaBatch::new();
        del.delete("R", first.clone(), ann);
        plan.maintain(&mut view, &del);
        del.apply_to(&mut db);
        assert_eq!(view.result(), &plan.execute(&db));
        let mut ins = DeltaBatch::new();
        ins.insert("R", first, ann);
        plan.maintain(&mut view, &ins);
        ins.apply_to(&mut db);
        assert_eq!(view.result(), &plan.execute(&db));
    }

    #[test]
    #[should_panic(expected = "maintained by the plan that materialized it")]
    fn maintaining_with_the_wrong_plan_panics() {
        let db = z_db();
        let scan = RaExpr::relation("R");
        let join_plan = Plan::new(&paper_example_query("R"), &db.catalog()).unwrap();
        let scan_plan = Plan::new(&scan, &db.catalog()).unwrap();
        let mut view = scan_plan.materialize(&db);
        let mut batch = DeltaBatch::new();
        batch.insert(
            "R",
            Tuple::new([("a", "x"), ("b", "y"), ("c", "z")]),
            Integers::new(1),
        );
        join_plan.maintain(&mut view, &batch);
    }
}

//! Logical query plans: validated, schema-annotated RA⁺ trees plus the
//! rewrite rules applied before physical compilation.
//!
//! A [`LogicalPlan`] is an [`RaExpr`] that has been
//! checked once against a [`Catalog`]: every node knows its output schema,
//! and all the error cases of [`RaExpr::eval`](crate::expr::RaExpr::eval)
//! (unknown relations, union schema mismatches, invalid projections,
//! non-injective renamings) have been ruled out up front. Because validation
//! mirrors `RaExpr::output_schema` exactly — bottom-up, left to right — the
//! planner reports the same [`EvalError`] the tree-walking interpreter
//! would.
//!
//! [`optimize`] then applies the classical RA⁺ rewrites, all of which are
//! annotation-correct for **any** commutative semiring because they only
//! rely on the semiring laws (Proposition 3.4 of the paper):
//!
//! * **rename fusion** — `ρ_β₁(ρ_β₂(e))` becomes a single renaming, and
//!   identity renamings disappear;
//! * **selection pushdown** — conjuncts of `σ_P` move below projections,
//!   renamings and unions, and onto the join input that covers their
//!   attributes; `σ_false` collapses to `∅` and `σ_true` disappears;
//! * **empty propagation** — `∅` absorbs joins and selections and is the
//!   identity of union;
//! * **projection pushdown / join-input pruning** — a top-down pass narrows
//!   every node to the columns actually needed above it (for a join input:
//!   the columns needed upstream plus the join keys), collapsing cascaded
//!   projections along the way. Pushing a projection below a join is sound
//!   in any commutative semiring: `(Σᵢ rᵢ)·(Σⱼ sⱼ) = Σᵢⱼ rᵢ·sⱼ` by
//!   distributivity.

use crate::expr::{EvalError, RaExpr};
use crate::plan::Catalog;
use crate::predicate::Predicate;
use crate::schema::{Attribute, Renaming, Schema};
use std::collections::{BTreeMap, BTreeSet};

/// A validated, schema-annotated RA⁺ plan node.
#[derive(Clone, PartialEq, Debug)]
pub enum LogicalPlan {
    /// A scan of a named base relation.
    Scan {
        /// The relation name.
        name: String,
        /// The relation's schema (from the catalog).
        schema: Schema,
        /// The relation's cardinality (from the catalog), used to pick hash
        /// join build sides.
        estimate: usize,
    },
    /// The empty relation over a schema.
    Empty {
        /// The output schema.
        schema: Schema,
    },
    /// Union of two plans with identical schemas.
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Projection onto a subset of the input schema.
    Project {
        /// The projection target (the output schema).
        schema: Schema,
        /// The input plan.
        input: Box<LogicalPlan>,
    },
    /// Selection by a predicate.
    Select {
        /// The predicate.
        predicate: Predicate,
        /// The input plan.
        input: Box<LogicalPlan>,
    },
    /// Natural join.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// The output schema (union of the input schemas).
        schema: Schema,
    },
    /// Renaming of attributes.
    Rename {
        /// The renaming (injective on the input schema).
        renaming: Renaming,
        /// The renamed (output) schema.
        schema: Schema,
        /// The input plan.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Builds and validates a logical plan for `expr` against `catalog`.
    ///
    /// Validation order mirrors `RaExpr::eval` / `RaExpr::output_schema`
    /// (bottom-up, left to right), so the reported error is identical to the
    /// interpreter's.
    pub fn from_expr(expr: &RaExpr, catalog: &Catalog) -> Result<LogicalPlan, EvalError> {
        match expr {
            RaExpr::Relation(name) => match catalog.get(name) {
                Some((schema, estimate)) => Ok(LogicalPlan::Scan {
                    name: name.clone(),
                    schema: schema.clone(),
                    estimate,
                }),
                None => Err(EvalError::UnknownRelation(name.clone())),
            },
            RaExpr::Empty(schema) => Ok(LogicalPlan::Empty {
                schema: schema.clone(),
            }),
            RaExpr::Union(a, b) => {
                let left = LogicalPlan::from_expr(a, catalog)?;
                let right = LogicalPlan::from_expr(b, catalog)?;
                if left.schema() != right.schema() {
                    return Err(EvalError::SchemaMismatch {
                        left: left.schema().clone(),
                        right: right.schema().clone(),
                    });
                }
                Ok(LogicalPlan::Union {
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            RaExpr::Project(schema, e) => {
                let input = LogicalPlan::from_expr(e, catalog)?;
                if !input.schema().contains_all(schema) {
                    return Err(EvalError::InvalidProjection {
                        requested: schema.clone(),
                        available: input.schema().clone(),
                    });
                }
                Ok(LogicalPlan::Project {
                    schema: schema.clone(),
                    input: Box::new(input),
                })
            }
            RaExpr::Select(p, e) => {
                let input = LogicalPlan::from_expr(e, catalog)?;
                Ok(LogicalPlan::Select {
                    predicate: p.clone(),
                    input: Box::new(input),
                })
            }
            RaExpr::Join(a, b) => {
                let left = LogicalPlan::from_expr(a, catalog)?;
                let right = LogicalPlan::from_expr(b, catalog)?;
                let schema = left.schema().union(right.schema());
                Ok(LogicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    schema,
                })
            }
            RaExpr::Rename(rho, e) => {
                let input = LogicalPlan::from_expr(e, catalog)?;
                match rho.apply_schema(input.schema()) {
                    Some(schema) => Ok(LogicalPlan::Rename {
                        renaming: rho.clone(),
                        schema,
                        input: Box::new(input),
                    }),
                    None => Err(EvalError::InvalidRenaming(input.schema().clone())),
                }
            }
        }
    }

    /// The node's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Empty { schema }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Rename { schema, .. } => schema,
            LogicalPlan::Union { left, .. } => left.schema(),
            LogicalPlan::Select { input, .. } => input.schema(),
        }
    }

    /// A crude cardinality estimate, used only to choose hash join build
    /// sides (the smaller estimated input is materialized).
    pub fn estimate(&self) -> usize {
        match self {
            LogicalPlan::Scan { estimate, .. } => *estimate,
            LogicalPlan::Empty { .. } => 0,
            LogicalPlan::Union { left, right } => left.estimate().saturating_add(right.estimate()),
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Select { input, .. }
            | LogicalPlan::Rename { input, .. } => input.estimate(),
            LogicalPlan::Join { left, right, .. } => {
                if left.schema().is_disjoint(right.schema()) {
                    left.estimate().saturating_mul(right.estimate())
                } else {
                    left.estimate().max(right.estimate())
                }
            }
        }
    }

    /// Total catalog-estimated rows read by the plan's scans (each scan
    /// counted as often as it appears) — the input volume the engines pay
    /// conversion for, which drives the `ExecMode::Auto` engine pick.
    pub fn scan_rows(&self) -> usize {
        match self {
            LogicalPlan::Scan { estimate, .. } => *estimate,
            LogicalPlan::Empty { .. } => 0,
            LogicalPlan::Union { left, right } | LogicalPlan::Join { left, right, .. } => {
                left.scan_rows().saturating_add(right.scan_rows())
            }
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Select { input, .. }
            | LogicalPlan::Rename { input, .. } => input.scan_rows(),
        }
    }

    /// Does the hash join for this `Join` node build on the left input?
    /// (The smaller estimated side is materialized; ties build left.)
    pub(crate) fn join_builds_left(left: &LogicalPlan, right: &LogicalPlan) -> bool {
        left.estimate() <= right.estimate()
    }

    /// Renders the plan as an indented tree — the body of
    /// [`Plan::explain`](crate::plan::Plan::explain).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(&mut out, "", "");
        out
    }

    fn describe(&self) -> String {
        match self {
            LogicalPlan::Scan { name, schema, .. } => format!("scan {name} {schema:?}"),
            LogicalPlan::Empty { schema } => format!("∅ {schema:?}"),
            LogicalPlan::Union { .. } => "∪".to_string(),
            LogicalPlan::Project { schema, .. } => format!("π {schema:?}"),
            LogicalPlan::Select { predicate, .. } => format!("σ {predicate}"),
            LogicalPlan::Join { left, right, .. } => {
                let keys = left.schema().intersection(right.schema());
                let side = if LogicalPlan::join_builds_left(left, right) {
                    "left"
                } else {
                    "right"
                };
                format!("⋈ on {keys:?} (build: {side})")
            }
            LogicalPlan::Rename {
                renaming, input, ..
            } => {
                let pairs: Vec<String> = input
                    .schema()
                    .attributes()
                    .iter()
                    .filter_map(|a| {
                        let b = renaming.apply(a);
                        (b != *a).then(|| format!("{a}→{b}"))
                    })
                    .collect();
                format!("ρ {}", pairs.join(", "))
            }
        }
    }

    fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Empty { .. } => Vec::new(),
            LogicalPlan::Union { left, right } | LogicalPlan::Join { left, right, .. } => {
                vec![left, right]
            }
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Select { input, .. }
            | LogicalPlan::Rename { input, .. } => vec![input],
        }
    }

    fn render_node(&self, out: &mut String, prefix: &str, child_prefix: &str) {
        out.push_str(prefix);
        out.push_str(&self.describe());
        out.push('\n');
        let children = self.children();
        for (i, child) in children.iter().enumerate() {
            let last = i + 1 == children.len();
            let (branch, extension) = if last {
                ("└─ ", "   ")
            } else {
                ("├─ ", "│  ")
            };
            child.render_node(
                out,
                &format!("{child_prefix}{branch}"),
                &format!("{child_prefix}{extension}"),
            );
        }
    }
}

/// What the planner knows about the rows a (sub)plan emits, used to decide
/// where the physical compiler must insert pre-join aggregations.
///
/// `groups` records attribute classes known **pairwise equal on every
/// emitted row** (from `a=b` selection conjuncts below); a group with
/// `pinned = true` is additionally equal to one constant (from `a=v`
/// conjuncts). These facts come only from selections *below* the operator,
/// so they hold on every row the operator streams.
pub(crate) struct RowFacts {
    /// Can the operator emit the same row more than once?
    pub(crate) may_duplicate: bool,
    groups: Vec<(BTreeSet<Attribute>, bool)>,
}

impl RowFacts {
    fn distinct() -> RowFacts {
        RowFacts {
            may_duplicate: false,
            groups: Vec::new(),
        }
    }

    fn duplicating() -> RowFacts {
        RowFacts {
            may_duplicate: true,
            groups: Vec::new(),
        }
    }

    fn group_of(&self, attr: &Attribute) -> Option<usize> {
        self.groups.iter().position(|(g, _)| g.contains(attr))
    }

    /// Records `attr = constant` on every row.
    fn pin(&mut self, attr: &Attribute) {
        match self.group_of(attr) {
            Some(i) => self.groups[i].1 = true,
            None => self.groups.push((BTreeSet::from([attr.clone()]), true)),
        }
    }

    /// Records `a = b` on every row.
    fn equate(&mut self, a: &Attribute, b: &Attribute) {
        if a == b {
            return;
        }
        match (self.group_of(a), self.group_of(b)) {
            (Some(i), Some(j)) if i == j => {}
            (Some(i), Some(j)) => {
                let (merged, pinned) = self.groups.remove(j.max(i));
                let keep = &mut self.groups[j.min(i)];
                keep.0.extend(merged);
                keep.1 |= pinned;
            }
            (Some(i), None) => {
                self.groups[i].0.insert(b.clone());
            }
            (None, Some(j)) => {
                self.groups[j].0.insert(a.clone());
            }
            (None, None) => self
                .groups
                .push((BTreeSet::from([a.clone(), b.clone()]), false)),
        }
    }

    /// Is `attr`'s value on every row determined by the attributes of
    /// `kept` (directly, via an equality chain, or by being constant)?
    fn determined_by(&self, attr: &Attribute, kept: &Schema) -> bool {
        self.group_of(attr)
            .map(|i| {
                let (group, pinned) = &self.groups[i];
                *pinned || group.iter().any(|a| kept.contains(a))
            })
            .unwrap_or(false)
    }

    /// Keeps only facts about the attributes of `kept` (after a projection).
    fn restrict(&mut self, kept: &Schema) {
        for (group, _) in &mut self.groups {
            group.retain(|a| kept.contains(a));
        }
        self.groups
            .retain(|(group, pinned)| group.len() >= 2 || (*pinned && !group.is_empty()));
    }

    /// Relabels the facts through a renaming.
    fn rename(&mut self, renaming: &Renaming) {
        for (group, _) in &mut self.groups {
            *group = group.iter().map(|a| renaming.apply(a)).collect();
        }
    }

    /// Merges another operator's facts in (for joins: both hold on the
    /// combined row).
    fn absorb(&mut self, other: RowFacts) {
        for (group, pinned) in other.groups {
            let mut members = group.into_iter();
            let Some(first) = members.next() else {
                continue;
            };
            for member in members {
                self.equate(&first, &member);
            }
            if pinned {
                self.pin(&first);
            }
        }
    }
}

/// Collects per-row equality facts from the top-level conjuncts of a
/// selection predicate. Only conjuncts whose attributes all exist in
/// `schema` are recorded: a comparison against a missing attribute is
/// constant-`false` (no rows at all), which yields no usable fact.
fn collect_predicate_facts(predicate: &Predicate, schema: &Schema, facts: &mut RowFacts) {
    match predicate {
        Predicate::And(p, q) => {
            collect_predicate_facts(p, schema, facts);
            collect_predicate_facts(q, schema, facts);
        }
        Predicate::AttrEqValue(a, _) if schema.contains(a) => facts.pin(a),
        Predicate::AttrEqAttr(a, b) if schema.contains(a) && schema.contains(b) => {
            facts.equate(a, b)
        }
        _ => {}
    }
}

impl LogicalPlan {
    /// Can this operator stream the same row more than once? Drives the
    /// physical compiler's pre-join aggregation decision.
    ///
    /// Scans emit distinct rows; selections and renamings preserve
    /// distinctness; joins emit distinct rows because the compiler
    /// aggregates any duplicate-streaming join input; unions duplicate. A
    /// **projection** duplicates only if it actually loses information:
    /// dropping an attribute that is *determined* by the kept ones — pinned
    /// to a constant by a selection below (`σ_{c=v}` then `π` dropping `c`,
    /// the shape column pruning produces constantly) or chained by `a=b`
    /// equalities to a kept attribute — preserves distinctness, and such
    /// rename-like projections stay pipelined.
    ///
    /// The analysis is conservative in the safe direction: a false
    /// `may_duplicate` answer can only ever cost an avoidable aggregation,
    /// never correctness (duplicate rows through a join are still summed at
    /// the next materialization point).
    pub(crate) fn may_produce_duplicate_rows(&self) -> bool {
        self.row_facts().may_duplicate
    }

    fn row_facts(&self) -> RowFacts {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Empty { .. } => RowFacts::distinct(),
            LogicalPlan::Union { .. } => RowFacts::duplicating(),
            LogicalPlan::Select { predicate, input } => {
                let mut facts = input.row_facts();
                collect_predicate_facts(predicate, input.schema(), &mut facts);
                facts
            }
            LogicalPlan::Rename {
                renaming, input, ..
            } => {
                let mut facts = input.row_facts();
                facts.rename(renaming);
                facts
            }
            LogicalPlan::Project { schema, input } => {
                let mut facts = input.row_facts();
                let drops_information = input
                    .schema()
                    .attributes()
                    .iter()
                    .any(|a| !schema.contains(a) && !facts.determined_by(a, schema));
                facts.may_duplicate |= drops_information;
                facts.restrict(schema);
                facts
            }
            LogicalPlan::Join { left, right, .. } => {
                // The compiler aggregates duplicate-streaming join inputs,
                // so the join sees distinct sides — and a join of distinct
                // inputs is distinct (the output row determines the pair).
                let mut facts = left.row_facts();
                facts.absorb(right.row_facts());
                facts.may_duplicate = false;
                facts
            }
        }
    }
}

/// Applies every rewrite pass in order: rename fusion, selection pushdown,
/// empty propagation, and column pruning (projection pushdown).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let plan = fuse_renames(plan);
    let plan = push_selections(plan);
    let plan = propagate_empty(plan);
    let needed = plan.schema().clone();
    prune_columns(plan, &needed)
}

/// Rebuilds a unary/binary node with already-rewritten children.
fn map_children(plan: LogicalPlan, f: &impl Fn(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Empty { .. } => plan,
        LogicalPlan::Union { left, right } => LogicalPlan::Union {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        LogicalPlan::Project { schema, input } => LogicalPlan::Project {
            schema,
            input: Box::new(f(*input)),
        },
        LogicalPlan::Select { predicate, input } => LogicalPlan::Select {
            predicate,
            input: Box::new(f(*input)),
        },
        LogicalPlan::Join {
            left,
            right,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            schema,
        },
        LogicalPlan::Rename {
            renaming,
            schema,
            input,
        } => LogicalPlan::Rename {
            renaming,
            schema,
            input: Box::new(f(*input)),
        },
    }
}

/// Bottom-up rename fusion: `ρ_β₁(ρ_β₂(e))` becomes one composed renaming,
/// and renamings that act as the identity on their input schema disappear.
fn fuse_renames(plan: LogicalPlan) -> LogicalPlan {
    let plan = map_children(plan, &fuse_renames);
    match plan {
        LogicalPlan::Rename {
            renaming,
            schema,
            input,
        } => match *input {
            LogicalPlan::Rename {
                renaming: inner_rho,
                input: inner_input,
                ..
            } => {
                let pairs: Vec<(Attribute, Attribute)> = inner_input
                    .schema()
                    .attributes()
                    .iter()
                    .filter_map(|a| {
                        let composed = renaming.apply(&inner_rho.apply(a));
                        (composed != *a).then_some((a.clone(), composed))
                    })
                    .collect();
                if pairs.is_empty() {
                    *inner_input
                } else {
                    LogicalPlan::Rename {
                        renaming: Renaming::new(pairs),
                        schema,
                        input: inner_input,
                    }
                }
            }
            other => {
                let identity = other
                    .schema()
                    .attributes()
                    .iter()
                    .all(|a| renaming.apply(a) == *a);
                if identity {
                    other
                } else {
                    LogicalPlan::Rename {
                        renaming,
                        schema,
                        input: Box::new(other),
                    }
                }
            }
        },
        other => other,
    }
}

/// Splits a predicate into its top-level conjuncts, dropping `true`.
fn split_conjuncts(predicate: Predicate, out: &mut Vec<Predicate>) {
    match predicate {
        Predicate::And(p, q) => {
            split_conjuncts(*p, out);
            split_conjuncts(*q, out);
        }
        Predicate::True => {}
        other => out.push(other),
    }
}

/// Re-assembles conjuncts into a single predicate (`true` when empty).
fn and_all(mut conjuncts: Vec<Predicate>) -> Predicate {
    match conjuncts.pop() {
        None => Predicate::True,
        Some(last) => conjuncts
            .into_iter()
            .rev()
            .fold(last, |acc, c| Predicate::And(Box::new(c), Box::new(acc))),
    }
}

/// Wraps `input` in a selection over `conjuncts` (no-op when empty).
fn wrap_select(conjuncts: Vec<Predicate>, input: LogicalPlan) -> LogicalPlan {
    if conjuncts.is_empty() {
        input
    } else {
        LogicalPlan::Select {
            predicate: and_all(conjuncts),
            input: Box::new(input),
        }
    }
}

/// Top-down selection pushdown.
fn push_selections(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Select { predicate, input } => {
            let input = push_selections(*input);
            let mut conjuncts = Vec::new();
            split_conjuncts(predicate, &mut conjuncts);
            push_conjuncts(conjuncts, input)
        }
        other => map_children(other, &push_selections),
    }
}

/// Pushes a set of conjuncts as far down into `input` as attribute coverage
/// allows. `input` has already been processed by [`push_selections`].
///
/// The "missing attribute" semantics of [`Predicate::eval`] (comparisons
/// against absent attributes are `false`, not errors) constrain when a
/// conjunct may move: it must see exactly the same set of present/absent
/// attributes below the operator as above it.
fn push_conjuncts(mut conjuncts: Vec<Predicate>, input: LogicalPlan) -> LogicalPlan {
    if conjuncts.iter().any(|c| matches!(c, Predicate::False)) {
        // σ_false(e) = ∅ over e's schema.
        return LogicalPlan::Empty {
            schema: input.schema().clone(),
        };
    }
    match input {
        LogicalPlan::Select {
            predicate,
            input: inner,
        } => {
            // Fuse stacked selections, then retry as one conjunct set.
            split_conjuncts(predicate, &mut conjuncts);
            push_conjuncts(conjuncts, *inner)
        }
        LogicalPlan::Union { left, right } => {
            // σ_P(A ∪ B) = σ_P(A) ∪ σ_P(B): annotations distribute over +.
            LogicalPlan::Union {
                left: Box::new(push_conjuncts(conjuncts.clone(), *left)),
                right: Box::new(push_conjuncts(conjuncts, *right)),
            }
        }
        LogicalPlan::Project { schema, input } => {
            // A conjunct moves below π_V iff every attribute it references
            // that exists in the input schema is kept by V (otherwise the
            // attribute would flip from "missing" to "present").
            let inner_schema = input.schema().clone();
            let (push, stay): (Vec<_>, Vec<_>) = conjuncts.into_iter().partition(|c| {
                c.referenced_attributes()
                    .iter()
                    .all(|a| !inner_schema.contains(a) || schema.contains(a))
            });
            wrap_select(
                stay,
                LogicalPlan::Project {
                    schema,
                    input: Box::new(push_conjuncts(push, *input)),
                },
            )
        }
        LogicalPlan::Rename {
            renaming,
            schema,
            input,
        } => {
            // Build the inverse of the renaming restricted to the input
            // schema (the renaming may mention attributes outside it, whose
            // "inverse" must not leak in).
            let inner_schema = input.schema().clone();
            let mut back: BTreeMap<Attribute, Attribute> = BTreeMap::new();
            for a in inner_schema.attributes() {
                back.insert(renaming.apply(a), a.clone());
            }
            // A conjunct moves below ρ iff each referenced attribute is
            // either produced by the renaming (then rewrite it through the
            // inverse) or absent from both sides.
            let (push, stay): (Vec<_>, Vec<_>) = conjuncts.into_iter().partition(|c| {
                c.referenced_attributes()
                    .iter()
                    .all(|a| schema.contains(a) || !inner_schema.contains(a))
            });
            let push: Vec<Predicate> = push
                .into_iter()
                .map(|c| c.map_attributes(&|a| back.get(a).cloned().unwrap_or_else(|| a.clone())))
                .collect();
            wrap_select(
                stay,
                LogicalPlan::Rename {
                    renaming,
                    schema,
                    input: Box::new(push_conjuncts(push, *input)),
                },
            )
        }
        LogicalPlan::Join {
            left,
            right,
            schema,
        } => {
            // A conjunct moves onto the input covering all its attributes
            // that exist in the join schema (attributes absent from the join
            // schema are absent from both inputs, so they stay "missing").
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut stay = Vec::new();
            for c in conjuncts {
                let refs = c.referenced_attributes();
                let present: Vec<&Attribute> = refs.iter().filter(|a| schema.contains(a)).collect();
                if present.iter().all(|a| left.schema().contains(a)) {
                    to_left.push(c);
                } else if present.iter().all(|a| right.schema().contains(a)) {
                    to_right.push(c);
                } else {
                    stay.push(c);
                }
            }
            wrap_select(
                stay,
                LogicalPlan::Join {
                    left: Box::new(push_conjuncts(to_left, *left)),
                    right: Box::new(push_conjuncts(to_right, *right)),
                    schema,
                },
            )
        }
        leaf => wrap_select(conjuncts, leaf),
    }
}

/// Bottom-up `∅` propagation: `∅` is the identity of `∪` and absorbs `σ`,
/// `π`, `ρ` and `⋈` (Proposition 3.4 identities).
fn propagate_empty(plan: LogicalPlan) -> LogicalPlan {
    let plan = map_children(plan, &propagate_empty);
    let is_empty = |p: &LogicalPlan| matches!(p, LogicalPlan::Empty { .. });
    match plan {
        LogicalPlan::Union { left, right } if is_empty(&left) => *right,
        LogicalPlan::Union { left, right } if is_empty(&right) => *left,
        LogicalPlan::Join {
            left,
            right,
            schema,
        } if is_empty(&left) || is_empty(&right) => LogicalPlan::Empty { schema },
        LogicalPlan::Select { input, .. } if is_empty(&input) => *input,
        LogicalPlan::Project { schema, input } if is_empty(&input) => LogicalPlan::Empty { schema },
        LogicalPlan::Rename { schema, input, .. } if is_empty(&input) => {
            LogicalPlan::Empty { schema }
        }
        other => other,
    }
}

/// Top-down column pruning (projection pushdown + join-input pruning).
///
/// Returns a plan whose output schema is exactly `needed` (a subset of
/// `plan`'s schema). Cascaded projections collapse because the `Project` arm
/// recurses straight into its input.
fn prune_columns(plan: LogicalPlan, needed: &Schema) -> LogicalPlan {
    debug_assert!(
        plan.schema().contains_all(needed),
        "pruning target must be a subset of the plan schema"
    );
    match plan {
        LogicalPlan::Scan { .. } => {
            if plan.schema() == needed {
                plan
            } else {
                LogicalPlan::Project {
                    schema: needed.clone(),
                    input: Box::new(plan),
                }
            }
        }
        LogicalPlan::Empty { .. } => LogicalPlan::Empty {
            schema: needed.clone(),
        },
        LogicalPlan::Project { input, .. } => prune_columns(*input, needed),
        LogicalPlan::Select { predicate, input } => {
            // The selection additionally needs the predicate's attributes
            // (those that exist below; absent ones evaluate to "missing"
            // either way).
            let child_needed = Schema::new(
                needed.attributes().iter().cloned().chain(
                    predicate
                        .referenced_attributes()
                        .into_iter()
                        .filter(|a| input.schema().contains(a)),
                ),
            );
            let pruned = LogicalPlan::Select {
                predicate,
                input: Box::new(prune_columns(*input, &child_needed)),
            };
            if child_needed == *needed {
                pruned
            } else {
                LogicalPlan::Project {
                    schema: needed.clone(),
                    input: Box::new(pruned),
                }
            }
        }
        LogicalPlan::Union { left, right } => LogicalPlan::Union {
            left: Box::new(prune_columns(*left, needed)),
            right: Box::new(prune_columns(*right, needed)),
        },
        LogicalPlan::Join { left, right, .. } => {
            // Each input keeps the columns needed upstream plus the join
            // keys; everything else is pruned before the join runs.
            let shared = left.schema().intersection(right.schema());
            let with_keys = needed.union(&shared);
            let left_needed = with_keys.intersection(left.schema());
            let right_needed = with_keys.intersection(right.schema());
            let schema = left_needed.union(&right_needed);
            let joined = LogicalPlan::Join {
                left: Box::new(prune_columns(*left, &left_needed)),
                right: Box::new(prune_columns(*right, &right_needed)),
                schema: schema.clone(),
            };
            if schema == *needed {
                joined
            } else {
                LogicalPlan::Project {
                    schema: needed.clone(),
                    input: Box::new(joined),
                }
            }
        }
        LogicalPlan::Rename {
            renaming, input, ..
        } => {
            // Keep exactly the input attributes whose renamed image is
            // needed; the restriction of an injective renaming stays
            // injective.
            let mut child_attrs = Vec::new();
            let mut pairs = Vec::new();
            for a in input.schema().attributes() {
                let b = renaming.apply(a);
                if needed.contains(&b) {
                    child_attrs.push(a.clone());
                    if b != *a {
                        pairs.push((a.clone(), b));
                    }
                }
            }
            let child_needed = Schema::new(child_attrs);
            let pruned = prune_columns(*input, &child_needed);
            if pairs.is_empty() {
                pruned
            } else {
                LogicalPlan::Rename {
                    renaming: Renaming::new(pairs),
                    schema: needed.clone(),
                    input: Box::new(pruned),
                }
            }
        }
    }
}

//! The positive relational algebra on K-relations (Definition 3.2 of the
//! paper): empty relation, union, projection, selection, natural join and
//! renaming.
//!
//! Every operation consumes and produces [`KRelation`]s and works for any
//! semiring `K`; Proposition 3.3 (operations preserve finite support) holds
//! by construction because only supports are ever materialized.

use crate::predicate::Predicate;
use crate::relation::KRelation;
use crate::schema::{Renaming, Schema};
use crate::tuple::Tuple;
use provsem_semiring::Semiring;

impl<K: Semiring> KRelation<K> {
    /// Union (Definition 3.2): `(R₁ ∪ R₂)(t) = R₁(t) + R₂(t)`.
    ///
    /// # Panics
    /// Panics if the two relations have different schemas.
    pub fn union(&self, other: &KRelation<K>) -> KRelation<K> {
        let mut result = self.clone();
        result.union_into(other);
        result
    }

    /// Projection (Definition 3.2):
    /// `(π_V R)(t) = Σ { R(t') | t = t' on V, R(t') ≠ 0 }`.
    ///
    /// # Panics
    /// Panics if `V` is not a subset of the relation's schema.
    pub fn project(&self, onto: &Schema) -> KRelation<K> {
        assert!(
            self.schema().contains_all(onto),
            "projection target must be a subset of the schema"
        );
        let mut result = KRelation::empty(onto.clone());
        for (t, k) in self.iter() {
            result.insert(t.restrict(onto), k.clone());
        }
        result
    }

    /// Projection by attribute names (convenience wrapper around
    /// [`KRelation::project`]).
    pub fn project_named<'a, I: IntoIterator<Item = &'a str>>(&self, attrs: I) -> KRelation<K> {
        self.project(&Schema::new(attrs))
    }

    /// Selection (Definition 3.2): `(σ_P R)(t) = R(t) · P(t)` where `P(t)` is
    /// `0` or `1`.
    pub fn select(&self, predicate: &Predicate) -> KRelation<K> {
        let mut result = KRelation::empty(self.schema().clone());
        for (t, k) in self.iter() {
            if predicate.eval(t) {
                // R(t) · 1 = R(t)
                result.insert(t.clone(), k.clone());
            }
            // R(t) · 0 = 0: the tuple is simply not inserted.
        }
        result
    }

    /// Natural join (Definition 3.2): the result is over `U₁ ∪ U₂` and
    /// `(R₁ ⋈ R₂)(t) = R₁(t on U₁) · R₂(t on U₂)`.
    pub fn join(&self, other: &KRelation<K>) -> KRelation<K> {
        let joint_schema = self.schema().union(other.schema());
        let shared = self.schema().intersection(other.schema());
        let mut result = KRelation::empty(joint_schema);

        // Hash-join on the shared attributes: group the smaller relation's
        // tuples by their restriction to the shared schema.
        let (build, probe, build_is_self) = if self.len() <= other.len() {
            (self, other, true)
        } else {
            (other, self, false)
        };
        let mut index: std::collections::HashMap<Tuple, Vec<(&Tuple, &K)>> =
            std::collections::HashMap::new();
        for (t, k) in build.iter() {
            index.entry(t.restrict(&shared)).or_default().push((t, k));
        }
        for (t2, k2) in probe.iter() {
            let key = t2.restrict(&shared);
            if let Some(matches) = index.get(&key) {
                for (t1, k1) in matches {
                    // Compatibility on shared attributes is guaranteed by the
                    // index key; merge is therefore always Some.
                    let merged = t1
                        .merge(t2)
                        .expect("tuples agreeing on shared attributes must merge");
                    let annotation = if build_is_self {
                        (*k1).times(k2)
                    } else {
                        k2.times(k1)
                    };
                    result.insert(merged, annotation);
                }
            }
        }
        result
    }

    /// Renaming (Definition 3.2): `(ρ_β R)(t) = R(t ∘ β)`.
    ///
    /// # Panics
    /// Panics if the renaming is not injective on this relation's schema.
    pub fn rename(&self, renaming: &Renaming) -> KRelation<K> {
        let new_schema = renaming
            .apply_schema(self.schema())
            .expect("renaming must be a bijection on the relation's schema");
        let mut result = KRelation::empty(new_schema);
        for (t, k) in self.iter() {
            result.insert(t.rename(renaming), k.clone());
        }
        result
    }

    /// Intersection, the derived operation `R₁ ∩ R₂ = R₁ ⋈ R₂` for relations
    /// over the same schema: `(R₁ ∩ R₂)(t) = R₁(t) · R₂(t)`.
    pub fn intersect(&self, other: &KRelation<K>) -> KRelation<K> {
        assert_eq!(
            self.schema(),
            other.schema(),
            "intersection requires identical schemas"
        );
        self.join(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provsem_semiring::{Bool, Natural, PosBool, Semiring};

    fn nat(n: u64) -> Natural {
        Natural::from(n)
    }

    /// The relation R of Figure 3(a): {(a,b,c) ↦ 2, (d,b,e) ↦ 5, (f,g,e) ↦ 1}.
    fn figure3_r() -> KRelation<Natural> {
        let schema = Schema::new(["a", "b", "c"]);
        KRelation::from_tuples(
            schema,
            [
                (Tuple::new([("a", "a"), ("b", "b"), ("c", "c")]), nat(2)),
                (Tuple::new([("a", "d"), ("b", "b"), ("c", "e")]), nat(5)),
                (Tuple::new([("a", "f"), ("b", "g"), ("c", "e")]), nat(1)),
            ],
        )
    }

    #[test]
    fn union_adds_annotations() {
        let schema = Schema::new(["a"]);
        let r1: KRelation<Natural> =
            KRelation::from_tuples(schema.clone(), [(Tuple::new([("a", "x")]), nat(2))]);
        let r2: KRelation<Natural> =
            KRelation::from_tuples(schema, [(Tuple::new([("a", "x")]), nat(3))]);
        let u = r1.union(&r2);
        assert_eq!(u.annotation(&Tuple::new([("a", "x")])), nat(5));
    }

    #[test]
    #[should_panic(expected = "identical schemas")]
    fn union_requires_same_schema() {
        let r1: KRelation<Natural> = KRelation::empty(Schema::new(["a"]));
        let r2: KRelation<Natural> = KRelation::empty(Schema::new(["b"]));
        let _ = r1.union(&r2);
    }

    #[test]
    fn projection_sums_collapsed_tuples() {
        // π_b of Figure 3(a): b ↦ 2 + 5 = 7, g ↦ 1.
        let r = figure3_r();
        let p = r.project_named(["b"]);
        assert_eq!(p.annotation(&Tuple::new([("b", "b")])), nat(7));
        assert_eq!(p.annotation(&Tuple::new([("b", "g")])), nat(1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn projection_onto_empty_schema_counts_everything() {
        let r = figure3_r();
        let p = r.project(&Schema::empty());
        assert_eq!(p.annotation(&Tuple::empty()), nat(8));
    }

    #[test]
    fn selection_multiplies_by_predicate() {
        let r = figure3_r();
        let s = r.select(&Predicate::eq_value("c", "e"));
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.annotation(&Tuple::new([("a", "d"), ("b", "b"), ("c", "e")])),
            nat(5)
        );
        assert!(!s.contains(&Tuple::new([("a", "a"), ("b", "b"), ("c", "c")])));
        // σ_true and σ_false (required constant predicates).
        assert_eq!(r.select(&Predicate::True), r);
        assert!(r.select(&Predicate::False).is_empty());
    }

    #[test]
    fn join_multiplies_annotations() {
        // π_ab(R) ⋈ π_bc(R) over the shared attribute b.
        let r = figure3_r();
        let ab = r.project_named(["a", "b"]);
        let bc = r.project_named(["b", "c"]);
        let j = ab.join(&bc);
        // (a,b,c): 2·2 = 4, (a,b,e): 2·5 = 10, (d,b,c): 5·2 = 10,
        // (d,b,e): 5·5 = 25, (f,g,e): 1·1 = 1.
        assert_eq!(
            j.annotation(&Tuple::new([("a", "a"), ("b", "b"), ("c", "c")])),
            nat(4)
        );
        assert_eq!(
            j.annotation(&Tuple::new([("a", "a"), ("b", "b"), ("c", "e")])),
            nat(10)
        );
        assert_eq!(
            j.annotation(&Tuple::new([("a", "d"), ("b", "b"), ("c", "e")])),
            nat(25)
        );
        assert_eq!(
            j.annotation(&Tuple::new([("a", "f"), ("b", "g"), ("c", "e")])),
            nat(1)
        );
        assert_eq!(j.len(), 5);
    }

    #[test]
    fn join_on_disjoint_schemas_is_cartesian_product() {
        let r1: KRelation<Natural> = KRelation::from_tuples(
            Schema::new(["x"]),
            [
                (Tuple::new([("x", "1")]), nat(2)),
                (Tuple::new([("x", "2")]), nat(3)),
            ],
        );
        let r2: KRelation<Natural> =
            KRelation::from_tuples(Schema::new(["y"]), [(Tuple::new([("y", "9")]), nat(5))]);
        let j = r1.join(&r2);
        assert_eq!(j.len(), 2);
        assert_eq!(j.annotation(&Tuple::new([("x", "1"), ("y", "9")])), nat(10));
    }

    #[test]
    fn join_annotation_order_is_left_times_right() {
        // For commutative K this is unobservable, but the implementation must
        // not depend on which side is used to build the hash index; check a
        // case where the sides have different sizes.
        let r1: KRelation<Natural> = KRelation::from_tuples(
            Schema::new(["x", "y"]),
            [
                (Tuple::new([("x", "1"), ("y", "a")]), nat(2)),
                (Tuple::new([("x", "2"), ("y", "a")]), nat(3)),
                (Tuple::new([("x", "3"), ("y", "b")]), nat(7)),
            ],
        );
        let r2: KRelation<Natural> =
            KRelation::from_tuples(Schema::new(["y"]), [(Tuple::new([("y", "a")]), nat(10))]);
        let j12 = r1.join(&r2);
        let j21 = r2.join(&r1);
        assert_eq!(j12, j21);
        assert_eq!(
            j12.annotation(&Tuple::new([("x", "2"), ("y", "a")])),
            nat(30)
        );
    }

    #[test]
    fn renaming_relabels_schema_and_tuples() {
        let r = figure3_r();
        let rho = Renaming::new([("a", "x")]);
        let renamed = r.rename(&rho);
        assert_eq!(renamed.schema(), &Schema::new(["x", "b", "c"]));
        assert_eq!(
            renamed.annotation(&Tuple::new([("x", "a"), ("b", "b"), ("c", "c")])),
            nat(2)
        );
        assert_eq!(renamed.len(), r.len());
    }

    #[test]
    fn intersection_multiplies_annotations_pointwise() {
        let schema = Schema::new(["a"]);
        let r1: KRelation<Natural> = KRelation::from_tuples(
            schema.clone(),
            [
                (Tuple::new([("a", "x")]), nat(2)),
                (Tuple::new([("a", "y")]), nat(3)),
            ],
        );
        let r2: KRelation<Natural> =
            KRelation::from_tuples(schema, [(Tuple::new([("a", "x")]), nat(5))]);
        let i = r1.intersect(&r2);
        assert_eq!(i.len(), 1);
        assert_eq!(i.annotation(&Tuple::new([("a", "x")])), nat(10));
    }

    #[test]
    fn boolean_relations_recover_set_semantics() {
        // With K = 𝔹 the operations are the ordinary set-semantics RA⁺.
        let schema = Schema::new(["a", "b"]);
        let r: KRelation<Bool> = KRelation::from_support(
            schema.clone(),
            [
                Tuple::new([("a", "1"), ("b", "2")]),
                Tuple::new([("a", "1"), ("b", "3")]),
            ],
        );
        let s: KRelation<Bool> =
            KRelation::from_support(schema, [Tuple::new([("a", "1"), ("b", "2")])]);
        assert_eq!(r.union(&s).len(), 2);
        assert_eq!(r.intersect(&s).len(), 1);
        assert_eq!(r.project_named(["a"]).len(), 1);
    }

    #[test]
    fn posbool_join_conjunctions() {
        // Joining tuples annotated with boolean variables conjoins them, as
        // in the Imielinski–Lipski computation.
        let r: KRelation<PosBool> = KRelation::from_tuples(
            Schema::new(["a", "b"]),
            [(Tuple::new([("a", "a"), ("b", "b")]), PosBool::var("b1"))],
        );
        let s: KRelation<PosBool> = KRelation::from_tuples(
            Schema::new(["b", "c"]),
            [(Tuple::new([("b", "b"), ("c", "e")]), PosBool::var("b2"))],
        );
        let j = r.join(&s);
        assert_eq!(
            j.annotation(&Tuple::new([("a", "a"), ("b", "b"), ("c", "e")])),
            PosBool::var("b1").times(&PosBool::var("b2"))
        );
    }

    #[test]
    fn operations_preserve_finite_support() {
        // Proposition 3.3: every operation's result support is finite and in
        // fact bounded by products/sums of the input support sizes.
        let r = figure3_r();
        assert!(r.union(&r).len() <= r.len() * 2);
        assert!(r.project_named(["a"]).len() <= r.len());
        assert!(r.select(&Predicate::True).len() <= r.len());
        let ab = r.project_named(["a", "b"]);
        let bc = r.project_named(["b", "c"]);
        assert!(ab.join(&bc).len() <= ab.len() * bc.len());
    }
}

//! Databases: named collections of K-relations (the instances that RA⁺
//! expressions and datalog programs are evaluated against).
//!
//! Relations are stored behind [`Arc`]s, which makes `Database::clone` an
//! O(#relations) pointer copy: this is the substrate of the snapshot layer
//! (see [`crate::snapshot`]), where every commit clones the previous
//! snapshot and copy-on-writes only the relations a [`DeltaBatch`] touches.
//! Mutating accessors go through [`Arc::make_mut`], so a database that
//! shares no relations behaves exactly as before, and one that does pays
//! one relation clone at first write — never a torn read for concurrent
//! holders of older snapshots.
//!
//! [`DeltaBatch`]: crate::plan::DeltaBatch

use crate::relation::KRelation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use provsem_semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A database instance: a mapping from relation names to K-relations.
#[derive(Clone, PartialEq, Eq)]
pub struct Database<K> {
    relations: BTreeMap<String, Arc<KRelation<K>>>,
}

impl<K: Semiring> Database<K> {
    /// The empty database.
    pub fn new() -> Self {
        Database {
            relations: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a relation under the given name.
    pub fn insert(&mut self, name: impl Into<String>, relation: KRelation<K>) -> &mut Self {
        self.relations.insert(name.into(), Arc::new(relation));
        self
    }

    /// Adds (or replaces) a relation that is already shared — the snapshot
    /// layer's entry point, which reuses `Arc`s across epochs for relations
    /// a commit does not touch.
    pub fn insert_shared(
        &mut self,
        name: impl Into<String>,
        relation: Arc<KRelation<K>>,
    ) -> &mut Self {
        self.relations.insert(name.into(), relation);
        self
    }

    /// Builder-style insertion.
    pub fn with(mut self, name: impl Into<String>, relation: KRelation<K>) -> Self {
        self.insert(name, relation);
        self
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Option<&KRelation<K>> {
        self.relations.get(name).map(Arc::as_ref)
    }

    /// Looks up the shared handle of a relation by name (an O(1) clone that
    /// keeps the tuple data shared — what snapshot readers hold on to).
    pub fn get_shared(&self, name: &str) -> Option<Arc<KRelation<K>>> {
        self.relations.get(name).cloned()
    }

    /// Mutable lookup. If the relation is shared with other snapshots this
    /// copy-on-writes it (one clone), leaving every other holder untouched.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut KRelation<K>> {
        self.relations.get_mut(name).map(Arc::make_mut)
    }

    /// The schema of a named relation, if present.
    pub fn schema_of(&self, name: &str) -> Option<&Schema> {
        self.relations.get(name).map(|rel| rel.schema())
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &KRelation<K>)> {
        self.relations
            .iter()
            .map(|(name, rel)| (name, rel.as_ref()))
    }

    /// Relation names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &String> {
        self.relations.keys()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of tuples across all relations (the size of the
    /// instance).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|rel| rel.len()).sum()
    }

    /// Applies an annotation transformation to every relation (the database
    /// version of `h(R)` from Proposition 3.5).
    pub fn map_annotations<K2: Semiring, F: Fn(&K) -> K2>(&self, f: F) -> Database<K2> {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            db.insert(name.clone(), rel.map_annotations(&f));
        }
        db
    }

    /// Inserts a single annotated tuple into a named relation, creating the
    /// relation (with the tuple's schema) if it does not exist yet.
    pub fn insert_tuple(&mut self, name: &str, tuple: Tuple, annotation: K) {
        match self.relations.get_mut(name) {
            Some(rel) => Arc::make_mut(rel).insert(tuple, annotation),
            None => {
                let schema = tuple.schema();
                let mut rel = KRelation::empty(schema);
                rel.insert(tuple, annotation);
                self.relations.insert(name.to_string(), Arc::new(rel));
            }
        }
    }
}

impl<K: Semiring> Default for Database<K> {
    fn default() -> Self {
        Database::new()
    }
}

impl<K: Semiring + fmt::Debug> fmt::Debug for Database<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database {{")?;
        for (name, rel) in &self.relations {
            writeln!(f, "{name}: {rel:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provsem_semiring::{Bool, Natural};

    fn sample_db() -> Database<Natural> {
        let schema = Schema::new(["x", "y"]);
        let r = KRelation::from_tuples(
            schema.clone(),
            [
                (Tuple::new([("x", "1"), ("y", "2")]), Natural::from(3u64)),
                (Tuple::new([("x", "2"), ("y", "3")]), Natural::from(4u64)),
            ],
        );
        let s = KRelation::from_tuples(
            schema,
            [(Tuple::new([("x", "9"), ("y", "9")]), Natural::from(1u64))],
        );
        Database::new().with("R", r).with("S", s)
    }

    #[test]
    fn insertion_and_lookup() {
        let db = sample_db();
        assert_eq!(db.len(), 2);
        assert_eq!(db.total_tuples(), 3);
        assert!(db.get("R").is_some());
        assert!(db.get("T").is_none());
        assert_eq!(db.schema_of("R"), Some(&Schema::new(["x", "y"])));
        assert_eq!(db.names().collect::<Vec<_>>(), vec!["R", "S"]);
    }

    #[test]
    fn map_annotations_transforms_every_relation() {
        let db = sample_db();
        let b: Database<Bool> = db.map_annotations(|n| Bool::from(!n.is_zero()));
        assert_eq!(b.total_tuples(), 3);
        assert_eq!(
            b.get("R")
                .unwrap()
                .annotation(&Tuple::new([("x", "1"), ("y", "2")])),
            Bool::from(true)
        );
    }

    #[test]
    fn insert_tuple_creates_relations_on_demand() {
        let mut db: Database<Natural> = Database::new();
        db.insert_tuple(
            "E",
            Tuple::new([("src", "a"), ("dst", "b")]),
            Natural::from(2u64),
        );
        db.insert_tuple(
            "E",
            Tuple::new([("src", "a"), ("dst", "b")]),
            Natural::from(3u64),
        );
        assert_eq!(db.len(), 1);
        assert_eq!(
            db.get("E")
                .unwrap()
                .annotation(&Tuple::new([("src", "a"), ("dst", "b")])),
            Natural::from(5u64)
        );
    }

    #[test]
    fn clone_shares_until_first_write() {
        let base = sample_db();
        let mut branch = base.clone();
        // The clone is a pointer copy: both databases hold the same Arcs.
        assert!(Arc::ptr_eq(
            &base.get_shared("R").unwrap(),
            &branch.get_shared("R").unwrap()
        ));
        // First write copy-on-writes only the touched relation...
        branch.insert_tuple(
            "R",
            Tuple::new([("x", "7"), ("y", "7")]),
            Natural::from(1u64),
        );
        assert!(!Arc::ptr_eq(
            &base.get_shared("R").unwrap(),
            &branch.get_shared("R").unwrap()
        ));
        // ...leaving the untouched relation shared and the base unchanged.
        assert!(Arc::ptr_eq(
            &base.get_shared("S").unwrap(),
            &branch.get_shared("S").unwrap()
        ));
        assert_eq!(base.total_tuples(), 3);
        assert_eq!(branch.total_tuples(), 4);
    }

    #[test]
    fn replacing_a_relation_overwrites() {
        let mut db = sample_db();
        let empty: KRelation<Natural> = KRelation::empty(Schema::new(["x", "y"]));
        db.insert("R", empty);
        assert_eq!(db.get("R").unwrap().len(), 0);
    }
}

//! The paper's running examples, packaged as ready-made instances.
//!
//! Every figure of the paper's Sections 2–7 is driven by one of two
//! instances:
//!
//! * the ternary relation `R(a,b,c) = {(a,b,c), (d,b,e), (f,g,e)}` used by
//!   Figures 1–5 (with `?`, boolean-variable, multiplicity, probabilistic
//!   event, or tuple-id annotations), queried by
//!   `q(R) = π_ac(π_ab R ⋈ π_bc R ∪ π_ac R ⋈ π_bc R)`;
//! * the binary edge relation of Figure 7, queried by datalog transitive
//!   closure.
//!
//! Centralizing them here keeps the tests, examples and benchmarks that
//! reproduce each figure literally in sync with the paper.

use crate::database::Database;
use crate::expr::{paper_example_query, RaExpr};
use crate::relation::KRelation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use provsem_semiring::{
    Bool, Event, NatInf, Natural, PosBool, ProvenancePolynomial, Semiring, Variable,
};

/// The three tuples of the Section 2 relation, in the paper's order:
/// `(a,b,c)`, `(d,b,e)`, `(f,g,e)`.
pub fn section2_tuples() -> Vec<Tuple> {
    vec![
        Tuple::new([("a", "a"), ("b", "b"), ("c", "c")]),
        Tuple::new([("a", "d"), ("b", "b"), ("c", "e")]),
        Tuple::new([("a", "f"), ("b", "g"), ("c", "e")]),
    ]
}

/// The schema `{a, b, c}` of the Section 2 relation.
pub fn section2_schema() -> Schema {
    Schema::new(["a", "b", "c"])
}

/// The query `q` of Section 2 (used in Figures 1–5), over a relation named
/// `R`.
pub fn section2_query() -> RaExpr {
    paper_example_query("R")
}

/// Builds the Section 2 database with caller-provided annotations for the
/// three tuples, in the paper's order.
pub fn section2_database<K: Semiring>(annotations: [K; 3]) -> Database<K> {
    let rel = KRelation::from_tuples(
        section2_schema(),
        section2_tuples().into_iter().zip(annotations),
    );
    Database::new().with("R", rel)
}

/// Figure 1(b): the maybe-table as a `PosBool`-relation with fresh boolean
/// variables `b1, b2, b3` (one per optional tuple).
pub fn figure1_ctable() -> Database<PosBool> {
    section2_database([PosBool::var("b1"), PosBool::var("b2"), PosBool::var("b3")])
}

/// Figure 3(a): the bag-semantics relation with multiplicities 2, 5, 1.
pub fn figure3_bag() -> Database<Natural> {
    section2_database([
        Natural::from(2u64),
        Natural::from(5u64),
        Natural::from(1u64),
    ])
}

/// Figure 4(a): the probabilistic event table. Worlds are numbered by the
/// three independent events `x, y, z`: world id `w ∈ 0..8` has bit 0 set iff
/// `x` holds, bit 1 iff `y` holds, bit 2 iff `z` holds.
pub fn figure4_events() -> Database<Event> {
    let x = Event::of_worlds((0u32..8).filter(|w| w & 1 != 0));
    let y = Event::of_worlds((0u32..8).filter(|w| w & 2 != 0));
    let z = Event::of_worlds((0u32..8).filter(|w| w & 4 != 0));
    section2_database([x, y, z])
}

/// The world probabilities matching [`figure4_events`] with
/// `P(x)=0.6, P(y)=0.5, P(z)=0.1` and independence: world `w` has probability
/// `Π P(eᵢ)^{bit} (1-P(eᵢ))^{1-bit}`.
pub fn figure4_world_probabilities() -> Vec<f64> {
    let p = [0.6f64, 0.5, 0.1];
    (0u32..8)
        .map(|w| {
            (0..3)
                .map(|i| if w & (1 << i) != 0 { p[i] } else { 1.0 - p[i] })
                .product()
        })
        .collect()
}

/// Figure 5(a): the relation abstractly tagged with its own tuple ids
/// `p, r, s`.
pub fn figure5_tagged() -> Database<ProvenancePolynomial> {
    section2_database([
        ProvenancePolynomial::var("p"),
        ProvenancePolynomial::var("r"),
        ProvenancePolynomial::var("s"),
    ])
}

/// The set-semantics (𝔹) version of the Section 2 relation, i.e. the
/// certain tuples of Figure 1 without the `?` marks.
pub fn section2_boolean() -> Database<Bool> {
    section2_database([Bool::from(true), Bool::from(true), Bool::from(true)])
}

/// The schema `{src, dst}` used for the Figure 6/7 graph relations.
pub fn edge_schema() -> Schema {
    Schema::new(["src", "dst"])
}

/// An edge tuple `(src, dst)`.
pub fn edge(src: &str, dst: &str) -> Tuple {
    Tuple::new([("src", src), ("dst", dst)])
}

/// Figure 6(b): the bag relation `{(a,a)↦2, (a,b)↦3, (b,b)↦4}` queried by
/// `Q(x,y) :- R(x,z), R(z,y)`.
pub fn figure6_bag() -> Database<Natural> {
    let rel = KRelation::from_tuples(
        edge_schema(),
        [
            (edge("a", "a"), Natural::from(2u64)),
            (edge("a", "b"), Natural::from(3u64)),
            (edge("b", "b"), Natural::from(4u64)),
        ],
    );
    Database::new().with("R", rel)
}

/// Figure 7(a/b): the ℕ-relation
/// `{(a,b)↦2, (a,c)↦3, (c,b)↦2, (b,d)↦1, (d,d)↦1}` whose transitive closure
/// under bag semantics is computed in Figure 7(c).
pub fn figure7_bag() -> Database<NatInf> {
    let rel = KRelation::from_tuples(
        edge_schema(),
        [
            (edge("a", "b"), NatInf::Fin(2)),
            (edge("a", "c"), NatInf::Fin(3)),
            (edge("c", "b"), NatInf::Fin(2)),
            (edge("b", "d"), NatInf::Fin(1)),
            (edge("d", "d"), NatInf::Fin(1)),
        ],
    );
    Database::new().with("R", rel)
}

/// Figure 7(d): the same edge relation abstractly tagged with the paper's
/// variable names `m, n, p, r, s`.
pub fn figure7_tagged() -> Database<ProvenancePolynomial> {
    let rel = KRelation::from_tuples(
        edge_schema(),
        [
            (edge("a", "b"), ProvenancePolynomial::var("m")),
            (edge("a", "c"), ProvenancePolynomial::var("n")),
            (edge("c", "b"), ProvenancePolynomial::var("p")),
            (edge("b", "d"), ProvenancePolynomial::var("r")),
            (edge("d", "d"), ProvenancePolynomial::var("s")),
        ],
    );
    Database::new().with("R", rel)
}

/// The variable names used by [`figure7_tagged`], for building valuations.
pub fn figure7_variables() -> Vec<Variable> {
    ["m", "n", "p", "r", "s"]
        .iter()
        .map(Variable::new)
        .collect()
}

/// The expected output of Figure 3(b), as `(a-value, c-value, multiplicity)`.
pub fn figure3_expected() -> Vec<(&'static str, &'static str, u64)> {
    vec![
        ("a", "c", 8),
        ("a", "e", 10),
        ("d", "c", 10),
        ("d", "e", 55),
        ("f", "e", 7),
    ]
}

/// The expected bag-semantics answers of Figure 6(c):
/// `(x, y, multiplicity)`.
pub fn figure6_expected() -> Vec<(&'static str, &'static str, u64)> {
    vec![("a", "a", 4), ("a", "b", 18), ("b", "b", 16)]
}

/// The expected ℕ∞ transitive-closure answers for the Figure 7 instance.
///
/// The first six entries are exactly the paper's Figure 7(b). The seventh,
/// `(c,d) ↦ ∞`, is derivable (via `c→b→d` and the `d→d` self-loop) but
/// omitted from the paper's figure; the full semantics produces it, so it is
/// part of the expected answer here (see EXPERIMENTS.md, experiment E7).
pub fn figure7_expected() -> Vec<(&'static str, &'static str, NatInf)> {
    vec![
        ("a", "b", NatInf::Fin(8)),
        ("a", "c", NatInf::Fin(3)),
        ("c", "b", NatInf::Fin(2)),
        ("b", "d", NatInf::Inf),
        ("d", "d", NatInf::Inf),
        ("a", "d", NatInf::Inf),
        ("c", "d", NatInf::Inf),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section2_instances_have_three_tuples() {
        assert_eq!(figure3_bag().get("R").unwrap().len(), 3);
        assert_eq!(figure1_ctable().get("R").unwrap().len(), 3);
        assert_eq!(figure4_events().get("R").unwrap().len(), 3);
        assert_eq!(figure5_tagged().get("R").unwrap().len(), 3);
        assert_eq!(section2_boolean().get("R").unwrap().len(), 3);
    }

    #[test]
    fn figure3_query_result_matches_paper() {
        let out = section2_query().eval(&figure3_bag()).unwrap();
        for (a, c, n) in figure3_expected() {
            assert_eq!(
                out.annotation(&Tuple::new([("a", a), ("c", c)])),
                Natural::from(n),
                "({a},{c})"
            );
        }
        assert_eq!(out.len(), figure3_expected().len());
    }

    #[test]
    fn figure4_world_probabilities_form_a_distribution() {
        let probs = figure4_world_probabilities();
        assert_eq!(probs.len(), 8);
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // P(x) recovered from the worlds in which x holds.
        let x = Event::of_worlds((0u32..8).filter(|w| w & 1 != 0));
        assert!((x.probability(&probs) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn figure7_graph_has_five_edges() {
        assert_eq!(figure7_bag().get("R").unwrap().len(), 5);
        assert_eq!(figure7_tagged().get("R").unwrap().len(), 5);
        assert_eq!(figure7_variables().len(), 5);
    }
}

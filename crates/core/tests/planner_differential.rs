//! Differential test: the planned query engine agrees with the
//! tree-walking reference interpreter.
//!
//! Random `RaExpr`s of bounded depth (covering every operator, including
//! deliberately ill-typed combinations) are evaluated over random small
//! databases with both `RaExpr::eval` (logical plan → optimizer → positional
//! physical operators) and `RaExpr::eval_interpreted`. The two `Result`s
//! must agree **exactly**: same error on invalid queries (the planner's
//! validation mirrors the interpreter's bottom-up, left-to-right error
//! order), and annotation-identical `KRelation`s on valid ones — over 𝔹, ℕ,
//! the tropical semiring, why-provenance and PosBool.
//!
//! The optimizer's rewrites are additionally pinned by golden
//! `Plan::explain` snapshots at the bottom of this file.

use proptest::prelude::*;
use provsem_core::plan::{ExecContext, ExecMode, Plan};
use provsem_core::prelude::*;
use provsem_semiring::{Bool, Natural, PosBool, Semiring, Tropical, WhySet};

/// A serial context pinned to the row engine: the physical-tree goldens
/// below snapshot the engine-independent operator structure, so they must
/// not pick up the ambient `PROVSEM_EXEC` mode.
fn serial_row() -> ExecContext {
    ExecContext::serial().with_mode(ExecMode::Row)
}

const CASES: u32 = 120;

/// Attribute pool. `z` never occurs in a base schema, so renames and
/// predicates over it exercise the missing-attribute paths.
const ATTRS: [&str; 5] = ["a", "b", "c", "d", "z"];
const VALUES: [&str; 4] = ["v0", "v1", "v2", "v3"];
const RELATIONS: [&str; 3] = ["R", "S", "T"];

/// Raw draw for one database fact: `(relation, v1, v2, v3, weight)`.
type RawFact = (u8, u8, u8, u8, u64);

/// A deterministic byte cursor: random expressions are decoded from a byte
/// recipe, which is what the proptest strategy draws.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn next(&mut self) -> u8 {
        if self.bytes.is_empty() {
            return 0;
        }
        // Wraps around when the recipe is exhausted, keeping decoding total.
        let b = self.bytes[self.pos % self.bytes.len()];
        self.pos += 1;
        b
    }
}

fn attr(c: &mut Cursor) -> &'static str {
    ATTRS[c.next() as usize % ATTRS.len()]
}

fn value(c: &mut Cursor) -> &'static str {
    VALUES[c.next() as usize % VALUES.len()]
}

fn subset_schema(c: &mut Cursor) -> Schema {
    let mask = c.next();
    Schema::new(
        ATTRS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, a)| *a),
    )
}

fn predicate(c: &mut Cursor, depth: u8) -> Predicate {
    match c.next() % if depth == 0 { 5 } else { 7 } {
        0 => Predicate::True,
        1 => Predicate::False,
        2 => Predicate::eq_value(attr(c), value(c)),
        3 => Predicate::ne_value(attr(c), value(c)),
        4 => Predicate::eq_attrs(attr(c), attr(c)),
        5 => predicate(c, depth - 1).and(predicate(c, depth - 1)),
        _ => predicate(c, depth - 1).or(predicate(c, depth - 1)),
    }
}

fn renaming(c: &mut Cursor) -> Renaming {
    let n = 1 + (c.next() % 2) as usize;
    Renaming::new((0..n).map(|_| (attr(c), attr(c))))
}

fn expr(c: &mut Cursor, depth: u8) -> RaExpr {
    let choice = if depth == 0 {
        c.next() % 2
    } else {
        c.next() % 8
    };
    match choice {
        0 => RaExpr::relation(RELATIONS[c.next() as usize % RELATIONS.len()]),
        1 => RaExpr::Empty(subset_schema(c)),
        2 => RaExpr::Project(subset_schema(c), Box::new(expr(c, depth - 1))),
        3 => expr(c, depth - 1).select(predicate(c, 2)),
        4 => expr(c, depth - 1).rename(renaming(c)),
        5 => {
            // Unions need matching schemas to get past validation, so bias
            // towards well-typed ones while keeping the mismatching cases.
            let left = expr(c, depth - 1);
            let right = match c.next() % 3 {
                0 => expr(c, depth - 1),
                1 => match left.output_schema(&schemas_only()) {
                    Ok(schema) => RaExpr::Empty(schema),
                    Err(_) => expr(c, depth - 1),
                },
                _ => left.clone(),
            };
            left.union(right)
        }
        _ => expr(c, depth - 1).join(expr(c, depth - 1)),
    }
}

/// An annotation-free database carrying just the base schemas, used while
/// *generating* expressions to bias unions towards well-typedness.
fn schemas_only() -> Database<Bool> {
    build_db(&[], |_, _| Bool::from(true))
}

/// Builds the test database: `R(a, b, c)`, `S(b, c, d)`, `T(d)`, populated
/// from the raw facts with annotations minted by `annotate` (which receives
/// the fact index and weight, so provenance semirings can assign one
/// variable per tuple).
fn build_db<K: Semiring>(facts: &[RawFact], annotate: impl Fn(usize, u64) -> K) -> Database<K> {
    let mut r = KRelation::empty(Schema::new(["a", "b", "c"]));
    let mut s = KRelation::empty(Schema::new(["b", "c", "d"]));
    let mut t = KRelation::empty(Schema::new(["d"]));
    for (i, (rel, x, y, z, w)) in facts.iter().enumerate() {
        let v = |n: &u8| VALUES[*n as usize % VALUES.len()];
        let k = annotate(i, *w);
        match rel % 3 {
            0 => r.insert(Tuple::new([("a", v(x)), ("b", v(y)), ("c", v(z))]), k),
            1 => s.insert(Tuple::new([("b", v(x)), ("c", v(y)), ("d", v(z))]), k),
            _ => t.insert(Tuple::new([("d", v(x))]), k),
        }
    }
    Database::new().with("R", r).with("S", s).with("T", t)
}

/// The differential contract: planned and interpreted evaluation agree
/// exactly — same error or same relation, annotations included.
fn assert_agreement<K: Semiring>(query: &RaExpr, db: &Database<K>) {
    let planned = query.eval(db);
    let interpreted = query.eval_interpreted(db);
    assert_eq!(
        planned, interpreted,
        "planned vs interpreted disagree on {query:?}"
    );
}

fn arb_recipe() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, 8..48)
}

fn arb_facts() -> impl Strategy<Value = Vec<RawFact>> {
    prop::collection::vec((0u8..3, 0u8..4, 0u8..4, 0u8..4, 1u64..4), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn boolean_agreement(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_agreement(&query, &build_db(&facts, |_, _| Bool::from(true)));
    }

    #[test]
    fn natural_agreement(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_agreement(&query, &build_db(&facts, |_, w| Natural::from(w)));
    }

    #[test]
    fn tropical_agreement(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_agreement(&query, &build_db(&facts, |_, w| Tropical::cost(w)));
    }

    #[test]
    fn why_provenance_agreement(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_agreement(&query, &build_db(&facts, |i, _| WhySet::var(format!("t{i}"))));
    }

    #[test]
    fn posbool_agreement(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_agreement(&query, &build_db(&facts, |i, _| PosBool::var(format!("t{i}"))));
    }
}

/// The Section 2 query, optimized: selections are absent, so the rewrite
/// story is projection pushdown — each join input is narrowed to the
/// columns the output and the join key need.
#[test]
fn explain_golden_paper_query() {
    let db = paper::figure3_bag();
    let plan = Plan::new(&paper::section2_query(), &db.catalog()).unwrap();
    // Note the second branch: `π_ac R ⋈ π_bc R` joins on `c` only, and `b`
    // is never needed above, so its right input narrows to `π_c R` and the
    // join produces `{a, c}` directly — no outer projection required.
    let expected = "\
∪
├─ π {a, c}
│  └─ ⋈ on {b} (build: left)
│     ├─ π {a, b}
│     │  └─ scan R {a, b, c}
│     └─ π {b, c}
│        └─ scan R {a, b, c}
└─ ⋈ on {c} (build: left)
   ├─ π {a, c}
   │  └─ scan R {a, b, c}
   └─ π {c}
      └─ scan R {a, b, c}
";
    assert_eq!(plan.explain(), expected, "got:\n{}", plan.explain());
}

/// Selection pushdown + rename fusion: the filter moves below the fused
/// renaming (rewritten through its inverse) and onto the join input that
/// covers it; untouched columns are pruned at the scans.
#[test]
fn explain_golden_pushdown() {
    let db = paper::figure3_bag();
    let query = RaExpr::relation("R")
        .rename(Renaming::new([("a", "tmp")]))
        .rename(Renaming::new([("tmp", "x")]))
        .join(RaExpr::relation("R").rename(Renaming::new([("a", "y")])))
        .select(Predicate::eq_value("x", "a"))
        .project(["x", "y"]);
    let plan = Plan::new(&query, &db.catalog()).unwrap();
    let expected = "\
π {x, y}
└─ ⋈ on {b, c} (build: left)
   ├─ ρ a→x
   │  └─ σ a=a
   │     └─ scan R {a, b, c}
   └─ ρ a→y
      └─ scan R {a, b, c}
";
    assert_eq!(plan.explain(), expected, "got:\n{}", plan.explain());
}

/// `σ_false` collapses the whole plan to the empty relation, and `∅` is the
/// identity of union.
#[test]
fn explain_golden_empty_propagation() {
    let db = paper::figure3_bag();
    let query = RaExpr::relation("R")
        .select(Predicate::False)
        .union(RaExpr::relation("R"));
    let plan = Plan::new(&query, &db.catalog()).unwrap();
    assert_eq!(plan.explain(), "scan R {a, b, c}\n");
}

/// A projection that drops only a constant-pinned column (the shape column
/// pruning produces around every `σ_{attr=const}`) cannot introduce
/// duplicate rows, so the join input stays pipelined: **no `agg` node**.
/// Before the tightened duplicate analysis this projection forced a
/// pre-join aggregation.
#[test]
fn explain_physical_golden_pinned_projection_stays_pipelined() {
    let db = paper::figure3_bag();
    let catalog = db.catalog().with("S", Schema::new(["b", "d"]), 3);
    let query = RaExpr::relation("R")
        .select(Predicate::eq_value("c", "v0"))
        .project(["a", "b"])
        .join(RaExpr::relation("S"));
    let plan = Plan::new(&query, &catalog).unwrap();
    let expected = "\
engine: row (forced)
hash-join build=left keys[1]/[0]
├─ π cols[0, 1]
│  └─ σ
│     └─ scan R {a, b, c}
└─ scan S {b, d}
";
    assert_eq!(
        plan.explain_physical_with(&serial_row()),
        expected,
        "got:\n{}",
        plan.explain_physical_with(&serial_row())
    );
    assert!(!plan.explain_physical_with(&serial_row()).contains("agg"));
    // The differential guard: planned equals interpreted on data.
    let mut dbs = db.clone();
    dbs.insert(
        "S",
        KRelation::from_tuples(
            Schema::new(["b", "d"]),
            [
                (Tuple::new([("b", "b"), ("d", "x")]), Natural::from(2u64)),
                (Tuple::new([("b", "g"), ("d", "y")]), Natural::from(3u64)),
                (Tuple::new([("b", "q"), ("d", "z")]), Natural::from(1u64)),
            ],
        ),
    );
    assert_eq!(
        query.eval(&dbs).unwrap(),
        query.eval_interpreted(&dbs).unwrap()
    );
}

/// The contrast case: dropping a column that is *not* determined by the
/// kept ones can merge distinct rows, so the join input is aggregated
/// (`agg` below the join) exactly as before.
#[test]
fn explain_physical_golden_duplicating_projection_is_aggregated() {
    let db = paper::figure3_bag();
    let catalog = db.catalog().with("S", Schema::new(["b", "d"]), 3);
    let query = RaExpr::relation("R")
        .project(["a", "b"])
        .join(RaExpr::relation("S"));
    let plan = Plan::new(&query, &catalog).unwrap();
    let expected = "\
engine: row (forced)
hash-join build=left keys[1]/[0]
├─ agg
│  └─ π cols[0, 1]
│     └─ scan R {a, b, c}
└─ scan S {b, d}
";
    assert_eq!(
        plan.explain_physical_with(&serial_row()),
        expected,
        "got:\n{}",
        plan.explain_physical_with(&serial_row())
    );
}

/// Under a multi-threaded [`ExecContext`] the physical rendering shows how
/// execution fans out: scans are split into morsels and hash joins /
/// pre-join aggregations into key partitions, one worker each. The counts
/// are a function of the context alone, so this snapshot is pinned at 4
/// threads regardless of `PROVSEM_THREADS`.
#[test]
fn explain_physical_golden_renders_morsel_and_partition_counts() {
    let db = paper::figure3_bag();
    let catalog = db.catalog().with("S", Schema::new(["b", "d"]), 3);
    let query = RaExpr::relation("R")
        .project(["a", "b"])
        .join(RaExpr::relation("S"));
    let plan = Plan::new(&query, &catalog).unwrap();
    let expected = "\
engine: row (forced)
hash-join build=left keys[1]/[0] [partitions=4]
├─ agg [partitions=4]
│  └─ π cols[0, 1]
│     └─ scan R {a, b, c} [morsels=4]
└─ scan S {b, d} [morsels=4]
";
    let rendered =
        plan.explain_physical_with(&ExecContext::with_threads(4).with_mode(ExecMode::Row));
    assert_eq!(rendered, expected, "got:\n{rendered}");
    // The serial rendering stays count-free (and snapshot-compatible).
    assert!(!plan
        .explain_physical_with(&serial_row())
        .contains("partitions"));
}

/// Under the batch engine each scan additionally shows its batch row
/// budget; the operator tree itself is identical — both engines execute the
/// same physical plan.
#[test]
fn explain_physical_golden_batch_mode_renders_batch_budget() {
    let db = paper::figure3_bag();
    let catalog = db.catalog().with("S", Schema::new(["b", "d"]), 3);
    let query = RaExpr::relation("R")
        .project(["a", "b"])
        .join(RaExpr::relation("S"));
    let plan = Plan::new(&query, &catalog).unwrap();
    let expected = "\
engine: batch (forced)
hash-join build=left keys[1]/[0]
├─ agg
│  └─ π cols[0, 1]
│     └─ scan R {a, b, c} [batch=4096]
└─ scan S {b, d} [batch=4096]
";
    let ctx = ExecContext::serial().with_mode(ExecMode::Batch);
    let rendered = plan.explain_physical_with(&ctx);
    assert_eq!(rendered, expected, "got:\n{rendered}");
}

/// Under [`ExecMode::Auto`] (the default) the engine is picked at plan
/// time from the catalog's scan-row estimates: paper-sized inputs — the
/// Section 9 canonical databases have a handful of facts — stay on the row
/// engine (columnarization overhead dominates tiny scans), while inputs at
/// or past [`Plan::AUTO_BATCH_MIN_ROWS`] total scan rows take the batch
/// engine. Both decisions are pinned here, and both engines produce the
/// identical relation.
#[test]
fn auto_engine_selection_follows_the_scan_row_estimate() {
    let db = paper::figure3_bag();
    let auto = ExecContext::serial().with_mode(ExecMode::Auto);
    let query = RaExpr::relation("R")
        .project(["a", "b"])
        .join(RaExpr::relation("S"));
    // Section-9-sized catalog: 3 + 3 = 6 estimated scan rows → row engine.
    let small = db.catalog().with("S", Schema::new(["b", "d"]), 3);
    let plan = Plan::new(&query, &small).unwrap();
    assert!(
        plan.explain_physical_with(&auto)
            .starts_with("engine: row (auto: ~6 scan rows < 64)"),
        "got:\n{}",
        plan.explain_physical_with(&auto)
    );
    // The same query over a catalog advertising a large S flips to batch.
    let large = db.catalog().with("S", Schema::new(["b", "d"]), 500);
    let plan = Plan::new(&query, &large).unwrap();
    assert!(
        plan.explain_physical_with(&auto)
            .starts_with("engine: batch (auto: ~503 scan rows ≥ 64)"),
        "got:\n{}",
        plan.explain_physical_with(&auto)
    );
    // The decision never changes the result: all three modes agree.
    let mut dbs = db.clone();
    dbs.insert(
        "S",
        KRelation::from_tuples(
            Schema::new(["b", "d"]),
            [
                (Tuple::new([("b", "b"), ("d", "x")]), Natural::from(2u64)),
                (Tuple::new([("b", "g"), ("d", "y")]), Natural::from(3u64)),
            ],
        ),
    );
    let row = plan.execute_with(&dbs, &ExecContext::serial().with_mode(ExecMode::Row));
    let batch = plan.execute_with(&dbs, &ExecContext::serial().with_mode(ExecMode::Batch));
    let picked = plan.execute_with(&dbs, &auto);
    assert_eq!(row, batch);
    assert_eq!(row, picked);
}

/// `Plan::explain_batches` reports the columnar layout per scan against a
/// concrete source: row and batch counts plus each column's encoding —
/// string columns dictionary-encoded with their distinct-string counts.
#[test]
fn explain_batches_golden_reports_dictionary_columns() {
    let db = paper::figure3_bag();
    let plan = Plan::new(&RaExpr::relation("R").project(["a", "b"]), &db.catalog()).unwrap();
    let expected =
        "scan R: rows=3 batches=1 cols[a=dict(3), b=dict(2), c=dict(2)] source=converted\n";
    let rendered = plan.explain_batches(&db);
    assert_eq!(rendered, expected, "got:\n{rendered}");
}

/// An attribute-equality selection (`a=c`) determines the dropped column
/// through the kept one, so the rename-like projection stays pipelined too.
#[test]
fn explain_physical_equality_determined_projection_stays_pipelined() {
    let db = paper::figure3_bag();
    let catalog = db.catalog().with("S", Schema::new(["b", "d"]), 3);
    let query = RaExpr::relation("R")
        .select(Predicate::eq_attrs("a", "c"))
        .project(["a", "b"])
        .join(RaExpr::relation("S"));
    let plan = Plan::new(&query, &catalog).unwrap();
    let physical = plan.explain_physical_with(&ExecContext::serial());
    assert!(!physical.contains("agg"), "got:\n{physical}");
    // Dropping the *kept-side* of the pair keeps working symmetrically.
    let query = RaExpr::relation("R")
        .select(Predicate::eq_attrs("a", "c"))
        .project(["b", "c"])
        .join(RaExpr::relation("S"));
    let plan = Plan::new(&query, &catalog).unwrap();
    let physical = plan.explain_physical_with(&ExecContext::serial());
    assert!(!physical.contains("agg"), "got:\n{physical}");
}

//! Concurrency differential suite: concurrent == serial replay.
//!
//! Random interleavings of `execute` / `maintain` / `commit` run against
//! one [`SharedDatabase`] from 2–8 threads. Every commit returns the epoch
//! it published, every read records the epoch of the snapshot it ran
//! against, so after the threads join the whole run can be **replayed
//! single-file**: apply the logged batches in epoch order on a fresh copy
//! of the seed database, capture the state at every epoch, and require each
//! concurrent observation to equal the serial recomputation at its epoch —
//! support *and* annotations, including standing views maintained inside
//! the commit path.
//!
//! Any snapshot torn mid-batch, any view published ahead of or behind its
//! epoch, and any nondeterminism in parallel plan execution shows up as an
//! equality failure here. Run in CI under `PROVSEM_THREADS=1` and `=4`;
//! commits and executions additionally pass explicit serial and 4-thread
//! [`ExecContext`]s so both code paths are exercised regardless of the
//! environment.

use provsem_core::plan::{DeltaBatch, ExecContext, Plan};
use provsem_core::prelude::*;
use provsem_semiring::ring::Integers;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

const VALUES: [&str; 4] = ["v0", "v1", "v2", "v3"];
const ITERATIONS_PER_THREAD: usize = 25;

fn seed_db() -> Database<Integers> {
    let mut db = Database::new()
        .with("R", KRelation::empty(Schema::new(["a", "b", "c"])))
        .with("S", KRelation::empty(Schema::new(["b", "c", "d"])));
    for (i, (x, y, z)) in [(0, 1, 2), (1, 2, 3), (2, 3, 0), (3, 0, 1)]
        .iter()
        .enumerate()
    {
        db.insert_tuple(
            "R",
            Tuple::new([("a", VALUES[*x]), ("b", VALUES[*y]), ("c", VALUES[*z])]),
            Integers::new(i as i64 + 1),
        );
        db.insert_tuple(
            "S",
            Tuple::new([("b", VALUES[*y]), ("c", VALUES[*z]), ("d", VALUES[*x])]),
            Integers::new(2),
        );
    }
    db
}

/// The fixed query pool read-threads draw from (all valid on the seed
/// schema).
fn queries() -> Vec<RaExpr> {
    vec![
        RaExpr::relation("R"),
        RaExpr::relation("R").project(["a", "b"]),
        RaExpr::relation("R").select(Predicate::ne_value("c", "v0")),
        RaExpr::relation("R").join(RaExpr::relation("S")),
        RaExpr::relation("R")
            .project(["b", "c"])
            .union(RaExpr::relation("S").project(["b", "c"])),
    ]
}

/// The standing views registered before the concurrent phase (maintained
/// inside every commit).
fn views() -> Vec<(&'static str, RaExpr)> {
    vec![
        ("V_proj", RaExpr::relation("R").project(["a"])),
        (
            "V_join",
            RaExpr::relation("R")
                .join(RaExpr::relation("S"))
                .project(["a", "d"]),
        ),
    ]
}

fn random_batch(rng: &mut StdRng) -> DeltaBatch<Integers> {
    let mut batch = DeltaBatch::new();
    for _ in 0..rng.gen_range(1usize..=4) {
        let v = |rng: &mut StdRng| VALUES[rng.gen_range(0usize..VALUES.len())];
        let count = [-2i64, -1, 1, 1, 2, 3][rng.gen_range(0usize..6)];
        if rng.gen_bool(0.5) {
            batch.insert(
                "R",
                Tuple::new([("a", v(rng)), ("b", v(rng)), ("c", v(rng))]),
                Integers::new(count),
            );
        } else {
            batch.insert(
                "S",
                Tuple::new([("b", v(rng)), ("c", v(rng)), ("d", v(rng))]),
                Integers::new(count),
            );
        }
    }
    batch
}

/// What a thread saw: either a query result or a view result, stamped with
/// the epoch of the snapshot it came from.
enum Observation {
    Query {
        epoch: u64,
        query: usize,
        result: KRelation<Integers>,
    },
    View {
        epoch: u64,
        name: &'static str,
        result: KRelation<Integers>,
    },
}

/// One full round: `n_threads` threads interleave commits and reads under
/// `ctx`, then the run is replayed serially and every observation checked.
fn run_round(seed: u64, n_threads: usize, ctx: &ExecContext) {
    let shared = SharedDatabase::new(seed_db());
    let view_defs = views();
    for (name, expr) in &view_defs {
        shared.register_view(*name, expr).unwrap();
    }
    let base_epoch = shared.epoch();
    let query_pool = queries();

    let commits: Mutex<Vec<(u64, DeltaBatch<Integers>)>> = Mutex::new(Vec::new());
    let observations: Mutex<Vec<Observation>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..n_threads {
            let shared = &shared;
            let query_pool = &query_pool;
            let view_defs = &view_defs;
            let commits = &commits;
            let observations = &observations;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed * 101 + t as u64);
                let mut local = Vec::new();
                for _ in 0..ITERATIONS_PER_THREAD {
                    match rng.gen_range(0usize..4) {
                        // Commit: the only mutating op; logged with its epoch.
                        0 => {
                            let batch = random_batch(&mut rng);
                            let epoch = shared.commit_with(&batch, ctx);
                            commits.lock().unwrap().push((epoch, batch));
                        }
                        // Execute a plan against a snapshot.
                        1 | 2 => {
                            let snapshot = shared.snapshot();
                            let query = rng.gen_range(0usize..query_pool.len());
                            let plan = Plan::new(&query_pool[query], &snapshot.catalog()).unwrap();
                            local.push(Observation::Query {
                                epoch: snapshot.epoch(),
                                query,
                                result: plan.execute_with(&snapshot, ctx),
                            });
                        }
                        // Read a maintained view off a snapshot.
                        _ => {
                            let snapshot = shared.snapshot();
                            let (name, _) = view_defs[rng.gen_range(0usize..view_defs.len())];
                            local.push(Observation::View {
                                epoch: snapshot.epoch(),
                                name,
                                result: snapshot.view(name).unwrap().clone(),
                            });
                        }
                    }
                }
                observations.lock().unwrap().extend(local);
            });
        }
    });

    // --- Serial replay: reconstruct the state at every epoch. ---
    let mut commits = commits.into_inner().unwrap();
    commits.sort_by_key(|(epoch, _)| *epoch);
    for (i, (epoch, _)) in commits.iter().enumerate() {
        assert_eq!(
            *epoch,
            base_epoch + i as u64 + 1,
            "commit epochs must be contiguous"
        );
    }

    let replay = SharedDatabase::new(seed_db());
    for (name, expr) in &view_defs {
        replay.register_view(*name, expr).unwrap();
    }
    let serial = ExecContext::serial();
    let mut states = vec![replay.snapshot()]; // index: epoch - base_epoch
    for (epoch, batch) in &commits {
        assert_eq!(replay.commit_with(batch, &serial), *epoch);
        states.push(replay.snapshot());
    }

    // --- Every concurrent observation equals the serial recomputation. ---
    for observation in observations.into_inner().unwrap() {
        match observation {
            Observation::Query {
                epoch,
                query,
                result,
            } => {
                let state = &states[(epoch - base_epoch) as usize];
                let plan = Plan::new(&query_pool[query], &state.catalog()).unwrap();
                assert_eq!(
                    result,
                    plan.execute_with(state, &serial),
                    "query {query} diverged from serial replay at epoch {epoch} \
                     (seed {seed}, {n_threads} threads)"
                );
            }
            Observation::View {
                epoch,
                name,
                result,
            } => {
                let state = &states[(epoch - base_epoch) as usize];
                assert_eq!(
                    &result,
                    state.view(name).unwrap(),
                    "view {name} diverged from serial replay at epoch {epoch} \
                     (seed {seed}, {n_threads} threads)"
                );
                // And the published view equals recomputing its definition.
                let (_, expr) = view_defs.iter().find(|(n, _)| *n == name).unwrap();
                let plan = Plan::new(expr, &state.catalog()).unwrap();
                assert_eq!(
                    result,
                    plan.execute_with(state, &serial),
                    "view {name} != recompute at epoch {epoch}"
                );
            }
        }
    }
}

#[test]
fn concurrent_equals_serial_replay_across_thread_counts() {
    // 2–8 threads, per-query execution serial: interleaving is the variable.
    for n_threads in 2..=8 {
        run_round(n_threads as u64, n_threads, &ExecContext::serial());
    }
}

#[test]
fn concurrent_equals_serial_replay_with_parallel_execution() {
    // Intra-query parallelism on top of inter-session concurrency.
    let four = ExecContext::with_threads(4);
    for n_threads in [2, 4, 8] {
        run_round(100 + n_threads as u64, n_threads, &four);
    }
}

#[test]
fn concurrent_equals_serial_replay_under_default_context() {
    // The env-configured path (PROVSEM_THREADS in CI).
    let ctx = ExecContext::default();
    for seed in 0..3 {
        run_round(200 + seed, 6, &ctx);
    }
}

//! Differential test: the morsel-driven parallel executor agrees with the
//! serial pipelined path **exactly** — same `KRelation` (support, annotation
//! values, and therefore iteration order), same errors — at `threads ∈
//! {2, 4}`, across the five differential semirings (𝔹, ℕ, tropical,
//! Why(X), PosBool) and the provenance-circuit route.
//!
//! Two workload families: proptest-random small databases (exercising the
//! inline, below-threshold paths and every operator combination) and a
//! deterministic large database (exceeding the spawn threshold, so real
//! worker threads, exchanges, and — for circuits — per-worker arenas with
//! id-remapping merges are on the hot path).

use proptest::prelude::*;
use provsem_core::plan::{ExecContext, Plan};
use provsem_core::prelude::*;
use provsem_core::provenance::{specialize_circuit_with, specialize_with};
use provsem_semiring::{circuit, Bool, Natural, PosBool, Semiring, Tropical, WhySet};

const THREADS: [usize; 2] = [2, 4];

/// Query shapes covering every physical operator: pipelined σ/π/permute,
/// unions (incl. above joins), duplicate-producing projections (pre-join
/// aggregation), self joins, swapped build sides, and key-less joins.
fn query_shapes() -> Vec<RaExpr> {
    let r = || RaExpr::relation("R");
    let s = || RaExpr::relation("S");
    vec![
        // Section-2 style self join through a shared attribute + projection.
        paper_example_query("R"),
        // Pipelined select + permute (rename) over a scan.
        r().select(Predicate::eq_value("a", "v1"))
            .rename(Renaming::new([("a", "x")])),
        // Join with a duplicate-producing projection input (agg inserted).
        r().project(["a", "b"]).join(s()),
        // Union of projections, then join (duplicates from both sides).
        r().project(["b"]).union(s().project(["b"])).join(s()),
        // Join keyed on two attributes, plus a selection above.
        r().join(s().rename(Renaming::new([("d", "c")])))
            .select(Predicate::ne_value("b", "v0")),
        // Self join after disjoint renames: no shared attributes → key-less
        // (cross) join through the exchange's single partition.
        r().project(["a"])
            .rename(Renaming::new([("a", "x")]))
            .join(r().project(["c"]).rename(Renaming::new([("c", "y")]))),
        // Deep union tree (partition-count coalescing).
        r().union(r()).union(r().union(r())).project(["a", "c"]),
        // Selection that empties one join input (∅ propagation at runtime).
        r().select(Predicate::eq_value("a", "no-such-value"))
            .join(s()),
    ]
}

fn schema_r() -> Schema {
    Schema::new(["a", "b", "c"])
}

fn schema_s() -> Schema {
    Schema::new(["b", "d"])
}

/// Deterministic pseudo-random facts (labels index a small shared domain so
/// joins actually match).
fn facts(seed: u64, rows: usize, domain: u64) -> Vec<(String, String, String, u64)> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..rows)
        .map(|_| {
            (
                format!("v{}", next() % domain),
                format!("v{}", next() % domain),
                format!("v{}", next() % domain),
                next() % 5 + 1,
            )
        })
        .collect()
}

fn build_db<K: Semiring>(
    rows: &[(String, String, String, u64)],
    annotate: impl Fn(usize, u64) -> K,
) -> Database<K> {
    let mut r = KRelation::empty(schema_r());
    let mut s = KRelation::empty(schema_s());
    for (i, (a, b, c, w)) in rows.iter().enumerate() {
        let k = annotate(i, *w);
        if i % 3 == 0 {
            s.insert(Tuple::new([("b", b.as_str()), ("d", c.as_str())]), k);
        } else {
            r.insert(
                Tuple::new([("a", a.as_str()), ("b", b.as_str()), ("c", c.as_str())]),
                k,
            );
        }
    }
    Database::new().with("R", r).with("S", s)
}

/// Serial-vs-parallel exact agreement for one database over one semiring.
fn check_db<K: Semiring>(db: &Database<K>) {
    let catalog = db.catalog();
    for query in query_shapes() {
        let plan = Plan::new(&query, &catalog).expect("shapes are valid over R/S");
        let serial = plan.execute_with(db, &ExecContext::serial());
        for threads in THREADS {
            let parallel = plan.execute_with(db, &ExecContext::with_threads(threads));
            assert_eq!(serial, parallel, "threads={threads} query={query:?}");
        }
    }
}

/// All five differential semirings. The set-valued provenance semirings
/// (Why(X), PosBool) get a reduced row budget: their annotations grow with
/// every summed duplicate, which is the point of the differential (exact
/// value agreement) but quadratic on purpose-built large joins.
fn check_seed(seed: u64, rows: usize) {
    let raw = facts(seed, rows, 6 + (rows / 40) as u64);
    check_db(&build_db(&raw, |_, w| Natural::from(w)));
    check_db(&build_db(&raw, |_, _| Bool::from(true)));
    check_db(&build_db(&raw, |_, w| Tropical::cost(w)));
    let raw = facts(seed, rows.min(60), 6);
    check_db(&build_db(&raw, |i, _| WhySet::var(format!("t{i}"))));
    check_db(&build_db(&raw, |i, _| PosBool::var(format!("t{i}"))));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Small random instances: every operator path, inline and spawned.
    #[test]
    fn parallel_equals_serial_on_random_small_instances(seed in 0u64..1_000_000_000, rows in 1usize..40) {
        check_seed(seed, rows);
    }
}

/// Large deterministic instances: big enough that the executor genuinely
/// spawns workers and exchanges partitions at both thread counts (the
/// set-valued semirings run at their reduced budget inside `check_seed`).
#[test]
fn parallel_equals_serial_on_large_instances() {
    for seed in [7, 42, 1234] {
        check_seed(seed, 600);
    }
}

/// Planning errors do not depend on the execution context (they happen
/// before execution), and `eval` — which routes through the env-default
/// context — reports them identically.
#[test]
fn invalid_queries_error_identically() {
    let raw = facts(1, 30, 4);
    let db = build_db(&raw, |_, w| Natural::from(w));
    for query in [
        RaExpr::relation("Missing"),
        RaExpr::relation("R").project(["nope"]),
        RaExpr::relation("R").union(RaExpr::relation("S")),
    ] {
        let planned = Plan::new(&query, &db.catalog()).map(|_| ());
        assert_eq!(planned, query.eval(&db).map(|_| ()), "query={query:?}");
        assert!(planned.is_err());
    }
}

/// The circuit route end to end: tag → parallel query (worker arenas merged
/// back by id remapping) → parallel specialization. Parallel circuit
/// handles may be *different node ids* than serial ones, but they must be
/// semantically equal (`KRelation<Circuit>` equality lowers to ℕ\[X\]) and
/// specialize to identical K-relations.
#[test]
fn circuit_route_parallel_equals_serial_end_to_end() {
    let raw = facts(11, 400, 8);
    let db = build_db(&raw, |_, w| Natural::from(w));
    let catalog = db.catalog();
    for query in query_shapes() {
        circuit::reset();
        let tagged = provsem_core::tag_database_circuit(&db);
        let plan = Plan::new(&query, &catalog).expect("valid");
        let serial_prov = plan.execute_with(&tagged.database, &ExecContext::serial());
        let serial_out = provsem_core::specialize_circuit(&serial_prov, &tagged.valuation);
        for threads in THREADS {
            let ctx = ExecContext::with_threads(threads);
            let parallel_prov = plan.execute_with(&tagged.database, &ctx);
            assert_eq!(
                serial_prov, parallel_prov,
                "threads={threads} query={query:?}"
            );
            let parallel_out = specialize_circuit_with(&parallel_prov, &tagged.valuation, &ctx);
            assert_eq!(
                serial_out, parallel_out,
                "threads={threads} query={query:?}"
            );
        }
    }
}

/// The polynomial specialization fan-out agrees with the serial `Eval_v`.
#[test]
fn parallel_specialization_of_polynomials_matches_serial() {
    let raw = facts(23, 700, 6);
    let db = build_db(&raw, |_, w| Natural::from(w));
    let (prov, valuation) =
        provsem_core::provenance_of_query(&paper_example_query("R"), &db).expect("valid");
    let serial = provsem_core::specialize(&prov, &valuation);
    for threads in THREADS {
        let parallel = specialize_with(&prov, &valuation, &ExecContext::with_threads(threads));
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

//! Planner edge cases: empty relations, zero-arity schemas, self-joins,
//! rename chains that collide and un-collide, and selections referencing
//! renamed attributes. Every case checks the planned engine against the
//! tree-walking interpreter (and, where the result is small enough to spell
//! out, against the expected relation).

use provsem_core::plan::Plan;
use provsem_core::prelude::*;
use provsem_semiring::Natural;

fn nat(n: u64) -> Natural {
    Natural::from(n)
}

fn db() -> Database<Natural> {
    let r = KRelation::from_tuples(
        Schema::new(["a", "b"]),
        [
            (Tuple::new([("a", "x"), ("b", "y")]), nat(2)),
            (Tuple::new([("a", "y"), ("b", "y")]), nat(3)),
        ],
    );
    let empty: KRelation<Natural> = KRelation::empty(Schema::new(["a", "b"]));
    // A zero-arity relation containing the empty tuple with annotation 7.
    let unit = KRelation::from_tuples(Schema::empty(), [(Tuple::empty(), nat(7))]);
    Database::new()
        .with("R", r)
        .with("Nothing", empty)
        .with("Unit", unit)
}

fn agree(query: &RaExpr) -> KRelation<Natural> {
    let db = db();
    let planned = query.eval(&db);
    let interpreted = query.eval_interpreted(&db);
    assert_eq!(planned, interpreted, "disagreement on {query:?}");
    planned.expect("edge-case queries are valid")
}

#[test]
fn joins_and_unions_with_stored_empty_relations() {
    let out = agree(&RaExpr::relation("R").join(RaExpr::relation("Nothing")));
    assert!(out.is_empty());
    let out = agree(&RaExpr::relation("R").union(RaExpr::relation("Nothing")));
    assert_eq!(out.len(), 2);
}

#[test]
fn zero_arity_relations_and_projections() {
    // π_∅(R) sums every annotation into the empty tuple.
    let out = agree(&RaExpr::Project(
        Schema::empty(),
        Box::new(RaExpr::relation("R")),
    ));
    assert_eq!(out.annotation(&Tuple::empty()), nat(5));

    // Joining with a 0-ary relation scales every annotation (it is the
    // paper's scalar multiplication: 0-ary relations are semiring elements).
    let out = agree(&RaExpr::relation("R").join(RaExpr::relation("Unit")));
    assert_eq!(
        out.annotation(&Tuple::new([("a", "x"), ("b", "y")])),
        nat(14)
    );

    // 0-ary self-join squares the scalar.
    let out = agree(&RaExpr::relation("Unit").join(RaExpr::relation("Unit")));
    assert_eq!(out.annotation(&Tuple::empty()), nat(49));

    // An empty 0-ary relation stays empty through union with itself.
    let e = RaExpr::Empty(Schema::empty());
    let out = agree(&e.clone().union(e));
    assert!(out.is_empty());
}

#[test]
fn self_join_squares_annotations() {
    // R ⋈ R over identical schemas: every shared attribute is a join key,
    // so each tuple pairs with itself and annotations square.
    let out = agree(&RaExpr::relation("R").join(RaExpr::relation("R")));
    assert_eq!(out.len(), 2);
    assert_eq!(
        out.annotation(&Tuple::new([("a", "x"), ("b", "y")])),
        nat(4)
    );
    assert_eq!(
        out.annotation(&Tuple::new([("a", "y"), ("b", "y")])),
        nat(9)
    );
}

#[test]
fn rename_chain_collides_then_uncollides() {
    // a→tmp, then b→a, then tmp→b: a net swap of a and b. Each step is
    // injective even though a naive "rename a to b first" would collide.
    // Rename fusion must compose the chain into the single swap.
    let query = RaExpr::relation("R")
        .rename(Renaming::new([("a", "tmp")]))
        .rename(Renaming::new([("b", "a")]))
        .rename(Renaming::new([("tmp", "b")]));
    let out = agree(&query);
    assert_eq!(out.schema(), &Schema::new(["a", "b"]));
    assert_eq!(
        out.annotation(&Tuple::new([("a", "y"), ("b", "x")])),
        nat(2)
    );

    let plan = Plan::new(&query, &db().catalog()).unwrap();
    assert_eq!(plan.explain(), "ρ a→b, b→a\n└─ scan R {a, b}\n");
}

#[test]
fn colliding_rename_is_rejected_identically() {
    let query = RaExpr::relation("R").rename(Renaming::new([("a", "b")]));
    let database = db();
    assert_eq!(query.eval(&database), query.eval_interpreted(&database),);
    assert!(matches!(
        query.eval(&database),
        Err(EvalError::InvalidRenaming(_))
    ));
}

#[test]
fn selection_referencing_renamed_attributes() {
    // The selection references the *new* names; pushdown through the rename
    // must rewrite them back through the inverse.
    let query = RaExpr::relation("R")
        .rename(Renaming::new([("a", "x"), ("b", "y")]))
        .select(Predicate::eq_attrs("x", "y").or(Predicate::eq_value("y", "y")));
    let out = agree(&query);
    assert_eq!(out.len(), 2);
    assert_eq!(
        out.annotation(&Tuple::new([("x", "y"), ("y", "y")])),
        nat(3)
    );
}

#[test]
fn selection_referencing_pre_rename_attribute_stays_missing() {
    // After ρ_{a→x}, attribute `a` no longer exists; a selection on it must
    // select nothing — and crucially must NOT be pushed below the rename,
    // where `a` would suddenly exist again.
    let query = RaExpr::relation("R")
        .rename(Renaming::new([("a", "x")]))
        .select(Predicate::eq_value("a", "x"));
    let out = agree(&query);
    assert!(out.is_empty());

    // In a disjunction the missing attribute disables only its disjunct.
    let query = RaExpr::relation("R")
        .rename(Renaming::new([("a", "x")]))
        .select(Predicate::eq_value("a", "x").or(Predicate::eq_value("x", "y")));
    let out = agree(&query);
    assert_eq!(out.len(), 1);
}

#[test]
fn empty_input_relation_through_full_pipeline() {
    // The whole operator zoo over an *empty* stored relation.
    let query = RaExpr::relation("Nothing")
        .select(Predicate::eq_value("a", "x"))
        .rename(Renaming::new([("b", "c")]))
        .project(["c"])
        .join(
            RaExpr::relation("R")
                .project(["b"])
                .rename(Renaming::new([("b", "c")])),
        );
    let out = agree(&query);
    assert!(out.is_empty());
    assert_eq!(out.schema(), &Schema::new(["c"]));
}

#[test]
fn projection_collapse_keeps_summation() {
    // π_a(π_ab(R)) = π_a(R); the collapse must not change how duplicates
    // are summed.
    let query = RaExpr::Project(
        Schema::new(["b"]),
        Box::new(RaExpr::Project(
            Schema::new(["a", "b"]),
            Box::new(RaExpr::relation("R")),
        )),
    );
    let out = agree(&query);
    assert_eq!(out.annotation(&Tuple::new([("b", "y")])), nat(5));
}

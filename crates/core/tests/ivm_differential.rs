//! Differential test: incremental view maintenance equals recomputation.
//!
//! Random `RaExpr`s of bounded depth (the same byte-recipe generator as
//! `planner_differential.rs`, covering every operator and ill-typed
//! combinations) are materialized over random small databases and then
//! maintained under random insert/delete batches. The contract, pinned
//! exactly (support *and* annotations):
//!
//! ```text
//! maintain(view, Δ₁); maintain(view, Δ₂); …  ==  execute(base + Δ₁ + Δ₂ + …)
//! ```
//!
//! over every shipped ring type — ℤ (`Integers`), ℤ\[X\] (`ZPolynomial`),
//! and the difference-pair lifting `DiffPair<Natural>` — plus insert-only
//! batches over the plain semiring ℕ (insert-only deltas need no additive
//! inverses). Invalid queries must error identically in the planner and the
//! reference interpreter (there is nothing to maintain, but the *error*
//! agreement is part of the differential contract). Delete-heavy and
//! delete-to-zero batches are drawn deliberately, and every case runs the
//! maintenance both serially and at 4 threads — the results must be
//! byte-identical (the PR-5 determinism guarantee extended to `maintain`).
//!
//! Run under `PROVSEM_THREADS=1` and `=4` in CI, so the default-context
//! paths get both budgets too.

use proptest::prelude::*;
use provsem_core::plan::{DeltaBatch, ExecContext, Plan};
use provsem_core::prelude::*;
use provsem_semiring::prelude::*;

const CASES: u32 = 120;

const ATTRS: [&str; 5] = ["a", "b", "c", "d", "z"];
const VALUES: [&str; 4] = ["v0", "v1", "v2", "v3"];
const RELATIONS: [&str; 3] = ["R", "S", "T"];

/// Raw draw for one base fact: `(relation, v1, v2, v3, weight)`.
type RawFact = (u8, u8, u8, u8, u64);

/// Raw draw for one delta row: `(relation, v1, v2, v3, signed weight)`.
/// Negative weights are deletions; a weight of zero is dropped.
type RawDelta = (u8, u8, u8, u8, i64);

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn next(&mut self) -> u8 {
        if self.bytes.is_empty() {
            return 0;
        }
        let b = self.bytes[self.pos % self.bytes.len()];
        self.pos += 1;
        b
    }
}

fn attr(c: &mut Cursor) -> &'static str {
    ATTRS[c.next() as usize % ATTRS.len()]
}

fn value(c: &mut Cursor) -> &'static str {
    VALUES[c.next() as usize % VALUES.len()]
}

fn subset_schema(c: &mut Cursor) -> Schema {
    let mask = c.next();
    Schema::new(
        ATTRS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, a)| *a),
    )
}

fn predicate(c: &mut Cursor, depth: u8) -> Predicate {
    match c.next() % if depth == 0 { 5 } else { 7 } {
        0 => Predicate::True,
        1 => Predicate::False,
        2 => Predicate::eq_value(attr(c), value(c)),
        3 => Predicate::ne_value(attr(c), value(c)),
        4 => Predicate::eq_attrs(attr(c), attr(c)),
        5 => predicate(c, depth - 1).and(predicate(c, depth - 1)),
        _ => predicate(c, depth - 1).or(predicate(c, depth - 1)),
    }
}

fn renaming(c: &mut Cursor) -> Renaming {
    let n = 1 + (c.next() % 2) as usize;
    Renaming::new((0..n).map(|_| (attr(c), attr(c))))
}

/// Random operator-covering expression; same shape distribution as the
/// planner differential suite (scan/∅/π/σ/ρ/∪/⋈, including ill-typed ones).
fn expr(c: &mut Cursor, depth: u8) -> RaExpr {
    let choice = if depth == 0 {
        c.next() % 2
    } else {
        c.next() % 8
    };
    match choice {
        0 => RaExpr::relation(RELATIONS[c.next() as usize % RELATIONS.len()]),
        1 => RaExpr::Empty(subset_schema(c)),
        2 => RaExpr::Project(subset_schema(c), Box::new(expr(c, depth - 1))),
        3 => expr(c, depth - 1).select(predicate(c, 2)),
        4 => expr(c, depth - 1).rename(renaming(c)),
        5 => {
            let left = expr(c, depth - 1);
            let right = match c.next() % 3 {
                0 => expr(c, depth - 1),
                1 => match left.output_schema(&schemas_only()) {
                    Ok(schema) => RaExpr::Empty(schema),
                    Err(_) => expr(c, depth - 1),
                },
                _ => left.clone(),
            };
            left.union(right)
        }
        _ => expr(c, depth - 1).join(expr(c, depth - 1)),
    }
}

fn schemas_only() -> Database<Bool> {
    build_db(&[], |_, _| Bool::from(true))
}

/// The relation name and tuple a raw fact denotes: `R(a, b, c)`,
/// `S(b, c, d)` or `T(d)`.
fn fact_tuple(rel: u8, x: u8, y: u8, z: u8) -> (&'static str, Tuple) {
    let v = |n: u8| VALUES[n as usize % VALUES.len()];
    match rel % 3 {
        0 => ("R", Tuple::new([("a", v(x)), ("b", v(y)), ("c", v(z))])),
        1 => ("S", Tuple::new([("b", v(x)), ("c", v(y)), ("d", v(z))])),
        _ => ("T", Tuple::new([("d", v(x))])),
    }
}

fn build_db<K: Semiring>(facts: &[RawFact], annotate: impl Fn(usize, u64) -> K) -> Database<K> {
    let mut db = Database::new()
        .with("R", KRelation::empty(Schema::new(["a", "b", "c"])))
        .with("S", KRelation::empty(Schema::new(["b", "c", "d"])))
        .with("T", KRelation::empty(Schema::new(["d"])));
    for (i, (rel, x, y, z, w)) in facts.iter().enumerate() {
        let (name, tuple) = fact_tuple(*rel, *x, *y, *z);
        db.insert_tuple(name, tuple, annotate(i, *w));
    }
    db
}

/// Builds a delta batch from signed raw rows. `annotate` must be odd in the
/// weight (`annotate(i, -w) = -annotate(i, w)`) so negative draws are
/// genuine deletions in the ring.
fn build_batch<K: Semiring>(
    deltas: &[RawDelta],
    annotate: impl Fn(usize, i64) -> K,
) -> DeltaBatch<K> {
    let mut batch = DeltaBatch::new();
    for (i, (rel, x, y, z, w)) in deltas.iter().enumerate() {
        let (name, tuple) = fact_tuple(*rel, *x, *y, *z);
        batch.insert(name, tuple, annotate(i, *w));
    }
    batch
}

/// The differential contract for one case: materialize, absorb each batch
/// (serially *and* at 4 threads), and compare against from-scratch
/// execution of the updated base after every batch. Invalid queries must
/// error identically in planner and interpreter.
fn check_maintain_agreement<K: Semiring>(
    query: &RaExpr,
    base: &Database<K>,
    batches: &[DeltaBatch<K>],
) {
    let plan = match Plan::new(query, &base.catalog()) {
        Ok(plan) => plan,
        Err(err) => {
            let interpreted = query.eval_interpreted(base);
            assert_eq!(interpreted.unwrap_err(), err, "error mismatch on {query:?}");
            return;
        }
    };
    let serial = ExecContext::serial();
    let four = ExecContext::with_threads(4);
    let mut db = base.clone();
    let mut view_serial = plan.materialize(&db);
    let mut view_four = plan.materialize(&db);
    assert_eq!(
        view_serial.result(),
        &plan.execute_with(&db, &serial),
        "materialize != execute on {query:?}"
    );
    for batch in batches {
        plan.maintain_with(&mut view_serial, batch, &serial);
        plan.maintain_with(&mut view_four, batch, &four);
        batch.apply_to(&mut db);
        let recomputed = plan.execute_with(&db, &serial);
        assert_eq!(
            view_serial.result(),
            &recomputed,
            "maintain (serial) != recompute on {query:?}"
        );
        assert_eq!(
            view_four.result(),
            &recomputed,
            "maintain (4 threads) != recompute on {query:?}"
        );
    }
}

/// Splits raw delta rows into two sequential batches, so every case also
/// exercises repeated maintenance of the same view.
fn two_batches<K: Semiring>(
    deltas: &[RawDelta],
    annotate: impl Fn(usize, i64) -> K + Copy,
) -> Vec<DeltaBatch<K>> {
    let mid = deltas.len() / 2;
    vec![
        build_batch(&deltas[..mid], annotate),
        build_batch(&deltas[mid..], annotate),
    ]
}

fn zpoly(i: usize, w: i64) -> ZPolynomial {
    ZPolynomial::from_terms([(
        Monomial::from_powers([(format!("t{i}"), 1)]),
        Integers::new(w),
    )])
}

fn diff_nat(_i: usize, w: i64) -> DiffPair<Natural> {
    if w >= 0 {
        DiffPair::from_positive(Natural::from(w as u64))
    } else {
        DiffPair::from_negative(Natural::from((-w) as u64))
    }
}

fn arb_recipe() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, 8..48)
}

fn arb_facts() -> impl Strategy<Value = Vec<RawFact>> {
    prop::collection::vec((0u8..3, 0u8..4, 0u8..4, 0u8..4, 1u64..4), 0..12)
}

/// Signed delta rows. The weight range is symmetric and excludes nothing:
/// zero-weight rows exercise the no-op path, negative ones deletions.
fn arb_deltas() -> impl Strategy<Value = Vec<RawDelta>> {
    prop::collection::vec((0u8..3, 0u8..4, 0u8..4, 0u8..4, -3i64..4), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// ℤ-relations: signed multiplicities, the canonical IVM ring.
    #[test]
    fn integers_maintain_agreement(
        recipe in arb_recipe(), facts in arb_facts(), deltas in arb_deltas()
    ) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        let db = build_db(&facts, |_, w| Integers::new(w as i64));
        let batches = two_batches(&deltas, |_, w| Integers::new(w));
        check_maintain_agreement(&query, &db, &batches);
    }

    /// ℤ[X]: provenance polynomials with signed coefficients — deletions
    /// subtract the deleted tuple's monomial.
    #[test]
    fn zpolynomial_maintain_agreement(
        recipe in arb_recipe(), facts in arb_facts(), deltas in arb_deltas()
    ) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        let db = build_db(&facts, |i, w| zpoly(i, w as i64));
        let batches = two_batches(&deltas, zpoly);
        check_maintain_agreement(&query, &db, &batches);
    }

    /// The difference-pair lifting of ℕ: deletions live in the negative
    /// component, equality is the quotient relation.
    #[test]
    fn diffpair_maintain_agreement(
        recipe in arb_recipe(), facts in arb_facts(), deltas in arb_deltas()
    ) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        let db = build_db(&facts, |i, w| diff_nat(i, w as i64));
        let batches = two_batches(&deltas, diff_nat);
        check_maintain_agreement(&query, &db, &batches);
    }

    /// Insert-only batches need no additive inverses: maintenance is exact
    /// over the plain bag semiring ℕ (the delta rules only use linearity).
    #[test]
    fn natural_insert_only_maintain_agreement(
        recipe in arb_recipe(), facts in arb_facts(), deltas in arb_deltas()
    ) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        let db = build_db(&facts, |_, w| Natural::from(w));
        let batches = two_batches(&deltas, |_, w| Natural::from(w.unsigned_abs()));
        check_maintain_agreement(&query, &db, &batches);
    }

    /// Delete-heavy: after deleting *every* base tuple exactly (ℤ deltas
    /// summing each annotation to zero), the maintained view must be empty —
    /// retained join state must not leak deleted rows back.
    #[test]
    fn delete_to_zero_empties_the_view(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        let db = build_db(&facts, |_, w| Integers::new(w as i64));
        let Ok(plan) = Plan::new(&query, &db.catalog()) else { return; };
        let mut batch = DeltaBatch::new();
        for (name, relation) in db.iter() {
            for (tuple, k) in relation.iter() {
                batch.delete(name.clone(), tuple.clone(), *k);
            }
        }
        let mut view = plan.materialize(&db);
        plan.maintain(&mut view, &batch);
        prop_assert!(
            view.result().is_empty(),
            "deleted base left residue: {:?} on {query:?}",
            view.result()
        );
        // And deleting again re-inserts negatives: still equal to recompute.
        let mut db2 = db.clone();
        batch.apply_to(&mut db2);
        batch.apply_to(&mut db2);
        plan.maintain(&mut view, &batch);
        prop_assert_eq!(view.result(), &plan.execute(&db2));
    }
}

/// Large deltas cross the morsel spawn threshold, so the parallel transform
/// path actually runs: maintenance at 1, 2 and 4 threads must produce
/// byte-identical views — after each batch, including the retained state
/// (checked behaviorally: later batches keep agreeing).
#[test]
fn parallel_maintain_is_byte_identical_on_large_deltas() {
    let values: Vec<String> = (0..40).map(|i| format!("v{i}")).collect();
    let mut r = KRelation::empty(Schema::new(["a", "b", "c"]));
    for i in 0..3000u64 {
        r.insert(
            Tuple::new([
                ("a", values[(i % 37) as usize].as_str()),
                ("b", values[(i % 7) as usize].as_str()),
                ("c", values[(i % 11) as usize].as_str()),
            ]),
            Integers::new(1 + (i % 3) as i64),
        );
    }
    let mut s = KRelation::empty(Schema::new(["b", "d"]));
    for i in 0..40u64 {
        s.insert(
            Tuple::new([
                ("b", values[(i % 7) as usize].as_str()),
                ("d", values[(i % 5) as usize].as_str()),
            ]),
            Integers::new(1),
        );
    }
    let mut db = Database::new().with("R", r).with("S", s);
    let query = RaExpr::relation("R")
        .select(Predicate::ne_value("c", "v0"))
        .join(RaExpr::relation("S"))
        .project(["a", "d"]);
    let plan = Plan::new(&query, &db.catalog()).unwrap();

    let contexts = [
        ExecContext::serial(),
        ExecContext::with_threads(2),
        ExecContext::with_threads(4),
    ];
    let mut views: Vec<_> = contexts.iter().map(|_| plan.materialize(&db)).collect();

    for round in 0..2 {
        // A 600-row mixed batch: inserts of fresh rows, deletions of
        // existing ones.
        let mut batch = DeltaBatch::new();
        for i in 0..600u64 {
            let tuple = Tuple::new([
                ("a", values[((i + round * 13) % 37) as usize].as_str()),
                ("b", values[(i % 7) as usize].as_str()),
                ("c", values[((i + 1) % 11) as usize].as_str()),
            ]);
            if i % 3 == 0 {
                batch.delete_one("R", tuple);
            } else {
                batch.insert("R", tuple, Integers::new(2));
            }
        }
        for (view, ctx) in views.iter_mut().zip(&contexts) {
            plan.maintain_with(view, &batch, ctx);
        }
        batch.apply_to(&mut db);
        let recomputed = plan.execute_with(&db, &ExecContext::serial());
        for (view, ctx) in views.iter().zip(&contexts) {
            assert_eq!(
                view.result(),
                &recomputed,
                "round {round}: maintain at {} threads != recompute",
                ctx.threads
            );
        }
    }
}

/// Dictionary overflow in retained join state: a maintained join whose
/// build side accumulates more than `DICT_MAX` (2^16) distinct strings
/// forces the retained key column to degrade from dictionary codes to
/// plain values *mid-maintenance*. The delta rules must stay exact across
/// the representation change — including delete-to-zero batches aimed at
/// the overflowed columnar state afterwards.
#[test]
fn dictionary_overflow_deltas_keep_columnar_join_state_exact() {
    const OVERFLOW: u64 = (1 << 16) + 500;
    let keys = ["p", "q", "r"];
    let uniq: Vec<String> = (0..OVERFLOW).map(|i| format!("x{i:06}")).collect();

    let mut r = KRelation::empty(Schema::new(["a", "b"]));
    for i in 0..8u64 {
        r.insert(
            Tuple::new([
                ("a", uniq[i as usize].as_str()),
                ("b", keys[(i % 3) as usize]),
            ]),
            Integers::new(1),
        );
    }
    let mut s = KRelation::empty(Schema::new(["b", "c"]));
    for (i, key) in keys.iter().enumerate() {
        s.insert(
            Tuple::new([("b", *key), ("c", VALUES[i % VALUES.len()])]),
            Integers::new(1 + i as i64),
        );
    }
    let mut db = Database::new().with("R", r).with("S", s);
    let query = RaExpr::relation("R").join(RaExpr::relation("S"));
    let plan = Plan::new(&query, &db.catalog()).unwrap();
    let mut view = plan.materialize(&db);
    let serial = ExecContext::serial();

    // Batch 1: push every remaining distinct string through ΔR. The join
    // side's `a` column crosses DICT_MAX partway through this batch.
    let mut grow = DeltaBatch::new();
    for i in 8..OVERFLOW {
        grow.insert(
            "R",
            Tuple::new([
                ("a", uniq[i as usize].as_str()),
                ("b", keys[(i % 3) as usize]),
            ]),
            Integers::new(1),
        );
    }
    plan.maintain(&mut view, &grow);
    grow.apply_to(&mut db);
    assert_eq!(
        view.result(),
        &plan.execute_with(&db, &serial),
        "overflowing batch diverged from recompute"
    );

    // Batch 2: delete half of the inserted rows down to annotation zero
    // (against the now-overflowed build side) and insert a few fresh
    // strings through the post-overflow Val representation.
    let mut shrink = DeltaBatch::new();
    for i in 0..OVERFLOW / 2 {
        shrink.delete(
            "R",
            Tuple::new([
                ("a", uniq[i as usize].as_str()),
                ("b", keys[(i % 3) as usize]),
            ]),
            Integers::new(1),
        );
    }
    let fresh: Vec<String> = (0..4).map(|i| format!("y{i}")).collect();
    for (i, a) in fresh.iter().enumerate() {
        shrink.insert(
            "R",
            Tuple::new([("a", a.as_str()), ("b", keys[i % 3])]),
            Integers::new(2),
        );
    }
    plan.maintain(&mut view, &shrink);
    shrink.apply_to(&mut db);
    let recomputed = plan.execute_with(&db, &serial);
    assert_eq!(
        view.result(),
        &recomputed,
        "delete-to-zero against overflowed state diverged from recompute"
    );
    // The deleted strings are gone from the view; the fresh ones joined.
    let gone = Value::from(uniq[0].as_str());
    assert!(view
        .result()
        .iter()
        .all(|(t, _)| t.values().all(|v| *v != gone)));
    let kept = Value::from(fresh[0].as_str());
    assert!(view
        .result()
        .iter()
        .any(|(t, _)| t.values().any(|v| *v == kept)));
}

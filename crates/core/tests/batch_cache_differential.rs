//! Differential test: the snapshot-resident batch cache is invisible to
//! results.
//!
//! Random interleavings of commits, executions, and view maintenance run
//! against a [`SharedDatabase`], whose snapshots carry the storage-layer
//! [`BatchCache`]: the first batch-engine execution columnarizes each
//! scanned relation, later executions hit the cache, and commits *patch*
//! cached conversions forward by appending the delta's batches. The
//! contract, pinned exactly (support *and* annotations) at every step:
//!
//! ```text
//! batch(cached/patched, 1 thread) == batch(cached/patched, 4 threads)
//!   == batch(fresh conversion)    == row engine == auto
//! ```
//!
//! Old snapshots are held across commits and re-executed — their cache
//! entries are keyed by relation *version*, so a patched entry must never
//! leak newer data into an older epoch's results. A standing view and a
//! hand-maintained [`MaterializedView`] ride along, checked against
//! recomputation after every commit. Run under `PROVSEM_EXEC=row|batch|auto`
//! × `PROVSEM_THREADS=1|4` in CI so the default-context paths cross the
//! cache too.

use proptest::prelude::*;
use provsem_core::plan::{DeltaBatch, ExecContext, ExecMode, Plan};
use provsem_core::prelude::*;
use provsem_semiring::ring::Integers;

const CASES: u32 = 40;

const VALUES: [&str; 6] = ["v0", "v1", "v2", "v3", "v4", "v5"];

/// Raw draw for one base fact / delta row over the fixed R/S/T catalog.
type RawFact = (u8, u8, u8, u8, i64);

/// The relation name and tuple a raw fact denotes: `R(a, b, c)`,
/// `S(b, c, d)` or `T(d)`.
fn fact_tuple(rel: u8, x: u8, y: u8, z: u8) -> (&'static str, Tuple) {
    let v = |n: u8| VALUES[n as usize % VALUES.len()];
    match rel % 3 {
        0 => ("R", Tuple::new([("a", v(x)), ("b", v(y)), ("c", v(z))])),
        1 => ("S", Tuple::new([("b", v(x)), ("c", v(y)), ("d", v(z))])),
        _ => ("T", Tuple::new([("d", v(x))])),
    }
}

fn build_db(facts: &[RawFact]) -> Database<Integers> {
    let mut db = Database::new()
        .with("R", KRelation::empty(Schema::new(["a", "b", "c"])))
        .with("S", KRelation::empty(Schema::new(["b", "c", "d"])))
        .with("T", KRelation::empty(Schema::new(["d"])));
    for (rel, x, y, z, w) in facts {
        let (name, tuple) = fact_tuple(*rel, *x, *y, *z);
        db.insert_tuple(name, tuple, Integers::new(*w));
    }
    db
}

fn build_batch(deltas: &[RawFact]) -> DeltaBatch<Integers> {
    let mut batch = DeltaBatch::new();
    for (rel, x, y, z, w) in deltas {
        let (name, tuple) = fact_tuple(*rel, *x, *y, *z);
        batch.insert(name, tuple, Integers::new(*w));
    }
    batch
}

/// The query pool: scans, pipelined unaries, self-joins (the same relation
/// scanned twice shares one cache entry per execution), and a three-way
/// join — enough operator shapes to route cached batches through every
/// kernel.
fn queries() -> Vec<RaExpr> {
    vec![
        RaExpr::relation("R"),
        RaExpr::relation("R").project(["a", "b"]),
        RaExpr::relation("R")
            .select(Predicate::eq_value("b", "v1"))
            .union(RaExpr::relation("R")),
        RaExpr::relation("R").join(RaExpr::relation("S")),
        RaExpr::relation("R").join(RaExpr::relation("R")),
        RaExpr::relation("R")
            .join(RaExpr::relation("S"))
            .join(RaExpr::relation("T"))
            .project(["a", "d"]),
    ]
}

/// Executes `query` against `snapshot` through every engine/thread/cache
/// combination and pins byte-identity across all of them. The cache-free
/// reference runs against the snapshot's bare [`Database`], which carries
/// no [`BatchCache`] — every scan re-converts.
fn check_execution_agreement(query: &RaExpr, snapshot: &DbSnapshot<Integers>) {
    let plan = Plan::new(query, &snapshot.catalog()).expect("pool queries are valid");
    let row = plan.execute_with(snapshot, &ExecContext::serial().with_mode(ExecMode::Row));
    let fresh = plan.execute_with(
        snapshot.database(),
        &ExecContext::serial().with_mode(ExecMode::Batch),
    );
    let cached1 = plan.execute_with(snapshot, &ExecContext::serial().with_mode(ExecMode::Batch));
    let cached4 = plan.execute_with(
        snapshot,
        &ExecContext::with_threads(4).with_mode(ExecMode::Batch),
    );
    let auto = plan.execute_with(snapshot, &ExecContext::serial().with_mode(ExecMode::Auto));
    assert_eq!(row, fresh, "row != fresh batch on {query:?}");
    assert_eq!(row, cached1, "row != cached batch (serial) on {query:?}");
    assert_eq!(row, cached4, "row != cached batch (4 threads) on {query:?}");
    assert_eq!(row, auto, "row != auto on {query:?}");
}

fn arb_facts() -> impl Strategy<Value = Vec<RawFact>> {
    prop::collection::vec((0u8..3, 0u8..6, 0u8..6, 0u8..6, 1i64..4), 0..16)
}

/// Interleaving script: each byte picks an operation, follow-up bytes its
/// operands (relation, values, signed weight — negatives are deletions).
fn arb_script() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, 12..72)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn next(&mut self) -> u8 {
        if self.bytes.is_empty() {
            return 0;
        }
        let b = self.bytes[self.pos % self.bytes.len()];
        self.pos += 1;
        b
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

/// One differential case: seed a [`SharedDatabase`], register a standing
/// view, hand-materialize another, then replay a random script of commits
/// (patching cached conversions), executions (current *and* held old
/// snapshots), and maintenance checks.
fn run_script(facts: &[RawFact], script: &[u8]) {
    let pool = queries();
    let shared = SharedDatabase::new(build_db(facts));
    shared
        .register_view("V", &pool[3])
        .expect("join view is valid");
    let snap0 = shared.snapshot();
    let view_plan = Plan::new(&pool[5], &snap0.catalog()).expect("pool queries are valid");
    let mut hand_view = view_plan.materialize(&snap0);
    let mut held: Vec<DbSnapshot<Integers>> = vec![snap0];
    let mut cursor = Cursor::new(script);
    while !cursor.done() {
        match cursor.next() % 4 {
            // Commit a small signed batch: touched relations get their
            // cached conversions patched (or entries dropped) under the
            // writer lock; the standing view advances.
            0 => {
                let rows = 1 + cursor.next() % 4;
                let raw: Vec<RawFact> = (0..rows)
                    .map(|_| {
                        let rel = cursor.next();
                        let (x, y, z) = (cursor.next(), cursor.next(), cursor.next());
                        let w = (cursor.next() as i64 % 7) - 3;
                        (rel, x, y, z, w)
                    })
                    .collect();
                let batch = build_batch(&raw);
                shared.commit(&batch);
                view_plan.maintain(&mut hand_view, &batch);
            }
            // Hold the current snapshot for later re-execution (old cache
            // entries must stay correct across patches of newer versions).
            1 => {
                held.push(shared.snapshot());
                if held.len() > 3 {
                    held.remove(0);
                }
            }
            // Execute a pool query against the live snapshot.
            2 => {
                let query = &pool[cursor.next() as usize % pool.len()];
                check_execution_agreement(query, &shared.snapshot());
            }
            // Re-execute against a held (old) snapshot and audit the
            // maintained views against recomputation.
            _ => {
                let query = &pool[cursor.next() as usize % pool.len()];
                let old = &held[cursor.next() as usize % held.len()];
                check_execution_agreement(query, old);
                let live = shared.snapshot();
                let standing_plan =
                    Plan::new(&pool[3], &live.catalog()).expect("pool queries are valid");
                assert_eq!(
                    live.view("V").expect("view is registered"),
                    &standing_plan.execute(&live),
                    "standing view != recompute"
                );
                let hand_plan =
                    Plan::new(&pool[5], &live.catalog()).expect("pool queries are valid");
                assert_eq!(
                    hand_view.result(),
                    &hand_plan.execute(&live),
                    "maintained view != recompute"
                );
            }
        }
    }
    // Final audit: every held snapshot still answers correctly.
    for snapshot in &held {
        for query in &pool {
            check_execution_agreement(query, snapshot);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn cached_and_patched_batches_agree_with_fresh_and_row(
        facts in arb_facts(),
        script in arb_script(),
    ) {
        run_script(&facts, &script);
    }
}

/// A directed worst case for patching: every commit deletes one previously
/// inserted row down to annotation zero, so patched cache entries carry
/// cancelling pairs that must vanish at the grouping points of every plan
/// shape in the pool.
#[test]
fn delete_to_zero_commits_keep_patched_caches_exact() {
    let facts: Vec<RawFact> = (0..12u8)
        .map(|i| (i % 3, i % 6, (i / 2) % 6, (i / 3) % 6, 2))
        .collect();
    let shared = SharedDatabase::new(build_db(&facts));
    let pool = queries();
    // Warm the cache at epoch 0.
    for query in &pool {
        check_execution_agreement(query, &shared.snapshot());
    }
    for (rel, x, y, z, w) in facts {
        let (name, tuple) = fact_tuple(rel, x, y, z);
        let mut batch = DeltaBatch::new();
        batch.delete(name, tuple, Integers::new(w));
        shared.commit(&batch);
        for query in &pool {
            check_execution_agreement(query, &shared.snapshot());
        }
    }
    let last = shared.snapshot();
    assert!(last.database().get("R").unwrap().is_empty());
    assert!(last.database().get("S").unwrap().is_empty());
    assert!(last.database().get("T").unwrap().is_empty());
}

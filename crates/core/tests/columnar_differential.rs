//! Differential test: the columnar batch engine agrees with the row engine.
//!
//! Random `RaExpr`s of bounded depth (the same recipe decoder as
//! `planner_differential.rs`, covering every operator including ill-typed
//! combinations) are planned once and executed under four contexts —
//! `{ExecMode::Row, ExecMode::Batch} × {1, 4}` threads. All four `Result`s
//! must agree **exactly**: the same `EvalError` on invalid queries and
//! annotation-identical `KRelation`s on valid ones — over 𝔹, ℕ, the
//! tropical semiring, why-provenance and PosBool.
//!
//! The deterministic tests at the bottom pin the columnar edge cases:
//! zero-arity schemas, empty inputs, batches smaller than a morsel,
//! dictionary overflow into plain `Value` columns, and mixed-type columns
//! that defeat typed encodings.

use proptest::prelude::*;
use provsem_core::plan::{ExecContext, ExecMode, Plan};
use provsem_core::prelude::*;
use provsem_semiring::{Bool, Natural, PosBool, Semiring, Tropical, WhySet};

const CASES: u32 = 64;

const ATTRS: [&str; 5] = ["a", "b", "c", "d", "z"];
const VALUES: [&str; 4] = ["v0", "v1", "v2", "v3"];
const RELATIONS: [&str; 3] = ["R", "S", "T"];

type RawFact = (u8, u8, u8, u8, u64);

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn next(&mut self) -> u8 {
        if self.bytes.is_empty() {
            return 0;
        }
        let b = self.bytes[self.pos % self.bytes.len()];
        self.pos += 1;
        b
    }
}

fn attr(c: &mut Cursor) -> &'static str {
    ATTRS[c.next() as usize % ATTRS.len()]
}

fn value(c: &mut Cursor) -> &'static str {
    VALUES[c.next() as usize % VALUES.len()]
}

fn subset_schema(c: &mut Cursor) -> Schema {
    let mask = c.next();
    Schema::new(
        ATTRS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, a)| *a),
    )
}

fn predicate(c: &mut Cursor, depth: u8) -> Predicate {
    match c.next() % if depth == 0 { 5 } else { 7 } {
        0 => Predicate::True,
        1 => Predicate::False,
        2 => Predicate::eq_value(attr(c), value(c)),
        3 => Predicate::ne_value(attr(c), value(c)),
        4 => Predicate::eq_attrs(attr(c), attr(c)),
        5 => predicate(c, depth - 1).and(predicate(c, depth - 1)),
        _ => predicate(c, depth - 1).or(predicate(c, depth - 1)),
    }
}

fn renaming(c: &mut Cursor) -> Renaming {
    let n = 1 + (c.next() % 2) as usize;
    Renaming::new((0..n).map(|_| (attr(c), attr(c))))
}

fn expr(c: &mut Cursor, depth: u8) -> RaExpr {
    let choice = if depth == 0 {
        c.next() % 2
    } else {
        c.next() % 8
    };
    match choice {
        0 => RaExpr::relation(RELATIONS[c.next() as usize % RELATIONS.len()]),
        1 => RaExpr::Empty(subset_schema(c)),
        2 => RaExpr::Project(subset_schema(c), Box::new(expr(c, depth - 1))),
        3 => expr(c, depth - 1).select(predicate(c, 2)),
        4 => expr(c, depth - 1).rename(renaming(c)),
        5 => {
            let left = expr(c, depth - 1);
            let right = match c.next() % 3 {
                0 => expr(c, depth - 1),
                1 => match left.output_schema(&schemas_only()) {
                    Ok(schema) => RaExpr::Empty(schema),
                    Err(_) => expr(c, depth - 1),
                },
                _ => left.clone(),
            };
            left.union(right)
        }
        _ => expr(c, depth - 1).join(expr(c, depth - 1)),
    }
}

fn schemas_only() -> Database<Bool> {
    build_db(&[], |_, _| Bool::from(true))
}

fn build_db<K: Semiring>(facts: &[RawFact], annotate: impl Fn(usize, u64) -> K) -> Database<K> {
    let mut r = KRelation::empty(Schema::new(["a", "b", "c"]));
    let mut s = KRelation::empty(Schema::new(["b", "c", "d"]));
    let mut t = KRelation::empty(Schema::new(["d"]));
    for (i, (rel, x, y, z, w)) in facts.iter().enumerate() {
        let v = |n: &u8| VALUES[*n as usize % VALUES.len()];
        let k = annotate(i, *w);
        match rel % 3 {
            0 => r.insert(Tuple::new([("a", v(x)), ("b", v(y)), ("c", v(z))]), k),
            1 => s.insert(Tuple::new([("b", v(x)), ("c", v(y)), ("d", v(z))]), k),
            _ => t.insert(Tuple::new([("d", v(x))]), k),
        }
    }
    Database::new().with("R", r).with("S", s).with("T", t)
}

/// Plans and executes the query under an explicit context, mirroring
/// `RaExpr::eval` but with the engine and thread budget pinned.
fn eval_in<K: Semiring>(
    query: &RaExpr,
    db: &Database<K>,
    ctx: &ExecContext,
) -> Result<KRelation<K>, EvalError> {
    Plan::new(query, &db.catalog()).map(|plan| plan.execute_with(db, ctx))
}

/// The differential contract: both engines at both thread budgets produce
/// the identical `Result` — same error on invalid queries, same relation
/// (annotations included) on valid ones.
fn assert_mode_agreement<K: Semiring>(query: &RaExpr, db: &Database<K>) {
    let baseline = eval_in(query, db, &ExecContext::serial().with_mode(ExecMode::Row));
    for threads in [1usize, 4] {
        for mode in [ExecMode::Row, ExecMode::Batch] {
            let ctx = ExecContext::with_threads(threads).with_mode(mode);
            let got = eval_in(query, db, &ctx);
            assert_eq!(
                got, baseline,
                "{mode:?} x {threads} threads disagrees with the serial row \
                 engine on {query:?}"
            );
        }
    }
}

fn arb_recipe() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, 8..48)
}

fn arb_facts() -> impl Strategy<Value = Vec<RawFact>> {
    prop::collection::vec((0u8..3, 0u8..4, 0u8..4, 0u8..4, 1u64..4), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn boolean_mode_agreement(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_mode_agreement(&query, &build_db(&facts, |_, _| Bool::from(true)));
    }

    #[test]
    fn natural_mode_agreement(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_mode_agreement(&query, &build_db(&facts, |_, w| Natural::from(w)));
    }

    #[test]
    fn tropical_mode_agreement(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_mode_agreement(&query, &build_db(&facts, |_, w| Tropical::cost(w)));
    }

    #[test]
    fn why_provenance_mode_agreement(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_mode_agreement(&query, &build_db(&facts, |i, _| WhySet::var(format!("t{i}"))));
    }

    #[test]
    fn posbool_mode_agreement(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_mode_agreement(&query, &build_db(&facts, |i, _| PosBool::var(format!("t{i}"))));
    }
}

// ---------------------------------------------------------------------------
// Deterministic columnar edge cases.
// ---------------------------------------------------------------------------

/// Projecting away every column yields a zero-arity relation: all surviving
/// rows collapse into the single empty tuple, whose annotation is the sum.
/// Zero key columns means every row hashes to the seed — one group.
#[test]
fn zero_arity_projection_agrees() {
    let db = build_db(
        &[(0, 0, 1, 2, 1), (0, 1, 1, 2, 1), (1, 0, 0, 0, 1)],
        |_, w| Natural::from(w * 3),
    );
    let empty_schema = Schema::new(Vec::<&str>::new());
    let queries = [
        RaExpr::Project(empty_schema.clone(), Box::new(RaExpr::relation("R"))),
        RaExpr::Project(
            empty_schema.clone(),
            Box::new(RaExpr::relation("R").select(Predicate::eq_value("b", "v1"))),
        ),
        // Zero-arity join: both sides collapse first, keys are empty.
        RaExpr::Project(empty_schema.clone(), Box::new(RaExpr::relation("R"))).join(
            RaExpr::Project(empty_schema, Box::new(RaExpr::relation("S"))),
        ),
    ];
    for query in &queries {
        assert_mode_agreement(query, &db);
        let ctx = ExecContext::serial().with_mode(ExecMode::Batch);
        let out = eval_in(query, &db, &ctx).unwrap();
        assert!(out.iter().all(|(t, _)| t.arity() == 0));
    }
}

/// Operators over empty relations produce empty batch streams everywhere in
/// the pipeline; the boundary conversion must not manufacture rows.
#[test]
fn empty_inputs_agree() {
    let db = build_db(&[], |_, _| Natural::from(1u64));
    let queries = [
        RaExpr::relation("R"),
        RaExpr::relation("R").select(Predicate::eq_value("a", "v0")),
        RaExpr::relation("R").join(RaExpr::relation("S")),
        RaExpr::relation("R").union(RaExpr::relation("R")),
        RaExpr::relation("T").project(Vec::<&str>::new()),
    ];
    for query in &queries {
        assert_mode_agreement(query, &db);
        let ctx = ExecContext::with_threads(4).with_mode(ExecMode::Batch);
        assert!(eval_in(query, &db, &ctx).unwrap().is_empty());
    }
}

/// A relation far smaller than both the batch budget (4096) and the morsel
/// fan-out still splits across 4 workers: sub-morsel batches must round-trip
/// through seal/exchange/merge without loss or duplication.
#[test]
fn batches_smaller_than_morsel_size_agree() {
    let db = build_db(
        &[
            (0, 0, 1, 2, 2),
            (0, 3, 1, 0, 1),
            (1, 1, 2, 3, 3),
            (1, 0, 1, 2, 1),
            (2, 2, 0, 0, 2),
        ],
        |i, _| WhySet::var(format!("t{i}")),
    );
    let query = RaExpr::relation("R")
        .join(RaExpr::relation("S"))
        .select(Predicate::ne_value("d", "v0"))
        .project(["a", "d"]);
    assert_mode_agreement(&query, &db);
}

/// Integer columns take the typed `i64` path: vectorized predicates and
/// join keys compare machine words, never `Value`s.
#[test]
fn integer_columns_agree() {
    let mut r = KRelation::empty(Schema::new(["a", "b"]));
    let mut s = KRelation::empty(Schema::new(["b", "c"]));
    for i in 0..500i64 {
        r.insert(
            Tuple::new([("a", Value::from(i)), ("b", Value::from(i % 7))]),
            Natural::from(1u64 + i as u64 % 3),
        );
        s.insert(
            Tuple::new([("b", Value::from(i % 11)), ("c", Value::from(i))]),
            Natural::from(1u64),
        );
    }
    let db = Database::new().with("R", r).with("S", s);
    let query = RaExpr::relation("R")
        .select(Predicate::ne_value("a", 13i64))
        .join(RaExpr::relation("S"))
        .project(["a", "c"]);
    let baseline = eval_in(&query, &db, &ExecContext::serial().with_mode(ExecMode::Row));
    for threads in [1usize, 4] {
        let ctx = ExecContext::with_threads(threads).with_mode(ExecMode::Batch);
        assert_eq!(eval_in(&query, &db, &ctx), baseline);
    }
    // The scan really is typed: both columns report the i64 encoding.
    let plan = Plan::new(&RaExpr::relation("R"), &db.catalog()).unwrap();
    let layout = plan.explain_batches(&db);
    assert!(
        layout.contains("a=i64") && layout.contains("b=i64"),
        "got: {layout}"
    );
}

/// More distinct strings than the dictionary admits (`DICT_MAX = 65536`):
/// the column degrades to plain `Value` storage and every kernel falls back
/// to content comparison — results must not change.
#[test]
fn dictionary_overflow_agrees() {
    const N: usize = (1 << 16) + 64;
    let mut r = KRelation::empty(Schema::new(["a", "b"]));
    for i in 0..N {
        r.insert(
            Tuple::new([
                ("a", format!("key{i:06}")),
                ("b", VALUES[i % 4].to_string()),
            ]),
            Natural::from(1u64 + (i % 5) as u64),
        );
    }
    let db = Database::new().with("R", r);
    // The overflowing column is carried through a selection on the small
    // dictionary column and a projection that keeps the plain column.
    let query = RaExpr::relation("R")
        .select(Predicate::eq_value("b", "v2"))
        .project(["a"]);
    let baseline = eval_in(&query, &db, &ExecContext::serial().with_mode(ExecMode::Row));
    for threads in [1usize, 4] {
        let ctx = ExecContext::with_threads(threads).with_mode(ExecMode::Batch);
        assert_eq!(eval_in(&query, &db, &ctx), baseline);
    }
    let plan = Plan::new(&RaExpr::relation("R"), &db.catalog()).unwrap();
    let layout = plan.explain_batches(&db);
    assert!(
        layout.contains("a=val"),
        "overflowed column stays typed: {layout}"
    );
    assert!(layout.contains("b=dict(4)"), "got: {layout}");
}

/// A column mixing integers and strings defeats both typed encodings; the
/// `Value` fallback must agree with the row engine, including on predicates
/// whose constant matches only one of the types.
#[test]
fn mixed_type_columns_agree() {
    let mut r = KRelation::empty(Schema::new(["a", "b"]));
    for i in 0..40i64 {
        let a = if i % 2 == 0 {
            Value::from(i)
        } else {
            Value::from(format!("s{i}"))
        };
        r.insert(
            Tuple::new([("a", a), ("b", Value::from(i % 3))]),
            Natural::from(1u64),
        );
    }
    let db = Database::new().with("R", r);
    for query in [
        RaExpr::relation("R").select(Predicate::eq_value("a", 6i64)),
        RaExpr::relation("R").select(Predicate::eq_value("a", "s7")),
        RaExpr::relation("R")
            .join(RaExpr::relation("R").rename(Renaming::new([("b", "c")])))
            .project(["a"]),
    ] {
        let baseline = eval_in(&query, &db, &ExecContext::serial().with_mode(ExecMode::Row));
        for threads in [1usize, 4] {
            let ctx = ExecContext::with_threads(threads).with_mode(ExecMode::Batch);
            assert_eq!(eval_in(&query, &db, &ctx), baseline);
        }
    }
    let plan = Plan::new(&RaExpr::relation("R"), &db.catalog()).unwrap();
    let layout = plan.explain_batches(&db);
    assert!(layout.contains("a=val"), "got: {layout}");
}

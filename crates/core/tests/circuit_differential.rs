//! Differential test: the hash-consed **circuit** provenance route agrees
//! with the expanded **polynomial** route.
//!
//! Random RA⁺ queries of bounded depth are run through three routes over
//! the same database:
//!
//! * **direct** — `q(R)` evaluated natively in K;
//! * **polynomial** — tag with ℕ\[X\] variables, evaluate, specialize
//!   tuple-wise via `Polynomial::eval` (Theorem 4.3, expanded form);
//! * **circuit** — tag with [`Circuit`] variables, evaluate (interning DAG
//!   nodes), specialize via one memoized [`CircuitEval`] pass.
//!
//! Circuit and polynomial routes must agree **exactly** — same `Result`,
//! same support, same annotations — over all five differential semirings
//! (𝔹, ℕ, tropical, why-provenance, PosBool); the tagging uses identical
//! variable names so the valuations line up. For the four genuine
//! (annihilating) semirings both provenance routes must additionally equal
//! the direct evaluation — Theorem 4.3 along both representations. The
//! degenerate why-provenance structure (`0 = 1`, no annihilation) is not a
//! semiring in the strict sense, so `Eval_v` is not a homomorphism into it
//! and only circuit-vs-polynomial agreement is asserted there.
//!
//! The file ends with the **sharing test**: a product-of-unions workload
//! whose expanded ℕ\[X\] provenance has `2ⁿ` monomials while the circuit
//! stays linear in `n` — the representation gap this engine exists for.

use proptest::prelude::*;
use provsem_core::prelude::*;
use provsem_core::provenance::{
    circuit_provenance_of_query, circuit_provenance_size, provenance_of_query, specialize,
    specialize_circuit,
};
use provsem_semiring::{
    circuit, Bool, CommutativeSemiring, Natural, PosBool, Semiring, Tropical, WhySet,
};

const CASES: u32 = 80;

const ATTRS: [&str; 5] = ["a", "b", "c", "d", "z"];
const VALUES: [&str; 4] = ["v0", "v1", "v2", "v3"];
const RELATIONS: [&str; 3] = ["R", "S", "T"];

type RawFact = (u8, u8, u8, u8, u64);

/// A deterministic byte cursor decoding random expressions from a recipe
/// (same scheme as the planner differential suite).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn next(&mut self) -> u8 {
        if self.bytes.is_empty() {
            return 0;
        }
        let b = self.bytes[self.pos % self.bytes.len()];
        self.pos += 1;
        b
    }
}

fn attr(c: &mut Cursor) -> &'static str {
    ATTRS[c.next() as usize % ATTRS.len()]
}

fn value(c: &mut Cursor) -> &'static str {
    VALUES[c.next() as usize % VALUES.len()]
}

fn subset_schema(c: &mut Cursor) -> Schema {
    let mask = c.next();
    Schema::new(
        ATTRS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, a)| *a),
    )
}

fn predicate(c: &mut Cursor, depth: u8) -> Predicate {
    match c.next() % if depth == 0 { 5 } else { 7 } {
        0 => Predicate::True,
        1 => Predicate::False,
        2 => Predicate::eq_value(attr(c), value(c)),
        3 => Predicate::ne_value(attr(c), value(c)),
        4 => Predicate::eq_attrs(attr(c), attr(c)),
        5 => predicate(c, depth - 1).and(predicate(c, depth - 1)),
        _ => predicate(c, depth - 1).or(predicate(c, depth - 1)),
    }
}

fn expr(c: &mut Cursor, depth: u8) -> RaExpr {
    let choice = if depth == 0 {
        c.next() % 2
    } else {
        c.next() % 8
    };
    match choice {
        0 => RaExpr::relation(RELATIONS[c.next() as usize % RELATIONS.len()]),
        1 => RaExpr::Empty(subset_schema(c)),
        2 => RaExpr::Project(subset_schema(c), Box::new(expr(c, depth - 1))),
        3 => expr(c, depth - 1).select(predicate(c, 2)),
        4 => expr(c, depth - 1).rename(Renaming::new([(attr(c), attr(c))])),
        5 => {
            let left = expr(c, depth - 1);
            left.clone().union(left)
        }
        _ => expr(c, depth - 1).join(expr(c, depth - 1)),
    }
}

/// `R(a, b, c)`, `S(b, c, d)`, `T(d)` populated from the raw facts.
fn build_db<K: Semiring>(facts: &[RawFact], annotate: impl Fn(usize, u64) -> K) -> Database<K> {
    let mut r = KRelation::empty(Schema::new(["a", "b", "c"]));
    let mut s = KRelation::empty(Schema::new(["b", "c", "d"]));
    let mut t = KRelation::empty(Schema::new(["d"]));
    for (i, (rel, x, y, z, w)) in facts.iter().enumerate() {
        let v = |n: &u8| VALUES[*n as usize % VALUES.len()];
        let k = annotate(i, *w);
        match rel % 3 {
            0 => r.insert(Tuple::new([("a", v(x)), ("b", v(y)), ("c", v(z))]), k),
            1 => s.insert(Tuple::new([("b", v(x)), ("c", v(y)), ("d", v(z))]), k),
            _ => t.insert(Tuple::new([("d", v(x))]), k),
        }
    }
    Database::new().with("R", r).with("S", s).with("T", t)
}

/// How the two provenance routes are compared for one semiring.
enum Contract {
    /// Specializations via `Eval_v` must agree with each other *and* with
    /// the native K evaluation (Theorem 4.3 along both representations).
    SpecializeAndDirect,
    /// `Eval_v` is only a homomorphism into genuine (annihilating)
    /// semirings; for the degenerate why-provenance structure (`0 = 1`)
    /// embedding a coefficient yields the zero element and the polynomial
    /// route collapses. There the routes are compared at the ℕ\[X\] level:
    /// same support, and each circuit annotation lowers to exactly the
    /// expanded polynomial.
    ExactPolynomials,
}

/// The differential contract between the circuit and polynomial routes.
fn assert_routes_agree<K: CommutativeSemiring>(
    query: &RaExpr,
    db: &Database<K>,
    contract: Contract,
) {
    // Fresh arena per case: also exercises the bulk reset under load.
    circuit::reset();
    let poly = provenance_of_query(query, db);
    let circ = circuit_provenance_of_query(query, db);
    match (poly, circ) {
        (Err(pe), Err(ce)) => assert_eq!(pe, ce, "errors differ on {query:?}"),
        (Ok((poly_prov, poly_val)), Ok((circ_prov, circ_val))) => match contract {
            Contract::SpecializeAndDirect => {
                let via_poly = specialize(&poly_prov, &poly_val);
                let via_circ = specialize_circuit(&circ_prov, &circ_val);
                assert_eq!(
                    via_poly, via_circ,
                    "circuit vs polynomial specialization differ on {query:?}"
                );
                let direct = query.eval(db).expect("provenance route evaluated");
                assert_eq!(via_circ, direct, "Theorem 4.3 (circuit) fails on {query:?}");
            }
            Contract::ExactPolynomials => {
                assert_eq!(
                    circ_prov.len(),
                    poly_prov.len(),
                    "support differs on {query:?}"
                );
                for (tuple, circuit) in circ_prov.iter() {
                    assert_eq!(
                        circuit.to_polynomial(),
                        poly_prov.annotation(tuple),
                        "ℕ[X] annotations differ at {tuple:?} on {query:?}"
                    );
                }
            }
        },
        (poly, circ) => panic!("one route failed: poly={poly:?} circ={circ:?} on {query:?}"),
    }
}

fn arb_recipe() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, 8..48)
}

fn arb_facts() -> impl Strategy<Value = Vec<RawFact>> {
    prop::collection::vec((0u8..3, 0u8..4, 0u8..4, 0u8..4, 1u64..4), 0..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn boolean_routes_agree(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_routes_agree(&query, &build_db(&facts, |_, _| Bool::from(true)), Contract::SpecializeAndDirect);
    }

    #[test]
    fn natural_routes_agree(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_routes_agree(&query, &build_db(&facts, |_, w| Natural::from(w)), Contract::SpecializeAndDirect);
    }

    #[test]
    fn tropical_routes_agree(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_routes_agree(&query, &build_db(&facts, |_, w| Tropical::cost(w)), Contract::SpecializeAndDirect);
    }

    #[test]
    fn why_provenance_routes_agree(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        // Degenerate structure: circuit-vs-polynomial only (see module docs).
        assert_routes_agree(
            &query,
            &build_db(&facts, |i, _| WhySet::var(format!("t{i}"))),
            Contract::ExactPolynomials,
        );
    }

    #[test]
    fn posbool_routes_agree(recipe in arb_recipe(), facts in arb_facts()) {
        let query = expr(&mut Cursor::new(&recipe), 4);
        assert_routes_agree(
            &query,
            &build_db(&facts, |i, _| PosBool::var(format!("t{i}"))),
            Contract::SpecializeAndDirect,
        );
    }
}

/// A database of `n` two-way-derivable tuples: `Ai ∪ Bi` annotates the one
/// shared tuple with `xᵢ + yᵢ`, and joining all of them multiplies the sums.
fn product_of_unions(n: usize) -> (RaExpr, Database<Natural>) {
    let mut db = Database::new();
    let mut query: Option<RaExpr> = None;
    let schema = Schema::new(["k"]);
    let tuple = Tuple::new([("k", "0")]);
    for i in 0..n {
        let a = format!("A{i}");
        let b = format!("B{i}");
        db.insert(
            a.clone(),
            KRelation::from_tuples(schema.clone(), [(tuple.clone(), Natural::from(1u64))]),
        );
        db.insert(
            b.clone(),
            KRelation::from_tuples(schema.clone(), [(tuple.clone(), Natural::from(1u64))]),
        );
        let factor = RaExpr::relation(a).union(RaExpr::relation(b));
        query = Some(match query {
            None => factor,
            Some(q) => q.join(factor),
        });
    }
    (query.expect("n ≥ 1"), db)
}

/// The sharing test: on Π (xᵢ + yᵢ) the expanded ℕ\[X\] provenance has `2ⁿ`
/// monomials — materializing it for n = 34 would need hundreds of billions
/// of terms — while the circuit stays **linear in n**, and the memoized
/// specialization still recovers the exact bag count `2ⁿ`.
#[test]
fn circuit_stays_polynomial_where_expanded_polynomial_is_exponential() {
    circuit::reset();
    const N: usize = 34;
    let (query, db) = product_of_unions(N);
    let (prov, valuation) = circuit_provenance_of_query::<Natural>(&query, &db).unwrap();
    assert_eq!(prov.len(), 1, "one output tuple");
    let nodes = circuit_provenance_size(&prov);
    assert!(
        nodes <= 4 * N,
        "circuit must stay linear in n: {nodes} nodes for n = {N}"
    );
    let out = specialize_circuit(&prov, &valuation);
    assert_eq!(
        out.annotation(&Tuple::new([("k", "0")])),
        Natural::from(1u64 << N),
        "Eval_v over the shared DAG recovers the 2^n bag count"
    );
}

/// Cross-check the same workload at a size where the expanded polynomial is
/// still materializable: the circuit route and the polynomial route produce
/// identical ℕ\[X\] elements and identical specializations.
#[test]
fn sharing_workload_matches_polynomial_route_at_small_size() {
    circuit::reset();
    const N: usize = 10;
    let (query, db) = product_of_unions(N);
    let (circ_prov, circ_val) = circuit_provenance_of_query::<Natural>(&query, &db).unwrap();
    let (poly_prov, poly_val) = provenance_of_query(&query, &db).unwrap();
    let tuple = Tuple::new([("k", "0")]);
    assert_eq!(poly_prov.annotation(&tuple).num_terms(), 1 << N);
    assert_eq!(
        circ_prov.annotation(&tuple).to_polynomial(),
        poly_prov.annotation(&tuple)
    );
    assert_eq!(
        specialize_circuit(&circ_prov, &circ_val),
        specialize(&poly_prov, &poly_val)
    );
}

//! Snapshot-isolation proptest: no reader ever observes a partial
//! [`DeltaBatch`], and every view observed at epoch `e` equals recomputing
//! its definition from the epoch-`e` snapshot.
//!
//! Each case draws a random sequence of signed delta batches. A writer
//! thread commits them one by one against a [`SharedDatabase`] (with a
//! standing join view registered) while reader threads grab snapshots as
//! fast as they can. Afterwards the same batches are applied serially to a
//! fresh copy, producing the reference state at every epoch; each observed
//! snapshot must equal the reference state of its epoch **exactly** —
//! database and views, support and annotations. A snapshot that showed half
//! a batch, or a view result from a neighboring epoch, cannot pass.
//!
//! Run in CI under `PROVSEM_THREADS=1` and `=4` (commits go through the
//! default [`ExecContext`], so the env budget steers view maintenance).

use proptest::prelude::*;
use provsem_core::plan::{DeltaBatch, ExecContext, Plan};
use provsem_core::prelude::*;
use provsem_semiring::ring::Integers;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

const VALUES: [&str; 4] = ["v0", "v1", "v2", "v3"];

/// Raw draw for one delta row: `(relation, v1, v2, v3, signed weight)`.
type RawDelta = (u8, u8, u8, u8, i64);

fn fact_tuple(rel: u8, x: u8, y: u8, z: u8) -> (&'static str, Tuple) {
    let v = |n: u8| VALUES[n as usize % VALUES.len()];
    if rel % 2 == 0 {
        ("R", Tuple::new([("a", v(x)), ("b", v(y)), ("c", v(z))]))
    } else {
        ("S", Tuple::new([("b", v(x)), ("c", v(y)), ("d", v(z))]))
    }
}

fn seed_db() -> Database<Integers> {
    let mut db = Database::new()
        .with("R", KRelation::empty(Schema::new(["a", "b", "c"])))
        .with("S", KRelation::empty(Schema::new(["b", "c", "d"])));
    for (i, (rel, x, y, z)) in [
        (0u8, 0u8, 1u8, 2u8),
        (0, 1, 2, 3),
        (1, 1, 2, 0),
        (1, 2, 3, 1),
    ]
    .iter()
    .enumerate()
    {
        let (name, tuple) = fact_tuple(*rel, *x, *y, *z);
        db.insert_tuple(name, tuple, Integers::new(i as i64 + 1));
    }
    db
}

fn build_batch(rows: &[RawDelta]) -> DeltaBatch<Integers> {
    let mut batch = DeltaBatch::new();
    for (rel, x, y, z, w) in rows {
        let (name, tuple) = fact_tuple(*rel, *x, *y, *z);
        batch.insert(name, tuple, Integers::new(*w));
    }
    batch
}

fn view_query() -> RaExpr {
    RaExpr::relation("R")
        .join(RaExpr::relation("S"))
        .project(["a", "d"])
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<RawDelta>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..2, 0u8..4, 0u8..4, 0u8..4, -3i64..4), 1..6),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshots_are_atomic_and_views_match_their_epoch(raw in arb_batches()) {
        let batches: Vec<DeltaBatch<Integers>> = raw.iter().map(|rows| build_batch(rows)).collect();

        // --- Concurrent phase: one writer, two snapshot-grabbing readers. ---
        let shared = SharedDatabase::new(seed_db());
        let base_epoch = shared.register_view("Q", &view_query()).unwrap();
        let done = AtomicBool::new(false);
        let observed: Mutex<Vec<DbSnapshot<Integers>>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..2 {
                let shared = &shared;
                let done = &done;
                let observed = &observed;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        local.push(shared.snapshot());
                        std::thread::yield_now();
                    }
                    // One last look at the final state.
                    local.push(shared.snapshot());
                    observed.lock().unwrap().extend(local);
                });
            }
            for batch in &batches {
                shared.commit(batch);
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });

        // --- Reference states: the same batches applied single-file. ---
        let replay = SharedDatabase::new(seed_db());
        prop_assert_eq!(replay.register_view("Q", &view_query()).unwrap(), base_epoch);
        let mut states = vec![replay.snapshot()];
        let serial = ExecContext::serial();
        for batch in &batches {
            replay.commit_with(batch, &serial);
            states.push(replay.snapshot());
        }

        // --- Every observed snapshot is exactly one reference state. ---
        let plan = Plan::new(&view_query(), &states[0].catalog()).unwrap();
        for snapshot in observed.into_inner().unwrap() {
            let index = (snapshot.epoch() - base_epoch) as usize;
            prop_assert!(index < states.len(), "epoch beyond the committed range");
            let reference = &states[index];
            // Atomicity: the database equals the serial state of its epoch —
            // a half-applied batch cannot produce any of these states.
            prop_assert_eq!(snapshot.database(), reference.database(),
                "snapshot at epoch {} is not a serial state", snapshot.epoch());
            // View consistency: the published view equals recomputing its
            // definition from this very snapshot, and the reference's view.
            let view = snapshot.view("Q").unwrap();
            prop_assert_eq!(view, &plan.execute_with(&snapshot, &serial),
                "view at epoch {} != recompute", snapshot.epoch());
            prop_assert_eq!(view, reference.view("Q").unwrap());
        }
    }
}

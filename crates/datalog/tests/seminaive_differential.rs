//! Differential test: naive and semi-naive evaluation agree.
//!
//! Randomized safe (possibly mutually recursive) programs and edbs are
//! evaluated with every strategy over 𝔹, ℕ (bounded rounds), the tropical
//! semiring, and the why-provenance semiring — ≥ 100 cases per semiring.
//!
//! Agreement contract (documented on [`provsem_datalog::seminaive`]):
//!
//! * `EvalStrategy::Naive` and `EvalStrategy::SemiNaive` produce the same
//!   idb annotations after the same round bound (`Tᵐ(0)`) for **every**
//!   semiring, converged or not, and their `converged` flags agree;
//! * `iterations` counts are *not* compared — the naive loop spends an extra
//!   application of `T` observing the fixpoint, the semi-naive loop observes
//!   an empty delta;
//! * `seminaive_idempotent` (the delta rewrite) is compared on the converged
//!   fixpoint only, and only over `+`-idempotent semirings — its per-round
//!   intermediate states are intentionally different.

mod common;

use common::{arb_edb, arb_program, build_edb, build_program};
use proptest::prelude::*;
use provsem_datalog::prelude::*;
use provsem_semiring::{Bool, Natural, Semiring, Tropical, WhySet};

const CASES: u32 = 120;
const CONVERGED_BOUND: usize = 64;

/// Asserts the full agreement contract for one `+`-idempotent semiring.
fn assert_idempotent_agreement<K>(program: &Program, edb: &FactStore<K>)
where
    K: Semiring + provsem_semiring::PlusIdempotent,
{
    let naive = evaluate_with_bound(program, edb, EvalStrategy::Naive, CONVERGED_BOUND);
    let semi = evaluate_with_bound(program, edb, EvalStrategy::SemiNaive, CONVERGED_BOUND);
    assert!(naive.converged, "naive did not converge:\n{program}");
    assert_eq!(naive.converged, semi.converged);
    assert_eq!(naive.idb, semi.idb, "general path disagrees:\n{program}");
    let fast = seminaive_idempotent(program, edb, CONVERGED_BOUND);
    assert!(fast.converged);
    assert_eq!(naive.idb, fast.idb, "delta rewrite disagrees:\n{program}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn boolean_agreement(raw_program in arb_program(), raw_edb in arb_edb()) {
        let program = build_program(&raw_program);
        let edb = build_edb(&raw_edb, |_, _| Bool::from(true));
        assert_idempotent_agreement(&program, &edb);
    }

    #[test]
    fn tropical_agreement(raw_program in arb_program(), raw_edb in arb_edb()) {
        let program = build_program(&raw_program);
        let edb = build_edb(&raw_edb, |_, w| Tropical::cost(w));
        assert_idempotent_agreement(&program, &edb);
    }

    #[test]
    fn why_provenance_agreement(raw_program in arb_program(), raw_edb in arb_edb()) {
        let program = build_program(&raw_program);
        let edb = build_edb(&raw_edb, |i, _| WhySet::var(format!("t{i}")));
        assert_idempotent_agreement(&program, &edb);
    }

    #[test]
    fn bounded_natural_round_for_round_agreement(
        raw_program in arb_program(),
        raw_edb in arb_edb(),
        rounds in 1usize..6,
    ) {
        // ℕ is not +-idempotent and recursive programs need not converge, so
        // the contract here is per-round: both strategies compute Tᵐ(0).
        let program = build_program(&raw_program);
        let edb = build_edb(&raw_edb, |_, w| Natural::from(w));
        let naive = evaluate_with_bound(&program, &edb, EvalStrategy::Naive, rounds);
        let semi = evaluate_with_bound(&program, &edb, EvalStrategy::SemiNaive, rounds);
        prop_assert_eq!(naive.converged, semi.converged, "program:\n{}", &program);
        prop_assert_eq!(naive.idb, semi.idb, "program:\n{}", &program);
    }
}

#[test]
fn figure7_nonconverging_instance_agrees_per_round() {
    // The canonical non-converging workload: under ℕ∞ the d→d self-loop
    // pumps forever, and both strategies must track each other exactly.
    let program = Program::transitive_closure("R", "Q");
    let edb = edge_facts(
        "R",
        &[
            ("a", "b", provsem_semiring::NatInf::Fin(2)),
            ("a", "c", provsem_semiring::NatInf::Fin(3)),
            ("c", "b", provsem_semiring::NatInf::Fin(2)),
            ("b", "d", provsem_semiring::NatInf::Fin(1)),
            ("d", "d", provsem_semiring::NatInf::Fin(1)),
        ],
    );
    for rounds in 1..10 {
        let naive = evaluate_with_bound(&program, &edb, EvalStrategy::Naive, rounds);
        let semi = evaluate_with_bound(&program, &edb, EvalStrategy::SemiNaive, rounds);
        assert_eq!(naive.idb, semi.idb, "rounds={rounds}");
        assert_eq!(naive.converged, semi.converged, "rounds={rounds}");
        // The growth phase: neither strategy may claim convergence while the
        // self-loop is still pumping finite values. (Around round 9 the u64
        // payloads saturate to ∞ and the system genuinely reaches its ℕ∞
        // fixpoint, so the window below is where growth is observable.)
        if rounds <= 8 {
            assert!(!naive.converged && !semi.converged, "rounds={rounds}");
        }
    }
}

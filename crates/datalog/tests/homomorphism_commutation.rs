//! Proposition 3.5 / Theorem 5.7: semiring homomorphisms commute with
//! (datalog) query evaluation.
//!
//! For an ω-continuous homomorphism `h : K → K'`, applying `h` tuple-wise to
//! the edb and then evaluating equals evaluating over K and then applying
//! `h` to the answer. The properties below check this on random programs and
//! instances for the standard specialization maps, and a deliberately broken
//! map shows the hypothesis is not vacuous.

mod common;

use common::{arb_edb, arb_program, build_edb, build_program};
use proptest::prelude::*;
use provsem_datalog::prelude::*;
use provsem_semiring::{
    NatInf, NatInfToBool, Natural, NaturalToBool, NaturalToNatInf, Semiring, SemiringHomomorphism,
};

const CASES: u32 = 120;

/// `h` applied fact-wise to a store.
fn map_store<A: Semiring, B: Semiring>(
    h: &impl SemiringHomomorphism<A, B>,
    store: &FactStore<A>,
) -> FactStore<B> {
    store.map_annotations(|k| h.apply(k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn support_homomorphism_commutes_per_round(
        raw_program in arb_program(),
        raw_edb in arb_edb(),
        rounds in 1usize..6,
    ) {
        // h : ℕ → 𝔹 commutes with every application of the
        // immediate-consequence operator, hence with Tᵐ(0) for every m —
        // even on instances where the ℕ iteration never converges.
        let program = build_program(&raw_program);
        let edb = build_edb(&raw_edb, |_, w| Natural::from(w));
        let mapped_edb = map_store(&NaturalToBool, &edb);
        for strategy in [EvalStrategy::Naive, EvalStrategy::SemiNaive] {
            let over_nat = evaluate_with_bound(&program, &edb, strategy, rounds);
            let over_bool = evaluate_with_bound(&program, &mapped_edb, strategy, rounds);
            prop_assert_eq!(
                map_store(&NaturalToBool, &over_nat.idb),
                over_bool.idb,
                "strategy {:?}, program:\n{}", strategy, &program
            );
        }
    }

    #[test]
    fn inclusion_into_natinf_commutes_per_round(
        raw_program in arb_program(),
        raw_edb in arb_edb(),
        rounds in 1usize..6,
    ) {
        let program = build_program(&raw_program);
        let edb = build_edb(&raw_edb, |_, w| Natural::from(w));
        let mapped_edb = map_store(&NaturalToNatInf, &edb);
        let over_nat = evaluate_with_bound(&program, &edb, EvalStrategy::SemiNaive, rounds);
        let over_natinf =
            evaluate_with_bound(&program, &mapped_edb, EvalStrategy::SemiNaive, rounds);
        prop_assert_eq!(
            map_store(&NaturalToNatInf, &over_nat.idb),
            over_natinf.idb,
            "program:\n{}", &program
        );
    }

    #[test]
    fn natinf_to_bool_commutes_with_exact_evaluation(raw_edb in arb_edb()) {
        // Theorem 5.7 with the ∞ values exercised: the support of the exact
        // ℕ∞ transitive closure (Inf annotations included) equals the 𝔹
        // fixpoint of the mapped edb. Both sides use different algorithms
        // (cycle analysis vs semi-naive fixpoint).
        let program = Program::transitive_closure("R", "Q");
        let edb = build_edb(&raw_edb, |_, w| NatInf::Fin(w));
        // Collapse R and S into one edge relation for the TC program.
        let mut edges: FactStore<NatInf> = FactStore::new();
        for (fact, k) in edb.facts() {
            edges.insert(Fact::new("R", fact.values.clone()), *k);
        }
        let exact = evaluate_natinf(&program, &edges);
        let mapped_edb = map_store(&NatInfToBool, &edges);
        let over_bool =
            evaluate(&program, &mapped_edb, EvalStrategy::SemiNaive).expect("𝔹 converges");
        prop_assert_eq!(map_store(&NatInfToBool, &exact), over_bool);
    }
}

#[test]
fn broken_map_fails_to_commute() {
    // n ↦ min(n, 1) is not additive (h(1+1) = 1 ≠ 2 = h(1) + h(1)), and
    // Proposition 3.5 says commutation must then fail on some instance —
    // here, Figure 6 with its bag multiplicities.
    let cap = |n: &Natural| Natural::from(n.value().min(1));
    let program = Program::figure6_query();
    let edb = edge_facts(
        "R",
        &[
            ("a", "a", Natural::from(2u64)),
            ("a", "b", Natural::from(3u64)),
            ("b", "b", Natural::from(4u64)),
        ],
    );
    let mapped_edb = edb.map_annotations(cap);
    let evaluated_then_mapped = evaluate(&program, &edb, EvalStrategy::SemiNaive)
        .unwrap()
        .map_annotations(cap);
    let mapped_then_evaluated = evaluate(&program, &mapped_edb, EvalStrategy::SemiNaive).unwrap();
    // Q(a,b) = 2·3 + 3·4 = 18 ↦ 1 on the left, but 1·1 + 1·1 = 2 on the
    // right.
    assert_ne!(evaluated_then_mapped, mapped_then_evaluated);
    assert_eq!(
        mapped_then_evaluated.annotation(&Fact::new("Q", ["a", "b"])),
        Natural::from(2u64)
    );
}

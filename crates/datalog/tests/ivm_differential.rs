//! Differential test: maintained datalog fixpoints equal recomputation.
//!
//! Random recursive programs over random edge databases are materialized
//! with [`materialize_fixpoint`] and then hit with random insert/delete
//! batches; after every batch the maintained view must equal a from-scratch
//! [`seminaive_iterate`] over the updated edb — support *and* annotations.
//! Deletion batches deliberately break derivations (deleting a fact's only
//! support must remove it; deleting one of several must keep it with the
//! reduced annotation), pinning the absence of over-retention. Every case
//! runs the maintenance serially and at 4 threads
//! ([`maintain_fixpoint_with`]); the two views must agree exactly.
//!
//! Semiring choice: ℤ path-counting diverges on cyclic instances, so the
//! random ℤ cases use the *linear* transitive-closure shape over DAG edges
//! (node indices only increase), while the idempotent 𝔹/lattice cases roam
//! freely over cyclic graphs and nonlinear rules.

use proptest::prelude::*;
use provsem_core::plan::ExecContext;
use provsem_datalog::prelude::*;
use provsem_semiring::{Bool, Integers, Ring, Semiring, Tropical};

const CASES: u32 = 64;

/// A raw edge draw: `(src node, dst node, weight)`. Node ids are folded
/// into a small domain; for DAG instances the edge is oriented low → high.
type RawEdge = (u8, u8, u8);

fn node(n: u8, domain: u8) -> String {
    format!("n{}", n % domain)
}

/// Edges as facts, oriented src < dst (a DAG, so ℤ path counting converges).
fn dag_edges(edges: &[RawEdge], domain: u8) -> Vec<(String, String, u8)> {
    edges
        .iter()
        .filter_map(|(a, b, w)| {
            let (a, b) = (a % domain, b % domain);
            match a.cmp(&b) {
                std::cmp::Ordering::Less => Some((node(a, domain), node(b, domain), *w)),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some((node(b, domain), node(a, domain), *w)),
            }
        })
        .collect()
}

fn store<K: Semiring>(edges: &[(String, String, u8)], annotate: impl Fn(u8) -> K) -> FactStore<K> {
    let mut edb = FactStore::new();
    for (a, b, w) in edges {
        edb.insert(Fact::new("R", [a.as_str(), b.as_str()]), annotate(*w));
    }
    edb
}

/// The recursive program shapes the random cases draw from. All define `Q`
/// from edb `R`; `two_hop` adds a second stratum `P` consuming `Q`.
fn program(shape: u8, nonlinear_ok: bool) -> Program {
    match shape % if nonlinear_ok { 4 } else { 2 } {
        0 => Program::linear_transitive_closure("R", "Q"),
        1 => parse_program(
            "Q(x, y) :- R(x, y).\nQ(x, z) :- Q(x, y), R(y, z).\nP(x) :- Q(x, y), R(y, x2).",
        )
        .unwrap(),
        2 => Program::transitive_closure("R", "Q"),
        _ => {
            parse_program("Q(x, y) :- R(x, y).\nQ(x, y) :- Q(y, x).\nQ(x, z) :- Q(x, y), Q(y, z).")
                .unwrap()
        }
    }
}

/// The differential contract for one case: the maintained view (serial and
/// 4-thread) equals from-scratch semi-naive evaluation after every batch.
fn check_maintain_agreement<K: Semiring + Send + Sync>(
    program: &Program,
    edb: &FactStore<K>,
    batches: &[FactStore<K>],
) {
    let mut view = materialize_fixpoint(program, edb, 64);
    let mut view4 = materialize_fixpoint(program, edb, 64);
    let mut current = edb.clone();
    assert!(view.converged(), "materialization did not converge");
    for batch in batches {
        maintain_fixpoint(&mut view, batch);
        maintain_fixpoint_with(&mut view4, batch, &ExecContext::with_threads(4));
        for (fact, k) in batch.facts() {
            current.insert(fact, k.clone());
        }
        let scratch = seminaive_iterate(program, &current, 64);
        assert!(view.converged() && scratch.converged, "non-convergence");
        assert_eq!(
            view.result(),
            &scratch.idb,
            "maintained view != from-scratch fixpoint"
        );
        assert_eq!(
            view4.result(),
            &scratch.idb,
            "4-thread maintained view != from-scratch fixpoint"
        );
        assert_eq!(view.edb(), &current, "maintained edb drifted");
    }
}

/// Splits raw ops into batches of ≤4: delete-biased kinds cancel the i-th
/// *current* edb fact exactly (wrapping), the rest insert fresh DAG edges.
/// The evolving edb is tracked op by op, so deletions always hit real facts
/// with their full current annotation — genuinely breaking derivations.
fn ring_batches<K: Semiring + Ring>(
    edb: &FactStore<K>,
    ops: &[(u8, RawEdge)],
    domain: u8,
) -> Vec<FactStore<K>> {
    let mut current = edb.clone();
    let mut batches = Vec::new();
    for chunk in ops.chunks(4) {
        let mut batch: FactStore<K> = FactStore::new();
        for (kind, edge) in chunk {
            let existing: Vec<(Fact, K)> = current.facts().map(|(f, k)| (f, k.clone())).collect();
            if kind % 8 < 3 && !existing.is_empty() {
                // Delete: full cancellation of one current fact.
                let (fact, k) = &existing[edge.0 as usize % existing.len()];
                batch.insert(fact.clone(), k.neg());
                current.insert(fact.clone(), k.neg());
            } else {
                for (a, b, w) in dag_edges(&[*edge], domain) {
                    let k = K::one().repeat(1 + u64::from(w % 3));
                    batch.insert(Fact::new("R", [a.as_str(), b.as_str()]), k.clone());
                    current.insert(Fact::new("R", [a.as_str(), b.as_str()]), k);
                }
            }
        }
        batches.push(batch);
    }
    batches
}

fn arb_edges() -> impl Strategy<Value = Vec<RawEdge>> {
    prop::collection::vec((0u8..8, 0u8..8, 0u8..3), 0..10)
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, RawEdge)>> {
    prop::collection::vec((0u8..=255, (0u8..8, 0u8..8, 0u8..3)), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// ℤ path counting on DAGs: linear-recursive programs, exact counts,
    /// deletions as additive inverses.
    #[test]
    fn integers_dag_maintain_agreement(
        shape in 0u8..2, edges in arb_edges(), ops in arb_ops()
    ) {
        let program = program(shape, false);
        let edb = store(&dag_edges(&edges, 6), |w| Integers::new(1 + i64::from(w % 3)));
        let batches = ring_batches(&edb, &ops, 6);
        check_maintain_agreement(&program, &edb, &batches);
    }

    /// 𝔹 over arbitrary (cyclic) graphs and nonlinear/recursive shapes:
    /// deletions must retract facts whose every derivation is broken, even
    /// through cycles (the classic DRed counterexample territory).
    #[test]
    fn boolean_cyclic_maintain_agreement(
        shape in 0u8..4, edges in arb_edges(), ops in arb_ops()
    ) {
        let program = program(shape, true);
        let edges: Vec<_> = edges
            .iter()
            .map(|(a, b, _)| (node(*a, 5), node(*b, 5), 0u8))
            .collect();
        let edb = store(&edges, |_| Bool::from(true));
        let batches = insert_batches_bool(&ops);
        check_maintain_agreement(&program, &edb, &batches);
    }

    /// Tropical shortest paths: deletions can *lengthen* the optimum, which
    /// pure increment-merging maintenance gets wrong — rederivation must
    /// find the new optimum.
    #[test]
    fn tropical_maintain_agreement(edges in arb_edges(), ops in arb_ops()) {
        let program = Program::linear_transitive_closure("R", "Q");
        let edges: Vec<_> = edges
            .iter()
            .map(|(a, b, w)| (node(*a, 5), node(*b, 5), *w))
            .collect();
        let edb = store(&edges, |w| Tropical::cost(u64::from(w)));
        let mut current = edb.clone();
        let mut batches = Vec::new();
        for chunk in ops.chunks(4) {
            let mut batch: FactStore<Tropical> = FactStore::new();
            for (kind, edge) in chunk {
                let existing: Vec<Fact> = current.facts().map(|(f, _)| f).collect();
                // The tropical semiring has no additive inverses, so the
                // batches are insert-only: either a cheaper parallel route
                // for an existing edge (tropical `+` is min) or a fresh
                // edge. Optima still shift through the whole closure.
                let (fact, k) = if kind % 2 == 0 && !existing.is_empty() {
                    let fact = existing[edge.0 as usize % existing.len()].clone();
                    (fact, Tropical::cost(0))
                } else {
                    (
                        Fact::new("R", [node(edge.0, 5), node(edge.1, 5)]),
                        Tropical::cost(u64::from(edge.2)),
                    )
                };
                batch.insert(fact.clone(), k);
                current.insert(fact, k);
            }
            batches.push(batch);
        }
        check_maintain_agreement(&program, &edb, &batches);
    }
}

/// 𝔹 has no additive inverses, so the cyclic stress batches are
/// insert-only (every delete draw becomes another edge insert); true
/// deletions — the ring-only capability — are exercised by the ℤ suite and
/// the explicit unit tests below.
fn insert_batches_bool(ops: &[(u8, RawEdge)]) -> Vec<FactStore<Bool>> {
    ops.chunks(4)
        .map(|chunk| {
            let mut batch = FactStore::new();
            for (_, edge) in chunk {
                batch.insert(
                    Fact::new("R", [node(edge.0, 5), node(edge.1, 5)]),
                    Bool::from(true),
                );
            }
            batch
        })
        .collect()
}

/// Deletions that break derivations through a *shared* subgoal: the classic
/// over-retention trap. `Q(a,c)` is derivable through `b1` and `b2`;
/// deleting the `b1` route must keep it, deleting both must remove it —
/// and the intermediate `Q(a,b1)` must go the moment its only support does.
#[test]
fn shared_subgoal_deletions_do_not_over_retain() {
    let program = Program::linear_transitive_closure("R", "Q");
    let edb = edge_facts(
        "R",
        &[
            ("a", "b1", Integers::new(1)),
            ("a", "b2", Integers::new(1)),
            ("b1", "c", Integers::new(1)),
            ("b2", "c", Integers::new(1)),
            ("c", "d", Integers::new(1)),
        ],
    );
    let mut view = materialize_fixpoint(&program, &edb, 64);
    assert_eq!(
        view.result().annotation(&Fact::new("Q", ["a", "d"])),
        Integers::new(2)
    );

    let mut delta = FactStore::new();
    delta.insert(Fact::new("R", ["a", "b1"]), Integers::new(1).neg());
    maintain_fixpoint(&mut view, &delta);
    assert!(!view.result().contains(&Fact::new("Q", ["a", "b1"])));
    assert_eq!(
        view.result().annotation(&Fact::new("Q", ["a", "d"])),
        Integers::new(1),
        "one route through b2 must survive"
    );

    let mut delta = FactStore::new();
    delta.insert(Fact::new("R", ["a", "b2"]), Integers::new(1).neg());
    maintain_fixpoint(&mut view, &delta);
    for gone in [["a", "b2"], ["a", "c"], ["a", "d"]] {
        assert!(
            !view.result().contains(&Fact::new("Q", gone)),
            "over-retained Q({gone:?})"
        );
    }
    assert_eq!(
        view.result().annotation(&Fact::new("Q", ["b1", "d"])),
        Integers::new(1),
        "paths not through the deleted edges must be untouched"
    );
    assert!(view.converged());
}

/// A delete immediately un-done by a re-insert in a later batch must restore
/// the original fixpoint exactly (state round-trip).
#[test]
fn delete_then_reinsert_round_trips() {
    let program = Program::linear_transitive_closure("R", "Q");
    let edb = edge_facts(
        "R",
        &[("a", "b", Integers::new(2)), ("b", "c", Integers::new(3))],
    );
    let mut view = materialize_fixpoint(&program, &edb, 64);
    let original = view.result().clone();

    let mut delete = FactStore::new();
    delete.insert(Fact::new("R", ["b", "c"]), Integers::new(3).neg());
    maintain_fixpoint(&mut view, &delete);
    assert!(!view.result().contains(&Fact::new("Q", ["a", "c"])));

    let mut reinsert = FactStore::new();
    reinsert.insert(Fact::new("R", ["b", "c"]), Integers::new(3));
    maintain_fixpoint(&mut view, &reinsert);
    assert_eq!(view.result(), &original);
    assert_eq!(view.edb(), &edb);
}

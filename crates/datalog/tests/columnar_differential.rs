//! Differential test: the batch (columnar) semi-naive engine agrees with
//! the serial row loops **exactly** — same idb annotations, same iteration
//! counts, same convergence flags, round for round — across random
//! linear and nonlinear programs, five semirings (𝔹, ℕ, tropical, Why(X),
//! ℤ), and thread counts {1, 4}. Targeted cases cover the engine's
//! degradation paths: dictionary overflow (> 2¹⁶ distinct strings per
//! column) and mixed-arity predicates (arena fallback), plus the batch
//! rederivation path of `maintain_fixpoint_with`.

mod common;

use common::{arb_edb, arb_program, build_edb, build_program};
use proptest::prelude::*;
use provsem_core::plan::{ExecContext, ExecMode};
use provsem_datalog::columnar::{seminaive_idempotent_batch, seminaive_iterate_batch};
use provsem_datalog::prelude::*;
use provsem_datalog::seminaive::{
    seminaive_idempotent, seminaive_idempotent_with, seminaive_iterate, seminaive_iterate_with,
};
use provsem_semiring::{
    Bool, Integers, NatInf, Natural, PlusIdempotent, PosBool, Ring, Semiring, Tropical, WhySet,
};

const THREADS: [usize; 2] = [1, 4];

/// General path: the batch engine equals the serial row loop for every
/// semiring, converged or not (checked at several round bounds), at every
/// thread count — both called directly and dispatched through
/// `seminaive_iterate_with` with the mode forced to `Batch`. The round
/// bounds are a parameter because exact ℕ/ℤ multiplicities grow doubly
/// exponentially under nonlinear recursion and overflow past ~2 rounds;
/// the saturating semirings run the deep bounds.
fn check_general<K: Semiring + Send + Sync>(
    program: &Program,
    edb: &FactStore<K>,
    round_bounds: &[usize],
) {
    for &rounds in round_bounds {
        let row = seminaive_iterate(program, edb, rounds);
        for threads in THREADS {
            let batch = seminaive_iterate_batch(program, edb, rounds, threads);
            assert_eq!(row.idb, batch.idb, "threads={threads} rounds={rounds}");
            assert_eq!(row.iterations, batch.iterations);
            assert_eq!(row.converged, batch.converged);
            let ctx = ExecContext::with_threads(threads).with_mode(ExecMode::Batch);
            let dispatched = seminaive_iterate_with(program, edb, rounds, &ctx);
            assert_eq!(row.idb, dispatched.idb, "dispatch threads={threads}");
            assert_eq!(row.iterations, dispatched.iterations);
            assert_eq!(row.converged, dispatched.converged);
        }
    }
}

/// Idempotent fast path: same agreement for `+`-idempotent semirings.
fn check_idempotent<K: Semiring + PlusIdempotent + Send + Sync>(
    program: &Program,
    edb: &FactStore<K>,
) {
    for rounds in [2, 8, 64] {
        let row = seminaive_idempotent(program, edb, rounds);
        for threads in THREADS {
            let batch = seminaive_idempotent_batch(program, edb, rounds, threads);
            assert_eq!(row.idb, batch.idb, "threads={threads} rounds={rounds}");
            assert_eq!(row.iterations, batch.iterations);
            assert_eq!(row.converged, batch.converged);
            let ctx = ExecContext::with_threads(threads).with_mode(ExecMode::Batch);
            let dispatched = seminaive_idempotent_with(program, edb, rounds, &ctx);
            assert_eq!(row.idb, dispatched.idb, "dispatch threads={threads}");
            assert_eq!(row.converged, dispatched.converged);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_equals_row_on_random_programs(raw_program in arb_program(), raw_edb in arb_edb()) {
        let program = build_program(&raw_program);
        const DEEP: &[usize] = &[1, 2, 3, 8];
        const SHALLOW: &[usize] = &[1, 2]; // exact ℕ/ℤ overflow past this
        check_general(&program, &build_edb(&raw_edb, |_, w| Natural::from(w)), SHALLOW);
        check_general(&program, &build_edb(&raw_edb, |_, w| Integers::new(w as i64)), SHALLOW);
        check_general(&program, &build_edb(&raw_edb, |_, w| NatInf::Fin(w)), DEEP);
        check_general(&program, &build_edb(&raw_edb, |_, _| Bool::from(true)), DEEP);
        check_general(&program, &build_edb(&raw_edb, |_, w| Tropical::cost(w)), DEEP);
        check_general(&program, &build_edb(&raw_edb, |i, _| WhySet::var(format!("t{i}"))), DEEP);
        check_idempotent(&program, &build_edb(&raw_edb, |_, _| Bool::from(true)));
        check_idempotent(&program, &build_edb(&raw_edb, |_, w| Tropical::cost(w)));
        check_idempotent(&program, &build_edb(&raw_edb, |i, _| PosBool::var(format!("t{i}"))));
    }
}

/// Deleting through mixed ℤ deltas: the batch rederivation path of
/// `maintain_fixpoint_with` matches the row path and the from-scratch
/// fixpoint on the updated edb, at both thread counts.
#[test]
fn maintain_batch_rederivation_matches_row_and_from_scratch() {
    let program = Program::linear_transitive_closure("R", "Q");
    let edges: Vec<(String, String)> = (0..20)
        .flat_map(|i| {
            [
                (format!("n{i}"), format!("n{}", (i + 1) % 20)),
                (format!("n{i}"), format!("n{}", (i + 7) % 20)),
            ]
        })
        .collect();
    let mut edb: FactStore<Integers> = FactStore::new();
    for (s, d) in &edges {
        edb.insert(Fact::new("R", [s.clone(), d.clone()]), Integers::new(1));
    }
    // A mixed insert/delete batch: drop two edges, add a shortcut.
    let mut delta: FactStore<Integers> = FactStore::new();
    delta.insert(Fact::new("R", ["n0", "n1"]), Integers::new(1).neg());
    delta.insert(Fact::new("R", ["n3", "n10"]), Integers::new(1).neg());
    delta.insert(Fact::new("R", ["n0", "n15"]), Integers::new(1));

    let bound = 8; // cyclic ℤ closure: keep the counts bounded
    let mut row_view = materialize_fixpoint(&program, &edb, bound);
    maintain_fixpoint(&mut row_view, &delta);
    for threads in THREADS {
        let mut batch_view = materialize_fixpoint(&program, &edb, bound);
        let ctx = ExecContext::with_threads(threads).with_mode(ExecMode::Batch);
        maintain_fixpoint_with(&mut batch_view, &delta, &ctx);
        assert_eq!(batch_view.converged(), row_view.converged());
        assert_eq!(batch_view.result(), row_view.result(), "threads={threads}");
    }
    if row_view.converged() {
        let scratch = seminaive_iterate(&program, row_view.edb(), bound);
        assert_eq!(row_view.result(), &scratch.idb);
    }
}

/// More than 2¹⁶ distinct strings per column: the index's dictionary
/// columns overflow and degrade to plain value vectors mid-build; results
/// must not move. A chain a little longer than `DICT_MAX` exercises the
/// overflow without blowing up the closure size.
#[test]
fn dictionary_overflow_degrades_without_changing_results() {
    const NODES: usize = (1 << 16) + 64;
    let program = Program::figure6_query(); // Q(x,y) :- R(x,z), R(z,y)
    let mut edb: FactStore<Bool> = FactStore::new();
    for i in 0..NODES - 1 {
        edb.insert(
            Fact::new("R", [format!("s{i}"), format!("s{}", i + 1)]),
            Bool::from(true),
        );
    }
    let row = seminaive_iterate(&program, &edb, 4);
    let batch = seminaive_iterate_batch(&program, &edb, 4, 1);
    assert!(row.converged && batch.converged);
    assert_eq!(row.idb.len(), NODES - 2);
    assert_eq!(row.idb, batch.idb);
}

/// A predicate used at two arities poisons its typed columns; the batch
/// engine must fall back to the fact arena and still agree with the row
/// path. Constants and repeated variables in bodies and heads ride along.
#[test]
fn mixed_arity_predicates_fall_back_to_the_arena() {
    let program = parse_program(
        "P(x, y) :- M(x, y), M(x).\n\
         Q(x, 'k', x) :- M(x).\n\
         P(x, z) :- P(x, y), P(y, z).",
    )
    .unwrap();
    let mut edb: FactStore<Natural> = FactStore::new();
    edb.insert(Fact::new("M", ["a"]), Natural::from(2u64));
    edb.insert(Fact::new("M", ["b"]), Natural::from(3u64));
    edb.insert(Fact::new("M", ["a", "b"]), Natural::from(5u64));
    edb.insert(Fact::new("M", ["b", "c"]), Natural::from(7u64));
    for rounds in [1, 2, 3, 8] {
        let row = seminaive_iterate(&program, &edb, rounds);
        for threads in THREADS {
            let batch = seminaive_iterate_batch(&program, &edb, rounds, threads);
            assert_eq!(row.idb, batch.idb, "threads={threads} rounds={rounds}");
            assert_eq!(row.converged, batch.converged);
        }
    }
    let out = seminaive_iterate_batch(&program, &edb, 16, 1);
    // P(a,b) = M(a,b)·M(a) = 5·2; Q(a,k,a) = M(a) = 2.
    assert_eq!(
        out.idb.annotation(&Fact::new("P", ["a", "b"])),
        Natural::from(10u64)
    );
    assert_eq!(
        out.idb.annotation(&Fact::new("Q", ["a", "k", "a"])),
        Natural::from(2u64)
    );
}

/// The `Auto` mode picks the row engine below the EDB-size threshold and
/// the batch engine above it; both sides of the threshold agree with the
/// serial reference (the gate must be invisible in results).
#[test]
fn auto_mode_agrees_on_both_sides_of_the_threshold() {
    let program = Program::transitive_closure("R", "Q");
    for nodes in [10usize, 100] {
        let mut edb: FactStore<Tropical> = FactStore::new();
        for i in 0..nodes {
            edb.insert(
                Fact::new("R", [format!("n{i}"), format!("n{}", (i + 1) % nodes)]),
                Tropical::cost(1),
            );
        }
        let serial = seminaive_idempotent(&program, &edb, 256);
        let ctx = ExecContext::with_threads(1).with_mode(ExecMode::Auto);
        let auto = seminaive_idempotent_with(&program, &edb, 256, &ctx);
        assert_eq!(serial.idb, auto.idb, "nodes={nodes}");
        assert_eq!(serial.converged, auto.converged);
    }
}

//! Shared random-workload generators for the datalog property suites:
//! random safe programs (possibly recursive, possibly mutually recursive)
//! over two binary edb predicates `R`, `S` and two binary idb predicates
//! `P`, `Q`, plus random small edbs over a four-node domain.

use proptest::prelude::*;
use provsem_datalog::prelude::*;
use provsem_semiring::Semiring;

/// Raw draw for one rule: head predicate selector, body atoms as
/// `(predicate selector, var, var)`, and two selectors picking the head
/// variables from the body's variables (guaranteeing safety).
pub type RawRule = (u8, Vec<(u8, u8, u8)>, u8, u8);

/// Raw draw for one edb fact: `(predicate selector, src node, dst node,
/// weight)`.
pub type RawFact = (u8, u8, u8, u64);

pub const PREDICATES: [&str; 4] = ["R", "S", "P", "Q"];

/// Strategy for a random program of 1–3 safe rules with 1–3 body atoms each.
pub fn arb_program() -> impl Strategy<Value = Vec<RawRule>> {
    prop::collection::vec(
        (
            0u8..2,
            prop::collection::vec((0u8..4, 0u8..4, 0u8..4), 1..4),
            0u8..8,
            0u8..8,
        ),
        1..4,
    )
}

/// Strategy for a random edb of 1–8 facts over four nodes, with weights in
/// `1..=3`.
pub fn arb_edb() -> impl Strategy<Value = Vec<RawFact>> {
    prop::collection::vec((0u8..2, 0u8..4, 0u8..4, 1u64..4), 1..9)
}

/// Materializes a raw program. Heads draw their variables from the body's
/// variables, so every generated rule is range-restricted (safe).
pub fn build_program(raw: &[RawRule]) -> Program {
    let rules = raw
        .iter()
        .map(|(head_pred, body_raw, h1, h2)| {
            let body: Vec<Atom> = body_raw
                .iter()
                .map(|(pred, v1, v2)| {
                    Atom::new(
                        PREDICATES[*pred as usize % PREDICATES.len()],
                        vec![Term::var(format!("v{v1}")), Term::var(format!("v{v2}"))],
                    )
                })
                .collect();
            let mut body_vars: Vec<DlVar> = Vec::new();
            for atom in &body {
                for var in atom.variables() {
                    if !body_vars.contains(&var) {
                        body_vars.push(var);
                    }
                }
            }
            let pick = |sel: u8| Term::Var(body_vars[sel as usize % body_vars.len()].clone());
            let head_name = if *head_pred == 0 { "P" } else { "Q" };
            Rule::new(Atom::new(head_name, vec![pick(*h1), pick(*h2)]), body)
        })
        .collect();
    Program::new(rules)
}

/// Materializes a raw edb, interpreting each fact's weight through
/// `annotate` (which also receives the fact's index, so provenance-style
/// semirings can mint one variable per tuple).
pub fn build_edb<K: Semiring>(raw: &[RawFact], annotate: impl Fn(usize, u64) -> K) -> FactStore<K> {
    let mut store = FactStore::new();
    for (i, (pred, src, dst, weight)) in raw.iter().enumerate() {
        let name = if *pred == 0 { "R" } else { "S" };
        store.insert(
            Fact::new(name, [format!("n{src}"), format!("n{dst}")]),
            annotate(i, *weight),
        );
    }
    store
}

//! Golden tests for [`explain_fixpoint`]: the engine-decision line, the
//! per-rule join orders (full / recompute / Δ forms with their probe
//! masks), and the per-predicate column encodings are pinned verbatim in
//! row and batch modes. These strings are contract: the batch compiler
//! builds its probe steps from exactly the rendered plans, so a change
//! here means the engines' bucket usage diverged.

use provsem_core::plan::{ExecContext, ExecMode};
use provsem_core::Value;
use provsem_datalog::prelude::*;
use provsem_semiring::Natural;

fn tc_edb() -> FactStore<Natural> {
    edge_facts(
        "R",
        &[
            ("a", "b", Natural::from(2u64)),
            ("b", "c", Natural::from(3u64)),
        ],
    )
}

#[test]
fn transitive_closure_row_mode_golden() {
    let program = Program::transitive_closure("R", "Q");
    let explained = explain_fixpoint(&program, &tc_edb(), &ExecContext::with_threads(1));
    assert_eq!(
        explained,
        "engine: row (auto: 2 edb rows < 64)\n\
         rule 0: Q(x, y) :- R(x, y).\n\
         \x20 full: scan R(x, y)\n\
         \x20 recompute: probe R(x, y)[0,1]\n\
         rule 1: Q(x, y) :- Q(x, z), Q(z, y).\n\
         \x20 full: scan Q(x, z) → probe Q(z, y)[0]\n\
         \x20 recompute: probe Q(x, z)[0] → probe Q(z, y)[0,1]\n\
         \x20 Δ Q(x, z): probe Q(z, y)[0]\n\
         \x20 Δ Q(z, y): probe Q(x, z)[1]\n\
         columns:\n\
         \x20 R: [dict(2), dict(2)] (2 rows)\n"
    );
}

#[test]
fn transitive_closure_batch_mode_golden() {
    let program = Program::transitive_closure("R", "Q");
    let ctx = ExecContext::with_threads(1).with_mode(ExecMode::Batch);
    let explained = explain_fixpoint(&program, &tc_edb(), &ctx);
    // Identical join orders — only the engine decision line changes.
    assert!(explained.starts_with("engine: batch (forced)\n"));
    let row = explain_fixpoint(&program, &tc_edb(), &ExecContext::with_threads(1));
    assert_eq!(
        explained.lines().skip(1).collect::<Vec<_>>(),
        row.lines().skip(1).collect::<Vec<_>>()
    );
    // Forcing row reads back as forced row.
    let forced_row = ExecContext::with_threads(1).with_mode(ExecMode::Row);
    assert!(
        explain_fixpoint(&program, &tc_edb(), &forced_row).starts_with("engine: row (forced)\n")
    );
}

#[test]
fn auto_flips_to_batch_at_the_edb_threshold() {
    let program = Program::linear_transitive_closure("R", "Q");
    let mut edb: FactStore<Natural> = FactStore::new();
    for i in 0..64 {
        edb.insert(
            Fact::new("R", [format!("n{i}"), format!("n{}", i + 1)]),
            Natural::from(1u64),
        );
    }
    let explained = explain_fixpoint(&program, &edb, &ExecContext::with_threads(1));
    assert!(
        explained.starts_with("engine: batch (auto: 64 edb rows ≥ 64)\n"),
        "{explained}"
    );
}

#[test]
fn column_encodings_cover_i64_val_and_arena() {
    let program = parse_program("Q(x) :- N(x, y), M(x), V(x, y).").unwrap();
    let mut edb: FactStore<Natural> = FactStore::new();
    // N: both columns typed integers.
    edb.insert(
        Fact::new("N", [Value::Int(1), Value::Int(10)]),
        Natural::from(1u64),
    );
    edb.insert(
        Fact::new("N", [Value::Int(2), Value::Int(20)]),
        Natural::from(1u64),
    );
    // V: second column mixes types → val fallback.
    edb.insert(
        Fact::new("V", [Value::Int(1), Value::from("a")]),
        Natural::from(1u64),
    );
    edb.insert(
        Fact::new("V", [Value::Int(2), Value::Int(2)]),
        Natural::from(1u64),
    );
    // M: mixed arity → columnar storage poisoned, arena fallback.
    edb.insert(Fact::new("M", [Value::Int(1)]), Natural::from(1u64));
    edb.insert(
        Fact::new("M", [Value::Int(1), Value::Int(2)]),
        Natural::from(1u64),
    );
    let explained = explain_fixpoint(&program, &edb, &ExecContext::with_threads(1));
    let columns = explained.split("columns:\n").nth(1).unwrap();
    assert_eq!(
        columns,
        "  M: arena (mixed arity)\n\
         \x20 N: [i64, i64] (2 rows)\n\
         \x20 V: [i64, val] (2 rows)\n"
    );
}

//! Differential test: the parallel semi-naive rounds agree with the serial
//! loops **exactly** — same idb annotations, same iteration counts, same
//! convergence flags, round for round — at `threads ∈ {2, 4}`.
//!
//! Random programs/edbs cover the general path (every semiring) and the
//! idempotent fast path; a deterministic transitive-closure workload is
//! large enough that the rounds genuinely fan out over worker threads.

mod common;

use common::{arb_edb, arb_program, build_edb, build_program};
use proptest::prelude::*;
use provsem_core::plan::ExecContext;
use provsem_datalog::prelude::*;
use provsem_datalog::seminaive::{
    seminaive_idempotent, seminaive_idempotent_with, seminaive_iterate, seminaive_iterate_with,
};
use provsem_semiring::{Bool, Natural, PlusIdempotent, PosBool, Semiring, Tropical, WhySet};

const THREADS: [usize; 2] = [2, 4];

/// General path: parallel rounds equal serial rounds for every semiring,
/// converged or not (checked at several round bounds).
fn check_general<K: Semiring + Send + Sync>(program: &Program, edb: &FactStore<K>) {
    for rounds in [1, 2, 3, 8] {
        let serial = seminaive_iterate(program, edb, rounds);
        for threads in THREADS {
            let ctx = ExecContext::with_threads(threads);
            let parallel = seminaive_iterate_with(program, edb, rounds, &ctx);
            assert_eq!(
                serial.idb, parallel.idb,
                "threads={threads} rounds={rounds}"
            );
            assert_eq!(serial.iterations, parallel.iterations);
            assert_eq!(serial.converged, parallel.converged);
        }
    }
}

/// Idempotent fast path: same agreement for `+`-idempotent semirings.
fn check_idempotent<K: Semiring + PlusIdempotent + Send + Sync>(
    program: &Program,
    edb: &FactStore<K>,
) {
    for rounds in [2, 8, 64] {
        let serial = seminaive_idempotent(program, edb, rounds);
        for threads in THREADS {
            let ctx = ExecContext::with_threads(threads);
            let parallel = seminaive_idempotent_with(program, edb, rounds, &ctx);
            assert_eq!(
                serial.idb, parallel.idb,
                "threads={threads} rounds={rounds}"
            );
            assert_eq!(serial.iterations, parallel.iterations);
            assert_eq!(serial.converged, parallel.converged);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn parallel_rounds_equal_serial_on_random_programs(raw_program in arb_program(), raw_edb in arb_edb()) {
        let program = build_program(&raw_program);
        check_general(&program, &build_edb(&raw_edb, |_, w| Natural::from(w)));
        check_general(&program, &build_edb(&raw_edb, |_, _| Bool::from(true)));
        check_general(&program, &build_edb(&raw_edb, |_, w| Tropical::cost(w)));
        check_general(&program, &build_edb(&raw_edb, |i, _| WhySet::var(format!("t{i}"))));
        check_idempotent(&program, &build_edb(&raw_edb, |_, _| Bool::from(true)));
        check_idempotent(&program, &build_edb(&raw_edb, |_, w| Tropical::cost(w)));
        check_idempotent(&program, &build_edb(&raw_edb, |i, _| PosBool::var(format!("t{i}"))));
    }
}

/// A deterministic layered graph whose transitive closure produces enough
/// delta work per round that the parallel loops actually spawn workers.
fn layered_edges(layers: usize, width: usize) -> Vec<(String, String)> {
    let mut edges = Vec::new();
    for layer in 0..layers {
        for i in 0..width {
            for j in 0..width {
                // Sparse but well-connected: skip ~half the pairs.
                if (i + 2 * j + layer) % 3 != 0 {
                    edges.push((format!("n{layer}_{i}"), format!("n{}_{j}", layer + 1)));
                }
            }
        }
    }
    edges
}

#[test]
fn parallel_transitive_closure_matches_serial_on_a_large_graph() {
    let program = Program::transitive_closure("R", "Q");
    let mut edb: FactStore<Natural> = FactStore::new();
    for (i, (src, dst)) in layered_edges(6, 10).into_iter().enumerate() {
        edb.insert(Fact::new("R", [src, dst]), Natural::from(i as u64 % 3 + 1));
    }
    let serial = seminaive_iterate(&program, &edb, 16);
    assert!(serial.converged, "layered DAG closure converges");
    for threads in THREADS {
        let ctx = ExecContext::with_threads(threads);
        let parallel = seminaive_iterate_with(&program, &edb, 16, &ctx);
        assert_eq!(serial.idb, parallel.idb, "threads={threads}");
        assert_eq!(serial.iterations, parallel.iterations);
    }
    // The strategy entry point agrees too.
    let via_entry = evaluate_with_context(
        &program,
        &edb,
        EvalStrategy::SemiNaive,
        16,
        &ExecContext::with_threads(4),
    );
    assert_eq!(via_entry.idb, serial.idb);
}

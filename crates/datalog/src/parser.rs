//! A small textual parser for pure datalog programs.
//!
//! Grammar (whitespace-insensitive, `%` starts a comment until end of line):
//!
//! ```text
//! program  ::= { rule }
//! rule     ::= atom [ ":-" atom { "," atom } ] "."
//! atom     ::= IDENT "(" term { "," term } ")"
//! term     ::= VARIABLE | CONSTANT
//! VARIABLE ::= identifier starting with a lowercase letter? — no:
//!              identifiers starting with an uppercase letter or `_` would be
//!              the Prolog convention; we follow the *datalog/paper*
//!              convention instead: plain identifiers are variables, quoted
//!              strings ('abc') and integers are constants.
//! ```
//!
//! This matches how the paper writes rules (`Q(x,y) :- R(x,z), R(z,y)`): the
//! lowercase identifiers are variables and the data values live in the
//! instance, not the program text.

use crate::ast::{Atom, Program, Rule, Term};
use provsem_core::Value;
use std::fmt;

/// A parse error with a (byte) position and message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'%') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c == expected => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!(
                "expected '{}', found {:?}",
                expected as char,
                other.map(|c| c as char)
            ))),
        }
    }

    fn try_eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected an identifier"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("identifier bytes are ASCII")
            .to_string())
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'\'') => {
                // Quoted string constant.
                self.bump();
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'\'' {
                        break;
                    }
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in constant"))?
                    .to_string();
                self.eat(b'\'')?;
                Ok(Term::constant(text))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                // Integer constant.
                let start = self.pos;
                self.bump();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
                let n: i64 = text
                    .parse()
                    .map_err(|_| self.error(format!("invalid integer '{text}'")))?;
                Ok(Term::Const(Value::int(n)))
            }
            _ => Ok(Term::var(self.identifier()?)),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let predicate = self.identifier()?;
        self.eat(b'(')?;
        let mut terms = vec![self.term()?];
        loop {
            self.skip_ws();
            if self.try_eat_str(",") {
                terms.push(self.term()?);
            } else {
                break;
            }
        }
        self.eat(b')')?;
        Ok(Atom::new(predicate, terms))
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.try_eat_str(":-") {
            body.push(self.atom()?);
            loop {
                self.skip_ws();
                if self.try_eat_str(",") {
                    body.push(self.atom()?);
                } else {
                    break;
                }
            }
        }
        self.eat(b'.')?;
        Ok(Rule::new(head, body))
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut rules = Vec::new();
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                break;
            }
            rules.push(self.rule()?);
        }
        Ok(Program::new(rules))
    }
}

/// Parses a datalog program from text.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    Parser::new(text).program()
}

/// Parses a single rule (must be terminated by `.`).
pub fn parse_rule(text: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(text);
    let rule = p.rule()?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.error("trailing input after rule"));
    }
    Ok(rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DlVar;

    #[test]
    fn parses_the_figure7_program() {
        let p = parse_program(
            "Q(x, y) :- R(x, y).\n\
             Q(x, y) :- Q(x, z), Q(z, y).",
        )
        .unwrap();
        assert_eq!(p, Program::transitive_closure("R", "Q"));
    }

    #[test]
    fn parses_the_figure6_query() {
        let p = parse_program("Q(x,y) :- R(x,z), R(z,y).").unwrap();
        assert_eq!(p, Program::figure6_query());
    }

    #[test]
    fn parses_constants_and_facts() {
        let p = parse_program("R('a', 'b').\nPath(x, 'b') :- R(x, 'b').").unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].is_fact());
        assert_eq!(p.rules[1].head.terms[1], Term::Const(Value::str("b")));
        assert_eq!(p.rules[1].head.terms[0], Term::Var(DlVar::new("x")));
    }

    #[test]
    fn parses_integer_constants() {
        let p = parse_program("Cost(x, 42) :- Edge(x, -7).").unwrap();
        assert_eq!(p.rules[0].head.terms[1], Term::Const(Value::int(42)));
        assert_eq!(p.rules[0].body[0].terms[1], Term::Const(Value::int(-7)));
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let p = parse_program(
            "% transitive closure\n  Q(x,y) :- R(x,y). % base\n\nQ(x,y) :- Q(x,z), Q(z,y).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn missing_dot_is_an_error() {
        let err = parse_program("Q(x,y) :- R(x,y)").unwrap_err();
        assert!(err.message.contains("expected '.'"), "{err}");
    }

    #[test]
    fn unbalanced_parenthesis_is_an_error() {
        assert!(parse_program("Q(x,y :- R(x,y).").is_err());
    }

    #[test]
    fn parse_rule_rejects_trailing_garbage() {
        assert!(parse_rule("Q(x) :- R(x). extra").is_err());
        assert!(parse_rule("Q(x) :- R(x).").is_ok());
    }

    #[test]
    fn display_parse_round_trip() {
        let tc = Program::transitive_closure("Edge", "Path");
        let reparsed = parse_program(&format!("{tc}")).unwrap();
        assert_eq!(tc, reparsed);
    }
}

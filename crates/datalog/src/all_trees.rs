//! Derivation trees and the **All-Trees** algorithm (Figure 8 of the paper).
//!
//! All-Trees decides, for every tuple in a datalog answer, whether its
//! provenance series in ℕ∞\[\[X\]\] is actually a *polynomial* (finitely many
//! derivation trees), and computes that polynomial when it is; tuples with
//! infinitely many derivation trees are reported as ∞.
//!
//! The same engine, with the Section 8 admission policy (a new tree is kept
//! only if its fringe monomial is *not divisible by* the fringe of a tree
//! already found for the same tuple), yields a finite polynomial for every
//! tuple, which evaluated in a finite distributive lattice K gives the
//! K-relation datalog answer — this is the paper's terminating algorithm for
//! datalog on incomplete and probabilistic databases.

use crate::ast::Program;
use crate::fact::{Fact, FactStore};
use crate::grounding::{derivable_facts, instantiate_over, GroundRule};
use provsem_semiring::{
    DistributiveLattice, Monomial, Natural, ProvenancePolynomial, Semiring, Valuation, Variable,
};
use std::collections::{BTreeMap, BTreeSet};

/// A derivation tree for an idb fact.
///
/// Leaves are edb facts (identified by their provenance variable); internal
/// nodes record the ground rule applied and the child derivations of the idb
/// body facts.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DerivationTree {
    /// The fact derived at the root.
    pub root: Fact,
    /// Index of the ground rule applied at the root.
    pub rule: usize,
    /// Children: one entry per body atom of the ground rule, in order.
    pub children: Vec<DerivationChild>,
}

/// A child of a derivation-tree node.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum DerivationChild {
    /// An edb leaf, labelled with the edb fact's provenance variable.
    Leaf(Fact, Variable),
    /// A sub-derivation of an idb fact.
    Tree(Box<DerivationTree>),
    /// A reference to an idb fact already known to have infinitely many
    /// derivations (the paper's `T∞` tuples may be used as rule inputs).
    InfiniteTuple(Fact),
}

impl DerivationTree {
    /// The fringe of the tree: the bag of edb leaf variables, as a monomial
    /// (`fringe(τ)` in the paper).
    pub fn fringe(&self) -> Monomial {
        let mut m = Monomial::unit();
        self.collect_fringe(&mut m);
        m
    }

    fn collect_fringe(&self, m: &mut Monomial) {
        for child in &self.children {
            match child {
                DerivationChild::Leaf(_, var) => m.multiply_var(var.clone(), 1),
                DerivationChild::Tree(t) => t.collect_fringe(m),
                DerivationChild::InfiniteTuple(_) => {}
            }
        }
    }

    /// Does the tree reference any `T∞` tuple?
    pub fn uses_infinite_tuple(&self) -> bool {
        self.children.iter().any(|c| match c {
            DerivationChild::InfiniteTuple(_) => true,
            DerivationChild::Tree(t) => t.uses_infinite_tuple(),
            DerivationChild::Leaf(_, _) => false,
        })
    }

    /// Does any proper descendant derive the same fact as the root?
    /// (The cyclicity test of Figure 8, line 6.)
    pub fn root_repeats_below(&self) -> bool {
        self.contains_fact_strictly_below(&self.root)
    }

    fn contains_fact_strictly_below(&self, fact: &Fact) -> bool {
        self.children.iter().any(|c| match c {
            DerivationChild::Leaf(_, _) => false,
            DerivationChild::InfiniteTuple(f) => f == fact,
            DerivationChild::Tree(t) => t.root == *fact || t.contains_fact_strictly_below(fact),
        })
    }

    /// The number of nodes (internal + leaves) of the tree.
    pub fn size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                DerivationChild::Leaf(_, _) | DerivationChild::InfiniteTuple(_) => 1,
                DerivationChild::Tree(t) => t.size(),
            })
            .sum::<usize>()
    }

    /// The depth of the tree (a single rule application above leaves has
    /// depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                DerivationChild::Leaf(_, _) | DerivationChild::InfiniteTuple(_) => 0,
                DerivationChild::Tree(t) => t.depth(),
            })
            .max()
            .unwrap_or(0)
    }
}

/// The provenance of one output fact as classified by All-Trees.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TreeProvenance {
    /// Finitely many derivation trees: the provenance is this polynomial in
    /// ℕ\[X\].
    Polynomial(ProvenancePolynomial),
    /// Infinitely many derivation trees (`P(t) = ∞` in Figure 8).
    Infinite,
}

impl TreeProvenance {
    /// The polynomial if finite.
    pub fn as_polynomial(&self) -> Option<&ProvenancePolynomial> {
        match self {
            TreeProvenance::Polynomial(p) => Some(p),
            TreeProvenance::Infinite => None,
        }
    }

    /// Is the provenance infinite?
    pub fn is_infinite(&self) -> bool {
        matches!(self, TreeProvenance::Infinite)
    }
}

/// The result of running All-Trees.
#[derive(Clone, Debug)]
pub struct AllTreesResult {
    /// Per-fact classification (`P(t)` of Figure 8).
    pub provenance: BTreeMap<Fact, TreeProvenance>,
    /// The derivation trees retained in `T`, grouped by root fact.
    pub trees: BTreeMap<Fact, Vec<DerivationTree>>,
    /// The tuples found to have infinitely many derivations (`T∞`).
    pub infinite: BTreeSet<Fact>,
    /// The provenance variable assigned to each edb fact.
    pub edb_variables: BTreeMap<Fact, Variable>,
    /// Number of outer iterations performed.
    pub iterations: usize,
}

/// Assigns a provenance variable to every edb fact (abstract tagging `R̄`):
/// `pred_i` in fact order. Callers who want the paper's literal names can
/// pass their own map to [`all_trees_with_variables`].
pub fn default_edb_variables<K: Semiring>(edb: &FactStore<K>) -> BTreeMap<Fact, Variable> {
    let mut vars = BTreeMap::new();
    let mut counters: BTreeMap<String, usize> = BTreeMap::new();
    for (fact, _) in edb.facts() {
        let i = counters.entry(fact.predicate.clone()).or_insert(0);
        vars.insert(fact.clone(), Variable::indexed(&fact.predicate, *i));
        *i += 1;
    }
    vars
}

/// Runs All-Trees (Figure 8) with automatically assigned edb variables.
pub fn all_trees<K: Semiring>(program: &Program, edb: &FactStore<K>) -> AllTreesResult {
    all_trees_with_variables(program, edb, default_edb_variables(edb))
}

/// Runs All-Trees (Figure 8) with the given edb-fact → variable tagging.
pub fn all_trees_with_variables<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
    edb_variables: BTreeMap<Fact, Variable>,
) -> AllTreesResult {
    run_tree_engine(program, edb, edb_variables, AdmissionPolicy::AllNewTrees)
}

/// Runs the Section 8 variant: a tree is admitted only if its fringe is not
/// divisible by the fringe of an already-admitted tree for the same fact
/// ("a derivation tree for a tuple is considered new only when its associated
/// monomial is smaller than any yet seen for that tuple"). Always returns a
/// polynomial for every fact.
pub fn minimal_trees<K: Semiring>(program: &Program, edb: &FactStore<K>) -> AllTreesResult {
    run_tree_engine(
        program,
        edb,
        default_edb_variables(edb),
        AdmissionPolicy::MinimalFringesOnly,
    )
}

/// Evaluates a datalog program over a finite distributive lattice K by the
/// Section 8 algorithm: run [`minimal_trees`], then evaluate every fact's
/// polynomial under the valuation mapping each edb variable to its K
/// annotation.
pub fn evaluate_lattice_via_trees<K: DistributiveLattice>(
    program: &Program,
    edb: &FactStore<K>,
) -> FactStore<K> {
    let result = minimal_trees(program, edb);
    let mut valuation: Valuation<K> = Valuation::new();
    for (fact, var) in &result.edb_variables {
        valuation.assign(var.clone(), edb.annotation(fact));
    }
    let mut out = FactStore::new();
    for (fact, prov) in &result.provenance {
        if let TreeProvenance::Polynomial(p) = prov {
            out.set(fact.clone(), p.eval(&valuation));
        }
    }
    out
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum AdmissionPolicy {
    /// Figure 8: admit every structurally new tree (and divert cyclic ones to
    /// `T∞`).
    AllNewTrees,
    /// Section 8: admit a tree only if no already-admitted tree for the same
    /// fact has a fringe dividing the new tree's fringe.
    MinimalFringesOnly,
}

fn run_tree_engine<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
    edb_variables: BTreeMap<Fact, Variable>,
    policy: AdmissionPolicy,
) -> AllTreesResult {
    let derivable = derivable_facts(program, edb);
    let ground: Vec<GroundRule> = instantiate_over(program, &derivable);
    let idb_predicates = program.idb_predicates();
    let is_idb = |p: &str| idb_predicates.contains(p);

    // T: admitted trees per root fact; T∞: facts with infinitely many trees.
    let mut trees: BTreeMap<Fact, Vec<DerivationTree>> = BTreeMap::new();
    let mut tree_set: BTreeSet<DerivationTree> = BTreeSet::new();
    let mut infinite: BTreeSet<Fact> = BTreeSet::new();
    let mut iterations = 0;

    loop {
        iterations += 1;
        let mut added_anything = false;

        // T_q^ν: trees produced by applying a rule to roots of T and to T∞
        // tuples, not already present, whose root is not already in T∞.
        let mut new_trees: Vec<DerivationTree> = Vec::new();
        for rule in &ground {
            if infinite.contains(&rule.head) {
                continue;
            }
            // Candidate children for each body atom.
            let mut child_options: Vec<Vec<DerivationChild>> = Vec::new();
            let mut possible = true;
            for body in &rule.body {
                if is_idb(&body.predicate) {
                    let mut options: Vec<DerivationChild> = trees
                        .get(body)
                        .into_iter()
                        .flatten()
                        .map(|t| DerivationChild::Tree(Box::new(t.clone())))
                        .collect();
                    if infinite.contains(body) {
                        options.push(DerivationChild::InfiniteTuple(body.clone()));
                    }
                    if options.is_empty() {
                        possible = false;
                        break;
                    }
                    child_options.push(options);
                } else {
                    match edb_variables.get(body) {
                        Some(var) => child_options
                            .push(vec![DerivationChild::Leaf(body.clone(), var.clone())]),
                        None => {
                            possible = false;
                            break;
                        }
                    }
                }
            }
            if !possible {
                continue;
            }
            // Cartesian product of child options.
            let mut combos: Vec<Vec<DerivationChild>> = vec![Vec::new()];
            for options in &child_options {
                let mut next = Vec::with_capacity(combos.len() * options.len());
                for combo in &combos {
                    for option in options {
                        let mut extended = combo.clone();
                        extended.push(option.clone());
                        next.push(extended);
                    }
                }
                combos = next;
            }
            for children in combos {
                let tree = DerivationTree {
                    root: rule.head.clone(),
                    rule: ground
                        .iter()
                        .position(|g| g == rule)
                        .expect("rule is in the instantiation"),
                    children,
                };
                if !tree_set.contains(&tree) {
                    new_trees.push(tree);
                }
            }
        }

        for tree in new_trees {
            if infinite.contains(&tree.root) || tree_set.contains(&tree) {
                continue;
            }
            // Figure 8, line 6: divert to T∞ if the tree uses a T∞ tuple or
            // repeats its root below itself.
            if policy == AdmissionPolicy::AllNewTrees
                && (tree.uses_infinite_tuple() || tree.root_repeats_below())
            {
                infinite.insert(tree.root.clone());
                // Trees previously collected for this fact are no longer
                // needed for the answer; keep them (harmless) but stop
                // producing more.
                added_anything = true;
                continue;
            }
            if policy == AdmissionPolicy::MinimalFringesOnly {
                // Skip trees that reference infinite tuples (none are created
                // under this policy) and trees whose fringe is divisible by an
                // existing tree's fringe for the same fact.
                if tree.uses_infinite_tuple() {
                    continue;
                }
                let fringe = tree.fringe();
                let dominated = trees
                    .get(&tree.root)
                    .map(|existing| existing.iter().any(|t| t.fringe().divides(&fringe)))
                    .unwrap_or(false);
                if dominated {
                    continue;
                }
            }
            tree_set.insert(tree.clone());
            trees.entry(tree.root.clone()).or_default().push(tree);
            added_anything = true;
        }

        if !added_anything {
            break;
        }
        // Safety valve: the engine is intended for instances whose tree count
        // is manageable; stop if an unreasonable number of iterations passes.
        if iterations > 10_000 {
            break;
        }
    }

    // P(t): ∞ for T∞ tuples, otherwise the sum over trees of their fringes.
    let mut provenance = BTreeMap::new();
    for fact in derivable.iter().filter(|f| is_idb(&f.predicate)) {
        if infinite.contains(fact) {
            provenance.insert(fact.clone(), TreeProvenance::Infinite);
        } else if let Some(fact_trees) = trees.get(fact) {
            let poly = ProvenancePolynomial::from_terms(
                fact_trees.iter().map(|t| (t.fringe(), Natural::from(1u64))),
            );
            provenance.insert(fact.clone(), TreeProvenance::Polynomial(poly));
        }
    }

    AllTreesResult {
        provenance,
        trees,
        infinite,
        edb_variables,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::edge_facts;
    use provsem_semiring::{NatInf, PosBool};

    fn figure7_edb() -> FactStore<NatInf> {
        edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(2)),
                ("a", "c", NatInf::Fin(3)),
                ("c", "b", NatInf::Fin(2)),
                ("b", "d", NatInf::Fin(1)),
                ("d", "d", NatInf::Fin(1)),
            ],
        )
    }

    fn figure7_variables() -> BTreeMap<Fact, Variable> {
        [
            (Fact::new("R", ["a", "b"]), Variable::new("m")),
            (Fact::new("R", ["a", "c"]), Variable::new("n")),
            (Fact::new("R", ["c", "b"]), Variable::new("p")),
            (Fact::new("R", ["b", "d"]), Variable::new("r")),
            (Fact::new("R", ["d", "d"]), Variable::new("s")),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn all_trees_classifies_figure7() {
        let program = Program::transitive_closure("R", "Q");
        let result = all_trees_with_variables(&program, &figure7_edb(), figure7_variables());
        // x = m + np (finite polynomial), y = n, z = p; u, v, w infinite.
        let get = |a: &str, b: &str| result.provenance.get(&Fact::new("Q", [a, b])).unwrap();
        let m = ProvenancePolynomial::var("m");
        let n = ProvenancePolynomial::var("n");
        let p = ProvenancePolynomial::var("p");
        assert_eq!(
            get("a", "b").as_polynomial().unwrap(),
            &m.plus(&n.times(&p))
        );
        assert_eq!(get("a", "c").as_polynomial().unwrap(), &n);
        assert_eq!(get("c", "b").as_polynomial().unwrap(), &p);
        assert!(get("b", "d").is_infinite());
        assert!(get("d", "d").is_infinite());
        assert!(get("a", "d").is_infinite());
    }

    #[test]
    fn all_trees_on_acyclic_instance_counts_all_derivations() {
        // Diamond graph under the quadratic TC program: Q(a,d) has exactly
        // two derivation trees (through b and through c).
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(1)),
                ("a", "c", NatInf::Fin(1)),
                ("b", "d", NatInf::Fin(1)),
                ("c", "d", NatInf::Fin(1)),
            ],
        );
        let result = all_trees(&program, &edb);
        let ad = result
            .provenance
            .get(&Fact::new("Q", ["a", "d"]))
            .unwrap()
            .as_polynomial()
            .unwrap()
            .clone();
        assert_eq!(ad.num_terms(), 2);
        // Evaluating every variable at 1 counts derivation trees.
        let mut v: Valuation<Natural> = Valuation::new();
        for var in result.edb_variables.values() {
            v.assign(var.clone(), Natural::from(1u64));
        }
        assert_eq!(ad.eval(&v), Natural::from(2u64));
        assert_eq!(
            result.trees.get(&Fact::new("Q", ["a", "d"])).unwrap().len(),
            2
        );
    }

    #[test]
    fn all_trees_agrees_with_exact_bag_evaluation_when_finite() {
        // Theorem 6.4 instance check: evaluating the All-Trees polynomials at
        // the edb multiplicities reproduces the exact ℕ∞ answer on the finite
        // part.
        let program = Program::transitive_closure("R", "Q");
        let edb = figure7_edb();
        let result = all_trees_with_variables(&program, &edb, figure7_variables());
        let exact = crate::exact::evaluate_natinf(&program, &edb);
        let valuation = Valuation::from_pairs([
            ("m", NatInf::Fin(2)),
            ("n", NatInf::Fin(3)),
            ("p", NatInf::Fin(2)),
            ("r", NatInf::Fin(1)),
            ("s", NatInf::Fin(1)),
        ]);
        for (fact, prov) in &result.provenance {
            match prov {
                TreeProvenance::Polynomial(p) => {
                    let value = p.evaluate_with(&valuation, |c| NatInf::Fin(c.value()));
                    assert_eq!(value, exact.annotation(fact), "{fact}");
                }
                TreeProvenance::Infinite => {
                    assert_eq!(exact.annotation(fact), NatInf::Inf, "{fact}");
                }
            }
        }
    }

    #[test]
    fn derivation_tree_statistics() {
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(1)),
                ("b", "c", NatInf::Fin(1)),
                ("c", "d", NatInf::Fin(1)),
            ],
        );
        let result = all_trees(&program, &edb);
        let ad_trees = result.trees.get(&Fact::new("Q", ["a", "d"])).unwrap();
        // a→d over a 3-edge chain under the quadratic program: two
        // association orders, (ab·bc)·cd and ab·(bc·cd).
        assert_eq!(ad_trees.len(), 2);
        for t in ad_trees {
            assert_eq!(t.fringe().degree(), 3);
            assert!(t.depth() >= 2);
            assert!(t.size() >= 5);
            assert!(!t.root_repeats_below());
        }
    }

    #[test]
    fn minimal_trees_terminates_on_cyclic_instances() {
        // a→b, b→a: Figure 8 would classify everything as ∞; the Section 8
        // policy returns a finite polynomial for every fact.
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", PosBool::var("e1")),
                ("b", "a", PosBool::var("e2")),
            ],
        );
        let result = minimal_trees(&program, &edb);
        assert!(result.infinite.is_empty());
        for (fact, prov) in &result.provenance {
            assert!(prov.as_polynomial().is_some(), "{fact} should be finite");
        }
    }

    #[test]
    fn lattice_evaluation_via_trees_matches_fixpoint_evaluation() {
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", PosBool::var("e1")),
                ("b", "a", PosBool::var("e2")),
                ("b", "c", PosBool::var("e3")),
            ],
        );
        let via_trees = evaluate_lattice_via_trees(&program, &edb);
        let via_fixpoint = crate::exact::evaluate_lattice(&program, &edb, 64).unwrap();
        for (fact, ann) in via_fixpoint.facts() {
            assert_eq!(via_trees.annotation(&fact), *ann, "{fact}");
        }
        assert_eq!(via_trees.len(), via_fixpoint.len());
    }
}

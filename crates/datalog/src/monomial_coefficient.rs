//! The **Monomial-Coefficient** algorithm (Figure 9 of the paper): computing
//! the coefficient of a given monomial µ in the provenance power series
//! `q(I)(t) ∈ ℕ∞\[\[X\]\]`, even when that coefficient is ∞.
//!
//! The coefficient of µ in `q(I)(t)` is the number of derivation trees of `t`
//! whose fringe is exactly µ. We compute it by a least-fixpoint iteration of
//! the counting equations over the finite set of pairs `(fact, ν)` with
//! `ν | µ` — the same search space Figure 9 explores tree-by-tree — and
//! detect ∞ exactly as the paper does: coefficients are ∞ exactly for pairs
//! whose derivations can go through a cycle of unit ground rules (fringe
//! unchanged along the cycle), which manifests as the iteration not
//! stabilizing within the structural bound.

use crate::ast::Program;
use crate::fact::{Fact, FactStore};
use crate::grounding::{derivable_facts, instantiate_over, GroundRule};
use provsem_semiring::{Monomial, NatInf, Semiring, Variable};
use std::collections::BTreeMap;

/// Computes the coefficient of `monomial` in the provenance series of `fact`
/// for the program over the abstractly-tagged edb (`edb_variables` maps each
/// edb fact to its provenance variable).
///
/// Returns `NatInf::Fin(0)` when the fact is not derivable with that exact
/// fringe and `NatInf::Inf` when infinitely many derivation trees have that
/// fringe (which requires a cycle of unit rules, Theorem 6.5).
pub fn monomial_coefficient<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
    edb_variables: &BTreeMap<Fact, Variable>,
    fact: &Fact,
    monomial: &Monomial,
) -> NatInf {
    let derivable = derivable_facts(program, edb);
    let ground: Vec<GroundRule> = instantiate_over(program, &derivable);
    let idb_predicates = program.idb_predicates();
    let is_idb = |p: &str| idb_predicates.contains(p);

    // Enumerate the candidate sub-monomials: all divisors of µ.
    let divisors = divisors_of(monomial);

    // counts[(fact, ν)] = number of derivation trees of `fact` with fringe ν,
    // as computed so far (monotone non-decreasing across iterations).
    let mut counts: BTreeMap<(Fact, Monomial), NatInf> = BTreeMap::new();
    let idb_facts: Vec<Fact> = derivable
        .iter()
        .filter(|f| is_idb(&f.predicate))
        .cloned()
        .collect();

    // Structural bound: with F idb facts and D divisors, any derivation tree
    // whose count is *finite* has depth ≤ F·D — a deeper tree repeats a
    // `(fact, remaining-fringe)` pair along a path, and pumping that cycle
    // produces infinitely many trees with the same fringe. One Kleene
    // iteration of the counting equations extends coverage by one tree-depth
    // level, so after `bound` iterations every finite entry has stabilized.
    // Entries still growing between iteration `bound` and iteration
    // `2·bound` are exactly the infinite ones (their tree depths are
    // unbounded with period at most `bound`).
    let bound = idb_facts.len() * divisors.len() + 2;

    let step = |counts: &BTreeMap<(Fact, Monomial), NatInf>| {
        let mut next: BTreeMap<(Fact, Monomial), NatInf> = BTreeMap::new();
        for f in &idb_facts {
            for nu in &divisors {
                let mut total = NatInf::Fin(0);
                for rule in ground.iter().filter(|r| &r.head == f) {
                    total = total.plus(&count_rule_ways(rule, nu, edb_variables, counts, &is_idb));
                }
                if !total.is_zero() {
                    next.insert((f.clone(), nu.clone()), total);
                }
            }
        }
        next
    };

    for _ in 0..bound {
        let next = step(&counts);
        if next == counts {
            // Global fixed point: every coefficient is finite and exact.
            let value = counts
                .get(&(fact.clone(), monomial.clone()))
                .copied()
                .unwrap_or(NatInf::Fin(0));
            return value;
        }
        counts = next;
    }
    let snapshot = counts.clone();
    for _ in 0..bound {
        let next = step(&counts);
        if next == counts {
            break;
        }
        counts = next;
    }

    let key = (fact.clone(), monomial.clone());
    let early = snapshot.get(&key).copied().unwrap_or(NatInf::Fin(0));
    let late = counts.get(&key).copied().unwrap_or(NatInf::Fin(0));
    if early != late || late.is_infinite() {
        NatInf::Inf
    } else {
        late
    }
}

/// Number of ways to instantiate one ground rule so that the tree fringe is
/// exactly `target`: distribute `target` among the body atoms, edb atoms
/// consuming exactly their own variable and idb atoms consuming a divisor
/// with the corresponding (already computed) tree count.
fn count_rule_ways(
    rule: &GroundRule,
    target: &Monomial,
    edb_variables: &BTreeMap<Fact, Variable>,
    counts: &BTreeMap<(Fact, Monomial), NatInf>,
    is_idb: &dyn Fn(&str) -> bool,
) -> NatInf {
    fn go(
        body: &[Fact],
        remaining: &Monomial,
        edb_variables: &BTreeMap<Fact, Variable>,
        counts: &BTreeMap<(Fact, Monomial), NatInf>,
        is_idb: &dyn Fn(&str) -> bool,
    ) -> NatInf {
        match body.split_first() {
            None => {
                if remaining.is_unit() {
                    NatInf::Fin(1)
                } else {
                    NatInf::Fin(0)
                }
            }
            Some((first, rest)) => {
                if is_idb(&first.predicate) {
                    // Try every divisor ν of the remaining monomial.
                    let mut total = NatInf::Fin(0);
                    for nu in divisors_of(remaining) {
                        let sub = counts
                            .get(&(first.clone(), nu.clone()))
                            .copied()
                            .unwrap_or(NatInf::Fin(0));
                        if sub.is_zero() {
                            continue;
                        }
                        let rest_monomial = nu
                            .quotient(remaining)
                            .expect("divisor must divide the remaining monomial");
                        let rest_ways = go(rest, &rest_monomial, edb_variables, counts, is_idb);
                        total = total.plus(&sub.times(&rest_ways));
                    }
                    total
                } else {
                    // Edb leaf: consumes exactly its own variable.
                    match edb_variables.get(first) {
                        Some(var) => {
                            let leaf = Monomial::var(var.clone());
                            match leaf.quotient(remaining) {
                                Some(rest_monomial) => {
                                    go(rest, &rest_monomial, edb_variables, counts, is_idb)
                                }
                                None => NatInf::Fin(0),
                            }
                        }
                        None => NatInf::Fin(0),
                    }
                }
            }
        }
    }
    go(&rule.body, target, edb_variables, counts, is_idb)
}

/// All divisors of a monomial (every exponent independently between 0 and its
/// value).
fn divisors_of(monomial: &Monomial) -> Vec<Monomial> {
    let powers: Vec<(Variable, u32)> = monomial.powers().map(|(v, e)| (v.clone(), e)).collect();
    let mut result = vec![Monomial::unit()];
    for (var, max_exp) in powers {
        let mut next = Vec::with_capacity(result.len() * (max_exp as usize + 1));
        for existing in &result {
            for e in 0..=max_exp {
                let mut m = existing.clone();
                m.multiply_var(var.clone(), e);
                next.push(m);
            }
        }
        result = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::edge_facts;
    use std::collections::BTreeMap;

    fn figure7_setup() -> (Program, FactStore<NatInf>, BTreeMap<Fact, Variable>) {
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(2)),
                ("a", "c", NatInf::Fin(3)),
                ("c", "b", NatInf::Fin(2)),
                ("b", "d", NatInf::Fin(1)),
                ("d", "d", NatInf::Fin(1)),
            ],
        );
        let vars: BTreeMap<Fact, Variable> = [
            (Fact::new("R", ["a", "b"]), Variable::new("m")),
            (Fact::new("R", ["a", "c"]), Variable::new("n")),
            (Fact::new("R", ["c", "b"]), Variable::new("p")),
            (Fact::new("R", ["b", "d"]), Variable::new("r")),
            (Fact::new("R", ["d", "d"]), Variable::new("s")),
        ]
        .into_iter()
        .collect();
        (program, edb, vars)
    }

    #[test]
    fn paper_example_coefficients_of_w() {
        // Section 6 claims "the coefficient of rnps³ in the provenance w of
        // Q(a,d) is 5". Under the full derivation-tree semantics the
        // coefficient of a fringe with k+3 edge leaves is the Catalan number
        // C_{k+2} (every parenthesization of the path a→c→b→d→…→d is a
        // distinct derivation tree), so the coefficients of rnp·s⁰, rnps,
        // rnps², rnps³ are 2, 5, 14, 42. The paper's value 5 corresponds to
        // using R(d,d) once (rnps¹); see EXPERIMENTS.md for the discussion
        // (the paper's Figure 7 also omits the derivable tuple Q(c,d)).
        let (program, edb, vars) = figure7_setup();
        let w = Fact::new("Q", ["a", "d"]);
        let coeff = |s_exp: u32| {
            let mu = Monomial::from_powers([("r", 1u32), ("n", 1), ("p", 1), ("s", s_exp)]);
            monomial_coefficient(&program, &edb, &vars, &w, &mu)
        };
        assert_eq!(coeff(0), NatInf::Fin(2));
        assert_eq!(coeff(1), NatInf::Fin(5)); // the paper's "5"
        assert_eq!(coeff(2), NatInf::Fin(14));
        assert_eq!(coeff(3), NatInf::Fin(42));
    }

    #[test]
    fn catalan_coefficients_of_v() {
        // v = Q(d,d) solves v = s + v²: coefficients of s, s², s³, s⁴, s⁵ are
        // 1, 1, 2, 5, 14 (footnote 6 of the paper).
        let (program, edb, vars) = figure7_setup();
        let expected = [1u64, 1, 2, 5, 14];
        for (i, count) in expected.iter().enumerate() {
            let mu = Monomial::from_powers([("s", (i + 1) as u32)]);
            let c = monomial_coefficient(&program, &edb, &vars, &Fact::new("Q", ["d", "d"]), &mu);
            assert_eq!(c, NatInf::Fin(*count), "coefficient of s^{}", i + 1);
        }
    }

    #[test]
    fn coefficients_of_x_match_its_polynomial() {
        // x = Q(a,b) = m + np: coefficient of m is 1, of np is 1, of m² is 0.
        let (program, edb, vars) = figure7_setup();
        let q_ab = Fact::new("Q", ["a", "b"]);
        assert_eq!(
            monomial_coefficient(&program, &edb, &vars, &q_ab, &Monomial::var("m")),
            NatInf::Fin(1)
        );
        assert_eq!(
            monomial_coefficient(
                &program,
                &edb,
                &vars,
                &q_ab,
                &Monomial::from_bag(["n", "p"])
            ),
            NatInf::Fin(1)
        );
        assert_eq!(
            monomial_coefficient(
                &program,
                &edb,
                &vars,
                &q_ab,
                &Monomial::from_powers([("m", 2u32)])
            ),
            NatInf::Fin(0)
        );
    }

    #[test]
    fn unit_rule_cycle_gives_infinite_coefficient() {
        // P(x) :- E(x).  P(x) :- P(x).  — the unit-rule self-loop gives every
        // monomial of P('a') infinitely many derivation trees (Theorem 6.5).
        let program = crate::parser::parse_program("P(x) :- E(x).\nP(x) :- P(x).").unwrap();
        let edb = {
            let mut s: FactStore<NatInf> = FactStore::new();
            s.insert(Fact::new("E", ["a"]), NatInf::Fin(1));
            s
        };
        let vars: BTreeMap<Fact, Variable> = [(Fact::new("E", ["a"]), Variable::new("e"))]
            .into_iter()
            .collect();
        let c = monomial_coefficient(
            &program,
            &edb,
            &vars,
            &Fact::new("P", ["a"]),
            &Monomial::var("e"),
        );
        assert_eq!(c, NatInf::Inf);
    }

    #[test]
    fn underivable_fringe_has_coefficient_zero() {
        let (program, edb, vars) = figure7_setup();
        // Q(a,c) cannot be derived using r at all.
        let c = monomial_coefficient(
            &program,
            &edb,
            &vars,
            &Fact::new("Q", ["a", "c"]),
            &Monomial::var("r"),
        );
        assert_eq!(c, NatInf::Fin(0));
    }

    #[test]
    fn divisor_enumeration_counts() {
        let m = Monomial::from_powers([("x", 2u32), ("y", 1)]);
        // (2+1)·(1+1) = 6 divisors.
        assert_eq!(divisors_of(&m).len(), 6);
        assert_eq!(divisors_of(&Monomial::unit()).len(), 1);
    }
}

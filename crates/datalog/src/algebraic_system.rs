//! Algebraic systems of fixpoint equations (Definition 5.5 of the paper) and
//! their solutions.
//!
//! Given a datalog program `q` and an edb K-relation `R`, the paper builds a
//! finite system `Q̄ = T_q(R, Q̄)`: one variable per derivable idb tuple, one
//! polynomial equation per variable (Figure 7(f) shows the system for the
//! transitive-closure example: `x = m + yz`, `u = r + uv`, `v = s + v²`,
//! `w = xu + wv`, …). Theorem 5.6: the least solution of the system equals
//! the derivation-tree semantics.
//!
//! Two solvers are provided:
//!
//! * [`AlgebraicSystem::solve_numeric`] — Kleene iteration over any
//!   ω-continuous semiring valuation of the edb variables (exactly
//!   Definition 5.5's `lfp(f_P) = sup f_P^m(0)`), with a convergence bound;
//! * [`AlgebraicSystem::solve_series`] — least solution as truncated formal
//!   power series in the edb variables (the datalog provenance of
//!   Definition 6.1), which is how the paper obtains
//!   `v = s + s² + 2s³ + 5s⁴ + 14s⁵ + ⋯` and `w`'s coefficients.

use crate::ast::Program;
use crate::fact::{Fact, FactStore};
use crate::grounding::{derivable_facts, instantiate_over, GroundRule};
use provsem_semiring::{
    Monomial, NatInf, Natural, OmegaContinuous, ProvenancePolynomial, Semiring, TruncatedSeries,
    Valuation, Variable,
};
use std::collections::BTreeMap;

/// One equation `variable = polynomial` of an algebraic system. The
/// polynomial's variables mix *system variables* (idb tuple ids) and *edb
/// variables* (provenance ids of edb facts); coefficients are natural
/// numbers (counting ground rules that yield the same monomial).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Equation {
    /// The idb fact this variable stands for.
    pub fact: Fact,
    /// The variable naming that fact.
    pub variable: Variable,
    /// The right-hand side polynomial.
    pub rhs: ProvenancePolynomial,
}

/// An algebraic system over the idb facts of a program instantiation.
#[derive(Clone, Debug, Default)]
pub struct AlgebraicSystem {
    /// The equations, one per derivable idb fact (in fact order).
    pub equations: Vec<Equation>,
    /// The provenance variable of every edb fact.
    pub edb_variables: BTreeMap<Fact, Variable>,
}

impl AlgebraicSystem {
    /// Builds the system `Q̄ = T_q(R, Q̄)` for a program and edb instance,
    /// with explicit variable names for idb facts and edb facts.
    pub fn build<K: Semiring>(
        program: &Program,
        edb: &FactStore<K>,
        idb_names: &dyn Fn(&Fact) -> Variable,
        edb_names: &dyn Fn(&Fact) -> Variable,
    ) -> Self {
        let derivable = derivable_facts(program, edb);
        let ground: Vec<GroundRule> = instantiate_over(program, &derivable);
        let idb_predicates = program.idb_predicates();
        let is_idb = |p: &str| idb_predicates.contains(p);

        let mut edb_variables = BTreeMap::new();
        for (fact, _) in edb.facts() {
            edb_variables.insert(fact.clone(), edb_names(&fact));
        }

        let idb_facts: Vec<Fact> = derivable
            .iter()
            .filter(|f| is_idb(&f.predicate))
            .cloned()
            .collect();
        let idb_vars: BTreeMap<Fact, Variable> = idb_facts
            .iter()
            .map(|f| (f.clone(), idb_names(f)))
            .collect();

        let mut equations = Vec::new();
        for fact in &idb_facts {
            let mut rhs = ProvenancePolynomial::zero();
            for rule in ground.iter().filter(|r| &r.head == fact) {
                let mut monomial = Monomial::unit();
                for body in &rule.body {
                    let var = if is_idb(&body.predicate) {
                        idb_vars
                            .get(body)
                            .expect("idb body fact must be derivable")
                            .clone()
                    } else {
                        edb_variables
                            .get(body)
                            .expect("edb body fact must be in the instance")
                            .clone()
                    };
                    monomial.multiply_var(var, 1);
                }
                rhs = rhs.plus(&ProvenancePolynomial::from_term(
                    monomial,
                    Natural::from(1u64),
                ));
            }
            equations.push(Equation {
                fact: fact.clone(),
                variable: idb_vars[fact].clone(),
                rhs,
            });
        }
        AlgebraicSystem {
            equations,
            edb_variables,
        }
    }

    /// Builds the system with default variable names: idb fact ids are
    /// `pred(v1,v2)`-style strings, edb variables are `pred_i`.
    pub fn build_default<K: Semiring>(program: &Program, edb: &FactStore<K>) -> Self {
        let edb_vars = crate::all_trees::default_edb_variables(edb);
        AlgebraicSystem::build(
            program,
            edb,
            &|f: &Fact| Variable::new(format!("{f}")),
            &|f: &Fact| {
                edb_vars
                    .get(f)
                    .cloned()
                    .unwrap_or_else(|| Variable::new(format!("{f}")))
            },
        )
    }

    /// The equation for a given fact, if any.
    pub fn equation_for(&self, fact: &Fact) -> Option<&Equation> {
        self.equations.iter().find(|e| &e.fact == fact)
    }

    /// The number of variables (equations).
    pub fn len(&self) -> usize {
        self.equations.len()
    }

    /// Is the system empty?
    pub fn is_empty(&self) -> bool {
        self.equations.is_empty()
    }

    /// Solves the system over an ω-continuous semiring by Kleene iteration
    /// from 0 (Definition 5.5), given a valuation of the **edb** variables.
    /// Returns the per-fact solution if the iteration converges within
    /// `max_iterations`, `None` otherwise (e.g. ℕ∞ instances with infinite
    /// multiplicities — use [`crate::exact::evaluate_natinf`] for those).
    pub fn solve_numeric<K: OmegaContinuous>(
        &self,
        edb_valuation: &Valuation<K>,
        max_iterations: usize,
    ) -> Option<BTreeMap<Fact, K>> {
        let mut current: BTreeMap<Variable, K> = self
            .equations
            .iter()
            .map(|e| (e.variable.clone(), K::zero()))
            .collect();
        for _ in 0..max_iterations {
            let mut valuation: Valuation<K> = edb_valuation.clone();
            for (var, value) in &current {
                valuation.assign(var.clone(), value.clone());
            }
            let mut next = BTreeMap::new();
            for eq in &self.equations {
                next.insert(eq.variable.clone(), eq.rhs.eval(&valuation));
            }
            if next == current {
                return Some(
                    self.equations
                        .iter()
                        .map(|e| (e.fact.clone(), current[&e.variable].clone()))
                        .collect(),
                );
            }
            current = next;
        }
        None
    }

    /// Solves the system as truncated formal power series in the edb
    /// variables (the datalog provenance semantics of Section 6), truncating
    /// all series at total degree `max_degree`.
    ///
    /// Coefficients of monomials up to the truncation degree are exact for
    /// instances where they are finite; monomials whose coefficient is ∞ in
    /// ℕ∞\[\[X\]\] keep growing with the iteration count, so this solver is
    /// paired with [`crate::exact::facts_with_infinitely_many_derivations`]
    /// and Theorem 6.5's classification when ∞ matters. The iteration count
    /// is `max_degree + extra_iterations`, enough for all coefficients of
    /// degree ≤ `max_degree` generated by proper (non-unit-cycle) systems.
    pub fn solve_series(
        &self,
        max_degree: u32,
        extra_iterations: usize,
    ) -> BTreeMap<Fact, TruncatedSeries> {
        let mut current: BTreeMap<Variable, TruncatedSeries> = self
            .equations
            .iter()
            .map(|e| (e.variable.clone(), TruncatedSeries::zero(max_degree)))
            .collect();
        let rounds = max_degree as usize + extra_iterations + 1;
        for _ in 0..rounds {
            let mut next = BTreeMap::new();
            for eq in &self.equations {
                next.insert(
                    eq.variable.clone(),
                    evaluate_polynomial_as_series(&eq.rhs, &current, max_degree),
                );
            }
            if next == current {
                break;
            }
            current = next;
        }
        self.equations
            .iter()
            .map(|e| (e.fact.clone(), current[&e.variable].clone()))
            .collect()
    }

    /// Renders the system in the paper's `x = P(x, …)` notation.
    pub fn display(&self) -> String {
        let mut out = String::new();
        for eq in &self.equations {
            out.push_str(&format!("{} = {}\n", eq.variable, eq.rhs));
        }
        out
    }
}

/// Evaluates a polynomial whose variables are a mix of system variables
/// (substituted by their current series) and edb variables (kept symbolic as
/// degree-1 series), producing a truncated series.
fn evaluate_polynomial_as_series(
    poly: &ProvenancePolynomial,
    assignment: &BTreeMap<Variable, TruncatedSeries>,
    max_degree: u32,
) -> TruncatedSeries {
    let mut acc = TruncatedSeries::zero(max_degree);
    for (monomial, coeff) in poly.terms() {
        let mut term = TruncatedSeries::zero(max_degree);
        term.add_term(Monomial::unit(), NatInf::Fin(coeff.value()));
        for (var, exp) in monomial.powers() {
            let factor = match assignment.get(var) {
                Some(series) => series.clone(),
                None => TruncatedSeries::var(var.clone(), max_degree),
            };
            for _ in 0..exp {
                term = term.times(&factor);
            }
        }
        acc = acc.plus(&term);
    }
    acc
}

/// Convenience: a [`ProvenancePolynomial`] restricted to the edb variables obtained by
/// substituting the solved series of the *other* idb variables — not needed
/// for the paper's experiments but handy for inspecting small systems.
pub fn substitute_solution(
    equation: &Equation,
    solution: &BTreeMap<Fact, TruncatedSeries>,
    system: &AlgebraicSystem,
    max_degree: u32,
) -> TruncatedSeries {
    let assignment: BTreeMap<Variable, TruncatedSeries> = system
        .equations
        .iter()
        .filter_map(|e| {
            solution
                .get(&e.fact)
                .map(|s| (e.variable.clone(), s.clone()))
        })
        .collect();
    evaluate_polynomial_as_series(&equation.rhs, &assignment, max_degree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::edge_facts;
    use provsem_semiring::{PosBool, Semiring};

    fn figure7_edb() -> FactStore<NatInf> {
        edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(2)),
                ("a", "c", NatInf::Fin(3)),
                ("c", "b", NatInf::Fin(2)),
                ("b", "d", NatInf::Fin(1)),
                ("d", "d", NatInf::Fin(1)),
            ],
        )
    }

    /// The paper's variable names for Figure 7: idb tuples x,y,z,u,v,w and
    /// edb tuples m,n,p,r,s. The tuple Q(c,d) is derivable but omitted from
    /// the paper's figure; we name it t.
    fn figure7_system() -> AlgebraicSystem {
        let idb_names = |f: &Fact| {
            let key = (
                f.values[0].as_str().unwrap().to_string(),
                f.values[1].as_str().unwrap().to_string(),
            );
            let name = match (key.0.as_str(), key.1.as_str()) {
                ("a", "b") => "x",
                ("a", "c") => "y",
                ("c", "b") => "z",
                ("b", "d") => "u",
                ("d", "d") => "v",
                ("a", "d") => "w",
                ("c", "d") => "t",
                other => panic!("unexpected idb fact {other:?}"),
            };
            Variable::new(name)
        };
        let edb_names = |f: &Fact| {
            let name = match (f.values[0].as_str().unwrap(), f.values[1].as_str().unwrap()) {
                ("a", "b") => "m",
                ("a", "c") => "n",
                ("c", "b") => "p",
                ("b", "d") => "r",
                ("d", "d") => "s",
                other => panic!("unexpected edb fact {other:?}"),
            };
            Variable::new(name)
        };
        AlgebraicSystem::build(
            &Program::transitive_closure("R", "Q"),
            &figure7_edb(),
            &idb_names,
            &edb_names,
        )
    }

    fn var_poly(name: &str) -> ProvenancePolynomial {
        ProvenancePolynomial::var(name)
    }

    #[test]
    fn figure7f_equations_match_the_paper() {
        // Figure 7(f) lists x = m + yz, y = n, z = p, u = r + uv, v = s + v²,
        // w = xu + wv. The instantiation additionally contains the derivable
        // tuple Q(c,d) (named t here), which the paper's figure omits; its
        // presence adds the equation t = zu + tv and the extra summand yt to
        // w's equation. Everything the paper does list is reproduced exactly.
        let system = figure7_system();
        assert_eq!(system.len(), 7);
        let eq = |a: &str, b: &str| {
            system
                .equation_for(&Fact::new("Q", [a, b]))
                .unwrap()
                .rhs
                .clone()
        };
        assert_eq!(
            eq("a", "b"),
            var_poly("m").plus(&var_poly("y").times(&var_poly("z")))
        );
        assert_eq!(eq("a", "c"), var_poly("n"));
        assert_eq!(eq("c", "b"), var_poly("p"));
        assert_eq!(
            eq("b", "d"),
            var_poly("r").plus(&var_poly("u").times(&var_poly("v")))
        );
        assert_eq!(
            eq("d", "d"),
            var_poly("s").plus(&var_poly("v").times(&var_poly("v")))
        );
        assert_eq!(
            eq("a", "d"),
            var_poly("x")
                .times(&var_poly("u"))
                .plus(&var_poly("w").times(&var_poly("v")))
                .plus(&var_poly("y").times(&var_poly("t")))
        );
        assert_eq!(
            eq("c", "d"),
            var_poly("z")
                .times(&var_poly("u"))
                .plus(&var_poly("t").times(&var_poly("v")))
        );
    }

    #[test]
    fn numeric_solution_over_posbool_converges() {
        // Evaluating the Figure 7 system over PosBool: every tuple gets a
        // finite positive boolean expression; e.g. the annotation of Q(a,b)
        // is m ∨ (n ∧ p).
        let system = figure7_system();
        let valuation = Valuation::from_pairs([
            ("m", PosBool::var("m")),
            ("n", PosBool::var("n")),
            ("p", PosBool::var("p")),
            ("r", PosBool::var("r")),
            ("s", PosBool::var("s")),
        ]);
        let solution = system.solve_numeric(&valuation, 64).unwrap();
        assert_eq!(
            solution[&Fact::new("Q", ["a", "b"])],
            PosBool::var("m").plus(&PosBool::var("n").times(&PosBool::var("p")))
        );
        assert_eq!(solution[&Fact::new("Q", ["d", "d"])], PosBool::var("s"));
        // w = xu + wv evaluates to (m ∨ np) ∧ r ∨ … = (m∨np) ∧ r under
        // absorption with s.
        assert_eq!(
            solution[&Fact::new("Q", ["a", "d"])],
            PosBool::var("m")
                .plus(&PosBool::var("n").times(&PosBool::var("p")))
                .times(&PosBool::var("r"))
        );
    }

    #[test]
    fn numeric_solution_over_natinf_saturates_to_the_exact_answer() {
        // Over ℕ∞ the entries u, v, w of the Kleene iteration grow without
        // bound (exactly as the paper describes); because our ℕ∞ saturates
        // overflowing values at ∞ (the least upper bound of the diverging
        // chain), the iteration does reach the true least fixed point:
        // x = 8, y = 3, z = 2 and ∞ for the tuples that pass through the
        // d→d cycle. Cross-check against the analytic exact evaluation.
        let system = figure7_system();
        let valuation = Valuation::from_pairs([
            ("m", NatInf::Fin(2)),
            ("n", NatInf::Fin(3)),
            ("p", NatInf::Fin(2)),
            ("r", NatInf::Fin(1)),
            ("s", NatInf::Fin(1)),
        ]);
        let solution = system
            .solve_numeric(&valuation, 500)
            .expect("saturating ℕ∞ iteration reaches the fixed point");
        let exact =
            crate::exact::evaluate_natinf(&Program::transitive_closure("R", "Q"), &figure7_edb());
        for (fact, value) in &solution {
            assert_eq!(exact.annotation(fact), *value, "{fact}");
        }
        // A tighter bound (fewer iterations than needed to saturate) reports
        // non-convergence instead of returning a wrong finite answer.
        assert_eq!(system.solve_numeric(&valuation, 3), None);
    }

    #[test]
    fn series_solution_reproduces_the_papers_provenance() {
        let system = figure7_system();
        let solution = system.solve_series(6, 8);
        // v = s + s² + 2s³ + 5s⁴ + 14s⁵ + ⋯ (footnote 6).
        let v = &solution[&Fact::new("Q", ["d", "d"])];
        for (deg, coeff) in [(1u32, 1u64), (2, 1), (3, 2), (4, 5), (5, 14), (6, 42)] {
            assert_eq!(
                v.coefficient(&Monomial::from_powers([("s", deg)])),
                Some(NatInf::Fin(coeff)),
                "coefficient of s^{deg} in v"
            );
        }
        // x = m + np exactly (a polynomial).
        let x = &solution[&Fact::new("Q", ["a", "b"])];
        assert_eq!(x.coefficient(&Monomial::var("m")), Some(NatInf::Fin(1)));
        assert_eq!(
            x.coefficient(&Monomial::from_bag(["n", "p"])),
            Some(NatInf::Fin(1))
        );
        assert_eq!(
            x.coefficient(&Monomial::from_powers([("m", 2u32)])),
            Some(NatInf::Fin(0))
        );
        // u = rv*: coefficient of r is 1, of rs is 1, of rs² is 2 (Catalan
        // shifted), of r² is 0.
        let u = &solution[&Fact::new("Q", ["b", "d"])];
        assert_eq!(u.coefficient(&Monomial::var("r")), Some(NatInf::Fin(1)));
        assert_eq!(
            u.coefficient(&Monomial::from_bag(["r", "s"])),
            Some(NatInf::Fin(1))
        );
        assert_eq!(
            u.coefficient(&Monomial::from_powers([("r", 2u32)])),
            Some(NatInf::Fin(0))
        );
        // The coefficients of rnp·sᵏ in w are Catalan numbers (one derivation
        // per parenthesization of the path); the paper's worked value 5 is
        // the k = 1 coefficient. See EXPERIMENTS.md.
        let w = &solution[&Fact::new("Q", ["a", "d"])];
        let w_coeff = |k: u32| {
            w.coefficient(&Monomial::from_powers([
                ("r", 1u32),
                ("n", 1),
                ("p", 1),
                ("s", k),
            ]))
        };
        assert_eq!(w_coeff(0), Some(NatInf::Fin(2)));
        assert_eq!(w_coeff(1), Some(NatInf::Fin(5)));
        assert_eq!(w_coeff(2), Some(NatInf::Fin(14)));
        assert_eq!(w_coeff(3), Some(NatInf::Fin(42)));
    }

    #[test]
    fn series_solution_agrees_with_monomial_coefficient_algorithm() {
        let system = figure7_system();
        let solution = system.solve_series(5, 8);
        let program = Program::transitive_closure("R", "Q");
        let edb = figure7_edb();
        let vars: BTreeMap<Fact, Variable> = [
            (Fact::new("R", ["a", "b"]), Variable::new("m")),
            (Fact::new("R", ["a", "c"]), Variable::new("n")),
            (Fact::new("R", ["c", "b"]), Variable::new("p")),
            (Fact::new("R", ["b", "d"]), Variable::new("r")),
            (Fact::new("R", ["d", "d"]), Variable::new("s")),
        ]
        .into_iter()
        .collect();
        // Check a handful of (fact, monomial) pairs against Figure 9's
        // algorithm.
        let checks = [
            (
                Fact::new("Q", ["d", "d"]),
                Monomial::from_powers([("s", 4u32)]),
            ),
            (
                Fact::new("Q", ["b", "d"]),
                Monomial::from_bag(["r", "s", "s"]),
            ),
            (Fact::new("Q", ["a", "b"]), Monomial::from_bag(["n", "p"])),
        ];
        for (fact, monomial) in checks {
            let from_series = solution[&fact].coefficient(&monomial).unwrap();
            let from_algorithm = crate::monomial_coefficient::monomial_coefficient(
                &program, &edb, &vars, &fact, &monomial,
            );
            assert_eq!(from_series, from_algorithm, "{fact} / {monomial}");
        }
    }

    #[test]
    fn default_build_names_are_usable() {
        let system =
            AlgebraicSystem::build_default(&Program::transitive_closure("R", "Q"), &figure7_edb());
        assert_eq!(system.len(), 7);
        assert_eq!(system.edb_variables.len(), 5);
        assert!(system.display().contains(" = "));
    }
}

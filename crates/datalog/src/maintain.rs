//! Incremental maintenance of datalog fixpoints under edb insert/delete
//! batches.
//!
//! A [`FixpointView`] is a materialized least fixpoint (computed by
//! [`crate::seminaive::seminaive_iterate`]) that retains its semi-naive
//! machinery — the append-only [`FactIndex`] over every fact ever seen and
//! the accumulated idb [`FactStore`] — so it can *absorb* a base-fact delta
//! instead of recomputing from scratch. Deltas are plain annotated fact
//! stores added into the edb with semiring `+`; over a ring
//! ([`provsem_semiring::Ring`] — ℤ, ℤ\[X\], `DiffPair<K>`) negative
//! annotations are first-class deletions, so one batch can mix inserts and
//! deletes.
//!
//! # Algorithm (delete-and-rederive, specialized to recomputation)
//!
//! [`maintain_fixpoint`] runs a DRed-style three-phase update:
//!
//! 1. **Apply** the delta to the edb and the join index.
//! 2. **Affected closure**: starting from the changed edb facts, repeatedly
//!    join each changed fact through every rule-body position it can occupy
//!    (one suffix join plan per body atom, probing the index for the rest
//!    of the body) and collect the ground heads; newly discovered heads
//!    join the index and the frontier. The closure is everything whose
//!    derivations can mention a changed fact.
//! 3. **Rederive**: zero every affected idb fact and Kleene-iterate
//!    head recomputation over the affected set until nothing changes. Facts
//!    whose derivations all vanished stay at zero — deletions do not
//!    over-retain — and unaffected facts keep their annotations, which are
//!    still correct because *no* derivation of an unaffected fact mentions
//!    a changed fact (otherwise the closure would have reached it).
//!
//! The result is pinned against from-scratch [`seminaive_iterate`] on the
//! updated edb by `tests/ivm_differential.rs`.
//!
//! # Worked example
//!
//! Path counting under bag semantics: deleting the only bridge edge must
//! zero every downstream count.
//!
//! ```
//! use provsem_datalog::prelude::*;
//! use provsem_semiring::{Integers, Ring};
//!
//! let program = Program::transitive_closure("R", "Q");
//! let edb = edge_facts("R", &[
//!     ("a", "b", Integers::new(1)),
//!     ("b", "c", Integers::new(1)),
//! ]);
//! let mut view = materialize_fixpoint(&program, &edb, 16);
//! assert_eq!(view.result().annotation(&Fact::new("Q", ["a", "c"])), Integers::new(1));
//!
//! // Delete b→c: both Q(b,c) and the two-hop Q(a,c) disappear.
//! let mut delta = FactStore::new();
//! delta.insert(Fact::new("R", ["b", "c"]), Integers::new(1).neg());
//! maintain_fixpoint(&mut view, &delta);
//! assert!(view.converged());
//! assert!(!view.result().contains(&Fact::new("Q", ["a", "c"])));
//! assert!(!view.result().contains(&Fact::new("Q", ["b", "c"])));
//! assert_eq!(view.result().annotation(&Fact::new("Q", ["a", "b"])), Integers::new(1));
//! ```

use crate::ast::{Atom, Program, Rule};
use crate::columnar::{self, BatchRecompute};
use crate::fact::{Fact, FactIndex, FactStore};
use crate::grounding::{ground_atom, match_atom, Binding, JoinPlan};
use crate::seminaive::{build_forms, forms_by_head, recompute_head, seminaive_iterate, RuleForms};
use provsem_core::par;
use provsem_core::plan::ExecContext;
use provsem_semiring::fxhash::FxHashMap;
use provsem_semiring::Semiring;
use std::collections::BTreeSet;

/// A materialized datalog least fixpoint with the retained state needed to
/// absorb edb deltas: the program, the updated edb, the accumulated idb
/// annotations, and the append-only join index over every fact ever seen.
///
/// Build one with [`materialize_fixpoint`]; update it with
/// [`maintain_fixpoint`] / [`maintain_fixpoint_with`]. The maintained idb
/// only equals the from-scratch fixpoint while [`FixpointView::converged`]
/// holds — a view that ran out of rounds is reported as such, exactly like
/// [`crate::naive::FixpointResult::converged`].
pub struct FixpointView<K> {
    program: Program,
    edb: FactStore<K>,
    idb: FactStore<K>,
    index: FactIndex,
    max_rounds: usize,
    converged: bool,
}

impl<K: Semiring> FixpointView<K> {
    /// The maintained idb fixpoint.
    pub fn result(&self) -> &FactStore<K> {
        &self.idb
    }

    /// The maintained edb (base facts with every absorbed delta applied).
    pub fn edb(&self) -> &FactStore<K> {
        &self.edb
    }

    /// Did the last (re)computation reach a fixpoint within the round bound?
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Consumes the view, returning the idb fixpoint.
    pub fn into_result(self) -> FactStore<K> {
        self.idb
    }
}

/// Evaluates `program` over `edb` semi-naively (bounded by `max_rounds`,
/// like [`seminaive_iterate`]) and retains the evaluation state as a
/// [`FixpointView`] ready for incremental maintenance.
pub fn materialize_fixpoint<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
    max_rounds: usize,
) -> FixpointView<K> {
    let result = seminaive_iterate(program, edb, max_rounds);
    let mut index = edb.join_index();
    for (fact, _) in result.idb.facts() {
        index.add_fact(fact);
    }
    FixpointView {
        program: program.clone(),
        edb: edb.clone(),
        idb: result.idb,
        index,
        max_rounds,
        converged: result.converged,
    }
}

/// One affected-closure form: a body atom a changed fact can occupy, the
/// owning rule, and the join plan for the rest of that rule's body.
struct ClosureForm<'a> {
    rule: &'a Rule,
    atom: &'a Atom,
    plan: JoinPlan<'a>,
}

/// Suffix plans for **every** body position of every rule — unlike the
/// semi-naive delta forms, which only cover idb positions, maintenance must
/// chase changes entering through edb atoms too.
fn closure_forms(program: &Program) -> Vec<ClosureForm<'_>> {
    program
        .rules
        .iter()
        .flat_map(|rule| {
            rule.body
                .iter()
                .enumerate()
                .map(move |(pos, atom)| ClosureForm {
                    rule,
                    atom,
                    plan: JoinPlan::suffix(&rule.body, pos),
                })
        })
        .collect()
}

/// Phase 2: the set of idb facts whose derivations can mention a changed
/// fact, found by chasing changed facts through the closure forms until no
/// new head appears. Newly discovered heads join the index immediately, so
/// later frontier rounds can bind them in other rule bodies.
fn affected_closure<K: Semiring>(
    forms: &[ClosureForm<'_>],
    view: &mut FixpointView<K>,
    seed: Vec<Fact>,
) -> BTreeSet<Fact> {
    let mut affected: BTreeSet<Fact> = BTreeSet::new();
    let mut frontier = seed;
    while !frontier.is_empty() {
        let mut discovered: Vec<Fact> = Vec::new();
        for fact in &frontier {
            for form in forms.iter().filter(|f| f.atom.predicate == fact.predicate) {
                let Some(seed) = match_atom(form.atom, fact, &Binding::new()) else {
                    continue;
                };
                form.plan.join(&view.index, seed, &mut |binding| {
                    if let Some(head) = ground_atom(&form.rule.head, &binding) {
                        if affected.insert(head.clone()) {
                            discovered.push(head);
                        }
                    }
                });
            }
        }
        for head in &discovered {
            view.index.add_fact(head.clone());
        }
        frontier = discovered;
    }
    affected
}

/// Phase 1: fold the delta into the edb and the index; returns the changed
/// facts (the closure seed). Panics if the delta names a derived predicate —
/// idb facts are maintained, not edited.
fn apply_delta<K: Semiring>(
    view: &mut FixpointView<K>,
    delta: &FactStore<K>,
    idb_predicates: &BTreeSet<String>,
) -> Vec<Fact> {
    let mut changed = Vec::new();
    for (fact, k) in delta.facts() {
        assert!(
            !idb_predicates.contains(&fact.predicate),
            "maintain_fixpoint: delta names the derived predicate {} — \
             base deltas may only touch edb predicates",
            fact.predicate
        );
        view.edb.insert(fact.clone(), k.clone());
        view.index.add_fact(fact.clone());
        changed.push(fact);
    }
    changed
}

/// Phase 3 (shared tail): zero the affected idb facts and Kleene-iterate
/// their recomputation until a fixpoint (or the view's round bound), using
/// `pass` to map one recomputation sweep over the affected facts.
fn rederive<K: Semiring>(
    view: &mut FixpointView<K>,
    affected: BTreeSet<Fact>,
    mut pass: impl FnMut(&FixpointView<K>, &[Fact]) -> Vec<(Fact, K)>,
) {
    for fact in &affected {
        view.idb.set(fact.clone(), K::zero());
    }
    let affected: Vec<Fact> = affected.into_iter().collect();
    view.converged = true;
    if affected.is_empty() {
        return;
    }
    let mut rounds = 0;
    loop {
        if rounds >= view.max_rounds {
            view.converged = false;
            return;
        }
        rounds += 1;
        let changes = pass(view, &affected);
        if changes.is_empty() {
            return;
        }
        for (fact, k) in changes {
            view.idb.set(fact, k);
        }
    }
}

/// One serial recomputation sweep: each affected head from scratch, in
/// sorted fact order.
fn recompute_pass<K: Semiring>(
    view: &FixpointView<K>,
    affected: &[Fact],
    by_head: &FxHashMap<&str, Vec<&RuleForms<'_>>>,
    idb_predicates: &BTreeSet<String>,
) -> Vec<(Fact, K)> {
    affected
        .iter()
        .filter_map(|head| {
            let total = recompute_head(
                head,
                by_head,
                idb_predicates,
                &view.edb,
                &view.idb,
                &view.index,
            );
            (total != view.idb.annotation(head)).then(|| (head.clone(), total))
        })
        .collect()
}

/// Absorbs an edb delta into the view: applies it to the base facts,
/// computes the affected closure, and rederives exactly the affected idb
/// facts (see the module docs). After this,
/// `view.result() == seminaive_iterate(program, updated_edb, …).idb`
/// whenever the view [`converged`](FixpointView::converged).
///
/// Annotations in `delta` are *added* (semiring `+`) to the edb; supply
/// additive inverses ([`provsem_semiring::Ring::neg`]) to delete.
pub fn maintain_fixpoint<K: Semiring>(view: &mut FixpointView<K>, delta: &FactStore<K>) {
    let idb_predicates = view.program.idb_predicates();
    let changed = apply_delta(view, delta, &idb_predicates);

    // The forms borrow `view.program`, so clone the program handle out —
    // `Program` is small (rule ASTs) next to the stores.
    let program = view.program.clone();
    let forms = closure_forms(&program);
    for form in &forms {
        form.plan.register(&mut view.index);
    }
    let rule_forms = build_forms(&program, &idb_predicates, &mut view.index);
    let by_head = forms_by_head(&rule_forms);

    let affected = affected_closure(&forms, view, changed);
    rederive(view, affected, |view, affected| {
        recompute_pass(view, affected, &by_head, &idb_predicates)
    });
}

/// [`maintain_fixpoint`] with an execution context: `ctx.mode` picks the
/// rederivation engine like the fixpoint loops — `PROVSEM_EXEC=batch` (or
/// `auto` with a large enough EDB) recomputes affected heads through the
/// compiled batch plans of [`crate::columnar`], reading body factors from a
/// dense annotation table rebuilt at the start of each sweep — and
/// `ctx.threads` is the thread budget: each sweep runs data-parallel over
/// contiguous chunks of the (sorted) affected facts, concatenated back in
/// chunk order — the exact serial change list, so the maintained view is
/// byte-identical at every thread count and on either engine. The closure
/// phase mutates the index and stays on the coordinator.
pub fn maintain_fixpoint_with<K>(
    view: &mut FixpointView<K>,
    delta: &FactStore<K>,
    ctx: &ExecContext,
) where
    K: Semiring + Send + Sync,
{
    let batch = columnar::use_batch(ctx, &view.edb);
    if ctx.threads <= 1 && !batch {
        return maintain_fixpoint(view, delta);
    }
    let idb_predicates = view.program.idb_predicates();
    let changed = apply_delta(view, delta, &idb_predicates);

    let program = view.program.clone();
    let forms = closure_forms(&program);
    for form in &forms {
        form.plan.register(&mut view.index);
    }
    let rule_forms = build_forms(&program, &idb_predicates, &mut view.index);
    let by_head = forms_by_head(&rule_forms);
    let recompute = batch.then(|| BatchRecompute::new(&rule_forms));

    let affected = affected_closure(&forms, view, changed);
    rederive(view, affected, |view, affected| {
        let chunks = if ctx.threads > 1 {
            par::chunked(affected.to_vec(), ctx.threads)
        } else {
            vec![affected.to_vec()]
        };
        match &recompute {
            Some(recompute) => {
                // Each sweep is a pure function of the pass-start stores, so
                // one dense annotation table serves every chunk.
                let anns =
                    columnar::build_ann_table(&view.index, &idb_predicates, &view.edb, &view.idb);
                par::par_map_chunks(chunks, |_, chunk| {
                    recompute
                        .totals(&chunk, &view.index, &anns)
                        .into_iter()
                        .zip(&chunk)
                        .filter(|(total, head)| *total != view.idb.annotation(head))
                        .map(|(total, head)| (head.clone(), total))
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
            }
            None => par::par_map_chunks(chunks, |_, chunk| {
                recompute_pass(view, &chunk, &by_head, &idb_predicates)
            })
            .into_iter()
            .flatten()
            .collect(),
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::edge_facts;
    use provsem_semiring::{Integers, Ring};

    fn z(n: i64) -> Integers {
        Integers::new(n)
    }

    // Linear transitive closure counts each *path* once in ℤ (the nonlinear
    // variant would count binary bracketings), keeping the expected
    // annotations readable.
    fn tc_view(edges: &[(&str, &str, i64)]) -> FixpointView<Integers> {
        let program = Program::linear_transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &edges
                .iter()
                .map(|(s, d, w)| (*s, *d, z(*w)))
                .collect::<Vec<_>>(),
        );
        materialize_fixpoint(&program, &edb, 64)
    }

    #[test]
    fn deleting_a_bridge_edge_zeroes_downstream_path_counts() {
        // a→b→c→d, path counting in ℤ. Deleting b→c must remove every path
        // that crossed the bridge and keep the a→b and c→d segments.
        let mut view = tc_view(&[("a", "b", 1), ("b", "c", 1), ("c", "d", 1)]);
        assert!(view.converged());
        assert_eq!(view.result().annotation(&Fact::new("Q", ["a", "d"])), z(1));

        let mut delta = FactStore::new();
        delta.insert(Fact::new("R", ["b", "c"]), z(1).neg());
        maintain_fixpoint(&mut view, &delta);
        assert!(view.converged());
        for gone in [["a", "c"], ["a", "d"], ["b", "c"], ["b", "d"]] {
            assert!(
                !view.result().contains(&Fact::new("Q", gone)),
                "over-retained Q({gone:?})"
            );
        }
        assert_eq!(view.result().annotation(&Fact::new("Q", ["a", "b"])), z(1));
        assert_eq!(view.result().annotation(&Fact::new("Q", ["c", "d"])), z(1));
    }

    #[test]
    fn deleting_one_of_two_derivations_decrements_the_count() {
        // Two parallel 2-hop routes a→b→d and a→c→d: Q(a,d) counts 2 paths.
        let mut view = tc_view(&[("a", "b", 1), ("b", "d", 1), ("a", "c", 1), ("c", "d", 1)]);
        assert_eq!(view.result().annotation(&Fact::new("Q", ["a", "d"])), z(2));

        // Delete one support: the count drops to 1, the fact stays.
        let mut delta = FactStore::new();
        delta.insert(Fact::new("R", ["a", "b"]), z(1).neg());
        maintain_fixpoint(&mut view, &delta);
        assert_eq!(view.result().annotation(&Fact::new("Q", ["a", "d"])), z(1));

        // Delete the other: the fact is gone.
        let mut delta = FactStore::new();
        delta.insert(Fact::new("R", ["a", "c"]), z(1).neg());
        maintain_fixpoint(&mut view, &delta);
        assert!(!view.result().contains(&Fact::new("Q", ["a", "d"])));
        assert!(view.converged());
    }

    #[test]
    fn inserts_reach_new_recursive_derivations() {
        // Start with two disconnected edges; inserting the bridge creates
        // the transitive paths — including ones joining two batch-inserted
        // facts with pre-existing ones.
        let mut view = tc_view(&[("a", "b", 1), ("d", "e", 1)]);
        assert!(!view.result().contains(&Fact::new("Q", ["a", "e"])));

        let mut delta = FactStore::new();
        delta.insert(Fact::new("R", ["b", "c"]), z(1));
        delta.insert(Fact::new("R", ["c", "d"]), z(1));
        maintain_fixpoint(&mut view, &delta);
        let expected = seminaive_iterate(
            &Program::linear_transitive_closure("R", "Q"),
            view.edb(),
            64,
        );
        assert!(view.converged() && expected.converged);
        assert_eq!(view.result(), &expected.idb);
        assert_eq!(view.result().annotation(&Fact::new("Q", ["a", "e"])), z(1));
    }

    #[test]
    #[should_panic(expected = "base deltas may only touch edb predicates")]
    fn deltas_on_derived_predicates_are_rejected() {
        let mut view = tc_view(&[("a", "b", 1)]);
        let mut delta = FactStore::new();
        delta.insert(Fact::new("Q", ["a", "b"]), z(1));
        maintain_fixpoint(&mut view, &delta);
    }
}

//! # provsem-datalog
//!
//! Datalog on K-relations — Sections 5–8 of *Provenance Semirings* (Green,
//! Karvounarakis, Tannen; PODS 2007):
//!
//! * datalog syntax, parser and grounding ([`ast`], [`parser`], [`fact`],
//!   [`grounding`]);
//! * the fixpoint semantics over ω-continuous semirings — naive Kleene
//!   iteration ([`naive`], Definition 5.5 / Theorem 5.6) and the semi-naive
//!   differential evaluator with indexed joins ([`seminaive`], switched via
//!   [`EvalStrategy`]) — plus exact evaluation for ℕ∞ and
//!   distributive lattices ([`exact`], Section 8);
//! * derivation trees and the **All-Trees** algorithm ([`all_trees`](mod@crate::all_trees),
//!   Figure 8), the **Monomial-Coefficient** algorithm
//!   ([`monomial_coefficient`](mod@crate::monomial_coefficient), Figure 9);
//! * algebraic systems and formal-power-series provenance
//!   ([`algebraic_system`], Definitions 5.5 and 6.1);
//! * provenance classification per Theorem 6.5 and the datalog factorization
//!   theorem ([`provenance`], Theorem 6.4).
//!
//! ```
//! use provsem_datalog::prelude::*;
//! use provsem_semiring::NatInf;
//!
//! // Figure 7: transitive closure with bag semantics.
//! let program = Program::transitive_closure("R", "Q");
//! let edb = edge_facts("R", &[
//!     ("a", "b", NatInf::Fin(2)), ("a", "c", NatInf::Fin(3)),
//!     ("c", "b", NatInf::Fin(2)), ("b", "d", NatInf::Fin(1)),
//!     ("d", "d", NatInf::Fin(1)),
//! ]);
//! let out = evaluate_natinf(&program, &edb);
//! assert_eq!(out.annotation(&Fact::new("Q", ["a", "b"])), NatInf::Fin(8));
//! assert_eq!(out.annotation(&Fact::new("Q", ["a", "d"])), NatInf::Inf);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebraic_system;
pub mod all_trees;
pub mod ast;
pub mod columnar;
pub mod exact;
pub mod fact;
pub mod grounding;
pub mod maintain;
pub mod monomial_coefficient;
pub mod naive;
pub mod parser;
pub mod provenance;
pub mod seminaive;

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::algebraic_system::{AlgebraicSystem, Equation};
    pub use crate::all_trees::{
        all_trees, all_trees_with_variables, default_edb_variables, evaluate_lattice_via_trees,
        minimal_trees, AllTreesResult, DerivationChild, DerivationTree, TreeProvenance,
    };
    pub use crate::ast::{Atom, DlVar, Program, Rule, Term};
    pub use crate::columnar::{
        explain_fixpoint, seminaive_idempotent_batch, seminaive_iterate_batch,
    };
    pub use crate::exact::{
        evaluate_lattice, evaluate_natinf, facts_with_infinitely_many_derivations,
    };
    pub use crate::fact::{edge_facts, Fact, FactIndex, FactStore};
    pub use crate::grounding::{
        derivable_facts, instantiate, instantiate_over, DependencyGraph, GroundRule,
    };
    pub use crate::maintain::{
        maintain_fixpoint, maintain_fixpoint_with, materialize_fixpoint, FixpointView,
    };
    pub use crate::monomial_coefficient::monomial_coefficient;
    pub use crate::naive::{
        evaluate_fixpoint, immediate_consequence, immediate_consequence_into, kleene_iterate,
        kleene_iterate_grounded, seminaive_evaluate, FixpointResult,
    };
    pub use crate::parser::{parse_program, parse_rule, ParseError};
    pub use crate::provenance::{
        classify_series, datalog_provenance, datalog_provenance_circuit,
        nonrecursive_provenance_is_polynomial, CircuitDatalogProvenance, DatalogProvenance,
        SeriesClass,
    };
    pub use crate::seminaive::{
        evaluate, evaluate_with_bound, evaluate_with_context, seminaive_idempotent,
        seminaive_idempotent_with, seminaive_iterate, seminaive_iterate_with, EvalStrategy,
        DEFAULT_FALLBACK_BOUND,
    };
}

pub use prelude::*;

//! Datalog provenance: classification of provenance series (Theorem 6.5) and
//! the factorization theorem for datalog (Theorem 6.4).
//!
//! The provenance of a datalog answer tuple lives in ℕ∞\[\[X\]\] (Definition
//! 6.1). For a given instance it falls into one of four classes, which the
//! paper shows are all decidable:
//!
//! | class      | meaning                                              |
//! |------------|------------------------------------------------------|
//! | `NPoly`    | finitely many derivation trees — a polynomial in ℕ\[X\] |
//! | `NSeries`  | infinitely many monomials, all coefficients finite    |
//! | `NInfPoly` | finitely many monomials, some coefficient ∞           |
//! | `NInfSeries` | infinitely many monomials and some coefficient ∞    |

use crate::all_trees::{
    all_trees_with_variables, default_edb_variables, AllTreesResult, TreeProvenance,
};
use crate::ast::Program;
use crate::exact::facts_with_infinitely_many_derivations;
use crate::fact::{Fact, FactStore};
use crate::grounding::{derivable_facts, instantiate_over, DependencyGraph};
use provsem_semiring::{
    Circuit, CircuitEval, CommutativeSemiring, OmegaContinuous, ProvenancePolynomial, Semiring,
    Valuation, Variable,
};
use std::collections::{BTreeMap, BTreeSet};

/// Which fragment of ℕ∞\[\[X\]\] a tuple's provenance series lies in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeriesClass {
    /// A polynomial with finite coefficients: ℕ\[X\].
    NPoly,
    /// A genuine power series with finite coefficients: ℕ\[\[X\]\] \ ℕ\[X\].
    NSeries,
    /// Finitely many monomials but some coefficient is ∞: ℕ∞\[X\] \ ℕ\[X\].
    NInfPoly,
    /// Infinitely many monomials and some coefficient ∞: the general case.
    NInfSeries,
}

impl SeriesClass {
    /// Is the series a polynomial (finitely many monomials)?
    pub fn is_polynomial(self) -> bool {
        matches!(self, SeriesClass::NPoly | SeriesClass::NInfPoly)
    }

    /// Are all coefficients finite?
    pub fn has_finite_coefficients(self) -> bool {
        matches!(self, SeriesClass::NPoly | SeriesClass::NSeries)
    }
}

/// Classifies the provenance series of every derivable idb fact.
///
/// * The fact has finitely many derivation trees (All-Trees says
///   "polynomial") ⇒ [`SeriesClass::NPoly`].
/// * Otherwise, by Theorem 6.5, some coefficient is ∞ **iff** the fact's
///   derivations involve a cycle of **unit** ground rules; and by the
///   companion observation in Section 7 the number of distinct monomials is
///   finite iff no cycle through a **non-unit** rule is involved.
pub fn classify_series<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
) -> BTreeMap<Fact, SeriesClass> {
    let derivable = derivable_facts(program, edb);
    let ground = instantiate_over(program, &derivable);
    let idb_predicates = program.idb_predicates();
    let is_idb = |p: &str| idb_predicates.contains(p);

    let infinite_trees = facts_with_infinitely_many_derivations(program, &ground);

    // Facts whose derivations can go through a unit-rule cycle: coefficients ∞.
    let unit_graph = DependencyGraph::build_unit_only(&ground, &is_idb);
    let unit_cycle_facts = unit_graph.facts_reaching_cycles();
    // Facts whose derivations can go through a cycle containing a non-unit
    // rule: infinitely many distinct monomials (each pump adds leaves).
    let nonunit_ground: Vec<_> = ground.iter().filter(|r| !r.is_unit()).cloned().collect();
    let full_graph = DependencyGraph::build(&ground, &is_idb);
    let nonunit_graph = DependencyGraph::build(&nonunit_ground, &is_idb);
    let nonunit_cycle_nodes: BTreeSet<Fact> = {
        // A cycle "containing at least one non-unit rule" is a cycle of the
        // full graph that uses at least one edge contributed by a non-unit
        // ground rule. We approximate it exactly for our purposes: a fact is
        // on such a cycle iff it is on a cycle of the full graph that is not
        // a cycle of the unit-only graph, or it is on a cycle of the
        // non-unit-only graph. A fact on *some* full-graph cycle but on *no*
        // unit-only cycle must use a non-unit edge to return to itself.
        let full_cycles = full_graph.nodes_on_cycles();
        let unit_cycles = unit_graph.nodes_on_cycles();
        let nonunit_cycles = nonunit_graph.nodes_on_cycles();
        full_cycles
            .into_iter()
            .filter(|f| nonunit_cycles.contains(f) || !unit_cycles.contains(f))
            .collect()
    };
    // Facts that can reach such a cycle have infinitely many monomials.
    let mut infinite_monomials: BTreeSet<Fact> = nonunit_cycle_nodes.clone();
    loop {
        let mut added = false;
        for (from, tos) in &full_graph.edges {
            if !infinite_monomials.contains(from)
                && tos.iter().any(|t| infinite_monomials.contains(t))
            {
                infinite_monomials.insert(from.clone());
                added = true;
            }
        }
        if !added {
            break;
        }
    }

    let mut result = BTreeMap::new();
    for fact in derivable.iter().filter(|f| is_idb(&f.predicate)) {
        let class = if !infinite_trees.contains(fact) {
            SeriesClass::NPoly
        } else {
            let inf_coeff = unit_cycle_facts.contains(fact);
            let inf_monomials = infinite_monomials.contains(fact);
            match (inf_coeff, inf_monomials) {
                (false, _) => SeriesClass::NSeries,
                (true, false) => SeriesClass::NInfPoly,
                (true, true) => SeriesClass::NInfSeries,
            }
        };
        result.insert(fact.clone(), class);
    }
    result
}

/// The provenance of a whole datalog answer, as produced by All-Trees plus a
/// valuation of the edb variables — everything needed to apply the
/// factorization theorem for datalog (Theorem 6.4).
#[derive(Clone, Debug)]
pub struct DatalogProvenance<K> {
    /// The All-Trees classification and polynomials.
    pub trees: AllTreesResult,
    /// The valuation mapping each edb variable to its K annotation.
    pub valuation: Valuation<K>,
}

/// Computes the datalog provenance of a program over a K-annotated edb:
/// abstractly tags the edb facts, runs All-Trees, and remembers the
/// valuation.
pub fn datalog_provenance<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
) -> DatalogProvenance<K> {
    let variables = crate::all_trees::default_edb_variables(edb);
    let mut valuation = Valuation::new();
    for (fact, var) in &variables {
        valuation.assign(var.clone(), edb.annotation(fact));
    }
    let trees = all_trees_with_variables(program, edb, variables);
    DatalogProvenance { trees, valuation }
}

impl<K: OmegaContinuous> DatalogProvenance<K> {
    /// Specializes the provenance into K (Theorem 6.4): finite provenance
    /// polynomials are evaluated under the valuation; tuples with infinitely
    /// many derivations are given `infinity()` (for ℕ∞ this is ∞; for
    /// lattices the caller should use the Section 8 evaluation instead,
    /// which never needs it).
    pub fn specialize(&self, infinity: impl Fn() -> K) -> FactStore<K> {
        let mut out = FactStore::new();
        for (fact, prov) in &self.trees.provenance {
            let value = match prov {
                TreeProvenance::Polynomial(p) => p.eval(&self.valuation),
                TreeProvenance::Infinite => infinity(),
            };
            out.set(fact.clone(), value);
        }
        out
    }

    /// The provenance polynomial of one fact, if it is finite.
    pub fn polynomial(&self, fact: &Fact) -> Option<&ProvenancePolynomial> {
        self.trees
            .provenance
            .get(fact)
            .and_then(TreeProvenance::as_polynomial)
    }
}

/// Datalog provenance in **circuit form**: the idb annotated with
/// hash-consed [`Circuit`] handles over one variable per edb fact, plus the
/// valuation mapping those variables back to the original K annotations.
///
/// This is the representation for the workloads where the expanded ℕ\[X\]
/// (or All-Trees) route blows up combinatorially: on a transitive closure
/// whose path count doubles per layer, the polynomial for the far endpoint
/// has `2ⁿ` monomials while the circuit reuses each intermediate
/// reachability annotation and stays **linear** in the instance size. See
/// [`datalog_provenance_circuit`].
#[derive(Clone, Debug)]
pub struct CircuitDatalogProvenance<K> {
    /// Circuit annotations of the derivable idb facts after the last round.
    pub facts: FactStore<Circuit>,
    /// The valuation mapping each edb variable to its K annotation.
    pub valuation: Valuation<K>,
    /// The edb fact → variable tagging (same scheme as
    /// [`datalog_provenance`], i.e. [`default_edb_variables`]).
    pub edb_variables: BTreeMap<Fact, Variable>,
    /// Number of immediate-consequence rounds performed.
    pub iterations: usize,
    /// Whether a fixpoint was observed within the round bound. Detection is
    /// *structural* (node-id equality): sound, and complete one round after
    /// the annotations stabilize, because the deterministic recomputation
    /// of stable inputs re-interns identical nodes.
    pub converged: bool,
}

impl<K: Semiring> CircuitDatalogProvenance<K> {
    /// The circuit annotation of one fact (`None` if not derivable).
    pub fn circuit(&self, fact: &Fact) -> Option<Circuit> {
        self.facts
            .contains(fact)
            .then(|| self.facts.annotation(fact))
    }
}

impl<K: CommutativeSemiring> CircuitDatalogProvenance<K> {
    /// Specializes the circuit provenance into K with **one memoized
    /// bottom-up pass shared by every fact** (Theorem 6.4's `Eval_v`, at
    /// circuit speed): each node of the shared DAG is evaluated once, no
    /// matter how many idb facts reach it.
    pub fn specialize(&self) -> FactStore<K> {
        let mut eval = CircuitEval::new(&self.valuation);
        let mut out = FactStore::new();
        for (fact, circuit) in self.facts.facts() {
            out.set(fact, eval.eval(*circuit));
        }
        out
    }
}

/// Structural (node-id) equality of two circuit-annotated stores — O(n) and
/// independent of circuit size, unlike semantic circuit equality, which
/// lowers to the expanded polynomial.
fn same_structure(a: &FactStore<Circuit>, b: &FactStore<Circuit>) -> bool {
    a.len() == b.len()
        && a.facts()
            .all(|(fact, c)| b.contains(&fact) && c.same_node(&b.annotation(&fact)))
}

/// Evaluates a datalog program over the **circuit** provenance semiring:
/// tags each edb fact with a variable, runs the bounded Kleene iteration of
/// Definition 5.5 with circuit annotations (`+`/`·` intern DAG nodes in
/// O(1) instead of merging monomial maps), and returns the circuit-annotated
/// idb with the valuation for later specialization.
///
/// Convergence is detected **structurally**: hash-consing is deterministic,
/// so once a round leaves every annotation's node id unchanged the iteration
/// has reached the (semantic) fixpoint — one extra round after
/// stabilization, exactly like the naive evaluator's `next == current`
/// check, but without ever expanding a polynomial. On instances whose ℕ\[X\]
/// annotations never stabilize (cyclic ℕ∞\[\[X\]\] cases, Section 6) the
/// iteration stops at `max_rounds` with `converged = false`, and the result
/// equals the naive `Tᵐ(0)` round for round.
///
/// The returned circuits live in the thread-local arena of
/// [`provsem_semiring::circuit`], which is append-only; call
/// `provsem_semiring::circuit::reset()` between independent evaluations to
/// reclaim it — doing so invalidates any previously returned
/// [`CircuitDatalogProvenance`], so specialize first.
pub fn datalog_provenance_circuit<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
    max_rounds: usize,
) -> CircuitDatalogProvenance<K> {
    let edb_variables = default_edb_variables(edb);
    let mut valuation = Valuation::new();
    let mut edb_circuits: FactStore<Circuit> = FactStore::new();
    for (fact, annotation) in edb.facts() {
        let var = edb_variables[&fact].clone();
        valuation.assign(var.clone(), annotation.clone());
        edb_circuits.set(fact, Circuit::var(var));
    }

    let derivable = derivable_facts(program, &edb_circuits);
    let ground = instantiate_over(program, &derivable);
    // The naive Kleene driver, with the semantic `next == current` fixpoint
    // test (which for circuits would expand polynomials) replaced by the
    // O(n) structural node-id comparison.
    let result = crate::naive::kleene_iterate_grounded_by(
        program,
        &ground,
        &edb_circuits,
        max_rounds,
        same_structure,
    );
    CircuitDatalogProvenance {
        facts: result.idb,
        valuation,
        edb_variables,
        iterations: result.iterations,
        converged: result.converged,
    }
}

/// Sanity check for Proposition 6.2 / 5.3: for a **non-recursive** program,
/// the datalog provenance of every answer is a polynomial.
pub fn nonrecursive_provenance_is_polynomial<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
) -> bool {
    if !program.is_nonrecursive() {
        return false;
    }
    classify_series(program, edb)
        .values()
        .all(|c| *c == SeriesClass::NPoly)
}

/// The edb variable assigned to each fact by [`datalog_provenance`] — handy
/// for writing expectations in terms of the paper's variable names.
pub fn edb_variable_of<K: Semiring>(
    provenance: &DatalogProvenance<K>,
    fact: &Fact,
) -> Option<Variable> {
    provenance.trees.edb_variables.get(fact).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::edge_facts;
    use provsem_semiring::{NatInf, Natural};

    fn figure7_edb() -> FactStore<NatInf> {
        edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(2)),
                ("a", "c", NatInf::Fin(3)),
                ("c", "b", NatInf::Fin(2)),
                ("b", "d", NatInf::Fin(1)),
                ("d", "d", NatInf::Fin(1)),
            ],
        )
    }

    #[test]
    fn figure7_series_classes() {
        // The TC program has no unit-rule cycles (its only unit rule has an
        // edb body), so by Theorem 6.5 all coefficients are finite: finite
        // tuples are ℕ[X] polynomials, infinite ones are ℕ[[X]] series.
        let program = Program::transitive_closure("R", "Q");
        let classes = classify_series(&program, &figure7_edb());
        assert_eq!(classes[&Fact::new("Q", ["a", "b"])], SeriesClass::NPoly);
        assert_eq!(classes[&Fact::new("Q", ["a", "c"])], SeriesClass::NPoly);
        assert_eq!(classes[&Fact::new("Q", ["c", "b"])], SeriesClass::NPoly);
        assert_eq!(classes[&Fact::new("Q", ["d", "d"])], SeriesClass::NSeries);
        assert_eq!(classes[&Fact::new("Q", ["b", "d"])], SeriesClass::NSeries);
        assert_eq!(classes[&Fact::new("Q", ["a", "d"])], SeriesClass::NSeries);
        assert!(classes.values().all(|c| c.has_finite_coefficients()));
    }

    #[test]
    fn unit_rule_cycle_gives_infinite_coefficients() {
        // P(x) :- E(x). P(x) :- P(x). — one monomial (e), coefficient ∞.
        let program = crate::parser::parse_program("P(x) :- E(x).\nP(x) :- P(x).").unwrap();
        let mut edb: FactStore<Natural> = FactStore::new();
        edb.insert(Fact::new("E", ["a"]), Natural::from(1u64));
        let classes = classify_series(&program, &edb);
        assert_eq!(classes[&Fact::new("P", ["a"])], SeriesClass::NInfPoly);
        assert!(!classes[&Fact::new("P", ["a"])].has_finite_coefficients());
        assert!(classes[&Fact::new("P", ["a"])].is_polynomial());
    }

    #[test]
    fn mixed_cycles_give_the_general_class() {
        // P(x) :- E(x). P(x) :- P(x). P(x) :- P(x), P(x).
        // Unit cycle ⇒ ∞ coefficients; non-unit cycle ⇒ infinitely many
        // monomials.
        let program =
            crate::parser::parse_program("P(x) :- E(x).\nP(x) :- P(x).\nP(x) :- P(x), P(x).")
                .unwrap();
        let mut edb: FactStore<Natural> = FactStore::new();
        edb.insert(Fact::new("E", ["a"]), Natural::from(1u64));
        let classes = classify_series(&program, &edb);
        assert_eq!(classes[&Fact::new("P", ["a"])], SeriesClass::NInfSeries);
    }

    #[test]
    fn nonrecursive_programs_have_polynomial_provenance() {
        // Proposition 6.2's sanity check.
        let program = Program::figure6_query();
        let edb = edge_facts(
            "R",
            &[
                ("a", "a", Natural::from(2u64)),
                ("a", "b", Natural::from(3u64)),
                ("b", "b", Natural::from(4u64)),
            ],
        );
        assert!(nonrecursive_provenance_is_polynomial(&program, &edb));
        // A recursive program is rejected by the helper even if the instance
        // happens to be acyclic.
        let tc = Program::transitive_closure("R", "Q");
        assert!(!nonrecursive_provenance_is_polynomial(&tc, &edb));
    }

    #[test]
    fn theorem_6_4_factorization_for_datalog() {
        // Computing provenance once and evaluating (with ∞ for T∞ tuples)
        // agrees with the direct exact ℕ∞ evaluation.
        let program = Program::transitive_closure("R", "Q");
        let edb = figure7_edb();
        let prov = datalog_provenance(&program, &edb);
        let specialized = prov.specialize(|| NatInf::Inf);
        let direct = crate::exact::evaluate_natinf(&program, &edb);
        for (fact, ann) in direct.facts() {
            assert_eq!(specialized.annotation(&fact), *ann, "{fact}");
        }
        assert_eq!(specialized.len(), direct.len());
    }

    #[test]
    fn figure6_datalog_provenance_matches_bag_multiplicities() {
        // Proposition 5.3 instance: the conjunctive query of Figure 6
        // evaluated via provenance + valuation gives 4, 18, 16.
        let program = Program::figure6_query();
        let edb = edge_facts(
            "R",
            &[
                ("a", "a", NatInf::Fin(2)),
                ("a", "b", NatInf::Fin(3)),
                ("b", "b", NatInf::Fin(4)),
            ],
        );
        let prov = datalog_provenance(&program, &edb);
        let out = prov.specialize(|| NatInf::Inf);
        assert_eq!(out.annotation(&Fact::new("Q", ["a", "a"])), NatInf::Fin(4));
        assert_eq!(out.annotation(&Fact::new("Q", ["a", "b"])), NatInf::Fin(18));
        assert_eq!(out.annotation(&Fact::new("Q", ["b", "b"])), NatInf::Fin(16));
    }

    #[test]
    fn circuit_datalog_matches_figure6_bag_multiplicities() {
        // Same instance as `figure6_datalog_provenance_matches_bag_multiplicities`,
        // through the circuit route: one non-recursive round, then one
        // shared memoized specialization pass.
        let program = Program::figure6_query();
        let edb = edge_facts(
            "R",
            &[
                ("a", "a", Natural::from(2u64)),
                ("a", "b", Natural::from(3u64)),
                ("b", "b", Natural::from(4u64)),
            ],
        );
        let prov = datalog_provenance_circuit(&program, &edb, 16);
        assert!(prov.converged);
        assert_eq!(prov.iterations, 1, "non-recursive early exit");
        let out = prov.specialize();
        assert_eq!(
            out.annotation(&Fact::new("Q", ["a", "a"])),
            Natural::from(4u64)
        );
        assert_eq!(
            out.annotation(&Fact::new("Q", ["a", "b"])),
            Natural::from(18u64)
        );
        assert_eq!(
            out.annotation(&Fact::new("Q", ["b", "b"])),
            Natural::from(16u64)
        );
    }

    #[test]
    fn circuit_datalog_converges_structurally_on_acyclic_tc() {
        // Linear TC on a chain: structural convergence must be observed and
        // the specialization must equal the direct ℕ evaluation.
        let program = Program::linear_transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", Natural::from(2u64)),
                ("b", "c", Natural::from(3u64)),
                ("c", "d", Natural::from(5u64)),
            ],
        );
        let prov = datalog_provenance_circuit(&program, &edb, 64);
        assert!(prov.converged);
        let direct = crate::naive::kleene_iterate(&program, &edb, 64);
        assert!(direct.converged);
        assert_eq!(prov.specialize(), direct.idb);
        // The circuit of the far endpoint is the expected path product.
        let q_ad = prov.circuit(&Fact::new("Q", ["a", "d"])).unwrap();
        assert_eq!(q_ad.eval(&prov.valuation), Natural::from(30u64));
    }

    #[test]
    fn circuit_datalog_is_round_for_round_tm_on_nonconverging_instances() {
        // Figure 7 over ℕ∞ never converges; specializing the circuit Tᵐ(0)
        // must equal the naive Tᵐ(0) for every m (Eval_v commutes with T).
        let program = Program::transitive_closure("R", "Q");
        let edb = figure7_edb();
        for rounds in 1..6 {
            let prov = datalog_provenance_circuit(&program, &edb, rounds);
            assert!(!prov.converged, "rounds={rounds}");
            assert_eq!(prov.iterations, rounds);
            let naive = crate::naive::kleene_iterate(&program, &edb, rounds);
            assert_eq!(prov.specialize(), naive.idb, "rounds={rounds}");
        }
    }

    #[test]
    fn circuit_datalog_stays_small_where_expanded_polynomials_explode() {
        // A doubling diamond chain: two parallel two-edge paths per layer,
        // so the number of n₀ → nₖ paths is 2^k and the expanded ℕ[X]
        // provenance of Q(n₀, nₖ) has 2^k monomials. The circuit reuses
        // each layer's reachability annotation and stays polynomial.
        provsem_semiring::circuit::reset();
        const K: usize = 16;
        let mut edges: Vec<(String, String, Natural)> = Vec::new();
        for i in 0..K {
            for way in ["u", "w"] {
                edges.push((format!("n{i}"), format!("{way}{i}"), Natural::from(1u64)));
                edges.push((
                    format!("{way}{i}"),
                    format!("n{}", i + 1),
                    Natural::from(1u64),
                ));
            }
        }
        let edge_refs: Vec<(&str, &str, Natural)> = edges
            .iter()
            .map(|(a, b, k)| (a.as_str(), b.as_str(), *k))
            .collect();
        let edb = edge_facts("R", &edge_refs);
        let program = Program::linear_transitive_closure("R", "Q");
        let prov = datalog_provenance_circuit(&program, &edb, 256);
        assert!(prov.converged);

        // 2^K derivations recovered by the memoized evaluation...
        let far = Fact::new("Q", ["n0".to_string(), format!("n{K}")]);
        let circuit = prov.circuit(&far).expect("endpoint derivable");
        assert_eq!(circuit.eval(&prov.valuation), Natural::from(1u64 << K));
        // ...from a circuit that stays far below 2^K nodes.
        let total =
            provsem_semiring::circuit::shared_node_count(prov.facts.facts().map(|(_, c)| *c));
        assert!(
            total < 200 * K,
            "whole idb provenance must stay polynomial: {total} nodes"
        );
        // And the whole specialization agrees with the direct ℕ evaluation.
        let direct = crate::naive::kleene_iterate(&program, &edb, 256);
        assert!(direct.converged);
        assert_eq!(prov.specialize(), direct.idb);
    }

    #[test]
    fn polynomial_accessor_and_variable_lookup() {
        let program = Program::figure6_query();
        let edb = edge_facts(
            "R",
            &[("a", "b", NatInf::Fin(1)), ("b", "c", NatInf::Fin(1))],
        );
        let prov = datalog_provenance(&program, &edb);
        let q_ac = Fact::new("Q", ["a", "c"]);
        let poly = prov.polynomial(&q_ac).expect("finite provenance");
        assert_eq!(poly.num_terms(), 1);
        assert!(edb_variable_of(&prov, &Fact::new("R", ["a", "b"])).is_some());
        assert!(edb_variable_of(&prov, &Fact::new("R", ["z", "z"])).is_none());
    }
}

//! Ground facts and annotated fact stores (the positional / unnamed
//! perspective used for datalog in Section 5 of the paper).

use crate::ast::Atom;
use provsem_core::{Database, KRelation, Schema, Tuple, Value};
use provsem_semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// A ground fact: a predicate name plus a vector of constant values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fact {
    /// Predicate (relation) name.
    pub predicate: String,
    /// The constant arguments, in positional order.
    pub values: Vec<Value>,
}

impl Fact {
    /// Builds a fact.
    pub fn new<I, V>(predicate: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Fact {
            predicate: predicate.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Views the fact as a ground [`Atom`].
    pub fn to_atom(&self) -> Atom {
        Atom::new(
            self.predicate.clone(),
            self.values
                .iter()
                .map(|v| crate::ast::Term::Const(v.clone()))
                .collect(),
        )
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// An annotated fact store: per predicate, a finite-support map from value
/// vectors to K annotations. This is the K-relation notion of Definition 3.1
/// in the unnamed perspective, used by the datalog engine.
#[derive(Clone, PartialEq, Eq)]
pub struct FactStore<K> {
    relations: BTreeMap<String, BTreeMap<Vec<Value>, K>>,
}

impl<K: Semiring> FactStore<K> {
    /// An empty store.
    pub fn new() -> Self {
        FactStore {
            relations: BTreeMap::new(),
        }
    }

    /// Adds `annotation` to a fact's current annotation (semiring `+`).
    pub fn insert(&mut self, fact: Fact, annotation: K) {
        if annotation.is_zero() {
            return;
        }
        let rel = self.relations.entry(fact.predicate).or_default();
        match rel.get_mut(&fact.values) {
            Some(existing) => {
                existing.plus_assign(&annotation);
                if existing.is_zero() {
                    rel.remove(&fact.values);
                }
            }
            None => {
                rel.insert(fact.values, annotation);
            }
        }
    }

    /// Replaces a fact's annotation (zero removes it).
    pub fn set(&mut self, fact: Fact, annotation: K) {
        let rel = self.relations.entry(fact.predicate).or_default();
        if annotation.is_zero() {
            rel.remove(&fact.values);
        } else {
            rel.insert(fact.values, annotation);
        }
    }

    /// The annotation of a fact (`0` if absent).
    pub fn annotation(&self, fact: &Fact) -> K {
        self.relations
            .get(&fact.predicate)
            .and_then(|rel| rel.get(&fact.values))
            .cloned()
            .unwrap_or_else(K::zero)
    }

    /// Is the fact in the support?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relations
            .get(&fact.predicate)
            .map(|rel| rel.contains_key(&fact.values))
            .unwrap_or(false)
    }

    /// Iterates over the support facts of one predicate.
    pub fn facts_of<'a>(&'a self, predicate: &'a str) -> impl Iterator<Item = (Fact, &'a K)> + 'a {
        self.relations
            .get(predicate)
            .into_iter()
            .flat_map(move |rel| {
                rel.iter().map(move |(values, k)| {
                    (
                        Fact {
                            predicate: predicate.to_string(),
                            values: values.clone(),
                        },
                        k,
                    )
                })
            })
    }

    /// Iterates over every support fact.
    pub fn facts(&self) -> impl Iterator<Item = (Fact, &K)> {
        self.relations.iter().flat_map(|(pred, rel)| {
            rel.iter().map(move |(values, k)| {
                (
                    Fact {
                        predicate: pred.clone(),
                        values: values.clone(),
                    },
                    k,
                )
            })
        })
    }

    /// Predicate names present in the store.
    pub fn predicates(&self) -> impl Iterator<Item = &String> {
        self.relations.keys()
    }

    /// Total number of support facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(BTreeMap::len).sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The *active domain*: every constant appearing in any fact.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut dom: Vec<Value> = self
            .relations
            .values()
            .flat_map(|rel| rel.keys().flatten().cloned())
            .collect();
        dom.sort();
        dom.dedup();
        dom
    }

    /// Applies an annotation transformation fact-wise (Proposition 5.7's
    /// `h(R)`).
    pub fn map_annotations<K2: Semiring, F: Fn(&K) -> K2>(&self, f: F) -> FactStore<K2> {
        let mut out = FactStore::new();
        for (fact, k) in self.facts() {
            out.insert(fact, f(k));
        }
        out
    }

    /// Imports a named K-relation from `provsem-core`, using `attributes` to
    /// fix the positional order of the columns.
    pub fn import_relation(
        &mut self,
        predicate: &str,
        relation: &KRelation<K>,
        attributes: &[&str],
    ) {
        for (tuple, k) in relation.iter() {
            let values: Vec<Value> = attributes
                .iter()
                .map(|a| {
                    tuple
                        .get_named(a)
                        .cloned()
                        .unwrap_or_else(|| panic!("attribute {a} missing from tuple"))
                })
                .collect();
            self.insert(Fact::new(predicate, values), k.clone());
        }
    }

    /// Imports every relation of a core [`Database`] using the given
    /// positional attribute order per relation name.
    pub fn import_database(&mut self, db: &Database<K>, orders: &BTreeMap<String, Vec<String>>) {
        for (name, rel) in db.iter() {
            let order: Vec<&str> = orders
                .get(name)
                .map(|v| v.iter().map(String::as_str).collect())
                .unwrap_or_else(|| rel.schema().attributes().iter().map(|a| a.name()).collect());
            self.import_relation(name, rel, &order);
        }
    }

    /// Exports one predicate as a named K-relation, labelling the positions
    /// with the given attribute names.
    pub fn export_relation(&self, predicate: &str, attributes: &[&str]) -> KRelation<K> {
        let schema = Schema::new(attributes.iter().copied());
        let mut rel = KRelation::empty(schema);
        for (fact, k) in self.facts_of(predicate) {
            assert_eq!(
                fact.arity(),
                attributes.len(),
                "arity mismatch exporting {predicate}"
            );
            let tuple = Tuple::new(
                attributes
                    .iter()
                    .copied()
                    .zip(fact.values.iter().cloned())
                    .collect::<Vec<_>>(),
            );
            rel.insert(tuple, k.clone());
        }
        rel
    }
}

impl<K: Semiring> Default for FactStore<K> {
    fn default() -> Self {
        FactStore::new()
    }
}

impl<K: Semiring + fmt::Debug> fmt::Debug for FactStore<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FactStore {{")?;
        for (fact, k) in self.facts() {
            writeln!(f, "  {fact} ↦ {k:?}")?;
        }
        write!(f, "}}")
    }
}

/// Builds the edge fact store used by the Figure 6/7 examples from
/// `(src, dst, annotation)` triples.
pub fn edge_facts<K: Semiring>(predicate: &str, edges: &[(&str, &str, K)]) -> FactStore<K> {
    let mut store = FactStore::new();
    for (src, dst, k) in edges {
        store.insert(Fact::new(predicate, [*src, *dst]), k.clone());
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use provsem_semiring::Natural;

    fn nat(n: u64) -> Natural {
        Natural::from(n)
    }

    #[test]
    fn insert_sum_and_prune() {
        let mut s: FactStore<Natural> = FactStore::new();
        s.insert(Fact::new("R", ["a", "b"]), nat(2));
        s.insert(Fact::new("R", ["a", "b"]), nat(3));
        s.insert(Fact::new("R", ["x", "y"]), nat(0));
        assert_eq!(s.annotation(&Fact::new("R", ["a", "b"])), nat(5));
        assert_eq!(s.len(), 1);
        assert!(!s.contains(&Fact::new("R", ["x", "y"])));
    }

    #[test]
    fn active_domain_collects_constants() {
        let s = edge_facts("R", &[("a", "b", nat(1)), ("b", "c", nat(1))]);
        let dom = s.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::from("a")));
        assert!(dom.contains(&Value::from("c")));
    }

    #[test]
    fn import_export_round_trip_with_core_relations() {
        let db = provsem_core::paper::figure7_bag();
        let mut store: FactStore<provsem_semiring::NatInf> = FactStore::new();
        store.import_relation("R", db.get("R").unwrap(), &["src", "dst"]);
        assert_eq!(store.len(), 5);
        assert_eq!(
            store.annotation(&Fact::new("R", ["a", "c"])),
            provsem_semiring::NatInf::Fin(3)
        );
        let back = store.export_relation("R", &["src", "dst"]);
        assert_eq!(&back, db.get("R").unwrap());
    }

    #[test]
    fn map_annotations_changes_semiring() {
        let s = edge_facts("R", &[("a", "b", nat(2)), ("b", "c", nat(0))]);
        let b = s.map_annotations(|n| provsem_semiring::Bool::from(!n.is_zero()));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn facts_of_lists_only_that_predicate() {
        let mut s: FactStore<Natural> = FactStore::new();
        s.insert(Fact::new("R", ["a"]), nat(1));
        s.insert(Fact::new("S", ["b"]), nat(1));
        assert_eq!(s.facts_of("R").count(), 1);
        assert_eq!(s.facts_of("T").count(), 0);
        assert_eq!(s.predicates().count(), 2);
    }

    #[test]
    fn fact_display_and_atom_conversion() {
        let f = Fact::new("R", ["a", "b"]);
        assert_eq!(format!("{f}"), "R(a, b)");
        assert!(f.to_atom().is_ground());
    }
}

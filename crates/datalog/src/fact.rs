//! Ground facts and annotated fact stores (the positional / unnamed
//! perspective used for datalog in Section 5 of the paper).

use crate::ast::Atom;
use provsem_core::kernels::{hash_combine, Batch, ColBuilder, HASH_SEED};
use provsem_core::{Database, KRelation, Schema, Tuple, Value};
use provsem_semiring::fxhash::FxHashMap;
use provsem_semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// A ground fact: a predicate name plus a vector of constant values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fact {
    /// Predicate (relation) name.
    pub predicate: String,
    /// The constant arguments, in positional order.
    pub values: Vec<Value>,
}

impl Fact {
    /// Builds a fact.
    pub fn new<I, V>(predicate: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Fact {
            predicate: predicate.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Views the fact as a ground [`Atom`].
    pub fn to_atom(&self) -> Atom {
        Atom::new(
            self.predicate.clone(),
            self.values
                .iter()
                .map(|v| crate::ast::Term::Const(v.clone()))
                .collect(),
        )
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// An annotated fact store: per predicate, a finite-support map from value
/// vectors to K annotations. This is the K-relation notion of Definition 3.1
/// in the unnamed perspective, used by the datalog engine.
#[derive(Clone)]
pub struct FactStore<K> {
    relations: BTreeMap<String, BTreeMap<Vec<Value>, K>>,
}

/// Equality compares the annotated facts only: a predicate entry whose map
/// is empty (left behind by [`FactStore::clear`], or by
/// [`FactStore::set`]ting a fact to zero) is indistinguishable from an
/// absent one. The derived `PartialEq` would tell them apart, which would
/// make the fixpoint loops' `next == current` checks depend on which
/// predicates a scratch buffer happened to hold earlier.
impl<K: PartialEq> PartialEq for FactStore<K> {
    fn eq(&self, other: &Self) -> bool {
        self.relations
            .iter()
            .filter(|(_, rel)| !rel.is_empty())
            .eq(other.relations.iter().filter(|(_, rel)| !rel.is_empty()))
    }
}

impl<K: Eq> Eq for FactStore<K> {}

impl<K: Semiring> FactStore<K> {
    /// An empty store.
    pub fn new() -> Self {
        FactStore {
            relations: BTreeMap::new(),
        }
    }

    /// Adds `annotation` to a fact's current annotation (semiring `+`).
    pub fn insert(&mut self, fact: Fact, annotation: K) {
        if annotation.is_zero() {
            return;
        }
        let rel = self.relations.entry(fact.predicate).or_default();
        match rel.get_mut(&fact.values) {
            Some(existing) => {
                existing.plus_assign(&annotation);
                if existing.is_zero() {
                    rel.remove(&fact.values);
                }
            }
            None => {
                rel.insert(fact.values, annotation);
            }
        }
    }

    /// Replaces a fact's annotation (zero removes it).
    pub fn set(&mut self, fact: Fact, annotation: K) {
        let rel = self.relations.entry(fact.predicate).or_default();
        if annotation.is_zero() {
            rel.remove(&fact.values);
        } else {
            rel.insert(fact.values, annotation);
        }
    }

    /// The annotation of a fact (`0` if absent).
    pub fn annotation(&self, fact: &Fact) -> K {
        self.relations
            .get(&fact.predicate)
            .and_then(|rel| rel.get(&fact.values))
            .cloned()
            .unwrap_or_else(K::zero)
    }

    /// Is the fact in the support?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relations
            .get(&fact.predicate)
            .map(|rel| rel.contains_key(&fact.values))
            .unwrap_or(false)
    }

    /// Iterates over the support facts of one predicate.
    pub fn facts_of<'a>(&'a self, predicate: &'a str) -> impl Iterator<Item = (Fact, &'a K)> + 'a {
        self.relations
            .get(predicate)
            .into_iter()
            .flat_map(move |rel| {
                rel.iter().map(move |(values, k)| {
                    (
                        Fact {
                            predicate: predicate.to_string(),
                            values: values.clone(),
                        },
                        k,
                    )
                })
            })
    }

    /// Iterates over every support fact.
    pub fn facts(&self) -> impl Iterator<Item = (Fact, &K)> {
        self.relations.iter().flat_map(|(pred, rel)| {
            rel.iter().map(move |(values, k)| {
                (
                    Fact {
                        predicate: pred.clone(),
                        values: values.clone(),
                    },
                    k,
                )
            })
        })
    }

    /// Predicate names with at least one support fact. Emptied entries left
    /// behind by [`FactStore::clear`] or a zero [`FactStore::set`] are not
    /// reported, matching the store's equality semantics.
    pub fn predicates(&self) -> impl Iterator<Item = &String> {
        self.relations
            .iter()
            .filter(|(_, rel)| !rel.is_empty())
            .map(|(pred, _)| pred)
    }

    /// Total number of support facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(BTreeMap::len).sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every fact while keeping the allocated per-predicate maps, so
    /// fixpoint loops can reuse one store as a scratch buffer instead of
    /// allocating a fresh one per round.
    pub fn clear(&mut self) {
        for rel in self.relations.values_mut() {
            rel.clear();
        }
    }

    /// Builds a [`FactIndex`] over the support facts of this store.
    pub fn join_index(&self) -> FactIndex {
        FactIndex::from_facts(self.facts().map(|(f, _)| f))
    }

    /// The *active domain*: every constant appearing in any fact.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut dom: Vec<Value> = self
            .relations
            .values()
            .flat_map(|rel| rel.keys().flatten().cloned())
            .collect();
        dom.sort();
        dom.dedup();
        dom
    }

    /// Applies an annotation transformation fact-wise (Proposition 5.7's
    /// `h(R)`).
    pub fn map_annotations<K2: Semiring, F: Fn(&K) -> K2>(&self, f: F) -> FactStore<K2> {
        let mut out = FactStore::new();
        for (fact, k) in self.facts() {
            out.insert(fact, f(k));
        }
        out
    }

    /// Imports a named K-relation from `provsem-core`, using `attributes` to
    /// fix the positional order of the columns.
    pub fn import_relation(
        &mut self,
        predicate: &str,
        relation: &KRelation<K>,
        attributes: &[&str],
    ) {
        for (tuple, k) in relation.iter() {
            let values: Vec<Value> = attributes
                .iter()
                .map(|a| {
                    tuple
                        .get_named(a)
                        .cloned()
                        .unwrap_or_else(|| panic!("attribute {a} missing from tuple"))
                })
                .collect();
            self.insert(Fact::new(predicate, values), k.clone());
        }
    }

    /// Imports one predicate straight from columnar [`Batch`]es — the form
    /// the snapshot-resident `BatchCache` serves. Column order is the
    /// batch's physical order (schema attribute order for converted
    /// relations), which matches what
    /// [`import_relation`](FactStore::import_relation) produces for the
    /// same relation. Annotations merge additively, so a patched cache
    /// entry (base conversion plus appended commit deltas, including
    /// deletions) folds to exactly the relation's current state.
    pub fn import_batches(&mut self, predicate: &str, batches: &[Batch<K>]) {
        for source in batches {
            let materialized;
            let batch = if source.live_rows() == source.phys_rows() {
                source
            } else {
                materialized = source.clone().materialize();
                &materialized
            };
            for row in 0..batch.phys_rows() as u32 {
                let values: Vec<Value> = batch.columns().iter().map(|c| c.value_at(row)).collect();
                self.insert(
                    Fact::new(predicate, values),
                    batch.anns()[row as usize].clone(),
                );
            }
        }
    }

    /// Imports every relation of a core [`Database`] using the given
    /// positional attribute order per relation name.
    pub fn import_database(&mut self, db: &Database<K>, orders: &BTreeMap<String, Vec<String>>) {
        for (name, rel) in db.iter() {
            let order: Vec<&str> = orders
                .get(name)
                .map(|v| v.iter().map(String::as_str).collect())
                .unwrap_or_else(|| rel.schema().attributes().iter().map(|a| a.name()).collect());
            self.import_relation(name, rel, &order);
        }
    }

    /// Exports one predicate as a named K-relation, labelling the positions
    /// with the given attribute names.
    pub fn export_relation(&self, predicate: &str, attributes: &[&str]) -> KRelation<K> {
        let schema = Schema::new(attributes.iter().copied());
        let mut rel = KRelation::empty(schema);
        for (fact, k) in self.facts_of(predicate) {
            assert_eq!(
                fact.arity(),
                attributes.len(),
                "arity mismatch exporting {predicate}"
            );
            let tuple = Tuple::new(
                attributes
                    .iter()
                    .copied()
                    .zip(fact.values.iter().cloned())
                    .collect::<Vec<_>>(),
            );
            rel.insert(tuple, k.clone());
        }
        rel
    }
}

impl<K: Semiring> Default for FactStore<K> {
    fn default() -> Self {
        FactStore::new()
    }
}

impl<K: Semiring + fmt::Debug> fmt::Debug for FactStore<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FactStore {{")?;
        for (fact, k) in self.facts() {
            writeln!(f, "  {fact} ↦ {k:?}")?;
        }
        write!(f, "}}")
    }
}

/// A hash join index over ground facts: by predicate, and — for any
/// *registered* set of bound column positions — by the values at those
/// columns.
///
/// This is the lookup structure behind the keyed-join path of
/// [`crate::grounding`] and the semi-naive evaluator
/// ([`crate::seminaive`]): when a rule body atom is matched with some of its
/// argument positions already bound (constants, or variables bound by
/// earlier atoms), the candidate facts are found with one hash probe instead
/// of a scan over every fact of the predicate.
///
/// Masks (bound-column sets) are registered explicitly so that probing can
/// take `&self`; probing an unregistered mask degrades gracefully to "all
/// facts of the predicate" (callers always validate candidates with a full
/// match, so the index is a pure accelerator and never affects results).
///
/// The index is *column-backed*: besides the fact arena, each predicate
/// keeps append-only [`ColBuilder`] columns (the same typed, dictionary-
/// encoded storage the core batch kernels use), and mask buckets are keyed
/// by the content *hash* of the bound-column values — the identical
/// `hash_combine` scheme the batch executor's join/group kernels hash rows
/// with. Buckets may therefore contain hash collisions; every caller
/// narrows candidates by exact matching (the row path via `match_atom`,
/// the batch path via typed column comparisons), so collisions never
/// affect results. A predicate whose facts disagree on arity degrades to
/// arena-only storage (columns dropped, masks and probing unaffected).
#[derive(Clone, Debug, Default)]
pub struct FactIndex {
    /// Arena of distinct facts; all maps store indices into it.
    facts: Vec<Fact>,
    /// Dedup / membership map: fact → arena index.
    seen: FxHashMap<Fact, usize>,
    /// All facts of a given predicate, in insertion order — the arena index
    /// at position `r` is the fact stored at pred-local row `r` of the
    /// predicate's columns.
    by_predicate: FxHashMap<String, Vec<usize>>,
    /// Arena index → pred-local row (the inverse of `by_predicate`).
    local: Vec<u32>,
    /// Per-predicate append-only typed columns; `None` once a predicate is
    /// poisoned by mixed arities (the arena remains authoritative).
    columns: FxHashMap<String, Option<Vec<ColBuilder>>>,
    /// For a registered `(predicate, columns)` mask, facts keyed by the
    /// content hash of their values at those columns. Nested so probes can
    /// look up with borrowed `&str` / `&[usize]` keys, keeping the hot join
    /// loop allocation-free.
    masks: FxHashMap<String, MaskIndex>,
}

/// Per-predicate bound-column indexes: for each registered column mask, the
/// arena indices of the facts keyed by the content hash of their values at
/// those columns.
type MaskIndex = FxHashMap<Vec<usize>, FxHashMap<u64, Vec<usize>>>;

/// Folds the content hashes of a key's values into one bucket key — the
/// same combine the batch kernels use for row hashing, so probes built
/// from retained index columns ([`ColBuilder::content_hash_at`]) and from
/// plain values agree.
pub(crate) fn mask_key_hash<'a>(values: impl IntoIterator<Item = &'a Value>) -> u64 {
    values
        .into_iter()
        .fold(HASH_SEED, |h, v| hash_combine(h, v.content_hash()))
}

impl FactIndex {
    /// An empty index.
    pub fn new() -> Self {
        FactIndex::default()
    }

    /// Builds an index over the given facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Self {
        let mut index = FactIndex::new();
        for fact in facts {
            index.add_fact(fact);
        }
        index
    }

    /// Number of distinct facts indexed.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Is the fact present?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.seen.contains_key(fact)
    }

    /// The arena index of a fact, if present (the batch fixpoint uses this
    /// to find the pred-local row whose annotation a change overwrites).
    pub fn position(&self, fact: &Fact) -> Option<usize> {
        self.seen.get(fact).copied()
    }

    /// The fact stored at an index returned by [`FactIndex::candidates`].
    pub fn fact(&self, idx: usize) -> &Fact {
        &self.facts[idx]
    }

    /// Iterates over every indexed fact.
    pub fn facts(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter()
    }

    /// Adds a fact, updating the predicate listing, the predicate's typed
    /// columns, and every registered mask for its predicate. Returns `false`
    /// if the fact was already present.
    pub fn add_fact(&mut self, fact: Fact) -> bool {
        if self.seen.contains_key(&fact) {
            return false;
        }
        let idx = self.facts.len();
        self.seen.insert(fact.clone(), idx);
        let rows = self.by_predicate.entry(fact.predicate.clone()).or_default();
        self.local.push(rows.len() as u32);
        rows.push(idx);
        let cols = self
            .columns
            .entry(fact.predicate.clone())
            .or_insert_with(|| Some((0..fact.arity()).map(|_| ColBuilder::new()).collect()));
        match cols {
            Some(builders) if builders.len() == fact.arity() => {
                for (builder, v) in builders.iter_mut().zip(&fact.values) {
                    builder.push(v.clone());
                }
            }
            // Mixed arity within one predicate: columnar storage no longer
            // lines up; degrade to the arena for this predicate.
            cols => *cols = None,
        }
        if let Some(pred_masks) = self.masks.get_mut(&fact.predicate) {
            for (columns, buckets) in pred_masks.iter_mut() {
                // Mixed arity: a fact that does not cover the mask's columns
                // can never match a probe over them, so it joins no bucket.
                if columns.iter().any(|&c| c >= fact.arity()) {
                    continue;
                }
                let h = mask_key_hash(columns.iter().map(|&c| &fact.values[c]));
                buckets.entry(h).or_default().push(idx);
            }
        }
        self.facts.push(fact);
        true
    }

    /// Registers a bound-column mask for a predicate, building its buckets
    /// from the facts already present. No-op for an empty column set (that
    /// case is served by the per-predicate listing) or a mask already
    /// registered.
    pub fn register_mask(&mut self, predicate: &str, columns: &[usize]) {
        if columns.is_empty() {
            return;
        }
        let pred_masks = self.masks.entry(predicate.to_string()).or_default();
        if pred_masks.contains_key(columns) {
            return;
        }
        let mut buckets: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        if let Some(indices) = self.by_predicate.get(predicate) {
            for &idx in indices {
                let fact = &self.facts[idx];
                if columns.iter().any(|&c| c >= fact.arity()) {
                    continue;
                }
                let h = mask_key_hash(columns.iter().map(|&c| &fact.values[c]));
                buckets.entry(h).or_default().push(idx);
            }
        }
        pred_masks.insert(columns.to_vec(), buckets);
    }

    /// The candidate facts of `predicate` whose values at `columns` equal
    /// `key`, as indices into the arena. With an empty mask (or one that was
    /// never registered) this is every fact of the predicate; with a
    /// registered mask it is the hash bucket of the key — a superset (up to
    /// hash collisions) the caller narrows by matching, so results never
    /// depend on which masks are registered.
    pub fn candidates(&self, predicate: &str, columns: &[usize], key: &[Value]) -> &[usize] {
        if columns.is_empty() {
            return self.predicate_rows(predicate);
        }
        self.candidates_hashed(predicate, columns, mask_key_hash(key))
    }

    /// [`FactIndex::candidates`] with the bucket hash precomputed by the
    /// caller (the batch probe path hashes straight out of its frontier
    /// columns, never materializing the key values).
    pub fn candidates_hashed(&self, predicate: &str, columns: &[usize], hash: u64) -> &[usize] {
        if !columns.is_empty() {
            if let Some(buckets) = self.masks.get(predicate).and_then(|m| m.get(columns)) {
                return buckets.get(&hash).map(Vec::as_slice).unwrap_or(&[]);
            }
        }
        self.predicate_rows(predicate)
    }

    /// Every fact of a predicate, as arena indices in pred-local row order.
    pub fn predicate_rows(&self, predicate: &str) -> &[usize] {
        self.by_predicate
            .get(predicate)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The typed, append-only columns of a predicate — one [`ColBuilder`]
    /// per argument position, with pred-local row `r` holding the fact at
    /// `predicate_rows(predicate)[r]`. `None` when the predicate has no
    /// facts or was poisoned by mixed arities (read the arena instead).
    pub fn predicate_columns(&self, predicate: &str) -> Option<&[ColBuilder]> {
        self.columns.get(predicate).and_then(|c| c.as_deref())
    }

    /// The pred-local row of an arena index (the row of that fact within
    /// its predicate's columns).
    pub fn local_row(&self, idx: usize) -> u32 {
        self.local[idx]
    }
}

/// Builds the edge fact store used by the Figure 6/7 examples from
/// `(src, dst, annotation)` triples.
pub fn edge_facts<K: Semiring>(predicate: &str, edges: &[(&str, &str, K)]) -> FactStore<K> {
    let mut store = FactStore::new();
    for (src, dst, k) in edges {
        store.insert(Fact::new(predicate, [*src, *dst]), k.clone());
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use provsem_semiring::Natural;

    fn nat(n: u64) -> Natural {
        Natural::from(n)
    }

    #[test]
    fn insert_sum_and_prune() {
        let mut s: FactStore<Natural> = FactStore::new();
        s.insert(Fact::new("R", ["a", "b"]), nat(2));
        s.insert(Fact::new("R", ["a", "b"]), nat(3));
        s.insert(Fact::new("R", ["x", "y"]), nat(0));
        assert_eq!(s.annotation(&Fact::new("R", ["a", "b"])), nat(5));
        assert_eq!(s.len(), 1);
        assert!(!s.contains(&Fact::new("R", ["x", "y"])));
    }

    #[test]
    fn active_domain_collects_constants() {
        let s = edge_facts("R", &[("a", "b", nat(1)), ("b", "c", nat(1))]);
        let dom = s.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::from("a")));
        assert!(dom.contains(&Value::from("c")));
    }

    #[test]
    fn import_export_round_trip_with_core_relations() {
        let db = provsem_core::paper::figure7_bag();
        let mut store: FactStore<provsem_semiring::NatInf> = FactStore::new();
        store.import_relation("R", db.get("R").unwrap(), &["src", "dst"]);
        assert_eq!(store.len(), 5);
        assert_eq!(
            store.annotation(&Fact::new("R", ["a", "c"])),
            provsem_semiring::NatInf::Fin(3)
        );
        let back = store.export_relation("R", &["src", "dst"]);
        assert_eq!(&back, db.get("R").unwrap());
    }

    #[test]
    fn map_annotations_changes_semiring() {
        let s = edge_facts("R", &[("a", "b", nat(2)), ("b", "c", nat(0))]);
        let b = s.map_annotations(|n| provsem_semiring::Bool::from(!n.is_zero()));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn facts_of_lists_only_that_predicate() {
        let mut s: FactStore<Natural> = FactStore::new();
        s.insert(Fact::new("R", ["a"]), nat(1));
        s.insert(Fact::new("S", ["b"]), nat(1));
        assert_eq!(s.facts_of("R").count(), 1);
        assert_eq!(s.facts_of("T").count(), 0);
        assert_eq!(s.predicates().count(), 2);
    }

    #[test]
    fn clear_empties_but_keeps_store_usable() {
        let mut s = edge_facts("R", &[("a", "b", nat(2)), ("b", "c", nat(3))]);
        s.clear();
        assert!(s.is_empty());
        s.insert(Fact::new("R", ["x", "y"]), nat(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn equality_ignores_phantom_empty_predicate_entries() {
        // A cleared-and-refilled buffer must compare equal to a fresh store
        // with the same facts, no matter which predicates it held before.
        let mut recycled = edge_facts("Z", &[("p", "q", nat(7))]);
        recycled.clear();
        recycled.insert(Fact::new("R", ["a", "b"]), nat(2));
        let fresh = edge_facts("R", &[("a", "b", nat(2))]);
        assert_eq!(recycled, fresh);
        // `set` to zero leaves an empty entry too; it must also not count.
        let mut zeroed: FactStore<Natural> = FactStore::new();
        zeroed.set(Fact::new("S", ["x"]), nat(0));
        assert_eq!(zeroed, FactStore::new());
        assert_ne!(fresh, FactStore::new());
        // The phantom entries are invisible through the API as well.
        assert_eq!(zeroed.predicates().count(), 0);
        assert_eq!(
            recycled.predicates().collect::<Vec<_>>(),
            [&"R".to_string()]
        );
    }

    #[test]
    fn index_probes_by_bound_columns() {
        let s = edge_facts(
            "R",
            &[("a", "b", nat(1)), ("a", "c", nat(1)), ("b", "c", nat(1))],
        );
        let mut index = s.join_index();
        index.register_mask("R", &[0]);
        let from_a = index.candidates("R", &[0], &[Value::from("a")]);
        assert_eq!(from_a.len(), 2);
        for &i in from_a {
            assert_eq!(index.fact(i).values[0], Value::from("a"));
        }
        assert!(index.candidates("R", &[0], &[Value::from("z")]).is_empty());
        // Unregistered masks degrade to the full predicate listing.
        assert_eq!(index.candidates("R", &[1], &[Value::from("c")]).len(), 3);
        assert!(index.candidates("S", &[], &[]).is_empty());
    }

    #[test]
    fn index_add_fact_updates_registered_masks() {
        let mut index = FactIndex::new();
        index.register_mask("R", &[1]);
        assert!(index.add_fact(Fact::new("R", ["a", "b"])));
        assert!(!index.add_fact(Fact::new("R", ["a", "b"])), "dedup");
        index.add_fact(Fact::new("R", ["c", "b"]));
        index.add_fact(Fact::new("R", ["c", "d"]));
        assert_eq!(index.len(), 3);
        assert!(index.contains(&Fact::new("R", ["c", "d"])));
        let to_b = index.candidates("R", &[1], &[Value::from("b")]);
        assert_eq!(to_b.len(), 2);
        // Masks registered after the fact see the same buckets.
        index.register_mask("R", &[0, 1]);
        let exact = index.candidates("R", &[0, 1], &[Value::from("c"), Value::from("d")]);
        assert_eq!(exact.len(), 1);
        assert_eq!(index.fact(exact[0]), &Fact::new("R", ["c", "d"]));
    }

    #[test]
    fn fact_display_and_atom_conversion() {
        let f = Fact::new("R", ["a", "b"]);
        assert_eq!(format!("{f}"), "R(a, b)");
        assert!(f.to_atom().is_ground());
    }
}

//! Exact datalog evaluation over ℕ∞ (bag semantics with infinite
//! multiplicities) and over distributive lattices.
//!
//! The Kleene iteration of [`crate::naive`] does not terminate when some
//! tuple has infinitely many derivation trees (the paper's Figure 7: `u`,
//! `v`, `w` "grow unboundedly"). Section 7 shows how unbounded growth can be
//! detected; this module implements the detection analytically:
//!
//! * a derivable idb fact has infinitely many derivation trees **iff** it can
//!   reach a cycle of the instantiation's dependency graph
//!   ([`crate::grounding::DependencyGraph`]);
//! * such facts get annotation ∞ (their sum of infinitely many ≥ 1 products
//!   is ∞ in ℕ∞);
//! * the remaining facts form a DAG and their exact multiplicities are
//!   computed bottom-up in topological order.
//!
//! For K a distributive lattice (Section 8) no ∞ handling is needed: the
//! Kleene iteration itself converges, and [`evaluate_lattice`] simply runs it
//! to the fixed point.

use crate::ast::Program;
use crate::fact::{Fact, FactStore};
use crate::grounding::{derivable_facts, instantiate_over, DependencyGraph, GroundRule};
use provsem_semiring::{DistributiveLattice, NatInf, Semiring};
use std::collections::BTreeSet;

/// Exact datalog evaluation over ℕ∞ (Definition 5.1 / Theorem 5.6 semantics
/// with bag multiplicities).
pub fn evaluate_natinf(program: &Program, edb: &FactStore<NatInf>) -> FactStore<NatInf> {
    let derivable = derivable_facts(program, edb);
    let ground = instantiate_over(program, &derivable);
    let idb_predicates = program.idb_predicates();
    let is_idb = |p: &str| idb_predicates.contains(p);

    let graph = DependencyGraph::build(&ground, &is_idb);
    let infinite = graph.facts_reaching_cycles();

    let idb_facts: BTreeSet<Fact> = derivable
        .iter()
        .filter(|f| is_idb(&f.predicate))
        .cloned()
        .collect();

    let mut result: FactStore<NatInf> = FactStore::new();
    // Facts reaching cycles: infinitely many derivation trees, each with a
    // non-zero (≥ 1) product, so the countable sum is ∞.
    for fact in &idb_facts {
        if infinite.contains(fact) {
            result.set(fact.clone(), NatInf::Inf);
        }
    }

    // The acyclic remainder: compute multiplicities bottom-up.
    let order = graph.topological_order_acyclic(&idb_facts);
    for fact in order {
        let mut total = NatInf::Fin(0);
        for rule in ground.iter().filter(|r| r.head == fact) {
            let mut product = NatInf::Fin(1);
            for body in &rule.body {
                let ann = if is_idb(&body.predicate) {
                    result.annotation(body)
                } else {
                    edb.annotation(body)
                };
                product = product.times(&ann);
            }
            total = total.plus(&product);
        }
        result.set(fact, total);
    }
    result
}

/// Datalog evaluation for a distributive lattice K (Section 8 of the paper):
/// the Kleene iteration converges, and we run it until it does.
///
/// Lattice `+` is idempotent, so this runs the semi-naive delta rewrite
/// ([`crate::seminaive::seminaive_idempotent`]) — exact for this class, and
/// it skips both the up-front grounding and the per-round re-derivations of
/// the naive loop.
///
/// `max_rounds` is a safety bound (the number of *distinct annotation values*
/// reachable is finite for the lattices used in practice — PosBool over the
/// input variables, P(Ω), 𝔹, fuzzy over the input values — so convergence is
/// guaranteed well before any reasonable bound). Returns `None` only if the
/// bound is exceeded.
pub fn evaluate_lattice<K: DistributiveLattice>(
    program: &Program,
    edb: &FactStore<K>,
    max_rounds: usize,
) -> Option<FactStore<K>> {
    let result = crate::seminaive::seminaive_idempotent(program, edb, max_rounds);
    if result.converged {
        Some(result.idb)
    } else {
        None
    }
}

/// Convenience: the set of idb facts whose ℕ∞ annotation would be ∞, i.e.
/// the facts with infinitely many derivation trees. Exposed separately
/// because the provenance machinery (Sections 6–7) needs the classification
/// without the multiplicities.
pub fn facts_with_infinitely_many_derivations(
    program: &Program,
    ground: &[GroundRule],
) -> BTreeSet<Fact> {
    let idb_predicates = program.idb_predicates();
    let graph = DependencyGraph::build(ground, &|p| idb_predicates.contains(p));
    graph.facts_reaching_cycles()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::edge_facts;
    use provsem_semiring::{Bool, Event, PosBool, Semiring};

    fn figure7_edb() -> FactStore<NatInf> {
        edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(2)),
                ("a", "c", NatInf::Fin(3)),
                ("c", "b", NatInf::Fin(2)),
                ("b", "d", NatInf::Fin(1)),
                ("d", "d", NatInf::Fin(1)),
            ],
        )
    }

    #[test]
    fn figure7_exact_ninfinity_answers() {
        // Figure 7(b): Q ⊇ {(a,b)↦8, (a,c)↦3, (c,b)↦2, (b,d)↦∞, (d,d)↦∞,
        // (a,d)↦∞}. The tuple (c,d) (reachable via c→b→d) is derivable as
        // well but omitted from the paper's figure; it gets ∞ like every
        // tuple whose derivations pass through the d→d self-loop.
        let program = Program::transitive_closure("R", "Q");
        let out = evaluate_natinf(&program, &figure7_edb());
        let q = |a: &str, b: &str| out.annotation(&Fact::new("Q", [a, b]));
        assert_eq!(q("a", "b"), NatInf::Fin(8));
        assert_eq!(q("a", "c"), NatInf::Fin(3));
        assert_eq!(q("c", "b"), NatInf::Fin(2));
        assert_eq!(q("b", "d"), NatInf::Inf);
        assert_eq!(q("d", "d"), NatInf::Inf);
        assert_eq!(q("a", "d"), NatInf::Inf);
        assert_eq!(q("c", "d"), NatInf::Inf);
        assert_eq!(out.facts_of("Q").count(), 7);
    }

    #[test]
    fn acyclic_graph_has_all_finite_multiplicities() {
        // A DAG: path counting. a→b (2 ways), b→c (3 ways), a→c direct (1).
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(2)),
                ("b", "c", NatInf::Fin(3)),
                ("a", "c", NatInf::Fin(1)),
            ],
        );
        let out = evaluate_natinf(&program, &edb);
        // Q(a,c) = direct 1 + via b: 2·3 = 7.
        assert_eq!(out.annotation(&Fact::new("Q", ["a", "c"])), NatInf::Fin(7));
        assert_eq!(out.annotation(&Fact::new("Q", ["a", "b"])), NatInf::Fin(2));
        assert!(out.facts().all(|(_, k)| !k.is_infinite()));
    }

    #[test]
    fn exact_agrees_with_bounded_iteration_on_acyclic_instances() {
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(1)),
                ("b", "c", NatInf::Fin(2)),
                ("c", "d", NatInf::Fin(1)),
                ("a", "d", NatInf::Fin(5)),
            ],
        );
        let exact = evaluate_natinf(&program, &edb);
        let iterated = crate::naive::kleene_iterate(&program, &edb, 32);
        assert!(iterated.converged);
        for (fact, ann) in exact.facts() {
            assert_eq!(iterated.idb.annotation(&fact), *ann, "{fact}");
        }
        assert_eq!(exact.len(), iterated.idb.len());
    }

    #[test]
    fn cycle_with_nonunit_rules_still_infinite() {
        // Two-node cycle a→b→a: every reachability fact has infinitely many
        // derivations under the quadratic TC program.
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[("a", "b", NatInf::Fin(1)), ("b", "a", NatInf::Fin(1))],
        );
        let out = evaluate_natinf(&program, &edb);
        for (fact, ann) in out.facts_of("Q") {
            assert_eq!(*ann, NatInf::Inf, "{fact}");
        }
        assert_eq!(out.facts_of("Q").count(), 4);
    }

    #[test]
    fn linear_tc_on_a_dag_counts_paths() {
        // Diamond: a→b, a→c, b→d, c→d; two paths a→d.
        let program = Program::linear_transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(1)),
                ("a", "c", NatInf::Fin(1)),
                ("b", "d", NatInf::Fin(1)),
                ("c", "d", NatInf::Fin(1)),
            ],
        );
        let out = evaluate_natinf(&program, &edb);
        assert_eq!(out.annotation(&Fact::new("Q", ["a", "d"])), NatInf::Fin(2));
    }

    #[test]
    fn sanity_check_prop54_boolean_support() {
        // Proposition 5.4: the 𝔹 answer's support equals the standard datalog
        // answer — and also equals the support of the ℕ∞ answer.
        let program = Program::transitive_closure("R", "Q");
        let edb_nat = figure7_edb();
        let edb_bool = edb_nat.map_annotations(|k| Bool::from(!k.is_zero()));
        let bool_out = evaluate_lattice(&program, &edb_bool, 64).unwrap();
        let nat_out = evaluate_natinf(&program, &edb_nat);
        let bool_support: BTreeSet<Fact> = bool_out.facts().map(|(f, _)| f).collect();
        let nat_support: BTreeSet<Fact> = nat_out.facts().map(|(f, _)| f).collect();
        assert_eq!(bool_support, nat_support);
    }

    #[test]
    fn lattice_evaluation_on_ctables_transitive_closure() {
        // Datalog on boolean c-tables (Section 8: "This is new for incomplete
        // databases"): a cyclic graph whose edges are optional.
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", PosBool::var("e1")),
                ("b", "a", PosBool::var("e2")),
            ],
        );
        let out = evaluate_lattice(&program, &edb, 64).unwrap();
        // Despite infinitely many derivation trees, the PosBool annotation is
        // the finite expression e1 ∧ e2 (idempotence collapses the pumping).
        assert_eq!(
            out.annotation(&Fact::new("Q", ["a", "a"])),
            PosBool::var("e1").times(&PosBool::var("e2"))
        );
        assert_eq!(
            out.annotation(&Fact::new("Q", ["a", "b"])),
            PosBool::var("e1")
        );
    }

    #[test]
    fn lattice_evaluation_on_event_tables() {
        // Datalog on event tables (generalizing probabilistic datalog): the
        // event of Q(a,c) is the intersection of the two edge events.
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", Event::of_worlds([0, 1])),
                ("b", "c", Event::of_worlds([1, 2])),
            ],
        );
        let out = evaluate_lattice(&program, &edb, 64).unwrap();
        assert_eq!(
            out.annotation(&Fact::new("Q", ["a", "c"])),
            Event::of_worlds([1])
        );
    }

    #[test]
    fn infinite_fact_classification_matches_figure7() {
        let program = Program::transitive_closure("R", "Q");
        let edb = figure7_edb();
        let derivable = derivable_facts(&program, &edb);
        let ground = instantiate_over(&program, &derivable);
        let infinite = facts_with_infinitely_many_derivations(&program, &ground);
        assert!(infinite.contains(&Fact::new("Q", ["d", "d"])));
        assert!(infinite.contains(&Fact::new("Q", ["b", "d"])));
        assert!(infinite.contains(&Fact::new("Q", ["a", "d"])));
        assert!(!infinite.contains(&Fact::new("Q", ["a", "b"])));
    }
}

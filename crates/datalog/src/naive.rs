//! Fixpoint (Kleene) evaluation of datalog on K-relations.
//!
//! Definition 5.5 / Theorem 5.6 of the paper: the K-annotation of the idb
//! facts is the least fixed point of the polynomial system
//! `Q̄ = T_q(R, Q̄)`, computed as `sup_m f^m(0, …, 0)`. This module implements
//! that iteration directly over the grounded instantiation. The iteration
//! converges for lattices and other "stabilizing" inputs; for ℕ∞ instances
//! with infinitely many derivations it grows forever — exact ℕ∞ answers are
//! produced by [`crate::exact`], and this module's bounded iteration is the
//! building block and the ablation baseline.

use crate::ast::Program;
use crate::fact::FactStore;
use crate::grounding::{derivable_facts, instantiate_over, GroundRule};
use provsem_semiring::{OmegaContinuous, Semiring};
use std::collections::BTreeSet;

/// The outcome of a bounded fixpoint iteration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixpointResult<K: Semiring> {
    /// Annotations of the idb facts after the last iteration performed.
    pub idb: FactStore<K>,
    /// Number of iterations actually performed.
    pub iterations: usize,
    /// Whether the iteration reached a fixed point (`true`) or stopped at the
    /// iteration bound while still changing (`false`).
    pub converged: bool,
}

/// One application of the immediate-consequence operator `T_q` on
/// annotations: for every ground rule, multiply the annotations of its body
/// facts (taking edb facts from `edb` and idb facts from `current`) and sum
/// the contributions per head fact.
pub fn immediate_consequence<K: Semiring>(
    ground_rules: &[GroundRule],
    idb_predicates: &BTreeSet<String>,
    edb: &FactStore<K>,
    current: &FactStore<K>,
) -> FactStore<K> {
    let mut next = FactStore::new();
    immediate_consequence_into(ground_rules, idb_predicates, edb, current, &mut next);
    next
}

/// Like [`immediate_consequence`] but writing into a caller-provided store
/// (cleared first), so the Kleene loop can ping-pong between two buffers
/// instead of allocating a fresh `FactStore` every round — including the
/// rounds where nothing changes any more.
pub fn immediate_consequence_into<K: Semiring>(
    ground_rules: &[GroundRule],
    idb_predicates: &BTreeSet<String>,
    edb: &FactStore<K>,
    current: &FactStore<K>,
    next: &mut FactStore<K>,
) {
    next.clear();
    for rule in ground_rules {
        let mut product = K::one();
        let mut zero = false;
        for body_fact in &rule.body {
            let ann = if idb_predicates.contains(&body_fact.predicate) {
                current.annotation(body_fact)
            } else {
                edb.annotation(body_fact)
            };
            if ann.is_zero() {
                zero = true;
                break;
            }
            product.times_assign(&ann);
        }
        if !zero {
            next.insert(rule.head.clone(), product);
        }
    }
}

/// Runs the Kleene iteration `Q₀ = 0, Q_{m+1} = T_q(R, Q_m)` for at most
/// `max_iterations` steps, stopping early at a fixed point.
pub fn kleene_iterate<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
    max_iterations: usize,
) -> FixpointResult<K> {
    let derivable = derivable_facts(program, edb);
    let ground = instantiate_over(program, &derivable);
    kleene_iterate_grounded(program, &ground, edb, max_iterations)
}

/// Like [`kleene_iterate`] but over a pre-computed instantiation (so callers
/// sweeping iteration counts do not re-ground every time).
pub fn kleene_iterate_grounded<K: Semiring>(
    program: &Program,
    ground: &[GroundRule],
    edb: &FactStore<K>,
    max_iterations: usize,
) -> FixpointResult<K> {
    kleene_iterate_grounded_by(program, ground, edb, max_iterations, |next, current| {
        next == current
    })
}

/// The shared Kleene driver, parameterized by the fixpoint test so callers
/// with expensive semantic equality can substitute a cheaper sound check —
/// the circuit provenance evaluation compares node ids
/// (`crate::provenance::datalog_provenance_circuit`) instead of `==`, which
/// for circuits would expand polynomials.
pub(crate) fn kleene_iterate_grounded_by<K: Semiring>(
    program: &Program,
    ground: &[GroundRule],
    edb: &FactStore<K>,
    max_iterations: usize,
    reached_fixpoint: impl Fn(&FactStore<K>, &FactStore<K>) -> bool,
) -> FixpointResult<K> {
    let idb_predicates = program.idb_predicates();
    // When no rule consumes an idb fact, `T` is a constant function: one
    // application reaches the fixpoint, and re-applying it (as the loop
    // below otherwise must, to observe `next == current`) is pure waste.
    // Deliberately a *syntactic* check (on the program, not the grounded
    // instantiation) so the `converged` flag agrees with the semi-naive
    // evaluator at every round bound — see `crate::seminaive`'s docs.
    let recursive = program
        .rules
        .iter()
        .any(|r| r.body.iter().any(|a| idb_predicates.contains(&a.predicate)));
    let mut current: FactStore<K> = FactStore::new();
    let mut next: FactStore<K> = FactStore::new();
    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iterations {
        immediate_consequence_into(ground, &idb_predicates, edb, &current, &mut next);
        iterations += 1;
        if !recursive {
            std::mem::swap(&mut current, &mut next);
            converged = true;
            break;
        }
        if reached_fixpoint(&next, &current) {
            converged = true;
            break;
        }
        std::mem::swap(&mut current, &mut next);
    }
    FixpointResult {
        idb: current,
        iterations,
        converged,
    }
}

/// Evaluates a datalog program over an ω-continuous semiring by iterating to
/// a fixed point, using the semiring's own convergence bound when it has one
/// and `fallback_bound` otherwise. Returns `None` when the iteration did not
/// converge within the bound (which for ℕ∞ signals the presence of tuples
/// with infinitely many derivations — use [`crate::exact::evaluate_natinf`]).
pub fn evaluate_fixpoint<K: OmegaContinuous>(
    program: &Program,
    edb: &FactStore<K>,
    fallback_bound: usize,
) -> Option<FactStore<K>> {
    let derivable = derivable_facts(program, edb);
    let ground = instantiate_over(program, &derivable);
    let num_idb = derivable
        .iter()
        .filter(|f| program.idb_predicates().contains(&f.predicate))
        .count();
    let bound = K::convergence_bound(num_idb)
        .unwrap_or(fallback_bound)
        .max(2);
    let result = kleene_iterate_grounded(program, &ground, edb, bound);
    if result.converged {
        Some(result.idb)
    } else {
        None
    }
}

/// Semi-naive evaluation for `+`-idempotent semirings: only derivations that
/// use at least one "new" fact from the previous round are recomputed.
///
/// For idempotent `+` (sets, lattices, tropical) this computes the same
/// fixpoint as [`kleene_iterate`] while doing much less work per round; for
/// non-idempotent semirings (ℕ, ℕ\[X\]) re-derivations change the result, so
/// this function is deliberately restricted by the
/// [`provsem_semiring::PlusIdempotent`] bound.
///
/// This is a thin alias for [`crate::seminaive::seminaive_idempotent`],
/// kept here because the semi-naive evaluator graduated from this module;
/// see [`crate::seminaive`] for the delta machinery and the general-semiring
/// variant.
pub fn seminaive_evaluate<K>(
    program: &Program,
    edb: &FactStore<K>,
    max_rounds: usize,
) -> FixpointResult<K>
where
    K: Semiring + provsem_semiring::PlusIdempotent,
{
    crate::seminaive::seminaive_idempotent(program, edb, max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::{edge_facts, Fact};
    use provsem_semiring::{Bool, NatInf, Natural, PosBool, Tropical};

    fn nat(n: u64) -> Natural {
        Natural::from(n)
    }

    #[test]
    fn figure6_conjunctive_query_bag_semantics() {
        // Figure 6(c): Q(a,a)↦4, Q(a,b)↦18, Q(b,b)↦16.
        let program = Program::figure6_query();
        let edb = edge_facts(
            "R",
            &[("a", "a", nat(2)), ("a", "b", nat(3)), ("b", "b", nat(4))],
        );
        let result = kleene_iterate(&program, &edb, 10);
        assert!(result.converged);
        assert_eq!(result.idb.annotation(&Fact::new("Q", ["a", "a"])), nat(4));
        assert_eq!(result.idb.annotation(&Fact::new("Q", ["a", "b"])), nat(18));
        assert_eq!(result.idb.annotation(&Fact::new("Q", ["b", "b"])), nat(16));
        assert_eq!(result.idb.facts_of("Q").count(), 3);
    }

    #[test]
    fn figure7_two_iterations_match_the_paper() {
        // The paper: "Calculating its solution we get after two fixed point
        // iterations x = 8, y = 3, z = 2, u = 2, v = 2, w = 2."
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(2)),
                ("a", "c", NatInf::Fin(3)),
                ("c", "b", NatInf::Fin(2)),
                ("b", "d", NatInf::Fin(1)),
                ("d", "d", NatInf::Fin(1)),
            ],
        );
        let result = kleene_iterate(&program, &edb, 2);
        let q = |a: &str, b: &str| result.idb.annotation(&Fact::new("Q", [a, b]));
        assert_eq!(q("a", "b"), NatInf::Fin(8)); // x
        assert_eq!(q("a", "c"), NatInf::Fin(3)); // y
        assert_eq!(q("c", "b"), NatInf::Fin(2)); // z
        assert_eq!(q("b", "d"), NatInf::Fin(2)); // u
        assert_eq!(q("d", "d"), NatInf::Fin(2)); // v
        assert_eq!(q("a", "d"), NatInf::Fin(2)); // w
        assert!(!result.converged);
    }

    #[test]
    fn figure7_iteration_does_not_converge_but_stable_entries_stay() {
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(2)),
                ("a", "c", NatInf::Fin(3)),
                ("c", "b", NatInf::Fin(2)),
                ("b", "d", NatInf::Fin(1)),
                ("d", "d", NatInf::Fin(1)),
            ],
        );
        let r5 = kleene_iterate(&program, &edb, 5);
        let r8 = kleene_iterate(&program, &edb, 8);
        assert!(!r5.converged && !r8.converged);
        // x, y, z have stabilized; u, v, w keep growing.
        let q5 = |a: &str, b: &str| r5.idb.annotation(&Fact::new("Q", [a, b]));
        let q8 = |a: &str, b: &str| r8.idb.annotation(&Fact::new("Q", [a, b]));
        assert_eq!(q5("a", "b"), q8("a", "b"));
        assert_eq!(q5("a", "c"), q8("a", "c"));
        assert_eq!(q5("c", "b"), q8("c", "b"));
        assert!(q5("d", "d") < q8("d", "d"));
        assert!(q5("a", "d") < q8("a", "d"));
    }

    #[test]
    fn boolean_transitive_closure_converges() {
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", Bool::from(true)),
                ("b", "c", Bool::from(true)),
                ("c", "d", Bool::from(true)),
            ],
        );
        let out = evaluate_fixpoint(&program, &edb, 64).expect("𝔹 evaluation converges");
        assert_eq!(
            out.annotation(&Fact::new("Q", ["a", "d"])),
            Bool::from(true)
        );
        assert_eq!(
            out.annotation(&Fact::new("Q", ["d", "a"])),
            Bool::from(false)
        );
        assert_eq!(out.facts_of("Q").count(), 6);
    }

    #[test]
    fn tropical_transitive_closure_computes_shortest_paths() {
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", Tropical::cost(1)),
                ("b", "c", Tropical::cost(2)),
                ("a", "c", Tropical::cost(5)),
                ("c", "c", Tropical::cost(0)),
            ],
        );
        let out = evaluate_fixpoint(&program, &edb, 64).expect("tropical evaluation converges");
        // Shortest a→c path costs 3 (< the direct edge 5).
        assert_eq!(
            out.annotation(&Fact::new("Q", ["a", "c"])),
            Tropical::cost(3)
        );
        assert_eq!(
            out.annotation(&Fact::new("Q", ["a", "b"])),
            Tropical::cost(1)
        );
    }

    #[test]
    fn posbool_transitive_closure_converges_despite_cycles() {
        // Datalog on c-tables (Section 8): PosBool annotations stabilize even
        // though the graph has a cycle.
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", PosBool::var("e1")),
                ("b", "a", PosBool::var("e2")),
                ("b", "c", PosBool::var("e3")),
            ],
        );
        let out = evaluate_fixpoint(&program, &edb, 64).expect("PosBool evaluation converges");
        assert_eq!(
            out.annotation(&Fact::new("Q", ["a", "c"])),
            PosBool::var("e1").times(&PosBool::var("e3"))
        );
        // a→a requires both e1 and e2.
        assert_eq!(
            out.annotation(&Fact::new("Q", ["a", "a"])),
            PosBool::var("e1").times(&PosBool::var("e2"))
        );
    }

    #[test]
    fn seminaive_agrees_with_naive_on_idempotent_semirings() {
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", Bool::from(true)),
                ("b", "c", Bool::from(true)),
                ("c", "a", Bool::from(true)),
                ("c", "d", Bool::from(true)),
            ],
        );
        let naive = evaluate_fixpoint(&program, &edb, 64).unwrap();
        let semi = seminaive_evaluate(&program, &edb, 64);
        assert!(semi.converged);
        for (fact, ann) in naive.facts() {
            assert_eq!(semi.idb.annotation(&fact), *ann, "{fact}");
        }
        assert_eq!(naive.len(), semi.idb.len());
    }

    #[test]
    fn seminaive_tropical_shortest_paths() {
        let program = Program::linear_transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", Tropical::cost(4)),
                ("b", "c", Tropical::cost(1)),
                ("a", "c", Tropical::cost(10)),
            ],
        );
        let semi = seminaive_evaluate(&program, &edb, 64);
        assert!(semi.converged);
        assert_eq!(
            semi.idb.annotation(&Fact::new("Q", ["a", "c"])),
            Tropical::cost(5)
        );
    }

    #[test]
    fn immediate_consequence_of_empty_program_is_empty() {
        let program = Program::new(vec![]);
        let edb: FactStore<Natural> = edge_facts("R", &[("a", "b", nat(1))]);
        let result = kleene_iterate(&program, &edb, 4);
        assert!(result.converged);
        assert!(result.idb.is_empty());
    }

    #[test]
    fn nonrecursive_instantiation_converges_after_one_application() {
        // `T` is constant when no ground rule consumes an idb fact, so the
        // loop must not burn a second application just to observe the
        // fixpoint. Pins down the early exit.
        let program = Program::figure6_query();
        let edb = edge_facts(
            "R",
            &[("a", "a", nat(2)), ("a", "b", nat(3)), ("b", "b", nat(4))],
        );
        let result = kleene_iterate(&program, &edb, 10);
        assert!(result.converged);
        assert_eq!(result.iterations, 1);
        assert_eq!(result.idb.annotation(&Fact::new("Q", ["a", "b"])), nat(18));
        // A recursive instantiation still needs the detecting application.
        let tc = Program::transitive_closure("R", "Q");
        let chain = edge_facts("R", &[("a", "b", nat(1)), ("b", "c", nat(1))]);
        let tc_result = kleene_iterate(&tc, &chain, 10);
        assert!(tc_result.converged);
        assert!(tc_result.iterations > 1);
    }

    #[test]
    fn immediate_consequence_into_reuses_and_clears_the_buffer() {
        let program = Program::figure6_query();
        let edb = edge_facts("R", &[("a", "b", nat(3)), ("b", "c", nat(2))]);
        let derivable = crate::grounding::derivable_facts(&program, &edb);
        let ground = crate::grounding::instantiate_over(&program, &derivable);
        let idb = program.idb_predicates();
        let current: FactStore<Natural> = FactStore::new();
        // Pre-populate the buffer with garbage — including a predicate the
        // program never derives: it must be cleared and must not make the
        // refilled buffer compare unequal to a fresh computation.
        let mut buffer = edge_facts("Q", &[("z", "z", nat(9))]);
        buffer.insert(Fact::new("Zombie", ["w"]), nat(1));
        immediate_consequence_into(&ground, &idb, &edb, &current, &mut buffer);
        assert_eq!(buffer, immediate_consequence(&ground, &idb, &edb, &current));
        assert!(!buffer.contains(&Fact::new("Q", ["z", "z"])));
        assert!(!buffer.contains(&Fact::new("Zombie", ["w"])));
        assert_eq!(buffer.annotation(&Fact::new("Q", ["a", "c"])), nat(6));
    }
}

//! Semi-naive (differential) datalog evaluation with indexed joins.
//!
//! The naive Kleene iteration of [`crate::naive`] pre-instantiates every
//! ground rule and re-multiplies all of them on every round, even though
//! most annotations stop changing after a few rounds. This module evaluates
//! the same least-fixpoint semantics (Definition 5.5 / Theorem 5.6 of the
//! paper) *differentially*: it maintains per-predicate **delta stores** of
//! the facts whose annotation changed in the previous round, rewrites each
//! rule into its **differential forms** — one per idb body atom, with that
//! atom bound to a delta fact and the rest of the body bound via hash-index
//! probes ([`FactIndex`]) — and touches only the part of the instantiation
//! the deltas reach. No up-front full grounding is ever materialized.
//!
//! # Soundness conditions (which path computes what)
//!
//! * [`seminaive_idempotent`] — the classical delta rewrite: each round joins
//!   the deltas into *increments* and merges them into the accumulator with
//!   semiring `+`. This is **exact for `+`-idempotent (naturally ordered)
//!   semirings** — 𝔹, PosBool, Why(X), witnesses, the tropical, fuzzy,
//!   Viterbi and security semirings, and every distributive lattice — where
//!   re-deriving a fact cannot inflate its annotation (`a + a = a` absorbs
//!   stale increments). For non-idempotent semirings such as ℕ or ℕ\[X\] the
//!   increments would double-count, so the function is restricted by the
//!   [`provsem_semiring::PlusIdempotent`] bound.
//! * [`seminaive_iterate`] — the fallback for **general ω-continuous
//!   semirings**: deltas still drive the work (they are the
//!   full-minus-previous difference of each round), but instead of merging
//!   increments it recomputes the *affected heads* — the heads reachable
//!   from a delta fact through one differential form — from scratch. An
//!   unaffected head keeps its value because none of its rule bodies
//!   changed, so the result after `m` rounds equals the naive `Tᵐ(0)`
//!   **round for round, for every semiring** — which is what the
//!   differential test suite pins down.
//!
//! # Convergence-flag semantics
//!
//! [`FixpointResult::converged`] means the same thing as for the naive
//! iteration — a fixpoint was reached within the round bound — but the
//! iteration counts may differ: the naive loop needs one extra application
//! of `T` to *observe* a fixpoint, while the semi-naive loop observes an
//! empty delta for free. Compare annotations and `converged`, not
//! `iterations`, across strategies.
//!
//! # Worked example (Figure 6)
//!
//! The conjunctive query `Q(x,y) :- R(x,z), R(z,y)` of Figure 6 under bag
//! semantics, evaluated semi-naively: round 1 joins `R ⋈ R` through the
//! index (no idb atom in the body, so nothing is ever re-derived) and round
//! 2 observes an empty delta because no rule consumes `Q`:
//!
//! ```
//! use provsem_datalog::prelude::*;
//! use provsem_semiring::Natural;
//!
//! let program = Program::figure6_query();
//! let edb = edge_facts("R", &[
//!     ("a", "a", Natural::from(2u64)),
//!     ("a", "b", Natural::from(3u64)),
//!     ("b", "b", Natural::from(4u64)),
//! ]);
//! let out = evaluate(&program, &edb, EvalStrategy::SemiNaive).expect("converges");
//! // Figure 6(c): Q(a,a) ↦ 2·2 = 4, Q(a,b) ↦ 2·3 + 3·4 = 18, Q(b,b) ↦ 16.
//! assert_eq!(out.annotation(&Fact::new("Q", ["a", "a"])), Natural::from(4u64));
//! assert_eq!(out.annotation(&Fact::new("Q", ["a", "b"])), Natural::from(18u64));
//! assert_eq!(out.annotation(&Fact::new("Q", ["b", "b"])), Natural::from(16u64));
//! ```

use crate::ast::{Atom, Program, Rule, Term};
use crate::fact::{Fact, FactIndex, FactStore};
use crate::grounding::{ground_atom, match_atom, Binding, JoinPlan};
use provsem_core::par;
use provsem_core::plan::ExecContext;
use provsem_semiring::fxhash::FxHashMap;
use provsem_semiring::{PlusIdempotent, Semiring};
use std::collections::BTreeSet;

pub use crate::naive::FixpointResult;

/// How [`evaluate`] / [`evaluate_with_bound`] compute the datalog fixpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalStrategy {
    /// Ground the whole instantiation up front and re-apply the
    /// immediate-consequence operator to every ground rule each round
    /// ([`crate::naive::kleene_iterate`]). The ablation baseline.
    Naive,
    /// Differential evaluation: per-predicate delta stores, one differential
    /// form per idb body atom, index-probed joins, and no up-front
    /// grounding ([`seminaive_iterate`]). Sound for every semiring (see the
    /// module docs); round-for-round equal to `Naive`.
    SemiNaive,
}

/// The round bound used by [`evaluate`] when the semiring has no intrinsic
/// convergence bound. Matches the deepest workloads in the benchmark suite
/// with two orders of magnitude to spare; instances that still change after
/// this many rounds (ℕ∞ with infinitely many derivations) are reported as
/// non-converged (`None`).
pub const DEFAULT_FALLBACK_BOUND: usize = 256;

/// Evaluates a datalog program to its least fixpoint under the chosen
/// [`EvalStrategy`] — the single entry point the benches and downstream crates
/// switch on. Both strategies detect convergence on their own, so this works
/// for any semiring; [`DEFAULT_FALLBACK_BOUND`] is only the safety net for
/// instances that never converge. Returns `None` when the iteration did not
/// converge within the bound (for ℕ∞ this signals tuples with infinitely
/// many derivations — use [`crate::exact::evaluate_natinf`]).
///
/// **ℕ caveat**: ℕ is not ω-continuous, and on a non-converging (cyclic)
/// instance its annotations grow without bound — the `u64` payload
/// overflows (a panic in debug profiles) well before the fallback bound is
/// reached. Evaluate such instances over ℕ∞ instead, whose payloads
/// saturate to ∞, or use [`evaluate_with_bound`] with a small round bound.
pub fn evaluate<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
    strategy: EvalStrategy,
) -> Option<FactStore<K>> {
    let result = evaluate_with_bound(program, edb, strategy, DEFAULT_FALLBACK_BOUND);
    result.converged.then_some(result.idb)
}

/// Like [`evaluate`] but for any semiring and an explicit round bound,
/// returning the full [`FixpointResult`]. Both strategies produce the same
/// idb annotations after the same number of rounds (`Tᵐ(0)`), converged or
/// not.
pub fn evaluate_with_bound<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
    strategy: EvalStrategy,
    max_rounds: usize,
) -> FixpointResult<K> {
    match strategy {
        EvalStrategy::Naive => crate::naive::kleene_iterate(program, edb, max_rounds),
        EvalStrategy::SemiNaive => seminaive_iterate(program, edb, max_rounds),
    }
}

/// Like [`evaluate_with_bound`], but with an explicit
/// [`ExecContext`] thread budget: the semi-naive strategy runs its
/// delta-rule application data-parallel ([`seminaive_iterate_with`]), round
/// for round identical to the serial loop. The naive ablation baseline
/// stays serial by design (it exists to measure the unoptimized cost).
/// `ctx.threads == 1` is exactly [`evaluate_with_bound`].
pub fn evaluate_with_context<K>(
    program: &Program,
    edb: &FactStore<K>,
    strategy: EvalStrategy,
    max_rounds: usize,
    ctx: &ExecContext,
) -> FixpointResult<K>
where
    K: Semiring + Send + Sync,
{
    match strategy {
        EvalStrategy::Naive => crate::naive::kleene_iterate(program, edb, max_rounds),
        EvalStrategy::SemiNaive => seminaive_iterate_with(program, edb, max_rounds, ctx),
    }
}

/// The differential forms and join plans of one rule, with all probe masks
/// registered up front so joining needs only `&FactIndex`.
pub(crate) struct RuleForms<'a> {
    pub(crate) rule: &'a Rule,
    /// One differential form per idb body atom: the delta is matched at that
    /// position, the remaining atoms bind via index probes.
    pub(crate) delta_forms: Vec<(usize, JoinPlan<'a>)>,
    /// Full-body plan seeded with the head variables, used to recompute one
    /// head fact from scratch (general-semiring path).
    pub(crate) head_seeded: JoinPlan<'a>,
    /// Left-to-right full-body plan (round 1, edb-only rules).
    pub(crate) full: JoinPlan<'a>,
    /// Does the body mention any idb predicate?
    pub(crate) has_idb_body: bool,
}

pub(crate) fn build_forms<'a>(
    program: &'a Program,
    idb_predicates: &BTreeSet<String>,
    index: &mut FactIndex,
) -> Vec<RuleForms<'a>> {
    program
        .rules
        .iter()
        .map(|rule| {
            let delta_forms: Vec<(usize, JoinPlan)> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, atom)| idb_predicates.contains(&atom.predicate))
                .map(|(pos, _)| (pos, JoinPlan::suffix(&rule.body, pos)))
                .collect();
            let head_vars = rule
                .head
                .terms
                .iter()
                .filter_map(Term::as_var)
                .collect::<BTreeSet<_>>();
            let head_seeded = JoinPlan::new(rule.body.iter().collect(), head_vars);
            let full = JoinPlan::left_to_right(&rule.body);
            for plan in delta_forms
                .iter()
                .map(|(_, p)| p)
                .chain([&head_seeded, &full])
            {
                plan.register(index);
            }
            RuleForms {
                rule,
                delta_forms,
                head_seeded,
                full,
                has_idb_body: rule
                    .body
                    .iter()
                    .any(|atom| idb_predicates.contains(&atom.predicate)),
            }
        })
        .collect()
}

/// Multiplies the annotations of a fully bound rule body, reading idb facts
/// from `current` and edb facts from `edb`; `None` when some factor is zero.
pub(crate) fn body_product<K: Semiring>(
    rule: &Rule,
    binding: &Binding,
    idb_predicates: &BTreeSet<String>,
    edb: &FactStore<K>,
    current: &FactStore<K>,
) -> Option<K> {
    let mut product = K::one();
    for atom in &rule.body {
        let fact = ground_atom(atom, binding)?;
        let ann = if idb_predicates.contains(&fact.predicate) {
            current.annotation(&fact)
        } else {
            edb.annotation(&fact)
        };
        if ann.is_zero() {
            return None;
        }
        product.times_assign(&ann);
    }
    Some(product)
}

/// Round 1 of both semi-naive paths: apply `T` once to the empty idb.
/// Only rules without idb body atoms can contribute (all idb annotations
/// are still zero); their bodies join over the edb through the index.
fn first_round<K: Semiring>(
    forms: &[RuleForms<'_>],
    idb_predicates: &BTreeSet<String>,
    edb: &FactStore<K>,
    index: &FactIndex,
) -> FactStore<K> {
    let empty: FactStore<K> = FactStore::new();
    let mut produced: FactStore<K> = FactStore::new();
    for form in forms.iter().filter(|f| !f.has_idb_body) {
        if form.rule.body.is_empty() {
            if let Some(head) = ground_atom(&form.rule.head, &Binding::new()) {
                produced.insert(head, K::one());
            }
            continue;
        }
        form.full.join(index, Binding::new(), &mut |binding| {
            if let Some(product) = body_product(form.rule, &binding, idb_predicates, edb, &empty) {
                if let Some(head) = ground_atom(&form.rule.head, &binding) {
                    produced.insert(head, product);
                }
            }
        });
    }
    produced
}

/// The state both semi-naive loops thread from round to round: the join
/// index over every fact seen so far, the accumulated idb annotations, and
/// the per-predicate delta (the facts whose annotation changed last round).
struct DeltaState<K> {
    index: FactIndex,
    current: FactStore<K>,
    delta: BTreeSet<Fact>,
}

impl<K: Semiring> DeltaState<K> {
    /// Shared round-1 setup: build the forms (registering their probe masks
    /// on the edb index), apply `T` once, and seed the delta with the
    /// produced facts. For a syntactically non-recursive program — no rule
    /// consumes an idb fact, so `T` is constant — the delta is cleared
    /// immediately: round 1 already reached the fixpoint (the same early
    /// exit the naive loop takes, keeping `converged` flags aligned).
    fn initial<'a>(
        program: &'a Program,
        idb_predicates: &BTreeSet<String>,
        edb: &FactStore<K>,
    ) -> (Vec<RuleForms<'a>>, Self) {
        let mut index = edb.join_index();
        let forms = build_forms(program, idb_predicates, &mut index);
        let mut state = DeltaState {
            index,
            current: FactStore::new(),
            delta: BTreeSet::new(),
        };
        let produced = first_round(&forms, idb_predicates, edb, &state.index);
        state.apply_changes(produced.facts().map(|(f, k)| (f, k.clone())).collect());
        if forms.iter().all(|f| f.delta_forms.is_empty()) {
            state.delta.clear();
        }
        (forms, state)
    }

    /// Groups the delta facts by predicate for the differential joins.
    fn delta_by_pred(&self) -> FxHashMap<&str, Vec<&Fact>> {
        let mut by_pred: FxHashMap<&str, Vec<&Fact>> = FxHashMap::default();
        for fact in &self.delta {
            by_pred
                .entry(fact.predicate.as_str())
                .or_default()
                .push(fact);
        }
        by_pred
    }

    /// Ends a round: the changed facts replace their annotations, join the
    /// index, and become the next round's delta.
    fn apply_changes(&mut self, changes: Vec<(Fact, K)>) {
        self.delta.clear();
        for (fact, ann) in changes {
            self.index.add_fact(fact.clone());
            self.current.set(fact.clone(), ann);
            self.delta.insert(fact);
        }
    }

    /// Wraps up: a fixpoint was reached iff the last round changed nothing.
    fn finish(self, iterations: usize) -> FixpointResult<K> {
        let converged = self.delta.is_empty();
        FixpointResult {
            idb: self.current,
            iterations,
            converged,
        }
    }
}

/// The all-zero result both paths return for a round bound of 0.
pub(crate) fn unevaluated<K: Semiring>() -> FixpointResult<K> {
    FixpointResult {
        idb: FactStore::new(),
        iterations: 0,
        converged: false,
    }
}

/// One unit of differential work: a rule form whose delta atom matched a
/// changed fact. The flat work-item list is what both the serial loops and
/// the parallel rounds iterate — contiguous chunks of it partition the
/// round's work across worker threads while preserving the serial emission
/// order (chunks are concatenated back in order).
type DeltaItem<'f, 'a, 'd> = (&'f RuleForms<'a>, &'f JoinPlan<'a>, &'a Atom, &'d Fact);

/// Flattens the (form × delta form × changed fact) nest into work items, in
/// the deterministic order the serial loop visits them.
fn delta_work_items<'f, 'a, 'd>(
    forms: &'f [RuleForms<'a>],
    delta_by_pred: &FxHashMap<&str, Vec<&'d Fact>>,
) -> Vec<DeltaItem<'f, 'a, 'd>> {
    let mut items = Vec::new();
    for form in forms {
        for (pos, plan) in &form.delta_forms {
            let atom = &form.rule.body[*pos];
            let Some(changed) = delta_by_pred.get(atom.predicate.as_str()) else {
                continue;
            };
            for fact in changed {
                items.push((form, plan, atom, *fact));
            }
        }
    }
    items
}

/// Runs one differential work item, calling `emit` with the owning form and
/// each complete body binding.
fn join_delta_item<'a, 'f>(
    (form, plan, atom, fact): DeltaItem<'f, 'a, '_>,
    index: &FactIndex,
    emit: &mut dyn FnMut(&'f RuleForms<'a>, Binding),
) {
    let Some(seed) = match_atom(atom, fact, &Binding::new()) else {
        return;
    };
    plan.join(index, seed, &mut |binding| emit(form, binding));
}

/// Runs every differential form whose delta atom matches a changed fact,
/// calling `emit` with the owning form and each complete body binding.
fn join_deltas<'a, 'f>(
    forms: &'f [RuleForms<'a>],
    delta_by_pred: &FxHashMap<&str, Vec<&Fact>>,
    index: &FactIndex,
    emit: &mut dyn FnMut(&'f RuleForms<'a>, Binding),
) {
    for item in delta_work_items(forms, delta_by_pred) {
        join_delta_item(item, index, emit);
    }
}

/// Recomputes one affected head from scratch over the index — phase 2 of
/// the general (non-idempotent-safe) semi-naive round, shared by the serial
/// and parallel loops.
pub(crate) fn recompute_head<K: Semiring>(
    head: &Fact,
    by_head: &FxHashMap<&str, Vec<&RuleForms<'_>>>,
    idb_predicates: &BTreeSet<String>,
    edb: &FactStore<K>,
    current: &FactStore<K>,
    index: &FactIndex,
) -> K {
    let mut total = K::zero();
    for form in by_head.get(head.predicate.as_str()).into_iter().flatten() {
        if form.rule.body.is_empty() {
            if ground_atom(&form.rule.head, &Binding::new()).as_ref() == Some(head) {
                total.plus_assign(&K::one());
            }
            continue;
        }
        let Some(seed) = match_atom(&form.rule.head, head, &Binding::new()) else {
            continue;
        };
        form.head_seeded.join(index, seed, &mut |binding| {
            if let Some(product) = body_product(form.rule, &binding, idb_predicates, edb, current) {
                total.plus_assign(&product);
            }
        });
    }
    total
}

/// Groups the rule forms by head predicate (phase-2 lookup structure).
pub(crate) fn forms_by_head<'f, 'a>(
    forms: &'f [RuleForms<'a>],
) -> FxHashMap<&'f str, Vec<&'f RuleForms<'a>>> {
    let mut by_head: FxHashMap<&str, Vec<&RuleForms>> = FxHashMap::default();
    for form in forms {
        by_head
            .entry(form.rule.head.predicate.as_str())
            .or_default()
            .push(form);
    }
    by_head
}

/// Semi-naive evaluation for **general** semirings: deltas (the facts whose
/// annotation changed last round) drive discovery of *affected heads*
/// through the differential forms, and each affected head is then recomputed
/// from scratch over the index. Produces exactly the naive `Tᵐ(0)` after `m`
/// rounds for every semiring — see the module docs for why unaffected heads
/// may keep their value.
pub fn seminaive_iterate<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
    max_rounds: usize,
) -> FixpointResult<K> {
    if max_rounds == 0 {
        return unevaluated();
    }
    let idb_predicates = program.idb_predicates();
    let (forms, mut state) = DeltaState::initial(program, &idb_predicates, edb);
    let by_head = forms_by_head(&forms);

    let mut iterations = 1;
    while iterations < max_rounds {
        if state.delta.is_empty() {
            break;
        }
        iterations += 1;

        // 1. Affected heads: everything one differential form away from a
        //    delta fact.
        let mut affected: BTreeSet<Fact> = BTreeSet::new();
        join_deltas(
            &forms,
            &state.delta_by_pred(),
            &state.index,
            &mut |form, binding| {
                if let Some(head) = ground_atom(&form.rule.head, &binding) {
                    affected.insert(head);
                }
            },
        );

        // 2. Recompute each affected head from scratch (full-minus-previous
        //    difference tracking: the new value replaces the old one).
        let mut changes: Vec<(Fact, K)> = Vec::new();
        for head in &affected {
            let total = recompute_head(
                head,
                &by_head,
                &idb_predicates,
                edb,
                &state.current,
                &state.index,
            );
            if total != state.current.annotation(head) {
                changes.push((head.clone(), total));
            }
        }

        // 3. Apply: the changed facts are the next round's delta.
        state.apply_changes(changes);
    }
    state.finish(iterations)
}

/// [`seminaive_iterate`] with an execution context: `ctx.mode` picks the
/// engine exactly like the RA planner — `PROVSEM_EXEC=row|batch` forces
/// one, `auto` (the default) takes the batch engine
/// ([`crate::columnar::seminaive_iterate_batch`]) when the EDB has at least
/// [`provsem_core::plan::Plan::AUTO_BATCH_MIN_ROWS`] facts — and
/// `ctx.threads` is the thread budget. On the row engine, both phases of
/// every round run data-parallel over scoped worker threads —
/// affected-head discovery over contiguous chunks of the differential work
/// items, and head recomputation over contiguous chunks of the (sorted)
/// affected set.
///
/// Results are identical to the serial loop at every thread count and on
/// either engine: affected heads are a set union (order-insensitive),
/// recomputation is a pure function of the previous round's state
/// (`current`/`index` are only read during a round), and the per-round
/// change list is concatenated in chunk order, which *is* the serial head
/// order. Requires `K: Send + Sync` because the workers share the fact
/// stores by reference; non-`Sync` annotations (circuit handles) use the
/// serial [`seminaive_iterate`].
pub fn seminaive_iterate_with<K>(
    program: &Program,
    edb: &FactStore<K>,
    max_rounds: usize,
    ctx: &ExecContext,
) -> FixpointResult<K>
where
    K: Semiring + Send + Sync,
{
    if crate::columnar::use_batch(ctx, edb) {
        return crate::columnar::seminaive_iterate_batch(program, edb, max_rounds, ctx.threads);
    }
    if ctx.threads <= 1 {
        return seminaive_iterate(program, edb, max_rounds);
    }
    if max_rounds == 0 {
        return unevaluated();
    }
    let idb_predicates = program.idb_predicates();
    let (forms, mut state) = DeltaState::initial(program, &idb_predicates, edb);
    let by_head = forms_by_head(&forms);

    let mut iterations = 1;
    while iterations < max_rounds {
        if state.delta.is_empty() {
            break;
        }
        iterations += 1;

        // 1. Affected heads, in parallel over the differential work items;
        //    the per-worker head sets union into one BTreeSet (the same set
        //    the serial loop builds, whatever the interleaving).
        let delta_by_pred = state.delta_by_pred();
        let items = delta_work_items(&forms, &delta_by_pred);
        let index = &state.index;
        let affected: BTreeSet<Fact> =
            par::par_map_chunks(par::chunked(items, ctx.threads), |_, chunk| {
                let mut heads = BTreeSet::new();
                for item in chunk {
                    let form = item.0;
                    join_delta_item(item, index, &mut |_, binding| {
                        if let Some(head) = ground_atom(&form.rule.head, &binding) {
                            heads.insert(head);
                        }
                    });
                }
                heads
            })
            .into_iter()
            .flatten()
            .collect();

        // 2. Recompute affected heads in parallel; chunks are contiguous in
        //    the sorted head order and concatenated back in order, so the
        //    change list equals the serial one element for element.
        let current = &state.current;
        let affected: Vec<Fact> = affected.into_iter().collect();
        let changes: Vec<(Fact, K)> =
            par::par_map_chunks(par::chunked(affected, ctx.threads), |_, chunk| {
                chunk
                    .into_iter()
                    .filter_map(|head| {
                        let total =
                            recompute_head(&head, &by_head, &idb_predicates, edb, current, index);
                        (total != current.annotation(&head)).then_some((head, total))
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();

        // 3. Apply: the changed facts are the next round's delta.
        state.apply_changes(changes);
    }
    state.finish(iterations)
}

/// Semi-naive evaluation for `+`-idempotent semirings: the classical delta
/// rewrite. Each round joins only the differential forms whose delta atom
/// matches a changed fact, computes the resulting increments, and merges
/// them into the accumulator with semiring `+`; nothing is ever recomputed
/// from scratch.
///
/// Exact for idempotent `+` (sets, lattices, tropical — stale increments are
/// absorbed because `a ≤ b` implies `a + b = b`); for non-idempotent
/// semirings (ℕ, ℕ\[X\]) re-derivations would change the result, hence the
/// [`PlusIdempotent`] bound. Use [`seminaive_iterate`] there instead.
pub fn seminaive_idempotent<K>(
    program: &Program,
    edb: &FactStore<K>,
    max_rounds: usize,
) -> FixpointResult<K>
where
    K: Semiring + PlusIdempotent,
{
    if max_rounds == 0 {
        return unevaluated();
    }
    let idb_predicates = program.idb_predicates();
    let (forms, mut state) = DeltaState::initial(program, &idb_predicates, edb);

    let mut iterations = 1;
    while iterations < max_rounds {
        if state.delta.is_empty() {
            break;
        }
        iterations += 1;

        // Increments from every differential form whose delta atom matches a
        // changed fact; accumulated with `+` inside `produced`.
        let mut produced: FactStore<K> = FactStore::new();
        join_deltas(
            &forms,
            &state.delta_by_pred(),
            &state.index,
            &mut |form, binding| {
                if let Some(product) =
                    body_product(form.rule, &binding, &idb_predicates, edb, &state.current)
                {
                    if let Some(head) = ground_atom(&form.rule.head, &binding) {
                        produced.insert(head, product);
                    }
                }
            },
        );

        // Merge: only the facts whose annotation actually moved become the
        // next delta (idempotent `+` absorbs everything else).
        let mut changes: Vec<(Fact, K)> = Vec::new();
        for (fact, increment) in produced.facts() {
            let merged = state.current.annotation(&fact).plus(increment);
            if merged != state.current.annotation(&fact) {
                changes.push((fact, merged));
            }
        }
        state.apply_changes(changes);
    }
    state.finish(iterations)
}

/// [`seminaive_idempotent`] with an execution context: `ctx.mode` picks the
/// engine like [`seminaive_iterate_with`] (the batch engine is
/// [`crate::columnar::seminaive_idempotent_batch`]). On the row engine,
/// each round's increments are produced in parallel over contiguous chunks
/// of the differential work items and merged on the coordinator **in
/// work-item order** — the exact emission order of the serial loop — so the
/// accumulated store (and the delta) match the serial round bit for bit.
pub fn seminaive_idempotent_with<K>(
    program: &Program,
    edb: &FactStore<K>,
    max_rounds: usize,
    ctx: &ExecContext,
) -> FixpointResult<K>
where
    K: Semiring + PlusIdempotent + Send + Sync,
{
    if crate::columnar::use_batch(ctx, edb) {
        return crate::columnar::seminaive_idempotent_batch(program, edb, max_rounds, ctx.threads);
    }
    if ctx.threads <= 1 {
        return seminaive_idempotent(program, edb, max_rounds);
    }
    if max_rounds == 0 {
        return unevaluated();
    }
    let idb_predicates = program.idb_predicates();
    let (forms, mut state) = DeltaState::initial(program, &idb_predicates, edb);

    let mut iterations = 1;
    while iterations < max_rounds {
        if state.delta.is_empty() {
            break;
        }
        iterations += 1;

        let delta_by_pred = state.delta_by_pred();
        let items = delta_work_items(&forms, &delta_by_pred);
        let index = &state.index;
        let current = &state.current;
        let increments: Vec<Vec<(Fact, K)>> =
            par::par_map_chunks(par::chunked(items, ctx.threads), |_, chunk| {
                let mut out: Vec<(Fact, K)> = Vec::new();
                for item in chunk {
                    let form = item.0;
                    join_delta_item(item, index, &mut |_, binding| {
                        if let Some(product) =
                            body_product(form.rule, &binding, &idb_predicates, edb, current)
                        {
                            if let Some(head) = ground_atom(&form.rule.head, &binding) {
                                out.push((head, product));
                            }
                        }
                    });
                }
                out
            });
        let mut produced: FactStore<K> = FactStore::new();
        for (head, product) in increments.into_iter().flatten() {
            produced.insert(head, product);
        }

        // Merge: only the facts whose annotation actually moved become the
        // next delta (idempotent `+` absorbs everything else).
        let mut changes: Vec<(Fact, K)> = Vec::new();
        for (fact, increment) in produced.facts() {
            let merged = state.current.annotation(&fact).plus(increment);
            if merged != state.current.annotation(&fact) {
                changes.push((fact, merged));
            }
        }
        state.apply_changes(changes);
    }
    state.finish(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::edge_facts;
    use provsem_semiring::{Bool, NatInf, Natural, PosBool, Tropical};

    fn nat(n: u64) -> Natural {
        Natural::from(n)
    }

    #[test]
    fn figure6_bag_semantics_via_strategy_entry_point() {
        let program = Program::figure6_query();
        let edb = edge_facts(
            "R",
            &[("a", "a", nat(2)), ("a", "b", nat(3)), ("b", "b", nat(4))],
        );
        let semi = evaluate(&program, &edb, EvalStrategy::SemiNaive).expect("converges");
        let naive = evaluate(&program, &edb, EvalStrategy::Naive).expect("converges");
        assert_eq!(semi.annotation(&Fact::new("Q", ["a", "b"])), nat(18));
        for (fact, ann) in naive.facts() {
            assert_eq!(semi.annotation(&fact), *ann, "{fact}");
        }
        assert_eq!(semi.len(), naive.len());
    }

    #[test]
    fn round_for_round_equality_with_naive_on_nonconverging_natinf() {
        // Figure 7 over ℕ∞ never converges; the general semi-naive path must
        // still produce Tᵐ(0) for every m.
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(2)),
                ("a", "c", NatInf::Fin(3)),
                ("c", "b", NatInf::Fin(2)),
                ("b", "d", NatInf::Fin(1)),
                ("d", "d", NatInf::Fin(1)),
            ],
        );
        for rounds in 1..8 {
            let naive = evaluate_with_bound(&program, &edb, EvalStrategy::Naive, rounds);
            let semi = evaluate_with_bound(&program, &edb, EvalStrategy::SemiNaive, rounds);
            assert_eq!(naive.converged, semi.converged, "rounds={rounds}");
            assert_eq!(naive.idb, semi.idb, "rounds={rounds}");
        }
    }

    #[test]
    fn idempotent_path_agrees_with_general_path_on_lattices() {
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", PosBool::var("e1")),
                ("b", "c", PosBool::var("e2")),
                ("c", "a", PosBool::var("e3")),
            ],
        );
        let general = seminaive_iterate(&program, &edb, 64);
        let fast = seminaive_idempotent(&program, &edb, 64);
        assert!(general.converged && fast.converged);
        assert_eq!(general.idb, fast.idb);
    }

    #[test]
    fn tropical_shortest_paths_via_idempotent_path() {
        let program = Program::linear_transitive_closure("R", "Q");
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", Tropical::cost(4)),
                ("b", "c", Tropical::cost(1)),
                ("a", "c", Tropical::cost(10)),
            ],
        );
        let out = seminaive_idempotent(&program, &edb, 64);
        assert!(out.converged);
        assert_eq!(
            out.idb.annotation(&Fact::new("Q", ["a", "c"])),
            Tropical::cost(5)
        );
    }

    #[test]
    fn program_facts_and_constants_participate() {
        // A program-text fact seeds the idb; a constant in a body restricts
        // the index probe.
        let program =
            crate::parser::parse_program("E('x', 'y').\nP(a, b) :- E(a, b).\nPx(b) :- P('x', b).")
                .unwrap();
        let edb: FactStore<Bool> = FactStore::new();
        let out = seminaive_iterate(&program, &edb, 16);
        assert!(out.converged);
        assert_eq!(
            out.idb.annotation(&Fact::new("Px", ["y"])),
            Bool::from(true)
        );
        assert_eq!(
            out.idb.annotation(&Fact::new("P", ["x", "y"])),
            Bool::from(true)
        );
    }

    #[test]
    fn zero_round_bound_reports_nonconverged_empty_result() {
        let program = Program::transitive_closure("R", "Q");
        let edb = edge_facts("R", &[("a", "b", Bool::from(true))]);
        for strategy in [EvalStrategy::Naive, EvalStrategy::SemiNaive] {
            let out = evaluate_with_bound(&program, &edb, strategy, 0);
            assert!(!out.converged);
            assert!(out.idb.is_empty());
            assert_eq!(out.iterations, 0);
        }
    }

    #[test]
    fn mutual_recursion_converges_to_the_same_fixpoint() {
        // P and Q feed each other; both strategies agree.
        let program = crate::parser::parse_program(
            "P(x, y) :- R(x, y).\nQ(x, y) :- P(x, y).\nP(x, y) :- Q(y, x).",
        )
        .unwrap();
        let edb = edge_facts(
            "R",
            &[("a", "b", Bool::from(true)), ("b", "c", Bool::from(true))],
        );
        let naive = evaluate(&program, &edb, EvalStrategy::Naive).unwrap();
        let semi = evaluate(&program, &edb, EvalStrategy::SemiNaive).unwrap();
        assert_eq!(naive, semi);
        assert_eq!(
            semi.annotation(&Fact::new("P", ["b", "a"])),
            Bool::from(true)
        );
    }
}

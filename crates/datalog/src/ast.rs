//! Datalog abstract syntax: terms, atoms, rules and programs.
//!
//! Following Section 5 of the paper we consider "pure" datalog: all subgoals
//! are relational atoms (no built-in predicates, no negation), and the
//! unnamed (positional) perspective is used.

use provsem_core::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A datalog variable (e.g. `x`, `y`, `z`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DlVar(pub String);

impl DlVar {
    /// Creates a variable with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DlVar(name.into())
    }
}

impl fmt::Display for DlVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A term in an atom: a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A variable, to be bound by a valuation.
    Var(DlVar),
    /// A constant domain value.
    Const(Value),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(DlVar::new(name))
    }

    /// A constant term.
    pub fn constant(value: impl Into<Value>) -> Self {
        Term::Const(value.into())
    }

    /// Returns the variable if this term is one.
    pub fn as_var(&self) -> Option<&DlVar> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "'{c}'"),
        }
    }
}

/// An atom `P(t₁, …, tₙ)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Atom {
    /// The predicate (relation) name.
    pub predicate: String,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a predicate name and terms.
    pub fn new(predicate: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            predicate: predicate.into(),
            terms,
        }
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The set of variables occurring in the atom.
    pub fn variables(&self) -> BTreeSet<DlVar> {
        self.terms
            .iter()
            .filter_map(Term::as_var)
            .cloned()
            .collect()
    }

    /// Is every term a constant?
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| t.as_var().is_none())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A datalog rule `head :- body₁, …, bodyₙ`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body atoms (all positive).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Builds a rule.
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        Rule { head, body }
    }

    /// A *fact* is a rule with an empty body and ground head.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.head.is_ground()
    }

    /// A *unit rule* has a body consisting of a single atom (the notion used
    /// by Theorem 6.5: infinite coefficients arise exactly from cycles of
    /// unit rules over idb predicates).
    pub fn is_unit(&self) -> bool {
        self.body.len() == 1
    }

    /// All variables of the rule.
    pub fn variables(&self) -> BTreeSet<DlVar> {
        let mut vars = self.head.variables();
        for atom in &self.body {
            vars.extend(atom.variables());
        }
        vars
    }

    /// Is the rule *range-restricted* (safe): every head variable occurs in
    /// the body? Required for the grounded semantics to be finite.
    pub fn is_safe(&self) -> bool {
        let body_vars: BTreeSet<DlVar> = self.body.iter().flat_map(|a| a.variables()).collect();
        self.head.variables().is_subset(&body_vars)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        write!(f, ".")
    }
}

/// A datalog program: a list of rules. Predicates that appear in some rule
/// head are *intensional* (idb); all others are *extensional* (edb).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Builds a program from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// The idb predicate names (appearing in rule heads).
    pub fn idb_predicates(&self) -> BTreeSet<String> {
        self.rules
            .iter()
            .map(|r| r.head.predicate.clone())
            .collect()
    }

    /// The edb predicate names (appearing only in bodies).
    pub fn edb_predicates(&self) -> BTreeSet<String> {
        let idb = self.idb_predicates();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter())
            .map(|a| a.predicate.clone())
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// All predicate names mentioned anywhere.
    pub fn predicates(&self) -> BTreeSet<String> {
        let mut preds = self.idb_predicates();
        preds.extend(self.edb_predicates());
        preds
    }

    /// Is every rule safe?
    pub fn is_safe(&self) -> bool {
        self.rules.iter().all(Rule::is_safe)
    }

    /// Is the program non-recursive (its predicate dependency graph is
    /// acyclic)? Non-recursive programs correspond to unions of conjunctive
    /// queries / RA⁺ (Propositions 5.3 and 6.2).
    pub fn is_nonrecursive(&self) -> bool {
        // DFS over the predicate dependency graph: idb P depends on idb Q if
        // some rule with head P has Q in its body.
        let idb = self.idb_predicates();
        let mut deps: std::collections::BTreeMap<&str, BTreeSet<&str>> = Default::default();
        for r in &self.rules {
            let entry = deps.entry(r.head.predicate.as_str()).or_default();
            for a in &r.body {
                if idb.contains(&a.predicate) {
                    entry.insert(a.predicate.as_str());
                }
            }
        }
        // Detect a cycle with the classic three-colour DFS.
        #[derive(PartialEq, Clone, Copy)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: std::collections::BTreeMap<&str, Colour> =
            idb.iter().map(|p| (p.as_str(), Colour::White)).collect();
        fn visit<'a>(
            node: &'a str,
            deps: &std::collections::BTreeMap<&'a str, BTreeSet<&'a str>>,
            colour: &mut std::collections::BTreeMap<&'a str, Colour>,
        ) -> bool {
            match colour.get(node).copied() {
                Some(Colour::Grey) => return false,
                Some(Colour::Black) | None => return true,
                Some(Colour::White) => {}
            }
            colour.insert(node, Colour::Grey);
            if let Some(children) = deps.get(node) {
                for child in children {
                    if !visit(child, deps, colour) {
                        return false;
                    }
                }
            }
            colour.insert(node, Colour::Black);
            true
        }
        let nodes: Vec<&str> = idb.iter().map(String::as_str).collect();
        nodes.iter().all(|p| visit(p, &deps, &mut colour))
    }

    /// The transitive-closure program of Figure 7:
    /// `Q(x,y) :- R(x,y).  Q(x,y) :- Q(x,z), Q(z,y).`
    pub fn transitive_closure(edb: &str, idb: &str) -> Program {
        let q = |a: &str, b: &str| Atom::new(idb, vec![Term::var(a), Term::var(b)]);
        let r = |a: &str, b: &str| Atom::new(edb, vec![Term::var(a), Term::var(b)]);
        Program::new(vec![
            Rule::new(q("x", "y"), vec![r("x", "y")]),
            Rule::new(q("x", "y"), vec![q("x", "z"), q("z", "y")]),
        ])
    }

    /// The "linear" variant of transitive closure:
    /// `Q(x,y) :- R(x,y).  Q(x,y) :- Q(x,z), R(z,y).`
    pub fn linear_transitive_closure(edb: &str, idb: &str) -> Program {
        let q = |a: &str, b: &str| Atom::new(idb, vec![Term::var(a), Term::var(b)]);
        let r = |a: &str, b: &str| Atom::new(edb, vec![Term::var(a), Term::var(b)]);
        Program::new(vec![
            Rule::new(q("x", "y"), vec![r("x", "y")]),
            Rule::new(q("x", "y"), vec![q("x", "z"), r("z", "y")]),
        ])
    }

    /// The conjunctive query of Figure 6: `Q(x,y) :- R(x,z), R(z,y).`
    pub fn figure6_query() -> Program {
        Program::new(vec![Rule::new(
            Atom::new("Q", vec![Term::var("x"), Term::var("y")]),
            vec![
                Atom::new("R", vec![Term::var("x"), Term::var("z")]),
                Atom::new("R", vec![Term::var("z"), Term::var("y")]),
            ],
        )])
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_report_variables_and_groundness() {
        let a = Atom::new("R", vec![Term::var("x"), Term::constant("c")]);
        assert_eq!(a.arity(), 2);
        assert_eq!(a.variables().len(), 1);
        assert!(!a.is_ground());
        let g = Atom::new("R", vec![Term::constant("a"), Term::constant("b")]);
        assert!(g.is_ground());
    }

    #[test]
    fn rule_classification() {
        let tc = Program::transitive_closure("R", "Q");
        assert!(tc.rules[0].is_unit());
        assert!(!tc.rules[1].is_unit());
        assert!(tc.rules.iter().all(Rule::is_safe));
        assert!(!tc.rules[0].is_fact());
    }

    #[test]
    fn unsafe_rule_is_detected() {
        // Q(x, y) :- R(x, x): y does not occur in the body.
        let r = Rule::new(
            Atom::new("Q", vec![Term::var("x"), Term::var("y")]),
            vec![Atom::new("R", vec![Term::var("x"), Term::var("x")])],
        );
        assert!(!r.is_safe());
    }

    #[test]
    fn idb_edb_classification() {
        let tc = Program::transitive_closure("R", "Q");
        assert_eq!(tc.idb_predicates(), ["Q".to_string()].into_iter().collect());
        assert_eq!(tc.edb_predicates(), ["R".to_string()].into_iter().collect());
        assert_eq!(tc.predicates().len(), 2);
    }

    #[test]
    fn recursion_detection() {
        assert!(!Program::transitive_closure("R", "Q").is_nonrecursive());
        assert!(Program::figure6_query().is_nonrecursive());
        // A two-predicate non-recursive chain: S depends on Q depends on R.
        let p = Program::new(vec![
            Rule::new(
                Atom::new("Q", vec![Term::var("x")]),
                vec![Atom::new("R", vec![Term::var("x")])],
            ),
            Rule::new(
                Atom::new("S", vec![Term::var("x")]),
                vec![Atom::new("Q", vec![Term::var("x")])],
            ),
        ]);
        assert!(p.is_nonrecursive());
        // Mutual recursion: P :- Q, Q :- P.
        let m = Program::new(vec![
            Rule::new(
                Atom::new("P", vec![Term::var("x")]),
                vec![Atom::new("Q", vec![Term::var("x")])],
            ),
            Rule::new(
                Atom::new("Q", vec![Term::var("x")]),
                vec![Atom::new("P", vec![Term::var("x")])],
            ),
        ]);
        assert!(!m.is_nonrecursive());
    }

    #[test]
    fn display_round_trips_syntax_shape() {
        let tc = Program::transitive_closure("R", "Q");
        let text = format!("{tc}");
        assert!(text.contains("Q(x, y) :- R(x, y)."));
        assert!(text.contains("Q(x, y) :- Q(x, z), Q(z, y)."));
    }
}

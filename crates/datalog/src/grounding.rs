//! Grounding / instantiation of datalog programs.
//!
//! The *instantiation* of a datalog query (used by Theorem 6.5 and by the
//! algebraic-system construction of Definition 5.5) is the set of ground
//! rules obtained by considering all satisfying valuations of the rule
//! variables over the derivable facts. We compute it in two steps:
//!
//! 1. [`derivable_facts`] — the set-semantics (𝔹) evaluation of the program,
//!    i.e. `supp(q(R))` (Proposition 5.4 guarantees this is the right
//!    support for any K);
//! 2. [`instantiate`] — all ground rules whose body facts are derivable.
//!
//! Both steps bind rule bodies through the hash indexes of
//! [`FactIndex`]: each body atom is matched by probing the index on the
//! argument positions already bound (constants, or variables bound by
//! earlier atoms) instead of scanning every fact of the predicate, and
//! [`derivable_facts`] runs its set fixpoint semi-naively (each round only
//! joins against the facts discovered in the previous round).

use crate::ast::{Atom, DlVar, Program, Term};
use crate::fact::{Fact, FactIndex, FactStore};
use provsem_core::kernels::{hash_combine, HASH_SEED};
use provsem_core::Value;
use provsem_semiring::fxhash::FxHashMap;
use provsem_semiring::Semiring;
use std::collections::{BTreeMap, BTreeSet};

/// A ground rule: an instantiation of a program rule where every variable
/// has been substituted by a constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GroundRule {
    /// Index of the originating rule in the program.
    pub rule_index: usize,
    /// The ground head fact.
    pub head: Fact,
    /// The ground body facts, in the rule's body order.
    pub body: Vec<Fact>,
}

impl GroundRule {
    /// Is this an instantiation of a unit rule (single-atom body)?
    pub fn is_unit(&self) -> bool {
        self.body.len() == 1
    }
}

/// A variable valuation used during rule matching.
pub(crate) type Binding = BTreeMap<crate::ast::DlVar, Value>;

pub(crate) fn ground_atom(atom: &Atom, binding: &Binding) -> Option<Fact> {
    let mut values = Vec::with_capacity(atom.terms.len());
    for term in &atom.terms {
        match term {
            Term::Const(v) => values.push(v.clone()),
            Term::Var(x) => values.push(binding.get(x)?.clone()),
        }
    }
    Some(Fact {
        predicate: atom.predicate.clone(),
        values,
    })
}

/// Tries to extend `binding` so that `atom` matches `fact`; returns the
/// extended binding or `None` on mismatch.
pub(crate) fn match_atom(atom: &Atom, fact: &Fact, binding: &Binding) -> Option<Binding> {
    if atom.predicate != fact.predicate || atom.terms.len() != fact.values.len() {
        return None;
    }
    let mut extended = binding.clone();
    for (term, value) in atom.terms.iter().zip(fact.values.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(x) => match extended.get(x) {
                Some(bound) if bound != value => return None,
                Some(_) => {}
                None => {
                    extended.insert(x.clone(), value.clone());
                }
            },
        }
    }
    Some(extended)
}

/// A join plan for one ordering of a rule body: the atoms in join order
/// plus, for each atom, the argument positions that are already bound when it
/// is matched (constants, variables bound by earlier atoms in the ordering,
/// and variables bound before the join starts).
///
/// Matching an atom probes a [`FactIndex`] on exactly those positions, so a
/// rule body binds via hash lookups instead of a scan per atom. Every
/// candidate returned by a probe is still validated with [`match_atom`]
/// (which also handles repeated variables within one atom), so plans are an
/// accelerator only and never change which bindings are found.
pub(crate) struct JoinPlan<'a> {
    atoms: Vec<&'a Atom>,
    bound: Vec<Vec<usize>>,
}

impl<'a> JoinPlan<'a> {
    /// Plans the given atoms in order, with `seed_vars` assumed bound before
    /// the join starts.
    pub(crate) fn new(atoms: Vec<&'a Atom>, seed_vars: BTreeSet<&'a DlVar>) -> Self {
        let mut bound_vars = seed_vars;
        let mut bound = Vec::with_capacity(atoms.len());
        for atom in &atoms {
            let cols: Vec<usize> = atom
                .terms
                .iter()
                .enumerate()
                .filter(|(_, t)| match t {
                    Term::Const(_) => true,
                    Term::Var(x) => bound_vars.contains(x),
                })
                .map(|(i, _)| i)
                .collect();
            bound.push(cols);
            for t in &atom.terms {
                if let Term::Var(x) = t {
                    bound_vars.insert(x);
                }
            }
        }
        JoinPlan { atoms, bound }
    }

    /// The left-to-right plan of a whole body, starting from no bindings.
    pub(crate) fn left_to_right(body: &'a [Atom]) -> Self {
        JoinPlan::new(body.iter().collect(), BTreeSet::new())
    }

    /// The plan for the body with atom `first` removed, assuming `first`'s
    /// variables were bound by matching it against a (delta) fact. This is
    /// the differential form used by semi-naive evaluation.
    pub(crate) fn suffix(body: &'a [Atom], first: usize) -> Self {
        let seed: BTreeSet<&DlVar> = body[first].terms.iter().filter_map(Term::as_var).collect();
        let atoms = body
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != first)
            .map(|(_, a)| a)
            .collect();
        JoinPlan::new(atoms, seed)
    }

    /// Registers this plan's probe masks with the index.
    pub(crate) fn register(&self, index: &mut FactIndex) {
        for (atom, cols) in self.atoms.iter().zip(&self.bound) {
            index.register_mask(&atom.predicate, cols);
        }
    }

    /// The atoms in join order (shared with the batch compiler, which
    /// builds its probe steps from exactly these atoms and masks so that
    /// both engines hit the same index buckets).
    pub(crate) fn atoms(&self) -> &[&'a Atom] {
        &self.atoms
    }

    /// Per-atom bound argument positions, parallel to [`JoinPlan::atoms`].
    pub(crate) fn bound(&self) -> &[Vec<usize>] {
        &self.bound
    }

    /// Enumerates all satisfying valuations of the planned atoms over the
    /// indexed facts, extending `binding` and calling `emit` for each
    /// complete one.
    pub(crate) fn join(&self, index: &FactIndex, binding: Binding, emit: &mut dyn FnMut(Binding)) {
        self.join_from(0, index, binding, emit);
    }

    fn join_from(
        &self,
        depth: usize,
        index: &FactIndex,
        binding: Binding,
        emit: &mut dyn FnMut(Binding),
    ) {
        let Some(atom) = self.atoms.get(depth) else {
            emit(binding);
            return;
        };
        // The probe key is folded straight into the bucket hash — no key
        // vector is materialized. Candidates are validated by `match_atom`,
        // which also screens out hash collisions.
        let cols = &self.bound[depth];
        let candidates = if cols.is_empty() {
            index.predicate_rows(&atom.predicate)
        } else {
            let hash = cols.iter().fold(HASH_SEED, |h, &c| {
                hash_combine(
                    h,
                    match &atom.terms[c] {
                        Term::Const(v) => v.content_hash(),
                        Term::Var(x) => binding[x].content_hash(),
                    },
                )
            });
            index.candidates_hashed(&atom.predicate, cols, hash)
        };
        for &fi in candidates {
            if let Some(extended) = match_atom(atom, index.fact(fi), &binding) {
                self.join_from(depth + 1, index, extended, emit);
            }
        }
    }
}

/// Computes the set of facts derivable from the program over the given edb
/// facts under set semantics — the standard datalog least fixpoint, which by
/// Proposition 5.4 equals the support of the K-annotated answer for every K.
/// Returns both edb and idb facts.
pub fn derivable_facts<K: Semiring>(program: &Program, edb: &FactStore<K>) -> BTreeSet<Fact> {
    let mut index = FactIndex::from_facts(edb.facts().map(|(f, _)| f));
    // Facts asserted directly in the program text also seed the computation.
    for rule in &program.rules {
        if rule.is_fact() {
            if let Some(f) = ground_atom(&rule.head, &Binding::new()) {
                index.add_fact(f);
            }
        }
    }
    // One differential join form per (rule, body position): the delta fact is
    // matched at that position, the rest of the body binds via index probes.
    let mut forms: Vec<(&Atom, &Atom, JoinPlan)> = Vec::new();
    for rule in &program.rules {
        for (j, atom) in rule.body.iter().enumerate() {
            let plan = JoinPlan::suffix(&rule.body, j);
            plan.register(&mut index);
            forms.push((&rule.head, atom, plan));
        }
    }
    let mut delta: Vec<Fact> = index.facts().cloned().collect();
    while !delta.is_empty() {
        let mut by_pred: FxHashMap<&str, Vec<&Fact>> = FxHashMap::default();
        for fact in &delta {
            by_pred
                .entry(fact.predicate.as_str())
                .or_default()
                .push(fact);
        }
        let mut round: BTreeSet<Fact> = BTreeSet::new();
        for (head, atom, plan) in &forms {
            let Some(candidates) = by_pred.get(atom.predicate.as_str()) else {
                continue;
            };
            for fact in candidates {
                let Some(seed) = match_atom(atom, fact, &Binding::new()) else {
                    continue;
                };
                plan.join(&index, seed, &mut |binding| {
                    if let Some(new_head) = ground_atom(head, &binding) {
                        if !index.contains(&new_head) {
                            round.insert(new_head);
                        }
                    }
                });
            }
        }
        delta = round.into_iter().collect();
        for fact in &delta {
            index.add_fact(fact.clone());
        }
    }
    index.facts().cloned().collect()
}

/// The instantiation of the program over the derivable facts: every ground
/// rule whose body facts are all derivable. Rules that are facts in the
/// program text become ground rules with an empty body.
pub fn instantiate<K: Semiring>(program: &Program, edb: &FactStore<K>) -> Vec<GroundRule> {
    let derivable = derivable_facts(program, edb);
    instantiate_over(program, &derivable)
}

/// Like [`instantiate`], but over an explicitly provided set of available
/// facts (useful for testing and for the Section 8 variants).
pub fn instantiate_over(program: &Program, facts: &BTreeSet<Fact>) -> Vec<GroundRule> {
    let mut index = FactIndex::from_facts(facts.iter().cloned());
    let mut ground = Vec::new();
    for (rule_index, rule) in program.rules.iter().enumerate() {
        if rule.body.is_empty() {
            if let Some(head) = ground_atom(&rule.head, &Binding::new()) {
                ground.push(GroundRule {
                    rule_index,
                    head,
                    body: Vec::new(),
                });
            }
            continue;
        }
        let plan = JoinPlan::left_to_right(&rule.body);
        plan.register(&mut index);
        plan.join(&index, Binding::new(), &mut |binding| {
            if let Some(head) = ground_atom(&rule.head, &binding) {
                let body: Option<Vec<Fact>> =
                    rule.body.iter().map(|a| ground_atom(a, &binding)).collect();
                if let Some(body) = body {
                    ground.push(GroundRule {
                        rule_index,
                        head,
                        body,
                    });
                }
            }
        });
    }
    ground.sort();
    ground.dedup();
    ground
}

/// The dependency graph of an instantiation restricted to idb facts: an edge
/// `head → body_fact` for every idb body fact of every ground rule. Used for
/// the infinite-multiplicity analysis (a derivable fact has infinitely many
/// derivation trees iff it can reach a cycle of this graph) and for
/// Theorem 6.5 (restricting to unit rules).
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    /// Adjacency: for each idb fact, the idb facts its ground rules use.
    pub edges: BTreeMap<Fact, BTreeSet<Fact>>,
}

impl DependencyGraph {
    /// Builds the dependency graph from an instantiation, where `is_idb`
    /// decides which predicates are intensional.
    pub fn build(ground_rules: &[GroundRule], is_idb: &dyn Fn(&str) -> bool) -> Self {
        let mut edges: BTreeMap<Fact, BTreeSet<Fact>> = BTreeMap::new();
        for rule in ground_rules {
            let entry = edges.entry(rule.head.clone()).or_default();
            for b in &rule.body {
                if is_idb(&b.predicate) {
                    entry.insert(b.clone());
                }
            }
        }
        DependencyGraph { edges }
    }

    /// Builds the graph using only *unit* ground rules (Theorem 6.5's
    /// "cycle of unit rules").
    pub fn build_unit_only(ground_rules: &[GroundRule], is_idb: &dyn Fn(&str) -> bool) -> Self {
        let unit: Vec<GroundRule> = ground_rules
            .iter()
            .filter(|r| r.is_unit())
            .cloned()
            .collect();
        DependencyGraph::build(&unit, is_idb)
    }

    /// The set of facts that lie on a cycle or can reach a cycle of this
    /// graph. With the full dependency graph this is exactly the set of
    /// facts with infinitely many derivation trees.
    pub fn facts_reaching_cycles(&self) -> BTreeSet<Fact> {
        // Nodes on cycles: computed by iteratively removing "sinks" (nodes
        // with no outgoing edges into remaining nodes); what survives are the
        // nodes that lie on cycles or lead into them.
        let mut on_or_reaching: BTreeSet<Fact> = self.nodes_on_cycles();
        // Propagate backwards: any node with an edge into the set joins it.
        loop {
            let mut added = false;
            for (from, tos) in &self.edges {
                if !on_or_reaching.contains(from) && tos.iter().any(|t| on_or_reaching.contains(t))
                {
                    on_or_reaching.insert(from.clone());
                    added = true;
                }
            }
            if !added {
                break;
            }
        }
        on_or_reaching
    }

    /// The set of facts lying on at least one cycle.
    pub fn nodes_on_cycles(&self) -> BTreeSet<Fact> {
        // Tarjan-free approach adequate for our sizes: a node is on a cycle
        // iff it can reach itself through at least one edge.
        let mut result = BTreeSet::new();
        for start in self.edges.keys() {
            if self.reaches(start, start) {
                result.insert(start.clone());
            }
        }
        result
    }

    /// Is `to` reachable from `from` using at least one edge?
    pub fn reaches(&self, from: &Fact, to: &Fact) -> bool {
        let mut stack: Vec<&Fact> = self
            .edges
            .get(from)
            .into_iter()
            .flat_map(|s| s.iter())
            .collect();
        let mut seen: BTreeSet<&Fact> = stack.iter().copied().collect();
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if let Some(next) = self.edges.get(node) {
                for n in next {
                    if seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
        }
        false
    }

    /// A topological order of the facts **not** reaching any cycle, sinks
    /// first, so annotations can be computed bottom-up on the acyclic part.
    pub fn topological_order_acyclic(&self, facts: &BTreeSet<Fact>) -> Vec<Fact> {
        let blocked = self.facts_reaching_cycles();
        let mut order = Vec::new();
        let mut done: BTreeSet<Fact> = BTreeSet::new();
        // Kahn-style: repeatedly emit facts whose idb dependencies are done.
        let mut remaining: Vec<&Fact> = facts.iter().filter(|f| !blocked.contains(*f)).collect();
        while !remaining.is_empty() {
            let mut progressed = false;
            remaining.retain(|fact| {
                let deps_done = self
                    .edges
                    .get(*fact)
                    .map(|deps| {
                        deps.iter()
                            .all(|d| done.contains(d) || blocked.contains(d) || !facts.contains(d))
                    })
                    .unwrap_or(true);
                if deps_done {
                    order.push((*fact).clone());
                    done.insert((*fact).clone());
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            if !progressed {
                // Should not happen on an acyclic restriction; guard against
                // infinite loops by appending the rest in arbitrary order.
                order.extend(remaining.iter().map(|f| (*f).clone()));
                break;
            }
        }
        order
    }
}

/// Partition of derivable facts by whether the predicate is intensional.
pub fn idb_facts<'a>(
    program: &Program,
    facts: &'a BTreeSet<Fact>,
) -> impl Iterator<Item = &'a Fact> + 'a {
    let idb = program.idb_predicates();
    facts.iter().filter(move |f| idb.contains(&f.predicate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::edge_facts;
    use provsem_semiring::{NatInf, Natural};

    fn figure7_edb() -> FactStore<NatInf> {
        edge_facts(
            "R",
            &[
                ("a", "b", NatInf::Fin(2)),
                ("a", "c", NatInf::Fin(3)),
                ("c", "b", NatInf::Fin(2)),
                ("b", "d", NatInf::Fin(1)),
                ("d", "d", NatInf::Fin(1)),
            ],
        )
    }

    #[test]
    fn derivable_facts_of_transitive_closure() {
        let program = Program::transitive_closure("R", "Q");
        let facts = derivable_facts(&program, &figure7_edb());
        // Q contains the 6 pairs of Figure 7(b) plus (c,d), which is
        // derivable via c→b→d but omitted from the paper's figure.
        let q_facts: Vec<&Fact> = facts.iter().filter(|f| f.predicate == "Q").collect();
        assert_eq!(q_facts.len(), 7);
        assert!(facts.contains(&Fact::new("Q", ["c", "d"])));
        assert!(facts.contains(&Fact::new("Q", ["a", "d"])));
        assert!(facts.contains(&Fact::new("Q", ["a", "b"])));
        assert!(!facts.contains(&Fact::new("Q", ["d", "a"])));
        // edb facts are retained too.
        assert!(facts.contains(&Fact::new("R", ["a", "b"])));
    }

    #[test]
    fn conjunctive_query_derivations() {
        // Figure 6: Q(a,a), Q(a,b), Q(b,b) are derivable.
        let program = Program::figure6_query();
        let edb = edge_facts(
            "R",
            &[
                ("a", "a", Natural::from(2u64)),
                ("a", "b", Natural::from(3u64)),
                ("b", "b", Natural::from(4u64)),
            ],
        );
        let facts = derivable_facts(&program, &edb);
        let q: Vec<&Fact> = facts.iter().filter(|f| f.predicate == "Q").collect();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn instantiation_produces_ground_rules_with_derivable_bodies() {
        let program = Program::transitive_closure("R", "Q");
        let ground = instantiate(&program, &figure7_edb());
        // Every ground rule's head must be a Q fact and its body facts must
        // be among the derivable facts.
        let derivable = derivable_facts(&program, &figure7_edb());
        assert!(!ground.is_empty());
        for rule in &ground {
            assert_eq!(rule.head.predicate, "Q");
            for b in &rule.body {
                assert!(derivable.contains(b), "body fact {b} not derivable");
            }
        }
        // The base rule instantiates once per edge: 5 unit ground rules over R.
        let base = ground.iter().filter(|g| g.rule_index == 0).count();
        assert_eq!(base, 5);
    }

    #[test]
    fn constants_in_rules_restrict_matching() {
        // Only paths ending at 'b' : Qb(x) :- R(x, 'b').
        let program = crate::parser::parse_program("Qb(x) :- R(x, 'b').").unwrap();
        let facts = derivable_facts(&program, &figure7_edb());
        let qb: Vec<&Fact> = facts.iter().filter(|f| f.predicate == "Qb").collect();
        assert_eq!(qb.len(), 2); // from a and from c
    }

    #[test]
    fn dependency_graph_detects_cycles_from_self_loop() {
        let program = Program::transitive_closure("R", "Q");
        let ground = instantiate(&program, &figure7_edb());
        let idb = program.idb_predicates();
        let graph = DependencyGraph::build(&ground, &|p| idb.contains(p));
        let infinite = graph.facts_reaching_cycles();
        // Q(d,d) is on a cycle (Q(d,d) :- Q(d,d),Q(d,d)); Q(b,d) and Q(a,d)
        // reach it. Q(a,b), Q(a,c), Q(c,b) do not.
        assert!(infinite.contains(&Fact::new("Q", ["d", "d"])));
        assert!(infinite.contains(&Fact::new("Q", ["b", "d"])));
        assert!(infinite.contains(&Fact::new("Q", ["a", "d"])));
        assert!(!infinite.contains(&Fact::new("Q", ["a", "b"])));
        assert!(!infinite.contains(&Fact::new("Q", ["a", "c"])));
        assert!(!infinite.contains(&Fact::new("Q", ["c", "b"])));
    }

    #[test]
    fn unit_only_graph_has_no_cycles_for_transitive_closure() {
        // The TC program's only unit rule is the base rule Q :- R, whose body
        // is an edb fact, so the unit-rule graph over idb facts has no edges
        // and no cycles — by Theorem 6.5 all provenance series are in ℕ[[X]].
        let program = Program::transitive_closure("R", "Q");
        let ground = instantiate(&program, &figure7_edb());
        let idb = program.idb_predicates();
        let graph = DependencyGraph::build_unit_only(&ground, &|p| idb.contains(p));
        assert!(graph.nodes_on_cycles().is_empty());
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let program = Program::transitive_closure("R", "Q");
        let edb = figure7_edb();
        let ground = instantiate(&program, &edb);
        let idb = program.idb_predicates();
        let graph = DependencyGraph::build(&ground, &|p| idb.contains(p));
        let derivable = derivable_facts(&program, &edb);
        let idb_set: BTreeSet<Fact> = idb_facts(&program, &derivable).cloned().collect();
        let order = graph.topological_order_acyclic(&idb_set);
        // The acyclic part is {Q(a,b), Q(a,c), Q(c,b)}; Q(a,b) depends on
        // Q(a,c) and Q(c,b) so it must come after both.
        let pos = |f: &Fact| order.iter().position(|x| x == f);
        let ab = pos(&Fact::new("Q", ["a", "b"])).unwrap();
        let ac = pos(&Fact::new("Q", ["a", "c"])).unwrap();
        let cb = pos(&Fact::new("Q", ["c", "b"])).unwrap();
        assert!(ab > ac && ab > cb);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn program_facts_seed_derivation() {
        let program = crate::parser::parse_program("R('x', 'y').\nQ(a, b) :- R(a, b).").unwrap();
        let empty: FactStore<Natural> = FactStore::new();
        let facts = derivable_facts(&program, &empty);
        assert!(facts.contains(&Fact::new("Q", ["x", "y"])));
    }
}

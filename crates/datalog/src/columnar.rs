//! Batch-native semi-naive evaluation: the datalog fixpoint vectorized on
//! the core columnar kernels ([`provsem_core::kernels`]).
//!
//! The row loops of [`crate::seminaive`] walk one binding at a time: every
//! probe clones a `Binding` (a `BTreeMap`), every body factor is looked up
//! in a `BTreeMap`-backed [`FactStore`], and every head is grounded through
//! a fresh `Fact` allocation. This module runs the *same* differential
//! algorithm over flat columns instead:
//!
//! * the [`FactIndex`] already keeps per-predicate append-only typed
//!   columns and hash-keyed probe buckets (the identical
//!   `hash_combine`-based scheme the batch executor's kernels use);
//! * each rule form's `JoinPlan` is compiled once into a `BatchPlan`
//!   of probe steps over those buckets, with candidate verification done
//!   by typed column comparisons;
//! * the per-round frontier of partial bindings is a set of slot-major
//!   value columns (`Frontier`) extended breadth-first, annotations ride
//!   along as one more column, and per-round deltas are [`Batch`]es built
//!   straight from the change list;
//! * idempotent increments are merged with the core grouping kernel
//!   ([`group_batches`]) — the same duplicate-aggregation kernel the RA
//!   batch executor uses — before touching the accumulator store.
//!
//! # Byte-identity with the row loops
//!
//! Every decision the row loops make is replayed exactly: the same probe
//! masks hit the same buckets, delta/affected sets are `BTreeSet`-ordered,
//! change lists are filtered in sorted-head order, and zero-annotation
//! factors prune a candidate exactly where `body_product` returns `None`.
//! Per-head sums may accumulate factor products in a different (breadth-
//! first) interleaving than the row loops' depth-first one, which is
//! invisible because semiring `+` and `×` are exactly associative and
//! commutative for every semiring in this workspace (the law suite pins
//! that down). The differential tests assert full [`FixpointResult`]
//! equality — annotations, iteration counts, and convergence flags — across
//! engines, semirings, and thread counts.
//!
//! Engine selection happens in [`crate::seminaive::seminaive_iterate_with`]
//! and [`crate::seminaive::seminaive_idempotent_with`], gated on
//! [`ExecMode`] exactly like the RA planner: `PROVSEM_EXEC=row|batch`
//! forces an engine, `auto` (the default) picks batch when the EDB has at
//! least [`Plan::AUTO_BATCH_MIN_ROWS`] facts.

use crate::ast::{Atom, DlVar, Program, Rule, Term};
use crate::fact::{Fact, FactIndex, FactStore};
use crate::grounding::{ground_atom, Binding, JoinPlan};
use crate::naive::FixpointResult;
use crate::seminaive::{build_forms, unevaluated, RuleForms};
use provsem_core::kernels::{group_batches, hash_combine, Batch, ColBuilder, HASH_SEED};
use provsem_core::par;
use provsem_core::plan::{ExecContext, ExecMode, Plan};
use provsem_core::Value;
use provsem_semiring::fxhash::FxHashMap;
use provsem_semiring::{PlusIdempotent, Semiring};
use std::collections::BTreeSet;

/// Should the semi-naive fixpoint run on the batch engine? Mirrors the RA
/// planner's auto rule with the EDB size as the scan estimate: the batch
/// engine's setup (compiled plans, dense annotation tables) only pays off
/// when the joins touch enough rows.
pub(crate) fn use_batch<K: Semiring>(ctx: &ExecContext, edb: &FactStore<K>) -> bool {
    match ctx.mode {
        ExecMode::Row => false,
        ExecMode::Batch => true,
        ExecMode::Auto => edb.len() >= Plan::AUTO_BATCH_MIN_ROWS,
    }
}

/// One bound column of a probe step: where the probe key value comes from.
enum ProbeKey {
    /// A constant in the atom, with its content hash precomputed at compile
    /// time so the per-row hash fold never re-hashes it.
    Const(Value, u64),
    /// A frontier slot holding a variable bound by the seed or an earlier
    /// step.
    Slot(usize),
}

/// One probe step of a compiled plan: probe `atom`'s predicate with the
/// plan's bound-column mask, verify candidates by typed column comparison,
/// and bind the atom's new variables into fresh frontier slots.
struct BatchStep<'f> {
    atom: &'f Atom,
    /// The registered bound-column mask (shared with the row path, so both
    /// engines hit the same buckets).
    cols: &'f [usize],
    /// Per mask column, where its probe value comes from.
    keys: Vec<ProbeKey>,
    /// Repeated new variables within the atom: `(first_pos, repeat_pos)`
    /// pairs whose candidate values must agree.
    intra: Vec<(usize, usize)>,
    /// First-occurrence positions of the atom's new variables, in slot
    /// assignment order.
    news: Vec<usize>,
}

/// Where a head argument comes from when a completed frontier row is
/// grounded into a head fact.
enum Emit {
    Const(Value),
    Slot(usize),
}

/// A [`JoinPlan`] compiled for batch execution: probe steps plus the head
/// emission recipe. `emit` is `None` when some head variable is bound by no
/// atom — such a form can never ground its head, exactly the case where the
/// row path's `ground_atom` fails on every binding.
struct BatchPlan<'f> {
    steps: Vec<BatchStep<'f>>,
    emit: Option<Vec<Emit>>,
    /// Total slot count after the last step (seed slots included).
    nslots: usize,
}

/// How a seed atom (a delta body atom, or the rule head for recompute)
/// filters candidate facts and maps them to the seed slots.
struct SeedSpec {
    arity: usize,
    /// Constant positions that must match.
    consts: Vec<(usize, Value)>,
    /// Repeated-variable positions that must agree: `(first, repeat)`.
    dups: Vec<(usize, usize)>,
    /// First-occurrence position of each seed slot's variable, in slot
    /// order.
    slots: Vec<usize>,
}

/// The seed atom's variables in first-occurrence order — the slot order
/// every plan compiled against this seed uses.
fn seed_vars(atom: &Atom) -> Vec<&DlVar> {
    let mut seen: Vec<&DlVar> = Vec::new();
    for term in &atom.terms {
        if let Term::Var(x) = term {
            if !seen.contains(&x) {
                seen.push(x);
            }
        }
    }
    seen
}

fn seed_spec(atom: &Atom) -> SeedSpec {
    let mut first: FxHashMap<&DlVar, usize> = FxHashMap::default();
    let mut spec = SeedSpec {
        arity: atom.terms.len(),
        consts: Vec::new(),
        dups: Vec::new(),
        slots: Vec::new(),
    };
    for (pos, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(v) => spec.consts.push((pos, v.clone())),
            Term::Var(x) => match first.get(x) {
                Some(&p0) => spec.dups.push((p0, pos)),
                None => {
                    first.insert(x, pos);
                    spec.slots.push(pos);
                }
            },
        }
    }
    spec
}

/// Compiles a join plan into probe steps. `seed` must bind exactly the
/// plan's seed variables (in slot order); the steps reuse the plan's own
/// bound-column masks, so batch probes hit the buckets the row path
/// registered.
fn compile_plan<'f>(plan: &'f JoinPlan<'_>, seed: &[&'f DlVar], head: &'f Atom) -> BatchPlan<'f> {
    let mut slot_of: FxHashMap<&DlVar, usize> = FxHashMap::default();
    for (slot, x) in seed.iter().enumerate() {
        slot_of.insert(*x, slot);
    }
    let mut nslots = seed.len();
    let mut steps = Vec::new();
    for (atom, cols) in plan.atoms().iter().zip(plan.bound()) {
        let keys = cols
            .iter()
            .map(|&c| match &atom.terms[c] {
                Term::Const(v) => ProbeKey::Const(v.clone(), v.content_hash()),
                Term::Var(x) => ProbeKey::Slot(slot_of[x]),
            })
            .collect();
        let mut intra = Vec::new();
        let mut news = Vec::new();
        let mut first_here: FxHashMap<&DlVar, usize> = FxHashMap::default();
        for (pos, term) in atom.terms.iter().enumerate() {
            if cols.contains(&pos) {
                continue;
            }
            // Unbound positions are variables: the mask covers every
            // constant and every position of an already-bound variable.
            let Term::Var(x) = term else { unreachable!() };
            match first_here.get(x) {
                Some(&p0) => intra.push((p0, pos)),
                None => {
                    first_here.insert(x, pos);
                    news.push(pos);
                }
            }
        }
        for &pos in &news {
            let Term::Var(x) = &atom.terms[pos] else {
                unreachable!()
            };
            slot_of.insert(x, nslots);
            nslots += 1;
        }
        steps.push(BatchStep {
            atom,
            cols,
            keys,
            intra,
            news,
        });
    }
    let emit = head
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(v) => Some(Emit::Const(v.clone())),
            Term::Var(x) => slot_of.get(x).map(|&s| Emit::Slot(s)),
        })
        .collect::<Option<Vec<Emit>>>();
    BatchPlan {
        steps,
        emit,
        nslots,
    }
}

/// The batch counterpart of [`RuleForms`]: the same differential forms,
/// compiled.
struct BatchForm<'f> {
    rule: &'f Rule,
    empty_body: bool,
    /// For an empty-body rule, the ground head it derives (`None` when the
    /// head has variables — such a rule never fires).
    head_ground: Option<Fact>,
    /// One per idb body atom: the delta atom's predicate and seed spec, and
    /// the compiled suffix plan over the remaining atoms.
    delta: Vec<(&'f str, SeedSpec, BatchPlan<'f>)>,
    /// Seed spec of the head atom (recompute path).
    head_spec: SeedSpec,
    head_seeded: BatchPlan<'f>,
    full: BatchPlan<'f>,
    has_idb_body: bool,
}

fn compile_forms<'f>(forms: &'f [RuleForms<'_>]) -> Vec<BatchForm<'f>> {
    forms
        .iter()
        .map(|form| {
            let rule = form.rule;
            let delta = form
                .delta_forms
                .iter()
                .map(|(pos, plan)| {
                    let atom = &rule.body[*pos];
                    let vars = seed_vars(atom);
                    (
                        atom.predicate.as_str(),
                        seed_spec(atom),
                        compile_plan(plan, &vars, &rule.head),
                    )
                })
                .collect();
            let head_vars = seed_vars(&rule.head);
            BatchForm {
                rule,
                empty_body: rule.body.is_empty(),
                head_ground: rule
                    .body
                    .is_empty()
                    .then(|| ground_atom(&rule.head, &Binding::new()))
                    .flatten(),
                delta,
                head_spec: seed_spec(&rule.head),
                head_seeded: compile_plan(&form.head_seeded, &head_vars, &rule.head),
                full: compile_plan(&form.full, &[], &rule.head),
                has_idb_body: form.has_idb_body,
            }
        })
        .collect()
}

/// [`crate::seminaive::forms_by_head`] over compiled forms, as indices.
fn forms_by_head_idx<'f>(bforms: &[BatchForm<'f>]) -> FxHashMap<&'f str, Vec<usize>> {
    let mut by_head: FxHashMap<&str, Vec<usize>> = FxHashMap::default();
    for (i, bf) in bforms.iter().enumerate() {
        by_head
            .entry(bf.rule.head.predicate.as_str())
            .or_default()
            .push(i);
    }
    by_head
}

/// Dense per-predicate annotation columns, parallel to the [`FactIndex`]'s
/// pred-local rows: `anns[pred][local_row]` is the fact's current
/// annotation (from the accumulator for idb predicates, from the EDB
/// otherwise). This replaces the row path's per-factor `BTreeMap` lookups
/// with direct indexing.
pub(crate) type AnnTable<K> = FxHashMap<String, Vec<K>>;

/// Annotated rows grouped under their `(predicate, arity)` key — the shape
/// both round-end accumulators collect into before building delta batches.
type GroupedRows<K> = Vec<((String, usize), Vec<(Box<[Value]>, K)>)>;

/// Builds the annotation table for an index whose facts are already final
/// (the IVM recompute path); the fixpoint loops maintain theirs
/// incrementally instead.
pub(crate) fn build_ann_table<K: Semiring>(
    index: &FactIndex,
    idb_predicates: &BTreeSet<String>,
    edb: &FactStore<K>,
    current: &FactStore<K>,
) -> AnnTable<K> {
    let mut table: AnnTable<K> = FxHashMap::default();
    for fact in index.facts() {
        let ann = if idb_predicates.contains(&fact.predicate) {
            current.annotation(fact)
        } else {
            edb.annotation(fact)
        };
        table.entry(fact.predicate.clone()).or_default().push(ann);
    }
    table
}

/// A set of partial bindings, slot-major: `slots[s][r]` is row `r`'s value
/// for slot `s`. In product mode `anns[r]` carries the running body
/// product; `seeds[r]` remembers which seed row `r` descends from (the
/// recompute path sums per-seed totals from it).
struct Frontier<K> {
    rows: usize,
    slots: Vec<Vec<Value>>,
    anns: Vec<K>,
    seeds: Vec<u32>,
}

impl<K: Semiring> Frontier<K> {
    /// The empty-binding seed for a full-body plan: one row, no slots.
    fn unit() -> Frontier<K> {
        Frontier {
            rows: 1,
            slots: Vec::new(),
            anns: vec![K::one()],
            seeds: vec![0],
        }
    }

    /// Splits off the first `n` rows (for row-balanced work partitioning).
    fn split_off_front(&mut self, n: usize) -> Frontier<K> {
        let tail = Frontier {
            rows: self.rows - n,
            slots: self.slots.iter_mut().map(|c| c.split_off(n)).collect(),
            anns: if self.anns.is_empty() {
                Vec::new()
            } else {
                self.anns.split_off(n)
            },
            seeds: self.seeds.split_off(n),
        };
        let mut head = std::mem::replace(self, tail);
        head.rows = n;
        head
    }
}

/// Seeds a frontier from a delta batch through the delta atom's spec. With
/// `track` the batch's annotation column becomes the seed products
/// (zero-annotated rows are dropped, where the row path's `body_product`
/// would return `None`).
fn seed_from_batch<K: Semiring>(spec: &SeedSpec, batch: &Batch<K>, track: bool) -> Frontier<K> {
    let cols = batch.columns();
    let mut fr = Frontier {
        rows: 0,
        slots: vec![Vec::new(); spec.slots.len()],
        anns: Vec::new(),
        seeds: Vec::new(),
    };
    if cols.len() != spec.arity {
        return fr;
    }
    'row: for r in 0..batch.phys_rows() as u32 {
        for (pos, v) in &spec.consts {
            if !cols[*pos].value_eq_at(r, v) {
                continue 'row;
            }
        }
        for &(p0, p1) in &spec.dups {
            if cols[p0].value_at(r) != cols[p1].value_at(r) {
                continue 'row;
            }
        }
        if track {
            let ann = &batch.anns()[r as usize];
            if ann.is_zero() {
                continue;
            }
            fr.anns.push(ann.clone());
        }
        for (slot, &pos) in spec.slots.iter().enumerate() {
            fr.slots[slot].push(cols[pos].value_at(r));
        }
        fr.seeds.push(r);
        fr.rows += 1;
    }
    fr
}

/// Seeds a frontier from affected head facts through the head atom's spec,
/// with seed id `i` and annotation `1` per matching head (the recompute
/// path's per-head sum starts at `1 × body product`).
fn seed_from_heads<'h, K: Semiring>(
    spec: &SeedSpec,
    heads: impl Iterator<Item = (u32, &'h Fact)>,
) -> Frontier<K> {
    let mut fr = Frontier {
        rows: 0,
        slots: vec![Vec::new(); spec.slots.len()],
        anns: Vec::new(),
        seeds: Vec::new(),
    };
    'head: for (id, fact) in heads {
        if fact.values.len() != spec.arity {
            continue;
        }
        for (pos, v) in &spec.consts {
            if &fact.values[*pos] != v {
                continue 'head;
            }
        }
        for &(p0, p1) in &spec.dups {
            if fact.values[p0] != fact.values[p1] {
                continue 'head;
            }
        }
        for (slot, &pos) in spec.slots.iter().enumerate() {
            fr.slots[slot].push(fact.values[pos].clone());
        }
        fr.anns.push(K::one());
        fr.seeds.push(id);
        fr.rows += 1;
    }
    fr
}

/// Runs one probe step over every frontier row: hash the bound columns,
/// fetch the index bucket, verify each candidate with typed column
/// comparisons (falling back to the fact arena for arity-poisoned
/// predicates), and gather the surviving extensions into the next frontier.
/// In product mode (`anns` given) a zero-annotated candidate is pruned and
/// survivors multiply their annotation into the running product.
fn extend<K: Semiring>(
    step: &BatchStep<'_>,
    index: &FactIndex,
    anns: Option<&AnnTable<K>>,
    fr: Frontier<K>,
) -> Frontier<K> {
    let pred = step.atom.predicate.as_str();
    let cols = index.predicate_columns(pred);
    let arity = step.atom.terms.len();
    let pred_anns: Option<&[K]> = anns.map(|t| t.get(pred).map(Vec::as_slice).unwrap_or(&[]));
    let mut parents: Vec<u32> = Vec::new();
    let mut locals: Vec<u32> = Vec::new();
    let mut arena: Vec<usize> = Vec::new();
    let mut out_anns: Vec<K> = Vec::new();
    let mut out_seeds: Vec<u32> = Vec::new();
    for r in 0..fr.rows {
        let candidates = if step.cols.is_empty() {
            index.predicate_rows(pred)
        } else {
            let mut h = HASH_SEED;
            for key in &step.keys {
                h = hash_combine(
                    h,
                    match key {
                        ProbeKey::Const(_, ch) => *ch,
                        ProbeKey::Slot(s) => fr.slots[*s][r].content_hash(),
                    },
                );
            }
            index.candidates_hashed(pred, step.cols, h)
        };
        'cand: for &g in candidates {
            let local = index.local_row(g);
            match cols {
                Some(cb) => {
                    if cb.len() != arity {
                        continue;
                    }
                    for (key, &c) in step.keys.iter().zip(step.cols) {
                        let ok = match key {
                            ProbeKey::Const(v, _) => cb[c].value_eq_at(local, v),
                            ProbeKey::Slot(s) => cb[c].value_eq_at(local, &fr.slots[*s][r]),
                        };
                        if !ok {
                            continue 'cand;
                        }
                    }
                    for &(p0, p1) in &step.intra {
                        if cb[p0].value_at(local) != cb[p1].value_at(local) {
                            continue 'cand;
                        }
                    }
                }
                None => {
                    let fact = index.fact(g);
                    if fact.values.len() != arity {
                        continue;
                    }
                    for (key, &c) in step.keys.iter().zip(step.cols) {
                        let ok = match key {
                            ProbeKey::Const(v, _) => &fact.values[c] == v,
                            ProbeKey::Slot(s) => fact.values[c] == fr.slots[*s][r],
                        };
                        if !ok {
                            continue 'cand;
                        }
                    }
                    for &(p0, p1) in &step.intra {
                        if fact.values[p0] != fact.values[p1] {
                            continue 'cand;
                        }
                    }
                }
            }
            if let Some(pa) = pred_anns {
                let ann = &pa[local as usize];
                if ann.is_zero() {
                    continue;
                }
                out_anns.push(fr.anns[r].times(ann));
            }
            parents.push(r as u32);
            locals.push(local);
            arena.push(g);
            out_seeds.push(fr.seeds[r]);
        }
    }
    let mut slots: Vec<Vec<Value>> = fr
        .slots
        .iter()
        .map(|col| parents.iter().map(|&p| col[p as usize].clone()).collect())
        .collect();
    for &pos in &step.news {
        let col: Vec<Value> = match cols {
            Some(cb) => locals.iter().map(|&lr| cb[pos].value_at(lr)).collect(),
            None => arena
                .iter()
                .map(|&g| index.fact(g).values[pos].clone())
                .collect(),
        };
        slots.push(col);
    }
    Frontier {
        rows: parents.len(),
        slots,
        anns: out_anns,
        seeds: out_seeds,
    }
}

fn run_plan<K: Semiring>(
    plan: &BatchPlan<'_>,
    index: &FactIndex,
    anns: Option<&AnnTable<K>>,
    mut fr: Frontier<K>,
) -> Frontier<K> {
    for step in &plan.steps {
        if fr.rows == 0 {
            break;
        }
        fr = extend(step, index, anns, fr);
    }
    debug_assert!(fr.rows == 0 || fr.slots.len() == plan.nslots);
    fr
}

/// Grounds the head of a completed frontier row.
fn emit_head<K: Semiring>(emit: &[Emit], fr: &Frontier<K>, r: usize, predicate: &str) -> Fact {
    Fact {
        predicate: predicate.to_string(),
        values: emit
            .iter()
            .map(|e| match e {
                Emit::Const(v) => v.clone(),
                Emit::Slot(s) => fr.slots[*s][r].clone(),
            })
            .collect(),
    }
}

/// The batch loops' round-to-round state: the column-backed index, the
/// accumulator store, the dense annotation table mirroring it, and the
/// per-predicate delta batches.
struct BatchState<K> {
    index: FactIndex,
    current: FactStore<K>,
    anns: AnnTable<K>,
    /// Last round's changed facts as batches, one per `(predicate, arity)`
    /// pair (facts of one predicate almost always agree on arity; mixed
    /// arities get one batch each).
    delta: FxHashMap<String, Vec<Batch<K>>>,
    delta_rows: usize,
}

impl<K: Semiring> BatchState<K> {
    /// Round-1 setup, mirroring the row path's `DeltaState::initial`: index
    /// the EDB, build and register the forms, apply `T` once through the
    /// compiled full plans, and seed the delta — cleared immediately for
    /// syntactically non-recursive programs, keeping `converged` aligned.
    fn initial<'a>(
        program: &'a Program,
        idb_predicates: &BTreeSet<String>,
        edb: &FactStore<K>,
    ) -> (Vec<RuleForms<'a>>, Self) {
        let mut index = edb.join_index();
        let forms = build_forms(program, idb_predicates, &mut index);
        let mut anns: AnnTable<K> = FxHashMap::default();
        for fact in index.facts() {
            let ann = if idb_predicates.contains(&fact.predicate) {
                K::zero()
            } else {
                edb.annotation(fact)
            };
            anns.entry(fact.predicate.clone()).or_default().push(ann);
        }
        let mut state = BatchState {
            index,
            current: FactStore::new(),
            anns,
            delta: FxHashMap::default(),
            delta_rows: 0,
        };
        let bforms = compile_forms(&forms);
        let mut produced: FactStore<K> = FactStore::new();
        for bf in bforms.iter().filter(|f| !f.has_idb_body) {
            if bf.empty_body {
                if let Some(head) = &bf.head_ground {
                    produced.insert(head.clone(), K::one());
                }
                continue;
            }
            let Some(emit) = &bf.full.emit else { continue };
            let fr = run_plan(&bf.full, &state.index, Some(&state.anns), Frontier::unit());
            for r in 0..fr.rows {
                produced.insert(
                    emit_head(emit, &fr, r, &bf.rule.head.predicate),
                    fr.anns[r].clone(),
                );
            }
        }
        drop(bforms);
        state.apply_changes(produced.facts().map(|(f, k)| (f, k.clone())).collect());
        if forms.iter().all(|f| f.delta_forms.is_empty()) {
            state.delta.clear();
            state.delta_rows = 0;
        }
        (forms, state)
    }

    /// Ends a round: changed facts join the index and overwrite their
    /// annotation in both the store and the dense table, and the change
    /// list becomes the next delta batches.
    fn apply_changes(&mut self, changes: Vec<(Fact, K)>) {
        self.delta.clear();
        self.delta_rows = changes.len();
        let mut rows: GroupedRows<K> = Vec::new();
        for (fact, ann) in changes {
            if self.index.add_fact(fact.clone()) {
                self.anns
                    .entry(fact.predicate.clone())
                    .or_default()
                    .push(ann.clone());
            } else {
                let g = self.index.position(&fact).expect("fact is indexed");
                let local = self.index.local_row(g) as usize;
                self.anns.get_mut(&fact.predicate).expect("predicate known")[local] = ann.clone();
            }
            self.current.set(fact.clone(), ann.clone());
            let key = (fact.predicate, fact.values.len());
            let row = (fact.values.into_boxed_slice(), ann);
            match rows.iter_mut().find(|(k, _)| *k == key) {
                Some((_, list)) => list.push(row),
                None => rows.push((key, vec![row])),
            }
        }
        for ((pred, arity), list) in rows {
            self.delta
                .entry(pred)
                .or_default()
                .push(Batch::from_rows(arity, list));
        }
    }

    fn finish(self, iterations: usize) -> FixpointResult<K> {
        let converged = self.delta_rows == 0;
        FixpointResult {
            idb: self.current,
            iterations,
            converged,
        }
    }
}

/// One unit of per-round delta work: a compiled delta form (`bforms[form]`'s
/// `delta[dform]`) with its seeded frontier.
type Unit<K> = (usize, usize, Frontier<K>);

/// Builds the round's work units, form-major like the row path's
/// `delta_work_items`. Units whose plan can never ground a head are
/// dropped (the row path grounds per binding and fails every time).
fn delta_units<K: Semiring>(
    bforms: &[BatchForm<'_>],
    delta: &FxHashMap<String, Vec<Batch<K>>>,
    track: bool,
) -> Vec<Unit<K>> {
    let mut units = Vec::new();
    for (fi, bf) in bforms.iter().enumerate() {
        for (di, (pred, spec, plan)) in bf.delta.iter().enumerate() {
            if plan.emit.is_none() {
                continue;
            }
            for batch in delta.get(*pred).map(Vec::as_slice).unwrap_or(&[]) {
                let fr = seed_from_batch(spec, batch, track);
                if fr.rows > 0 {
                    units.push((fi, di, fr));
                }
            }
        }
    }
    units
}

/// Partitions work units into at most `parts` groups of near-equal total
/// row count, splitting a unit's frontier when a boundary falls inside it.
/// Order-preserving, so in-order concatenation of the groups' outputs
/// equals the serial pass.
fn split_units<K: Semiring>(units: Vec<Unit<K>>, parts: usize) -> Vec<Vec<Unit<K>>> {
    let total: usize = units.iter().map(|u| u.2.rows).sum();
    if parts <= 1 || total == 0 {
        return vec![units];
    }
    let target = total.div_ceil(parts);
    let mut groups = Vec::new();
    let mut group: Vec<Unit<K>> = Vec::new();
    let mut filled = 0;
    for (fi, di, mut fr) in units {
        loop {
            let room = target - filled;
            if fr.rows <= room {
                filled += fr.rows;
                group.push((fi, di, fr));
                if filled == target {
                    groups.push(std::mem::take(&mut group));
                    filled = 0;
                }
                break;
            }
            let head = fr.split_off_front(room);
            group.push((fi, di, head));
            groups.push(std::mem::take(&mut group));
            filled = 0;
        }
    }
    if !group.is_empty() {
        groups.push(group);
    }
    groups
}

/// Phase 1 of the general round: every head one differential form away
/// from a delta fact, discovered by batch joins (annotation-blind, exactly
/// like the row path's discovery joins over the index).
fn discover_affected<K>(
    bforms: &[BatchForm<'_>],
    state: &BatchState<K>,
    threads: usize,
) -> BTreeSet<Fact>
where
    K: Semiring + Send + Sync,
{
    let units = delta_units(bforms, &state.delta, false);
    let total: usize = units.iter().map(|u| u.2.rows).sum();
    let index = &state.index;
    let run = |units: Vec<Unit<K>>| {
        let mut heads = BTreeSet::new();
        for (fi, di, fr) in units {
            let bf = &bforms[fi];
            let (_, _, plan) = &bf.delta[di];
            let emit = plan.emit.as_ref().expect("emitting unit");
            let out = run_plan(plan, index, None, fr);
            for r in 0..out.rows {
                heads.insert(emit_head(emit, &out, r, &bf.rule.head.predicate));
            }
        }
        heads
    };
    if threads <= 1 || total < par::SPAWN_THRESHOLD {
        return run(units);
    }
    par::spawn_map(split_units(units, threads), run)
        .into_iter()
        .flatten()
        .collect()
}

/// Phase 2 of the general round: from-scratch totals of `heads`, sharing
/// the row path's summation structure (forms of the head's predicate in
/// program order; per form, the head-seeded plan over the index with the
/// dense annotation table supplying the factors).
fn recompute_totals<K: Semiring>(
    heads: &[Fact],
    bforms: &[BatchForm<'_>],
    by_head: &FxHashMap<&str, Vec<usize>>,
    index: &FactIndex,
    anns: &AnnTable<K>,
) -> Vec<K> {
    let mut totals = vec![K::zero(); heads.len()];
    let mut by_pred: FxHashMap<&str, Vec<u32>> = FxHashMap::default();
    for (i, head) in heads.iter().enumerate() {
        by_pred
            .entry(head.predicate.as_str())
            .or_default()
            .push(i as u32);
    }
    for (pred, ids) in &by_pred {
        let Some(form_ids) = by_head.get(pred) else {
            continue;
        };
        for &fi in form_ids {
            let bf = &bforms[fi];
            if bf.empty_body {
                if let Some(ground) = &bf.head_ground {
                    for &i in ids {
                        if &heads[i as usize] == ground {
                            totals[i as usize].plus_assign(&K::one());
                        }
                    }
                }
                continue;
            }
            let fr = seed_from_heads(&bf.head_spec, ids.iter().map(|&i| (i, &heads[i as usize])));
            let out = run_plan(&bf.head_seeded, index, Some(anns), fr);
            for r in 0..out.rows {
                totals[out.seeds[r] as usize].plus_assign(&out.anns[r]);
            }
        }
    }
    totals
}

/// Compiled batch recomputation machinery for the IVM rederive passes
/// ([`crate::maintain::maintain_fixpoint_with`]): the forms compiled once
/// per maintenance call, with [`BatchRecompute::totals`] mapping one
/// from-scratch sweep over a slice of affected heads — the batch
/// counterpart of `recompute_head` over each.
pub(crate) struct BatchRecompute<'f> {
    bforms: Vec<BatchForm<'f>>,
    by_head: FxHashMap<&'f str, Vec<usize>>,
}

impl<'f> BatchRecompute<'f> {
    pub(crate) fn new(forms: &'f [RuleForms<'_>]) -> Self {
        let bforms = compile_forms(forms);
        let by_head = forms_by_head_idx(&bforms);
        BatchRecompute { bforms, by_head }
    }

    /// From-scratch totals of `heads` over `index`, with `anns` supplying
    /// every body factor (build it with [`build_ann_table`] against the
    /// pass-start stores).
    pub(crate) fn totals<K: Semiring>(
        &self,
        heads: &[Fact],
        index: &FactIndex,
        anns: &AnnTable<K>,
    ) -> Vec<K> {
        recompute_totals(heads, &self.bforms, &self.by_head, index, anns)
    }
}

/// [`crate::seminaive::seminaive_iterate`] on the batch engine: identical
/// rounds (delta-driven affected-head discovery, from-scratch recompute of
/// each affected head), executed as batch probes over the column-backed
/// index. Sound for every semiring; `FixpointResult`-identical to the row
/// loops at any `threads`.
pub fn seminaive_iterate_batch<K>(
    program: &Program,
    edb: &FactStore<K>,
    max_rounds: usize,
    threads: usize,
) -> FixpointResult<K>
where
    K: Semiring + Send + Sync,
{
    if max_rounds == 0 {
        return unevaluated();
    }
    let idb_predicates = program.idb_predicates();
    let (forms, mut state) = BatchState::initial(program, &idb_predicates, edb);
    let bforms = compile_forms(&forms);
    let by_head = forms_by_head_idx(&bforms);

    let mut iterations = 1;
    while iterations < max_rounds {
        if state.delta_rows == 0 {
            break;
        }
        iterations += 1;

        let affected: Vec<Fact> = discover_affected(&bforms, &state, threads)
            .into_iter()
            .collect();

        let changes: Vec<(Fact, K)> = {
            let (index, anns, current) = (&state.index, &state.anns, &state.current);
            let collect = |chunk: &[Fact]| -> Vec<(Fact, K)> {
                let totals = recompute_totals(chunk, &bforms, &by_head, index, anns);
                chunk
                    .iter()
                    .zip(totals)
                    .filter(|(head, total)| *total != current.annotation(head))
                    .map(|(head, total)| (head.clone(), total))
                    .collect()
            };
            if threads <= 1 || affected.len() < par::SPAWN_THRESHOLD {
                collect(&affected)
            } else {
                par::par_map_chunks(par::chunked(affected, threads), |_, chunk| collect(&chunk))
                    .into_iter()
                    .flatten()
                    .collect()
            }
        };
        state.apply_changes(changes);
    }
    state.finish(iterations)
}

/// [`crate::seminaive::seminaive_idempotent`] on the batch engine: the
/// classical delta rewrite with increments produced by batch joins and
/// merged through the core grouping kernel before touching the
/// accumulator. Requires `+`-idempotence like the row loop.
pub fn seminaive_idempotent_batch<K>(
    program: &Program,
    edb: &FactStore<K>,
    max_rounds: usize,
    threads: usize,
) -> FixpointResult<K>
where
    K: Semiring + PlusIdempotent + Send + Sync,
{
    if max_rounds == 0 {
        return unevaluated();
    }
    let idb_predicates = program.idb_predicates();
    let (forms, mut state) = BatchState::initial(program, &idb_predicates, edb);
    let bforms = compile_forms(&forms);

    let mut iterations = 1;
    while iterations < max_rounds {
        if state.delta_rows == 0 {
            break;
        }
        iterations += 1;

        // Increments: run every seeded delta form in product mode and
        // collect raw head contributions per (predicate, arity).
        let units = delta_units(&bforms, &state.delta, true);
        let total: usize = units.iter().map(|u| u.2.rows).sum();
        let index = &state.index;
        let anns = &state.anns;
        type Contribs<K> = Vec<(String, usize, Vec<(Box<[Value]>, K)>)>;
        let run = |units: Vec<Unit<K>>| -> Contribs<K> {
            let mut out: Contribs<K> = Vec::new();
            for (fi, di, fr) in units {
                let bf = &bforms[fi];
                let (_, _, plan) = &bf.delta[di];
                let emit = plan.emit.as_ref().expect("emitting unit");
                let done = run_plan(plan, index, Some(anns), fr);
                if done.rows == 0 {
                    continue;
                }
                let rows: Vec<(Box<[Value]>, K)> = (0..done.rows)
                    .map(|r| {
                        let fact = emit_head(emit, &done, r, &bf.rule.head.predicate);
                        (fact.values.into_boxed_slice(), done.anns[r].clone())
                    })
                    .collect();
                out.push((
                    bf.rule.head.predicate.clone(),
                    bf.rule.head.terms.len(),
                    rows,
                ));
            }
            out
        };
        let contribs: Contribs<K> = if threads <= 1 || total < par::SPAWN_THRESHOLD {
            run(units)
        } else {
            par::spawn_map(split_units(units, threads), run)
                .into_iter()
                .flatten()
                .collect()
        };

        // Merge equal heads with the core grouping kernel (stream-order
        // annotation sums, zero groups dropped — exactly the accumulation
        // `FactStore::insert` performs on the row path).
        let mut grouped: GroupedRows<K> = Vec::new();
        for (pred, arity, rows) in contribs {
            let key = (pred, arity);
            match grouped.iter_mut().find(|(k, _)| *k == key) {
                Some((_, list)) => list.extend(rows),
                None => grouped.push((key, rows)),
            }
        }
        let mut produced: FactStore<K> = FactStore::new();
        for ((pred, arity), rows) in grouped {
            if arity == 0 {
                // Propositional heads: nothing to group on; fold directly.
                let mut sum = K::zero();
                for (_, k) in rows {
                    sum.plus_assign(&k);
                }
                produced.insert(Fact::new(pred, Vec::<Value>::new()), sum);
                continue;
            }
            let keys: Vec<usize> = (0..arity).collect();
            let merged = group_batches(vec![Batch::from_rows(arity, rows)], &keys)
                .into_batch(arity)
                .into_rows();
            for (values, k) in merged {
                produced.insert(
                    Fact {
                        predicate: pred.clone(),
                        values: values.into_vec(),
                    },
                    k,
                );
            }
        }

        let mut changes: Vec<(Fact, K)> = Vec::new();
        for (fact, increment) in produced.facts() {
            let merged = state.current.annotation(&fact).plus(increment);
            if merged != state.current.annotation(&fact) {
                changes.push((fact, merged));
            }
        }
        state.apply_changes(changes);
    }
    state.finish(iterations)
}

/// Renders a [`JoinPlan`]'s probe order: each atom in join order with the
/// bound-column mask its index probe uses (`scan` when nothing is bound —
/// the probe degenerates to the predicate listing).
fn render_plan(plan: &JoinPlan<'_>) -> String {
    if plan.atoms().is_empty() {
        return "∅ (ground body)".to_string();
    }
    plan.atoms()
        .iter()
        .zip(plan.bound())
        .map(|(atom, cols)| {
            if cols.is_empty() {
                format!("scan {atom}")
            } else {
                let cs: Vec<String> = cols.iter().map(usize::to_string).collect();
                format!("probe {atom}[{}]", cs.join(","))
            }
        })
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Describes how the semi-naive fixpoint will evaluate `program` over
/// `edb` under `ctx`, mirroring the RA planner's
/// [`Plan::explain_physical_with`](provsem_core::plan::Plan::explain_physical_with):
///
/// * the first line states the engine decision — which engine runs and
///   whether it was forced or picked by [`ExecMode::Auto`] from the EDB
///   size;
/// * per rule, the join orders actually executed: the left-to-right
///   `full` plan (round 1 / edb-only rules), the head-seeded `recompute`
///   plan (general-semiring rederivation), and one `Δ` form per idb body
///   atom (the differential probe order when the delta sits at that atom),
///   each atom annotated with its bound-column probe mask;
/// * per EDB predicate, the index's column encodings — `i64` (typed
///   integers), `dict(n)` (dictionary-encoded strings, `n` distinct
///   entries), or `val` (mixed types or dictionary overflow past
///   `DICT_MAX`) — or `arena (mixed arity)` when a predicate's facts
///   disagree on arity and columnar storage is poisoned.
///
/// Purely introspective: nothing is evaluated, and the rendering is
/// deterministic for a given `(program, edb, ctx)`.
pub fn explain_fixpoint<K: Semiring>(
    program: &Program,
    edb: &FactStore<K>,
    ctx: &ExecContext,
) -> String {
    use std::fmt::Write as _;
    let mut out = match (ctx.mode, use_batch(ctx, edb)) {
        (ExecMode::Auto, true) => format!(
            "engine: batch (auto: {} edb rows ≥ {})",
            edb.len(),
            Plan::AUTO_BATCH_MIN_ROWS
        ),
        (ExecMode::Auto, false) => format!(
            "engine: row (auto: {} edb rows < {})",
            edb.len(),
            Plan::AUTO_BATCH_MIN_ROWS
        ),
        (_, false) => "engine: row (forced)".to_string(),
        _ => "engine: batch (forced)".to_string(),
    };
    out.push('\n');
    let idb_predicates = program.idb_predicates();
    let mut index = edb.join_index();
    let forms = build_forms(program, &idb_predicates, &mut index);
    for (i, form) in forms.iter().enumerate() {
        writeln!(out, "rule {i}: {}", form.rule).unwrap();
        writeln!(out, "  full: {}", render_plan(&form.full)).unwrap();
        writeln!(out, "  recompute: {}", render_plan(&form.head_seeded)).unwrap();
        for (pos, plan) in &form.delta_forms {
            writeln!(out, "  Δ {}: {}", form.rule.body[*pos], render_plan(plan)).unwrap();
        }
    }
    out.push_str("columns:\n");
    for pred in edb.predicates() {
        match index.predicate_columns(pred) {
            Some(cols) => {
                let encodings: Vec<String> = cols.iter().map(ColBuilder::encoding).collect();
                writeln!(
                    out,
                    "  {pred}: [{}] ({} rows)",
                    encodings.join(", "),
                    index.predicate_rows(pred).len()
                )
                .unwrap();
            }
            None => writeln!(out, "  {pred}: arena (mixed arity)").unwrap(),
        }
    }
    out
}

//! # proptest (vendored shim)
//!
//! An offline, dependency-free stand-in for the subset of the [`proptest`
//! 1.x](https://docs.rs/proptest/1) API used by this workspace's
//! property-based tests. The build environment for this repository has no
//! access to crates.io, so the workspace vendors its three external crates
//! (`rand`, `criterion`, `proptest`) as minimal in-tree reimplementations
//! under `crates/vendor/`.
//!
//! Covered surface:
//!
//! * the [`proptest!`] macro, including the inner
//!   `#![proptest_config(...)]` attribute and `arg in strategy` bindings;
//! * [`Strategy`] (generation only — **no shrinking**), implemented for
//!   integer ranges, tuples of strategies, and
//!   [`prop::collection::vec`], plus [`Strategy::prop_map`] and [`Just`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Deviations from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case is reported at the size it was drawn.
//! * **Deterministic seeding.** Each test function derives its RNG seed from
//!   its own name (FNV-1a) and the case index, so failures reproduce exactly
//!   under plain `cargo test` with no `proptest-regressions` files.
//! * Failures panic immediately (the macros delegate to `assert!` /
//!   `assert_eq!` / `assert_ne!` after printing the case number), instead of
//!   returning `TestCaseError`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// How many random cases each property runs (shim for
/// `proptest::test_runner::Config`; only `cases` is supported).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this shim matches it so un-configured
        // `proptest!` blocks exercise the same volume of cases.
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values (shim for `proptest::strategy::Strategy`).
///
/// Unlike upstream there is no value tree and no shrinking: a strategy is
/// just a function from an RNG to a value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (shim for upstream's
    /// `Strategy::prop_map`; no shrinking, so this is a plain map).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always produces a clone of one fixed value (shim for
/// upstream's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Namespace mirror of upstream's `proptest::prelude::prop`.
pub mod prop {
    /// Strategies producing collections.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// A strategy for `Vec`s whose length is drawn from `size` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec()`](fn@vec).
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-based test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Builds the per-test RNG. Public so the [`proptest!`] expansion can call
/// it; not part of the mirrored upstream API.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index, so every test
    // function and every case sees a distinct but fully deterministic stream.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Defines property-based tests: each `fn name(arg in strategy, ...) { .. }`
/// item becomes a `#[test]` that draws its arguments from the strategies for
/// each of the configured number of cases and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (shim: panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (shim: panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (shim: panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs(max: u8) -> impl Strategy<Value = Vec<(u8, u64)>> {
        prop::collection::vec((0..max, 1u64..4), 1..6)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tuple, range and vec strategies compose and respect bounds.
        #[test]
        fn strategies_respect_bounds(pairs in arb_pairs(5), k in 0usize..4) {
            prop_assert!(k < 4);
            prop_assert!(!pairs.is_empty() && pairs.len() < 6);
            for (a, b) in pairs {
                prop_assert!(a < 5);
                prop_assert!((1..4).contains(&b));
            }
        }
    }

    proptest! {
        /// The un-configured form defaults to 256 cases and plain idents.
        #[test]
        fn unconfigured_form_works(a in 0u64..10, b in 0u64..10) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// `prop_map` transforms draws and `Just` is constant.
        #[test]
        fn map_and_just_strategies(s in (1u64..5).prop_map(|n| n.to_string()), k in Just(7u8)) {
            prop_assert!(matches!(s.as_str(), "1" | "2" | "3" | "4"));
            prop_assert_eq!(k, 7);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_and_case() {
        let strategy = arb_pairs(9);
        let one = strategy.generate(&mut crate::test_rng("t", 0));
        let two = strategy.generate(&mut crate::test_rng("t", 0));
        assert_eq!(one, two);
        let other_case = strategy.generate(&mut crate::test_rng("t", 1));
        let other_test = strategy.generate(&mut crate::test_rng("u", 0));
        // Not a hard guarantee for every seed, but these particular streams
        // must differ or the mixing is broken.
        assert!(one != other_case || one != other_test);
    }
}

//! # rand (vendored shim)
//!
//! An offline, dependency-free stand-in for the subset of the [`rand`
//! 0.8](https://docs.rs/rand/0.8) API that this workspace uses. The build
//! environment for this repository has no access to crates.io, so the
//! workspace vendors the three external crates it needs (`rand`,
//! `criterion`, `proptest`) as minimal in-tree reimplementations under
//! `crates/vendor/`; path dependencies in the root `Cargo.toml` route the
//! ordinary `use rand::...` imports here.
//!
//! Covered surface:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (SplitMix64, Steele et
//!   al., OOPSLA 2014). It does **not** match upstream `StdRng`'s stream,
//!   but every workload generator in `provsem-bench` only requires a seeded
//!   generator that is reproducible run-to-run, which this is.
//! * [`SeedableRng::seed_from_u64`] — the only constructor the workspace
//!   uses.
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges and
//!   half-open `f64` ranges, and [`Rng::gen_bool`].
//!
//! Integer sampling uses 128-bit modulo reduction. That carries the usual
//! modulo bias of at most `span / 2^64`, which is astronomically below
//! anything observable for the small domains the benchmarks draw from.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words (shim for `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits from the generator.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a `u64` seed (shim for
/// `rand_core::SeedableRng`; only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator whose output is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`]
/// (shim for `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`, matching upstream behaviour.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must lie in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Converts 64 random bits to a uniform `f64` in `[0, 1)` using the top 53
/// bits (the standard mantissa-filling construction).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample from (shim for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators (shim for `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: SplitMix64.
    ///
    /// Unlike upstream `StdRng` this is *specified* — the stream for a given
    /// seed is stable across versions of this shim, which is exactly the
    /// reproducibility property `provsem_bench::rng` documents.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(0.1f64..0.9);
            assert!((0.1..0.9).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "got {heads} heads");
    }
}

//! # criterion (vendored shim)
//!
//! An offline, dependency-free stand-in for the subset of the [`criterion`
//! 0.5](https://docs.rs/criterion/0.5) API used by the `provsem-bench`
//! benchmark targets. The build environment for this repository has no
//! access to crates.io, so the workspace vendors its three external crates
//! (`rand`, `criterion`, `proptest`) as minimal in-tree reimplementations
//! under `crates/vendor/`.
//!
//! Covered surface: [`Criterion`] with the `sample_size` /
//! `measurement_time` / `warm_up_time` builders, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both the positional and
//! the `name = ...; config = ...; targets = ...` forms).
//!
//! Semantics: each benchmark warms up for `warm_up_time`, then takes
//! `sample_size` wall-clock samples spread over `measurement_time` and
//! prints `min / median / max` per-iteration times in Criterion's familiar
//! `time: [low mid high]` shape. There is no statistical outlier analysis,
//! no HTML report, and no saved baselines — just honest timings on stderr.
//!
//! Harness integration: `cargo bench` passes `--bench` to `harness = false`
//! targets, which selects full measurement; any other invocation (such as
//! `cargo test --benches`, which passes no mode flag) runs every benchmark
//! body exactly once so test runs stay fast — the same detection upstream
//! Criterion uses. A single positional argument is treated as a substring
//! filter on benchmark ids, mirroring `cargo bench <filter>`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: holds measurement configuration and the mode the
/// binary was invoked in (`cargo bench` vs `cargo test`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror upstream's mode detection: `cargo bench` passes `--bench`
        // to the target binary and selects full measurement; any other
        // invocation (`cargo test --benches` passes nothing, or an explicit
        // `--test`) runs each benchmark once.
        let mut test_mode = true;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => test_mode = false,
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget over which samples are spread.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets how long each benchmark runs untimed before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.text, f);
        self
    }

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A named collection of benchmarks sharing the parent driver's settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().text);
        self.criterion.run(&full, f);
        self
    }

    /// Benchmarks `f` under `self.name/id`, passing `input` through.
    ///
    /// The shim takes no ownership of the input (upstream moves a reference
    /// too); the indirection exists purely so bench bodies read the same as
    /// with real Criterion.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.text);
        self.criterion.run(&full, |b| f(b, input));
        self
    }

    /// Ends the group. (The shim keeps no per-group state; this exists so
    /// call sites match upstream.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    ///
    /// In test mode (`--test`) the routine runs exactly once, untimed.
    /// Otherwise the routine is warmed up for `warm_up_time`, an iteration
    /// count per sample is chosen so that `sample_size` samples fill
    /// `measurement_time`, and per-iteration durations are recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }

        // Warm-up, also yielding a per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().div_f64(iters_per_sample as f64));
        }
    }

    fn report(&mut self, id: &str) {
        if self.test_mode {
            eprintln!("{id:<48} ... ok (test mode)");
            return;
        }
        if self.samples.is_empty() {
            return;
        }
        self.samples.sort();
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        let median = self.samples[self.samples.len() / 2];
        eprintln!(
            "{id:<48} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines a function that runs a list of benchmark functions, in either the
/// positional (`criterion_group!(name, target, ...)`) or the keyword
/// (`criterion_group! { name = ...; config = ...; targets = ... }`) form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` for a `harness = false` bench target by invoking each
/// group defined with [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forced_test_mode() -> Criterion {
        Criterion {
            test_mode: true,
            ..Criterion::default()
        }
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = forced_test_mode();
        let mut ran = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("plain", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("with", 7), &3, |b, x| b.iter(|| ran += *x));
        group.bench_with_input(BenchmarkId::from_parameter(10), &10, |b, x| {
            b.iter(|| ran += *x)
        });
        group.finish();
        assert_eq!(ran, 1 + 3 + 10);
    }

    #[test]
    fn measurement_collects_requested_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.test_mode = false;
        c.filter = None;
        let mut samples_seen = 0;
        c.run("probe", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            samples_seen = b.samples.len();
        });
        assert_eq!(samples_seen, 5);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = forced_test_mode();
        c.filter = Some("match_me".to_string());
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("does_match_me_yes", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}

//! E12 — Ablation: the *same* RA⁺ / datalog algorithms instantiated at
//! different semirings (the paper's central claim), plus naive vs semi-naive
//! datalog for idempotent semirings.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::{random_graph_store, random_ternary_bag, reannotate, report_rows};
use provsem_core::paper::section2_query;
use provsem_core::provenance::provenance_of_query;
use provsem_core::Database;
use provsem_datalog::{evaluate_fixpoint, seminaive_evaluate, Program};
use provsem_semiring::{Bool, NatInf, PosBool, Semiring, Tropical};

fn bench(c: &mut Criterion) {
    let base = random_ternary_bag(42, 150, 10, 4);
    report_rows(
        "Ablation: one query, many semirings",
        &[(
            "input".into(),
            format!("{} tuples over {{a,b,c}}", base.get("R").unwrap().len()),
        )],
    );

    let mut group = c.benchmark_group("ablation_one_query_many_semirings");
    group.bench_function("N_bag", |b| {
        b.iter(|| section2_query().eval(&base).unwrap().len())
    });
    let bool_db: Database<Bool> = reannotate(&base);
    group.bench_function("B_set", |b| {
        b.iter(|| section2_query().eval(&bool_db).unwrap().len())
    });
    let trop_db: Database<Tropical> = base.map_annotations(|n| Tropical::cost(n.value()));
    group.bench_function("Tropical_cost", |b| {
        b.iter(|| section2_query().eval(&trop_db).unwrap().len())
    });
    let counter = std::cell::Cell::new(0usize);
    let posbool_db: Database<PosBool> = base.map_annotations(|_| {
        counter.set(counter.get() + 1);
        PosBool::var(format!("b{}", counter.get()))
    });
    group.bench_function("PosBool_ctable", |b| {
        b.iter(|| section2_query().eval(&posbool_db).unwrap().len())
    });
    group.bench_function("NX_provenance", |b| {
        b.iter(|| {
            provenance_of_query(&section2_query(), &base)
                .unwrap()
                .0
                .len()
        })
    });
    group.finish();

    // Naive vs semi-naive datalog over idempotent semirings.
    let mut group = c.benchmark_group("ablation_naive_vs_seminaive");
    let program = Program::transitive_closure("R", "Q");
    for (nodes, edges) in [(10usize, 20usize), (20, 40)] {
        let edb =
            random_graph_store(42, nodes, edges).map_annotations(|k| Bool::from(!k.is_zero()));
        group.bench_with_input(BenchmarkId::new("naive", nodes), &edb, |b, edb| {
            b.iter(|| evaluate_fixpoint(&program, edb, 256).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("seminaive", nodes), &edb, |b, edb| {
            b.iter(|| seminaive_evaluate(&program, edb, 256).idb.len())
        });
        let trop = random_graph_store(42, nodes, edges)
            .map_annotations(|k| Tropical::cost(k.finite_value().unwrap_or(1)));
        group.bench_with_input(
            BenchmarkId::new("seminaive_tropical", nodes),
            &trop,
            |b, trop| b.iter(|| seminaive_evaluate(&program, trop, 256).idb.len()),
        );
        let _ = NatInf::Fin(0);
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

//! E2 — Figure 2: the Imielinski–Lipski computation (RA⁺ at K = PosBool).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::{random_ternary_ctable, report_rows};
use provsem_core::paper::section2_query;
use provsem_incomplete::CTable;

fn reproduce_figure2() {
    let answer = CTable::figure1b()
        .answer_query("R", &section2_query())
        .unwrap();
    let rows: Vec<(String, String)> = answer
        .relation()
        .iter()
        .map(|(t, cond)| (format!("{t}"), format!("{cond}")))
        .collect();
    report_rows("Figure 2(b): Imielinski–Lipski answer c-table", &rows);
}

fn bench(c: &mut Criterion) {
    reproduce_figure2();
    let mut group = c.benchmark_group("fig2_ctable_query");
    for size in [10usize, 50, 200] {
        let db = random_ternary_ctable(42, size, 8);
        group.bench_with_input(BenchmarkId::from_parameter(size), &db, |b, db| {
            b.iter(|| section2_query().eval(db).unwrap().len())
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

//! IVM — incremental view maintenance against from-scratch re-execution.
//!
//! A 10 000-row ℤ-annotated base joins a small dimension relation through a
//! planned σ/⋈/π query. The `recompute` target re-executes the plan on the
//! full base; the `maintain/N` targets absorb an N-row delta batch into a
//! [`MaterializedView`] and then absorb its exact inverse (so the view is
//! back at the start and every iteration does the same work — each sample
//! therefore prices *two* maintenance calls). The headline number the
//! roadmap tracks: maintaining a 10-row delta must beat re-executing the
//! 10k-row base by ≥5×, which the preamble measures and prints explicitly
//! (committed as `BENCH_ivm.json`).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::report_rows;
use provsem_core::plan::{DeltaBatch, ExecContext, Plan};
use provsem_core::prelude::*;
use provsem_semiring::{Integers, Ring};
use std::time::Instant;

const BASE_ROWS: u64 = 10_000;

/// The 10k-row base: R(a, b, c) with distinct rows (c is unique), joined to
/// a 100-row S(b, d) through 50 shared b-values.
fn base_db() -> Database<Integers> {
    let mut r = KRelation::empty(Schema::new(["a", "b", "c"]));
    for i in 0..BASE_ROWS {
        r.insert(row_r(i), Integers::new(1 + (i % 3) as i64));
    }
    let mut s = KRelation::empty(Schema::new(["b", "d"]));
    for i in 0..100u64 {
        s.insert(
            Tuple::new([("b", format!("b{}", i % 50)), ("d", format!("d{}", i % 7))]),
            Integers::new(1),
        );
    }
    Database::new().with("R", r).with("S", s)
}

fn row_r(i: u64) -> Tuple {
    Tuple::new([
        ("a", format!("a{}", i % 100)),
        ("b", format!("b{}", i % 50)),
        ("c", format!("c{i}")),
    ])
}

fn query() -> RaExpr {
    RaExpr::relation("R")
        .select(Predicate::ne_value("a", "a0"))
        .join(RaExpr::relation("S"))
        .project(["a", "d"])
}

/// An N-row batch: half deletions of existing base rows (exact additive
/// inverses), half inserts of fresh rows beyond the base id range.
fn delta_batch(n: u64) -> DeltaBatch<Integers> {
    let mut batch = DeltaBatch::new();
    for j in 0..n {
        if j % 2 == 0 {
            let i = (j / 2) * 97 % BASE_ROWS;
            batch.delete("R", row_r(i), Integers::new(1 + (i % 3) as i64));
        } else {
            batch.insert("R", row_r(BASE_ROWS + j), Integers::new(2));
        }
    }
    batch
}

fn inverse(batch: &DeltaBatch<Integers>) -> DeltaBatch<Integers> {
    let mut inv = DeltaBatch::new();
    for (name, relation) in batch.iter() {
        for (tuple, k) in relation.iter() {
            inv.insert(name.clone(), tuple.clone(), k.neg());
        }
    }
    inv
}

/// Measures the headline ratio outside Criterion (one warm pass, then a
/// timed loop) and prints it next to the timings; the numbers land in
/// `BENCH_ivm.json`.
fn report_speedups(db: &Database<Integers>, plan: &Plan) {
    let ctx = ExecContext::serial();
    let time = |f: &mut dyn FnMut()| {
        f(); // warm
        let rounds = 20;
        let start = Instant::now();
        for _ in 0..rounds {
            f();
        }
        start.elapsed().as_secs_f64() / f64::from(rounds)
    };
    let recompute = time(&mut || {
        std::hint::black_box(plan.execute_with(db, &ctx).len());
    });
    let mut rows = vec![(
        "recompute".to_string(),
        format!("{:.3} ms (10k-row base)", recompute * 1e3),
    )];
    for n in [1u64, 10, 100] {
        let mut view = plan.materialize(db);
        let batch = delta_batch(n);
        let undo = inverse(&batch);
        let maintain = time(&mut || {
            plan.maintain_with(&mut view, &batch, &ctx);
            plan.maintain_with(&mut view, &undo, &ctx);
        }) / 2.0;
        rows.push((
            format!("maintain/{n}"),
            format!(
                "{:.4} ms per batch, {:.0}x faster than recompute",
                maintain * 1e3,
                recompute / maintain
            ),
        ));
    }
    report_rows("IVM: maintain vs recompute (ℤ, serial)", &rows);
}

fn bench(c: &mut Criterion) {
    let db = base_db();
    let plan = Plan::new(&query(), &db.catalog()).expect("valid query");

    // Sanity: a maintained view tracks re-execution on this workload.
    let mut view = plan.materialize(&db);
    let batch = delta_batch(10);
    plan.maintain(&mut view, &batch);
    let mut updated = db.clone();
    batch.apply_to(&mut updated);
    assert_eq!(view.result(), &plan.execute(&updated));

    report_speedups(&db, &plan);

    let mut group = c.benchmark_group("fig_ivm_maintenance");
    group.bench_with_input(BenchmarkId::new("recompute", BASE_ROWS), &db, |b, db| {
        b.iter(|| plan.execute(db).len())
    });
    for n in [1u64, 10, 100] {
        let batch = delta_batch(n);
        let undo = inverse(&batch);
        let mut view = plan.materialize(&db);
        group.bench_with_input(BenchmarkId::new("maintain", n), &n, |b, _| {
            b.iter(|| {
                plan.maintain(&mut view, &batch);
                plan.maintain(&mut view, &undo);
            })
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

//! E3 — Figure 3: bag-semantics RA⁺ evaluation.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::{random_ternary_bag, report_rows};
use provsem_core::paper::{figure3_bag, figure3_expected, section2_query};
use provsem_core::Tuple;

fn reproduce_figure3() {
    let out = section2_query().eval(&figure3_bag()).unwrap();
    let rows: Vec<(String, String)> = figure3_expected()
        .into_iter()
        .map(|(a, c, expected)| {
            let got = out.annotation(&Tuple::new([("a", a), ("c", c)]));
            (
                format!("({a},{c})"),
                format!("measured {got}, paper {expected}"),
            )
        })
        .collect();
    report_rows("Figure 3(b): bag multiplicities", &rows);
}

fn bench(c: &mut Criterion) {
    reproduce_figure3();
    let mut group = c.benchmark_group("fig3_bag_query");
    for size in [10usize, 100, 500] {
        let db = random_ternary_bag(42, size, 12, 5);
        group.bench_with_input(BenchmarkId::from_parameter(size), &db, |b, db| {
            b.iter(|| section2_query().eval(db).unwrap().len())
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

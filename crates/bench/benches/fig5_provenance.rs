//! E5 — Figure 5: provenance polynomials, why-provenance, and the
//! factorization theorem (provenance overhead vs direct evaluation).
//!
//! Each body runs twice: on the planned engine (`eval`: logical plan →
//! optimizer → positional physical operators) and on the tree-walking
//! reference interpreter (`eval_interpreted`), so the planner's speedup is
//! measured on the exact workload of the figure.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::{random_ternary_bag, report_rows};
use provsem_core::paper::{figure5_tagged, section2_query};
use provsem_core::plan::{ExecContext, ExecMode, Plan, RelationSource};
use provsem_core::provenance::{
    circuit_provenance_of_query, provenance_of_query, specialize, specialize_circuit,
    specialize_circuit_with, tag_database, tag_database_circuit,
};
use provsem_semiring::circuit;

fn reproduce_figure5() {
    let out = section2_query().eval(&figure5_tagged()).unwrap();
    let rows: Vec<(String, String)> = out
        .iter()
        .map(|(t, p)| {
            (
                format!("{t}"),
                format!("{p}  (why: {:?})", p.why_provenance()),
            )
        })
        .collect();
    report_rows(
        "Figure 5(b)/(c): why-provenance and provenance polynomials",
        &rows,
    );
    println!("\nOptimized plan for the Section 2 query:");
    let plan = Plan::new(&section2_query(), &figure5_tagged().catalog()).unwrap();
    println!("{}", plan.explain());
}

fn bench(c: &mut Criterion) {
    reproduce_figure5();
    let mut group = c.benchmark_group("fig5_provenance_vs_direct");
    for size in [10usize, 100, 300] {
        let db = random_ternary_bag(42, size, 10, 5);
        group.bench_with_input(BenchmarkId::new("direct_bag", size), &db, |b, db| {
            b.iter(|| section2_query().eval(db).unwrap().len())
        });
        // The same plan on the two engines, pinned explicitly: the row
        // engine is the pre-columnar pipelined path, the batch engine the
        // default columnar one. Serial contexts so the ratio is the
        // kernels', not the thread fan-out's.
        let plan = Plan::new(&section2_query(), &db.catalog()).unwrap();
        for (label, mode) in [
            ("direct_bag_row", ExecMode::Row),
            ("direct_bag_batch", ExecMode::Batch),
        ] {
            let ctx = ExecContext::serial().with_mode(mode);
            group.bench_with_input(BenchmarkId::new(label, size), &db, |b, db| {
                b.iter(|| plan.execute_with(db, &ctx).len())
            });
        }
        group.bench_with_input(
            BenchmarkId::new("direct_bag_interpreted", size),
            &db,
            |b, db| b.iter(|| section2_query().eval_interpreted(db).unwrap().len()),
        );
        group.bench_with_input(
            BenchmarkId::new("provenance_then_eval", size),
            &db,
            |b, db| {
                b.iter(|| {
                    let (prov, valuation) = provenance_of_query(&section2_query(), db).unwrap();
                    specialize(&prov, &valuation).len()
                })
            },
        );
        // The same tag → query → specialize pipeline in circuit form: O(1)
        // node interning during evaluation and one memoized Eval_v pass
        // shared across all output tuples. Each iteration starts from a
        // truly empty arena (vacuum truncates the shared store; a bare
        // reset would only stale the handles and let re-interning hit the
        // old nodes), so the cost of building the DAG is measured, not
        // amortized away.
        group.bench_with_input(
            BenchmarkId::new("provenance_then_eval_circuit", size),
            &db,
            |b, db| {
                b.iter(|| {
                    circuit::vacuum();
                    let (prov, valuation) =
                        circuit_provenance_of_query(&section2_query(), db).unwrap();
                    specialize_circuit(&prov, &valuation).len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("provenance_then_eval_interpreted", size),
            &db,
            |b, db| {
                b.iter(|| {
                    let tagged = tag_database(db);
                    let prov = section2_query().eval_interpreted(&tagged.database).unwrap();
                    specialize(&prov, &tagged.valuation).len()
                })
            },
        );
    }
    group.finish();

    // Morsel-driven parallel execution vs the serial pipelined path, on a
    // workload scaled up (5000 rows, domain 50 → ~500k-row join output)
    // until the per-partition work dwarfs the coordination overhead. The
    // serial body is the `threads = 1` code path; the parallel bodies run
    // identical plans under explicit 2- and 4-thread contexts (results are
    // pinned bit-identical by `core/tests/parallel_differential.rs`), so
    // the measured ratio *is* the executor's scaling on this machine's
    // cores — on a single-core runner it degenerates to the coordination
    // overhead, which is the number worth watching there.
    let mut par = c.benchmark_group("fig5_parallel_scaled");
    let db = random_ternary_bag(42, 5000, 50, 5);
    let plan = Plan::new(&section2_query(), &db.catalog()).unwrap();
    // Both engines at each thread budget: a batch is the morsel unit, so
    // the columnar engine scales along the same partitioning scheme.
    for (label, threads, mode) in [
        ("serial_row", 1usize, ExecMode::Row),
        ("serial_batch", 1, ExecMode::Batch),
        ("threads2_batch", 2, ExecMode::Batch),
        ("threads4_row", 4, ExecMode::Row),
        ("threads4_batch", 4, ExecMode::Batch),
    ] {
        let ctx = ExecContext::with_threads(threads).with_mode(mode);
        par.bench_with_input(BenchmarkId::new("direct_bag", label), &db, |b, db| {
            b.iter(|| plan.execute_with(db, &ctx).len())
        });
    }
    // The circuit provenance pipeline under the same contexts: parallel
    // query execution merges the worker arenas back into the coordinator's
    // (id-remapping import), and the ℕ[X] → ℕ specialization fans out over
    // chunks of the result tuples with a per-worker memo.
    for (label, threads) in [("serial", 1usize), ("threads4", 4)] {
        let ctx = ExecContext::with_threads(threads);
        par.bench_with_input(
            BenchmarkId::new("provenance_then_eval_circuit", label),
            &db,
            |b, db| {
                b.iter(|| {
                    circuit::vacuum();
                    let tagged = tag_database_circuit(db);
                    let prov = plan.execute_with(&tagged.database, &ctx);
                    specialize_circuit_with(&prov, &tagged.valuation, &ctx).len()
                })
            },
        );
    }
    par.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

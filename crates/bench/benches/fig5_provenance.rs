//! E5 — Figure 5: provenance polynomials, why-provenance, and the
//! factorization theorem (provenance overhead vs direct evaluation).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::{random_ternary_bag, report_rows};
use provsem_core::paper::{figure5_tagged, section2_query};
use provsem_core::provenance::{provenance_of_query, specialize};

fn reproduce_figure5() {
    let out = section2_query().eval(&figure5_tagged()).unwrap();
    let rows: Vec<(String, String)> = out
        .iter()
        .map(|(t, p)| {
            (
                format!("{t}"),
                format!("{p}  (why: {:?})", p.why_provenance()),
            )
        })
        .collect();
    report_rows(
        "Figure 5(b)/(c): why-provenance and provenance polynomials",
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce_figure5();
    let mut group = c.benchmark_group("fig5_provenance_vs_direct");
    for size in [10usize, 100, 300] {
        let db = random_ternary_bag(42, size, 10, 5);
        group.bench_with_input(BenchmarkId::new("direct_bag", size), &db, |b, db| {
            b.iter(|| section2_query().eval(db).unwrap().len())
        });
        group.bench_with_input(
            BenchmarkId::new("provenance_then_eval", size),
            &db,
            |b, db| {
                b.iter(|| {
                    let (prov, valuation) = provenance_of_query(&section2_query(), db).unwrap();
                    specialize(&prov, &valuation).len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

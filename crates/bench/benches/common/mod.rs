//! Shared Criterion configuration for every figure bench: short measurement
//! windows so that the full `cargo bench --workspace` harness (one target per
//! figure of the paper) completes in a few minutes.

use criterion::Criterion;
use std::time::Duration;

/// The Criterion configuration used by all figure benches.
pub fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

//! E9 — Figure 9: the Monomial-Coefficient algorithm.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::report_rows;
use provsem_core::paper::figure7_bag;
use provsem_datalog::{default_edb_variables, monomial_coefficient, Fact, FactStore, Program};
use provsem_semiring::{Monomial, NatInf};

fn figure7_store() -> FactStore<NatInf> {
    let mut store = FactStore::new();
    store.import_relation("R", figure7_bag().get("R").unwrap(), &["src", "dst"]);
    store
}

fn bench(c: &mut Criterion) {
    let program = Program::transitive_closure("R", "Q");
    let edb = figure7_store();
    let vars = default_edb_variables(&edb);
    let s_var = vars.get(&Fact::new("R", ["d", "d"])).unwrap().clone();
    let v_fact = Fact::new("Q", ["d", "d"]);

    // Reproduce the Catalan coefficients of v = Q(d,d).
    let rows: Vec<(String, String)> = (1u32..=5)
        .map(|k| {
            let mu = Monomial::from_powers([(s_var.clone(), k)]);
            let coeff = monomial_coefficient(&program, &edb, &vars, &v_fact, &mu);
            (format!("[s^{k}] v"), format!("{coeff}"))
        })
        .collect();
    report_rows(
        "Figure 9 / footnote 6: coefficients of v (paper: 1 1 2 5 14)",
        &rows,
    );

    let mut group = c.benchmark_group("fig9_monomial_coefficient");
    for degree in [2u32, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, degree| {
            let mu = Monomial::from_powers([(s_var.clone(), *degree)]);
            b.iter(|| monomial_coefficient(&program, &edb, &vars, &v_fact, &mu))
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

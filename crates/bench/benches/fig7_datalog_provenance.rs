//! E7 — Figure 7: datalog transitive closure over ℕ∞ and its power-series
//! provenance via the algebraic system.
//!
//! The bench bodies run under the semi-naive machinery: `evaluate_natinf`'s
//! support fixpoint (`derivable_facts`) is a delta-driven, index-probed
//! iteration, and the `fig7_naive_vs_seminaive` group additionally compares
//! the two Kleene strategies head-to-head on the bounded ℕ∞ iteration.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::{random_dag_store, random_graph_store, report_rows};
use provsem_core::paper::{figure7_bag, figure7_expected};
use provsem_core::plan::{ExecContext, ExecMode};
use provsem_datalog::seminaive::seminaive_iterate_with;
use provsem_datalog::{
    evaluate_natinf, evaluate_with_bound, AlgebraicSystem, EvalStrategy, Fact, FactStore, Program,
};
use provsem_semiring::NatInf;

fn figure7_store() -> FactStore<NatInf> {
    let mut store = FactStore::new();
    store.import_relation("R", figure7_bag().get("R").unwrap(), &["src", "dst"]);
    store
}

fn reproduce_figure7() {
    let program = Program::transitive_closure("R", "Q");
    let out = evaluate_natinf(&program, &figure7_store());
    let rows: Vec<(String, String)> = figure7_expected()
        .into_iter()
        .map(|(s, d, expected)| {
            let got = out.annotation(&Fact::new("Q", [s, d]));
            (
                format!("Q({s},{d})"),
                format!("measured {got}, paper {expected}"),
            )
        })
        .collect();
    report_rows("Figure 7(b): transitive closure over ℕ∞", &rows);
    let system = AlgebraicSystem::build_default(&program, &figure7_store());
    report_rows(
        "Figure 7(f): algebraic system",
        &[("equations".into(), system.len().to_string())],
    );
}

fn bench(c: &mut Criterion) {
    reproduce_figure7();
    let program = Program::transitive_closure("R", "Q");
    let mut group = c.benchmark_group("fig7_tc_ninfinity");
    for (nodes, edges) in [(8usize, 12usize), (16, 30), (24, 50)] {
        let edb = random_graph_store(42, nodes, edges);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}n_{edges}e")),
            &edb,
            |b, edb| b.iter(|| evaluate_natinf(&program, edb).len()),
        );
    }
    // Truncated power-series provenance on an acyclic instance.
    let dag = random_dag_store(42, 4, 3);
    group.bench_function("series_solution_dag", |b| {
        let system = AlgebraicSystem::build_default(&program, &dag);
        b.iter(|| system.solve_series(4, 4).len())
    });
    group.finish();

    // Bounded ℕ∞ Kleene iteration (8 rounds — the instances are cyclic, so
    // it does not converge): naive re-multiplication of the grounded
    // instantiation vs the differential evaluator, plus the same semi-naive
    // rounds on the columnar batch engine (ℕ∞ saturates instead of
    // overflowing, so the deep-round comparison is exact — results pinned
    // identical by `datalog/tests/columnar_differential.rs`).
    let mut cmp = c.benchmark_group("fig7_naive_vs_seminaive");
    for (nodes, edges) in [(16usize, 30usize), (24, 50)] {
        let edb = random_graph_store(42, nodes, edges);
        for (label, strategy) in [
            ("naive", EvalStrategy::Naive),
            ("seminaive", EvalStrategy::SemiNaive),
        ] {
            cmp.bench_with_input(
                BenchmarkId::new(label, format!("{nodes}n_{edges}e")),
                &edb,
                |b, edb| b.iter(|| evaluate_with_bound(&program, edb, strategy, 8).idb.len()),
            );
        }
        let batch = ExecContext::serial().with_mode(ExecMode::Batch);
        cmp.bench_with_input(
            BenchmarkId::new("seminaive_batch", format!("{nodes}n_{edges}e")),
            &edb,
            |b, edb| b.iter(|| seminaive_iterate_with(&program, edb, 8, &batch).idb.len()),
        );
    }
    cmp.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

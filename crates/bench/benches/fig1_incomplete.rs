//! E1 — Figure 1: maybe-tables, possible worlds, world-by-world querying.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::report_rows;
use provsem_core::paper::{section2_query, section2_schema};
use provsem_core::{Schema, Tuple};
use provsem_incomplete::{MaybeTable, PossibleWorlds};

fn reproduce_figure1() {
    let table = MaybeTable::figure1();
    let worlds = PossibleWorlds::new(table.possible_worlds());
    let answer = worlds
        .answer_query("R", &section2_schema(), &section2_query())
        .unwrap();
    report_rows(
        "Figure 1: worlds of q(R) over the maybe-table",
        &[
            ("input worlds".into(), worlds.len().to_string()),
            ("answer worlds".into(), answer.len().to_string()),
            (
                "maybe-table representable".into(),
                answer.representable_by_maybe_table().to_string(),
            ),
        ],
    );
}

fn maybe_table_with(n: usize) -> MaybeTable {
    let schema = Schema::new(["a", "b", "c"]);
    let mut table = MaybeTable::new(schema);
    for i in 0..n {
        table.insert_optional(Tuple::new([
            ("a", format!("x{i}")),
            ("b", format!("y{}", i % 3)),
            ("c", format!("z{}", i % 2)),
        ]));
    }
    table
}

fn bench(c: &mut Criterion) {
    reproduce_figure1();
    let mut group = c.benchmark_group("fig1_world_by_world_query");
    for n in [3usize, 6, 9] {
        let table = maybe_table_with(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &table, |b, table| {
            b.iter(|| {
                let worlds = PossibleWorlds::new(table.possible_worlds());
                worlds
                    .answer_query("R", &Schema::new(["a", "b", "c"]), &section2_query())
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

//! E4 — Figure 4: probabilistic query answering via event tables.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::{random_probabilistic_graph, report_rows};
use provsem_core::paper::section2_query;
use provsem_core::RaExpr;
use provsem_prob::TupleIndependentDb;

fn reproduce_figure4() {
    let db = TupleIndependentDb::figure4();
    let rows: Vec<(String, String)> = db
        .answer_query(&section2_query())
        .unwrap()
        .into_iter()
        .map(|(t, _, p)| (format!("{t}"), format!("P = {p:.3}")))
        .collect();
    report_rows(
        "Figure 4(b): output probabilities (paper: .6 .3 .3 .5 .1)",
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce_figure4();
    let query = RaExpr::relation("R")
        .rename(provsem_core::Renaming::new([("dst", "mid")]))
        .join(RaExpr::relation("R").rename(provsem_core::Renaming::new([("src", "mid")])))
        .project(["src", "dst"]);
    let mut group = c.benchmark_group("fig4_event_table_query");
    for tuples in [6usize, 10, 14] {
        let db = random_probabilistic_graph(42, 5, tuples);
        group.bench_with_input(BenchmarkId::from_parameter(tuples), &db, |b, db| {
            b.iter(|| db.answer_query(&query).unwrap().len())
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

//! E6 — Figure 6: conjunctive queries as datalog under bag semantics.
//!
//! The swept bodies run under the **semi-naive** evaluation strategy
//! (`EvalStrategy::SemiNaive`: delta-driven, index-probed joins, no up-front
//! grounding); the `fig6_naive_vs_seminaive` group benchmarks both
//! strategies on the same workload so the speedup is measured, not assumed.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::{random_dag_store, report_rows};
use provsem_core::paper::figure6_expected;
use provsem_core::plan::{ExecContext, ExecMode};
use provsem_datalog::seminaive::seminaive_iterate_with;
use provsem_datalog::{edge_facts, evaluate_with_bound, EvalStrategy, Fact, Program};
use provsem_semiring::Natural;

fn reproduce_figure6() {
    let program = Program::figure6_query();
    let edb = edge_facts(
        "R",
        &[
            ("a", "a", Natural::from(2u64)),
            ("a", "b", Natural::from(3u64)),
            ("b", "b", Natural::from(4u64)),
        ],
    );
    let out = evaluate_with_bound(&program, &edb, EvalStrategy::SemiNaive, 4);
    let rows: Vec<(String, String)> = figure6_expected()
        .into_iter()
        .map(|(x, y, expected)| {
            let got = out.idb.annotation(&Fact::new("Q", [x, y]));
            (
                format!("Q({x},{y})"),
                format!("measured {got}, paper {expected}"),
            )
        })
        .collect();
    report_rows("Figure 6(c): conjunctive query under bag semantics", &rows);
}

fn bench(c: &mut Criterion) {
    reproduce_figure6();
    let program = Program::figure6_query();
    let mut group = c.benchmark_group("fig6_cq_bag_datalog");
    for width in [3usize, 6, 9] {
        let edb = random_dag_store(42, 3, width);
        group.bench_with_input(BenchmarkId::from_parameter(width), &edb, |b, edb| {
            b.iter(|| {
                evaluate_with_bound(&program, edb, EvalStrategy::SemiNaive, 4)
                    .idb
                    .len()
            })
        });
    }
    group.finish();

    // Naive vs semi-naive on the fig6 workload, up to its largest size: the
    // naive body pays the full grounding plus a re-multiplication of every
    // ground rule per round, the semi-naive body joins each derivation once.
    // The `seminaive_par4` body runs the same semi-naive rounds with their
    // delta-rule application fanned out over 4 worker threads, and
    // `seminaive_batch` runs them on the columnar engine's batch delta joins
    // (round-for-round identical results on every body, pinned by
    // `datalog/tests/parallel_differential.rs` and
    // `datalog/tests/columnar_differential.rs`).
    let mut cmp = c.benchmark_group("fig6_naive_vs_seminaive");
    for width in [9usize, 12] {
        let edb = random_dag_store(42, 3, width);
        for (label, strategy) in [
            ("naive", EvalStrategy::Naive),
            ("seminaive", EvalStrategy::SemiNaive),
        ] {
            cmp.bench_with_input(BenchmarkId::new(label, width), &edb, |b, edb| {
                b.iter(|| evaluate_with_bound(&program, edb, strategy, 4).idb.len())
            });
        }
        let par4 = ExecContext::with_threads(4).with_mode(ExecMode::Row);
        cmp.bench_with_input(BenchmarkId::new("seminaive_par4", width), &edb, |b, edb| {
            b.iter(|| seminaive_iterate_with(&program, edb, 4, &par4).idb.len())
        });
        let batch = ExecContext::serial().with_mode(ExecMode::Batch);
        cmp.bench_with_input(
            BenchmarkId::new("seminaive_batch", width),
            &edb,
            |b, edb| b.iter(|| seminaive_iterate_with(&program, edb, 4, &batch).idb.len()),
        );
    }
    cmp.finish();

    // Parallel semi-naive transitive closure on a layered DAG big enough
    // that each round's affected-head recomputation dominates coordination:
    // the serial body is the `threads = 1` loop, the parallel bodies
    // partition each round's work items and affected heads across scoped
    // workers. On a multi-core machine the ratio is the datalog engine's
    // scaling; on a single-core runner it measures the (small) coordination
    // overhead.
    let tc = Program::transitive_closure("R", "Q");
    let mut par = c.benchmark_group("fig6_parallel_seminaive_tc");
    let edb = random_dag_store(7, 6, 24);
    for threads in [1usize, 2, 4] {
        // The row bodies are pinned to `ExecMode::Row`: this EDB is far past
        // the auto-batch threshold, so the default context would silently
        // measure the batch engine instead of row-engine thread scaling.
        let row = ExecContext::with_threads(threads).with_mode(ExecMode::Row);
        par.bench_with_input(
            BenchmarkId::new("tc_layered_6x24", format!("threads{threads}")),
            &edb,
            |b, edb| b.iter(|| seminaive_iterate_with(&tc, edb, 16, &row).idb.len()),
        );
        let batch = ExecContext::with_threads(threads).with_mode(ExecMode::Batch);
        par.bench_with_input(
            BenchmarkId::new("tc_layered_6x24_batch", format!("threads{threads}")),
            &edb,
            |b, edb| b.iter(|| seminaive_iterate_with(&tc, edb, 16, &batch).idb.len()),
        );
    }
    par.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

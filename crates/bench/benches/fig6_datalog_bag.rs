//! E6 — Figure 6: conjunctive queries as datalog under bag semantics.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::{random_dag_store, report_rows};
use provsem_core::paper::figure6_expected;
use provsem_datalog::{edge_facts, kleene_iterate, Fact, Program};
use provsem_semiring::Natural;

fn reproduce_figure6() {
    let program = Program::figure6_query();
    let edb = edge_facts(
        "R",
        &[
            ("a", "a", Natural::from(2u64)),
            ("a", "b", Natural::from(3u64)),
            ("b", "b", Natural::from(4u64)),
        ],
    );
    let out = kleene_iterate(&program, &edb, 4);
    let rows: Vec<(String, String)> = figure6_expected()
        .into_iter()
        .map(|(x, y, expected)| {
            let got = out.idb.annotation(&Fact::new("Q", [x, y]));
            (
                format!("Q({x},{y})"),
                format!("measured {got}, paper {expected}"),
            )
        })
        .collect();
    report_rows("Figure 6(c): conjunctive query under bag semantics", &rows);
}

fn bench(c: &mut Criterion) {
    reproduce_figure6();
    let program = Program::figure6_query();
    let mut group = c.benchmark_group("fig6_cq_bag_datalog");
    for width in [3usize, 6, 9] {
        let edb = random_dag_store(42, 3, width);
        group.bench_with_input(BenchmarkId::from_parameter(width), &edb, |b, edb| {
            b.iter(|| kleene_iterate(&program, edb, 4).idb.len())
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

//! E8 — Figure 8: the All-Trees algorithm (polynomial-or-∞ classification).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::{random_dag_store, report_rows};
use provsem_core::paper::figure7_bag;
use provsem_datalog::{all_trees, FactStore, Program, TreeProvenance};
use provsem_semiring::NatInf;

fn reproduce_figure8() {
    let mut store: FactStore<NatInf> = FactStore::new();
    store.import_relation("R", figure7_bag().get("R").unwrap(), &["src", "dst"]);
    let program = Program::transitive_closure("R", "Q");
    let result = all_trees(&program, &store);
    let rows: Vec<(String, String)> = result
        .provenance
        .iter()
        .map(|(fact, prov)| {
            let shown = match prov {
                TreeProvenance::Polynomial(p) => format!("{p}"),
                TreeProvenance::Infinite => "∞".to_string(),
            };
            (format!("{fact}"), shown)
        })
        .collect();
    report_rows(
        "Figure 8: All-Trees classification of the Figure 7 instance",
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce_figure8();
    let program = Program::transitive_closure("R", "Q");
    let mut group = c.benchmark_group("fig8_all_trees");
    for layers in [2usize, 3, 4] {
        let edb = random_dag_store(42, layers, 3);
        group.bench_with_input(BenchmarkId::from_parameter(layers), &edb, |b, edb| {
            b.iter(|| all_trees(&program, edb).provenance.len())
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

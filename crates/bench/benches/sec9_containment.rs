//! E11 — Section 9: conjunctive-query containment (Chandra–Merlin /
//! Sagiv–Yannakakis) and the Theorem 9.2 instance checks.
//!
//! Conjunctive queries evaluate on the planned RA engine since the
//! RA-translation refactor; each body is also run on the two pre-planner
//! routes (the datalog fixpoint machinery and the tree-walking RA
//! interpreter) so the speedup is measured on the exact Section 9
//! workloads: the homomorphism (containment) decision procedure, and
//! instance-level `⊑_K` checks on growing edbs.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::report_rows;
use provsem_containment::{
    check_containment_on_instance, ConjunctiveQuery, UnionOfConjunctiveQueries,
};
use provsem_core::plan::{ExecContext, ExecMode};
use provsem_datalog::edge_facts;
use provsem_semiring::{Natural, PosBool};

/// The k-step path query Q(x0, xk) :- R(x0,x1), …, R(x{k-1},xk).
fn path_query(k: usize) -> ConjunctiveQuery {
    let mut body = Vec::new();
    for i in 0..k {
        body.push(format!("R(x{i}, x{})", i + 1));
    }
    ConjunctiveQuery::parse(&format!("Q(x0, x{k}) :- {}.", body.join(", "))).unwrap()
}

/// `contained_in` by hand, with the disjunct evaluation route pinned.
fn contained_in_via(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    evaluate: impl Fn(
        &ConjunctiveQuery,
        &provsem_datalog::FactStore<provsem_semiring::Bool>,
    ) -> provsem_datalog::FactStore<provsem_semiring::Bool>,
) -> bool {
    let (canonical, frozen_head) = q1.canonical_database::<provsem_semiring::Bool>();
    evaluate(q2, &canonical).contains(&frozen_head)
}

/// A deterministic bag-annotated edge relation: a cycle with chords.
fn chord_graph(nodes: usize) -> Vec<(String, String, Natural)> {
    let mut edges = Vec::new();
    for i in 0..nodes {
        edges.push((
            format!("u{i}"),
            format!("u{}", (i + 1) % nodes),
            Natural::from(1 + (i % 3) as u64),
        ));
        if i % 3 == 0 {
            edges.push((
                format!("u{i}"),
                format!("u{}", (i + 7) % nodes),
                Natural::from(2u64),
            ));
        }
    }
    edges
}

fn bench(c: &mut Criterion) {
    // Reproduce the two headline facts of Section 9.
    let q1 = UnionOfConjunctiveQueries::parse("Q(x) :- R(x, y), R(x, z).").unwrap();
    let q2 = UnionOfConjunctiveQueries::parse("Q(x) :- R(x, y).").unwrap();
    let lattice_edb = edge_facts(
        "R",
        &[
            ("a", "b", PosBool::var("e1")),
            ("a", "c", PosBool::var("e2")),
        ],
    );
    let bag_edb = edge_facts(
        "R",
        &[
            ("a", "b", Natural::from(1u64)),
            ("a", "c", Natural::from(1u64)),
        ],
    );
    report_rows(
        "Section 9: containment transfer",
        &[
            ("q1 ⊑_B q2".into(), q1.contained_in(&q2).to_string()),
            (
                "q1 ⊑_PosBool q2 (instance)".into(),
                check_containment_on_instance(&q1, &q2, &lattice_edb).to_string(),
            ),
            (
                "q1 ⊑_N q2 (instance)".into(),
                check_containment_on_instance(&q1, &q2, &bag_edb).to_string(),
            ),
        ],
    );

    // The homomorphism decision procedure: evaluate the candidate container
    // over the canonical database of the containee, on all three routes.
    let mut group = c.benchmark_group("sec9_containment");
    for k in [2usize, 4, 6] {
        let long = path_query(k + 1);
        let short = path_query(k);
        group.bench_with_input(BenchmarkId::new("planned", k), &k, |b, _| {
            b.iter(|| (long.contained_in(&short), short.contained_in(&long)))
        });
        // The planned route with the engine pinned: the same homomorphism
        // check on the row and on the columnar batch engine, independent of
        // the ambient `PROVSEM_EXEC`.
        for (label, mode) in [
            ("planned_row", ExecMode::Row),
            ("planned_batch", ExecMode::Batch),
        ] {
            let ctx = ExecContext::serial().with_mode(mode);
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    (
                        contained_in_via(&long, &short, |q, edb| q.evaluate_in(edb, &ctx)),
                        contained_in_via(&short, &long, |q, edb| q.evaluate_in(edb, &ctx)),
                    )
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("interpreted_ra", k), &k, |b, _| {
            b.iter(|| {
                (
                    contained_in_via(&long, &short, |q, edb| q.evaluate_interpreted(edb)),
                    contained_in_via(&short, &long, |q, edb| q.evaluate_interpreted(edb)),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("datalog", k), &k, |b, _| {
            b.iter(|| {
                (
                    contained_in_via(&long, &short, |q, edb| q.evaluate_datalog(edb)),
                    contained_in_via(&short, &long, |q, edb| q.evaluate_datalog(edb)),
                )
            })
        });
    }
    group.finish();

    // Instance-level ⊑_ℕ checks (the Section 9 bag-semantics
    // counterexample shape) on growing edbs: UCQ evaluation dominates.
    let mut group = c.benchmark_group("sec9_instance_check");
    let q_square = UnionOfConjunctiveQueries::parse("Q(x) :- R(x, y), R(x, z).").unwrap();
    let q_edge = UnionOfConjunctiveQueries::parse("Q(x) :- R(x, y).").unwrap();
    for nodes in [20usize, 60, 120] {
        let edges = chord_graph(nodes);
        let refs: Vec<(&str, &str, Natural)> = edges
            .iter()
            .map(|(s, d, k)| (s.as_str(), d.as_str(), *k))
            .collect();
        let edb = edge_facts("R", &refs);
        // The three routes evaluate the identical pair of UCQs.
        group.bench_with_input(BenchmarkId::new("planned", nodes), &edb, |b, edb| {
            b.iter(|| (q_square.evaluate(edb).len(), q_edge.evaluate(edb).len()))
        });
        for (label, mode) in [
            ("planned_row", ExecMode::Row),
            ("planned_batch", ExecMode::Batch),
        ] {
            let ctx = ExecContext::serial().with_mode(mode);
            group.bench_with_input(BenchmarkId::new(label, nodes), &edb, |b, edb| {
                b.iter(|| {
                    (
                        q_square.evaluate_in(edb, &ctx).len(),
                        q_edge.evaluate_in(edb, &ctx).len(),
                    )
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("interpreted_ra", nodes), &edb, |b, edb| {
            b.iter(|| {
                (
                    q_square.evaluate_interpreted(edb).len(),
                    q_edge.evaluate_interpreted(edb).len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("datalog", nodes), &edb, |b, edb| {
            b.iter(|| {
                (
                    q_square.evaluate_datalog(edb).len(),
                    q_edge.evaluate_datalog(edb).len(),
                )
            })
        });
        // The full Theorem 9.2 instance check (both directions, four UCQ
        // evaluations plus the ≤_K sweep), on the default (planned) route.
        group.bench_with_input(BenchmarkId::new("full_check", nodes), &edb, |b, edb| {
            b.iter(|| {
                (
                    check_containment_on_instance(&q_edge, &q_square, edb),
                    check_containment_on_instance(&q_square, &q_edge, edb),
                )
            })
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

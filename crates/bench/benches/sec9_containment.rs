//! E11 — Section 9: conjunctive-query containment (Chandra–Merlin /
//! Sagiv–Yannakakis) and the Theorem 9.2 instance checks.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::report_rows;
use provsem_containment::{
    check_containment_on_instance, ConjunctiveQuery, UnionOfConjunctiveQueries,
};
use provsem_datalog::edge_facts;
use provsem_semiring::{Natural, PosBool};

/// The k-step path query Q(x0, xk) :- R(x0,x1), …, R(x{k-1},xk).
fn path_query(k: usize) -> ConjunctiveQuery {
    let mut body = Vec::new();
    for i in 0..k {
        body.push(format!("R(x{i}, x{})", i + 1));
    }
    ConjunctiveQuery::parse(&format!("Q(x0, x{k}) :- {}.", body.join(", "))).unwrap()
}

fn bench(c: &mut Criterion) {
    // Reproduce the two headline facts of Section 9.
    let q1 = UnionOfConjunctiveQueries::parse("Q(x) :- R(x, y), R(x, z).").unwrap();
    let q2 = UnionOfConjunctiveQueries::parse("Q(x) :- R(x, y).").unwrap();
    let lattice_edb = edge_facts(
        "R",
        &[
            ("a", "b", PosBool::var("e1")),
            ("a", "c", PosBool::var("e2")),
        ],
    );
    let bag_edb = edge_facts(
        "R",
        &[
            ("a", "b", Natural::from(1u64)),
            ("a", "c", Natural::from(1u64)),
        ],
    );
    report_rows(
        "Section 9: containment transfer",
        &[
            ("q1 ⊑_B q2".into(), q1.contained_in(&q2).to_string()),
            (
                "q1 ⊑_PosBool q2 (instance)".into(),
                check_containment_on_instance(&q1, &q2, &lattice_edb).to_string(),
            ),
            (
                "q1 ⊑_N q2 (instance)".into(),
                check_containment_on_instance(&q1, &q2, &bag_edb).to_string(),
            ),
        ],
    );

    let mut group = c.benchmark_group("sec9_containment");
    for k in [2usize, 4, 6] {
        let long = path_query(k + 1);
        let short = path_query(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| (long.contained_in(&short), short.contained_in(&long)))
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

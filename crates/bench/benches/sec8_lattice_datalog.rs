//! E10 — Section 8: terminating datalog for finite distributive lattices
//! (incomplete and probabilistic databases), fixpoint vs minimal-trees.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provsem_bench::{random_probabilistic_graph, report_rows, rng};
use provsem_datalog::{evaluate_lattice, evaluate_lattice_via_trees, Fact, FactStore, Program};
use provsem_prob::evaluate_probabilistic_datalog;
use provsem_semiring::PosBool;
use rand::Rng;

fn random_posbool_graph(seed: u64, nodes: usize, edges: usize) -> FactStore<PosBool> {
    let mut r = rng(seed);
    let mut store = FactStore::new();
    for i in 0..edges {
        let s = r.gen_range(0..nodes);
        let d = r.gen_range(0..nodes);
        store.insert(
            Fact::new("R", [format!("n{s}"), format!("n{d}")]),
            PosBool::var(format!("e{i}")),
        );
    }
    store
}

fn bench(c: &mut Criterion) {
    let program = Program::transitive_closure("R", "Q");
    // Reproduce the Section 8 claim on a small cyclic probabilistic graph.
    let prob_db = random_probabilistic_graph(7, 4, 8);
    let answer = evaluate_probabilistic_datalog(&program, &prob_db, &|_| vec!["src", "dst"]);
    report_rows(
        "Section 8: probabilistic datalog terminates on cyclic graphs",
        &[
            ("uncertain edges".into(), prob_db.len().to_string()),
            ("derived facts".into(), answer.facts.len().to_string()),
        ],
    );

    let mut group = c.benchmark_group("sec8_lattice_datalog");
    for edges in [6usize, 10, 14] {
        let edb = random_posbool_graph(42, 5, edges);
        group.bench_with_input(BenchmarkId::new("fixpoint", edges), &edb, |b, edb| {
            b.iter(|| evaluate_lattice(&program, edb, 128).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("minimal_trees", edges), &edb, |b, edb| {
            b.iter(|| evaluate_lattice_via_trees(&program, edb).len())
        });
        group.bench_with_input(
            BenchmarkId::new("probabilistic", edges),
            &edges,
            |b, edges| {
                let db = random_probabilistic_graph(42, 5, (*edges).min(12));
                b.iter(|| {
                    evaluate_probabilistic_datalog(&program, &db, &|_| vec!["src", "dst"])
                        .facts
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! { name = benches; config = common::short(); targets = bench }
criterion_main!(benches);

//! Row-vs-batch datalog engine snapshot: the acceptance harness for the
//! columnar semi-naive fixpoint.
//!
//! Times the Figure 6/7 datalog workloads on both engines — the row
//! semi-naive loop ([`ExecMode::Row`]) and the batch delta-join loop
//! ([`ExecMode::Batch`]) — under serial contexts, checks that the engines
//! produce the exact same `FixpointResult` (idb, round count, convergence
//! flag), and writes the medians to `BENCH_fig6.json` (or the path given as
//! the first argument).
//!
//! Exits non-zero when the batch engine is not at least 2x faster than the
//! row evaluator on the largest transitive-closure workload
//! (`random_dag_store(7, 6, 24)`, 16 rounds) — the acceptance bar of the
//! columnar datalog change — or when the engines disagree anywhere.
//!
//! [`ExecMode::Auto`] is timed alongside: the DAG workloads are past the
//! planner's auto-batch row threshold, so plan-time selection must pick the
//! batch loop and keep its win there, while the small cyclic graph sits
//! below the threshold and auto falls back to the row loop.

use provsem_bench::{random_dag_store, random_graph_store};
use provsem_core::plan::{ExecContext, ExecMode};
use provsem_datalog::seminaive::seminaive_iterate_with;
use provsem_datalog::Program;
use std::fmt::Write as _;
use std::time::Instant;

/// Medians are stable at modest iteration counts because each body is
/// itself thousands of index probes.
const WARMUP: usize = 3;
const ITERS: usize = 15;

struct Sample {
    median: f64,
    min: f64,
    max: f64,
}

/// Times `body` (seconds per call): warmup, then the median/min/max of
/// `ITERS` calls.
fn time_it(mut body: impl FnMut()) -> Sample {
    for _ in 0..WARMUP {
        body();
    }
    let mut runs: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            body();
            t.elapsed().as_secs_f64()
        })
        .collect();
    runs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Sample {
        median: runs[runs.len() / 2],
        min: runs[0],
        max: runs[runs.len() - 1],
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fig6.json".to_string());
    let row = ExecContext::serial().with_mode(ExecMode::Row);
    let batch = ExecContext::serial().with_mode(ExecMode::Batch);
    let auto = ExecContext::serial().with_mode(ExecMode::Auto);

    // The swept workloads: semi-naive transitive closure on layered DAGs
    // (the fig6 parallel-TC instance at two sizes, 16 rounds — converges
    // earlier on the smaller one) and the bounded ℕ∞ iteration on the
    // cyclic fig7 graph (8 rounds, does not converge). Each is identified
    // exactly by its `(seed, parameters)` generator call.
    let tc = Program::transitive_closure("R", "Q");
    let workloads = [
        ("tc_layered_6x12", random_dag_store(7, 6, 12), 16usize),
        ("tc_layered_6x24", random_dag_store(7, 6, 24), 16),
        ("tc_cyclic_24n_50e", random_graph_store(42, 24, 50), 8),
    ];

    let mut results = String::new();
    let mut speedups = String::new();
    let mut tc_large_ratio = 0.0f64;
    let mut tc_large_auto = 0.0f64;

    for (label, edb, rounds) in &workloads {
        let reference = seminaive_iterate_with(&tc, edb, *rounds, &row);
        assert_eq!(
            reference,
            seminaive_iterate_with(&tc, edb, *rounds, &batch),
            "engines disagree on {label}"
        );
        assert_eq!(
            reference,
            seminaive_iterate_with(&tc, edb, *rounds, &auto),
            "auto disagrees on {label}"
        );
        let r = time_it(|| {
            seminaive_iterate_with(&tc, edb, *rounds, &row);
        });
        let b = time_it(|| {
            seminaive_iterate_with(&tc, edb, *rounds, &batch);
        });
        let a = time_it(|| {
            seminaive_iterate_with(&tc, edb, *rounds, &auto);
        });
        let ratio = r.median / b.median;
        let auto_ratio = r.median / a.median;
        if *label == "tc_layered_6x24" {
            tc_large_ratio = ratio;
            tc_large_auto = auto_ratio;
        }
        println!(
            "{label}: row {:.3}ms batch {:.3}ms ({ratio:.2}x) auto {:.3}ms ({auto_ratio:.2}x), \
             {} idb facts in {} rounds",
            r.median * 1e3,
            b.median * 1e3,
            a.median * 1e3,
            reference.idb.len(),
            reference.iterations
        );
        let _ = write!(
            results,
            "    \"{label}_row\": {{ \"median\": {:.3e}, \"min\": {:.3e}, \"max\": {:.3e} }},\n    \"{label}_batch\": {{ \"median\": {:.3e}, \"min\": {:.3e}, \"max\": {:.3e} }},\n    \"{label}_auto\": {{ \"median\": {:.3e}, \"min\": {:.3e}, \"max\": {:.3e} }},\n",
            r.median, r.min, r.max, b.median, b.min, b.max, a.median, a.min, a.max
        );
        let _ = writeln!(
            speedups,
            "    \"{label}\": {ratio:.2},\n    \"{label}_auto\": {auto_ratio:.2},"
        );
    }
    let speedups = speedups.trim_end().trim_end_matches(',');
    let results = results.trim_end().trim_end_matches(',');

    let pass = tc_large_ratio >= 2.0;
    // Auto must not give back what forced batch won (15% timing-noise
    // tolerance): every workload here is past the auto-batch threshold.
    let auto_pass = tc_large_auto >= tc_large_ratio * 0.85;
    let json = format!(
        "{{\n  \"bench\": \"fig6_datalog_columnar_snapshot\",\n  \"description\": \"Row semi-naive datalog evaluator vs the columnar batch delta-join evaluator on transitive closure: layered DAGs random_dag_store(seed 7, 6 layers, widths 12/24) at 16 rounds and the cyclic ℕ∞ graph random_graph_store(seed 42, 24 nodes, 50 edges) at 8 bounded rounds. Serial ExecContext on both sides so the ratio measures the batch kernels, not thread fan-out. Auto mode is timed alongside: the DAG EDBs are past the planner's auto-batch row threshold (plan-time selection must pick the batch loop and keep its win) while the small cyclic graph sits below it (auto falls back to the row loop). Medians of {ITERS} release-mode runs on the CI container; FixpointResults checked identical across engines before timing.\",\n  \"unit\": \"seconds\",\n  \"results\": {{\n{results}\n  }},\n  \"speedup_batch_over_row\": {{\n{speedups}\n  }},\n  \"acceptance\": \"batch >= 2x faster than row on tc_layered_6x24 (16 rounds): {} ({tc_large_ratio:.2}x); auto keeps the batch win: {} ({tc_large_auto:.2}x vs row)\"\n}}\n",
        if pass { "PASS" } else { "FAIL" },
        if auto_pass { "PASS" } else { "FAIL" }
    );
    std::fs::write(&out_path, &json).expect("write benchmark record");
    println!("wrote {out_path}");
    assert!(
        pass,
        "acceptance failed: batch engine only {tc_large_ratio:.2}x faster than row on tc_layered_6x24"
    );
    assert!(
        auto_pass,
        "acceptance failed: auto selection lost the batch win \
         (tc_layered_6x24 {tc_large_auto:.2}x vs forced batch {tc_large_ratio:.2}x)"
    );
}

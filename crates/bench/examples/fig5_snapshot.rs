//! Row-vs-batch engine snapshot: the acceptance harness for columnar
//! execution.
//!
//! Times the Figure 5 direct bag-evaluation workload (the Section 2 query
//! over `random_ternary_bag` databases) and the Section 9 containment
//! decision procedure on both engines — [`ExecMode::Row`] and
//! [`ExecMode::Batch`] — under serial contexts, checks that the two
//! engines produce identical results, and writes the medians to
//! `BENCH_fig5.json` (or the path given as the first argument).
//!
//! Exits non-zero when the batch engine is not at least 3x faster than the
//! row engine on `direct_bag/300` — the acceptance bar of the columnar
//! execution change — or when the engines disagree.
//!
//! Also times [`ExecMode::Auto`] on both workloads: plan-time engine
//! selection must pick batch on the large direct-bag inputs (keeping the
//! 3x) and row on the tiny Section 9 canonical databases, recovering
//! row-engine performance where forced batch mode used to pay conversion
//! overhead for nothing.

use provsem_bench::random_ternary_bag;
use provsem_containment::ConjunctiveQuery;
use provsem_core::paper::section2_query;
use provsem_core::plan::{ExecContext, ExecMode, Plan, RelationSource};
use std::fmt::Write as _;
use std::time::Instant;

/// Medians are stable at modest iteration counts because each body is
/// itself thousands of tuple operations.
const WARMUP: usize = 3;
const ITERS: usize = 15;

struct Sample {
    median: f64,
    min: f64,
    max: f64,
}

/// Times `body` (seconds per call): warmup, then the median/min/max of
/// `ITERS` calls.
fn time_it(mut body: impl FnMut()) -> Sample {
    for _ in 0..WARMUP {
        body();
    }
    let mut runs: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            body();
            t.elapsed().as_secs_f64()
        })
        .collect();
    runs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Sample {
        median: runs[runs.len() / 2],
        min: runs[0],
        max: runs[runs.len() - 1],
    }
}

/// The k-step path query Q(x0, xk) :- R(x0,x1), ..., R(x{k-1},xk).
fn path_query(k: usize) -> ConjunctiveQuery {
    let body: Vec<String> = (0..k).map(|i| format!("R(x{i}, x{})", i + 1)).collect();
    ConjunctiveQuery::parse(&format!("Q(x0, x{k}) :- {}.", body.join(", "))).unwrap()
}

/// Both containment directions of the k vs k+1 path queries, with the
/// planned engine pinned to `ctx`.
fn containment_pair(k: usize, ctx: &ExecContext) -> (bool, bool) {
    let long = path_query(k + 1);
    let short = path_query(k);
    let decide = |q1: &ConjunctiveQuery, q2: &ConjunctiveQuery| {
        let (canonical, frozen_head) = q1.canonical_database::<provsem_semiring::Bool>();
        q2.evaluate_in(&canonical, ctx).contains(&frozen_head)
    };
    (decide(&long, &short), decide(&short, &long))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fig5.json".to_string());
    let row = ExecContext::serial().with_mode(ExecMode::Row);
    let batch = ExecContext::serial().with_mode(ExecMode::Batch);
    let auto = ExecContext::serial().with_mode(ExecMode::Auto);

    let mut results = String::new();
    let mut speedups = String::new();
    let mut ratio_300 = 0.0f64;
    let mut auto_300 = 0.0f64;

    // --- Figure 5 direct bag evaluation: the Section 2 query. ---
    for size in [100usize, 300] {
        let db = random_ternary_bag(42, size, 10, 5);
        let plan = Plan::new(&section2_query(), &db.catalog()).unwrap();
        assert_eq!(
            plan.execute_with(&db, &row),
            plan.execute_with(&db, &batch),
            "engines disagree on direct_bag/{size}"
        );
        assert_eq!(
            plan.execute_with(&db, &row),
            plan.execute_with(&db, &auto),
            "auto disagrees on direct_bag/{size}"
        );
        let r = time_it(|| {
            plan.execute_with(&db, &row);
        });
        let b = time_it(|| {
            plan.execute_with(&db, &batch);
        });
        let a = time_it(|| {
            plan.execute_with(&db, &auto);
        });
        let ratio = r.median / b.median;
        let auto_ratio = r.median / a.median;
        if size == 300 {
            ratio_300 = ratio;
            auto_300 = auto_ratio;
        }
        println!(
            "direct_bag/{size}: row {:.3}ms batch {:.3}ms ({ratio:.2}x) auto {:.3}ms ({auto_ratio:.2}x)",
            r.median * 1e3,
            b.median * 1e3,
            a.median * 1e3
        );
        let _ = write!(
            results,
            "    \"direct_bag_row/{size}\": {{ \"median\": {:.3e}, \"min\": {:.3e}, \"max\": {:.3e} }},\n    \"direct_bag_batch/{size}\": {{ \"median\": {:.3e}, \"min\": {:.3e}, \"max\": {:.3e} }},\n    \"direct_bag_auto/{size}\": {{ \"median\": {:.3e}, \"min\": {:.3e}, \"max\": {:.3e} }},\n",
            r.median, r.min, r.max, b.median, b.min, b.max, a.median, a.min, a.max
        );
        let _ = writeln!(
            speedups,
            "    \"direct_bag/{size}\": {ratio:.2},\n    \"direct_bag_auto/{size}\": {auto_ratio:.2},"
        );
    }

    // --- Section 9: the containment decision procedure at k = 6. ---
    let k = 6usize;
    assert_eq!(
        containment_pair(k, &row),
        containment_pair(k, &batch),
        "engines disagree on sec9 containment"
    );
    assert_eq!(
        containment_pair(k, &row),
        containment_pair(k, &auto),
        "auto disagrees on sec9 containment"
    );
    let r = time_it(|| {
        containment_pair(k, &row);
    });
    let b = time_it(|| {
        containment_pair(k, &batch);
    });
    let a = time_it(|| {
        containment_pair(k, &auto);
    });
    let sec9_ratio = r.median / b.median;
    let sec9_auto = r.median / a.median;
    println!(
        "sec9_containment/{k}: row {:.3}ms batch {:.3}ms ({sec9_ratio:.2}x) auto {:.3}ms ({sec9_auto:.2}x)",
        r.median * 1e3,
        b.median * 1e3,
        a.median * 1e3
    );
    let _ = write!(
        results,
        "    \"sec9_containment_row/{k}\": {{ \"median\": {:.3e}, \"min\": {:.3e}, \"max\": {:.3e} }},\n    \"sec9_containment_batch/{k}\": {{ \"median\": {:.3e}, \"min\": {:.3e}, \"max\": {:.3e} }},\n    \"sec9_containment_auto/{k}\": {{ \"median\": {:.3e}, \"min\": {:.3e}, \"max\": {:.3e} }}\n",
        r.median, r.min, r.max, b.median, b.min, b.max, a.median, a.min, a.max
    );
    let _ = writeln!(
        speedups,
        "    \"sec9_containment/{k}\": {sec9_ratio:.2},\n    \"sec9_containment_auto/{k}\": {sec9_auto:.2}"
    );

    let pass = ratio_300 >= 3.0;
    // Auto must not give back what forced-batch won on the big inputs, and
    // must recover row-engine performance on the tiny sec9 canonical
    // databases (15% timing-noise tolerance on both sides).
    let auto_pass = auto_300 >= ratio_300 * 0.85 && sec9_auto >= 0.85;
    let json = format!(
        "{{\n  \"bench\": \"fig5_columnar_snapshot\",\n  \"description\": \"Row engine vs columnar batch engine on the Figure 5 direct bag-evaluation workload (Section 2 query over random_ternary_bag(seed 42, domain 10, weights <5)) and the Section 9 path-query containment decision (both directions, k=6). Serial ExecContext on both sides so the ratio measures the vectorized kernels, not thread fan-out. Auto mode is timed alongside: plan-time selection picks batch on direct_bag and row on the tiny sec9 canonical databases. Medians of {ITERS} release-mode runs on the CI container; results checked identical across engines before timing.\",\n  \"unit\": \"seconds\",\n  \"results\": {{\n{results}  }},\n  \"speedup_batch_over_row\": {{\n{speedups}  }},\n  \"acceptance\": \"batch >= 3x faster than row on direct_bag/300: {} ({ratio_300:.2}x); auto keeps the direct_bag win and recovers row perf on sec9: {} (direct_bag {auto_300:.2}x, sec9 {sec9_auto:.2}x vs row)\"\n}}\n",
        if pass { "PASS" } else { "FAIL" },
        if auto_pass { "PASS" } else { "FAIL" }
    );
    std::fs::write(&out_path, &json).expect("write benchmark record");
    println!("wrote {out_path}");
    assert!(
        pass,
        "acceptance failed: batch engine only {ratio_300:.2}x faster than row on direct_bag/300"
    );
    assert!(
        auto_pass,
        "acceptance failed: auto selection lost performance \
         (direct_bag/300 {auto_300:.2}x vs forced batch {ratio_300:.2}x, sec9 {sec9_auto:.2}x vs row)"
    );
}

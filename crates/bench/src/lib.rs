//! # provsem-bench
//!
//! Workload generators and shared helpers for the benchmark harness. One
//! Criterion bench target exists per figure / experiment of the paper (see
//! `benches/` here and the benchmark table in the repository README); this
//! library provides the synthetic workloads they sweep over and the
//! "reproduce the paper's rows" reporting used by every bench.
//!
//! Every generator takes an explicit `seed` and derives all randomness from
//! [`rng`], so a `(seed, parameters)` pair written down in a bench source or
//! in a figure caption identifies the workload *exactly* — re-running the
//! bench on any machine regenerates the same database, byte for byte.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use provsem_core::{Database, KRelation, Schema, Tuple};
use provsem_datalog::{Fact, FactStore};
use provsem_prob::TupleIndependentDb;
use provsem_semiring::{NatInf, Natural, PosBool, ProvenancePolynomial, Semiring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG so benchmark workloads are reproducible run to run.
///
/// The stream for a given seed is fixed (SplitMix64 in the vendored `rand`
/// shim — see `crates/vendor/rand`), so every figure in the benchmark output
/// is identified completely by the `(seed, parameters)` tuple its bench
/// passes to the generators below.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random ternary bag relation `R` over the schema `{a, b, c}` (the shape
/// of the paper's Section 2 running example).
///
/// Exactly `size` draws are made; each draws the three attribute values
/// independently and uniformly from `v0 .. v{domain-1}` and a multiplicity
/// uniformly from `1..=max_multiplicity`. Drawing the same tuple twice *sums*
/// the multiplicities (bag union), so the resulting relation has at most —
/// not exactly — `size` distinct tuples; expect collisions once `size`
/// approaches `domain³`.
///
/// Used by `fig3_bag` (sizes 10/100/500, domain 12, multiplicities ≤ 5,
/// seed 42) and, re-annotated, by most other figure benches.
pub fn random_ternary_bag(
    seed: u64,
    size: usize,
    domain: usize,
    max_multiplicity: u64,
) -> Database<Natural> {
    let mut rng = rng(seed);
    let schema = Schema::new(["a", "b", "c"]);
    let mut rel: KRelation<Natural> = KRelation::empty(schema);
    for _ in 0..size {
        let t = Tuple::new([
            ("a", format!("v{}", rng.gen_range(0..domain))),
            ("b", format!("v{}", rng.gen_range(0..domain))),
            ("c", format!("v{}", rng.gen_range(0..domain))),
        ]);
        rel.insert(t, Natural::from(rng.gen_range(1..=max_multiplicity)));
    }
    Database::new().with("R", rel)
}

/// The same random ternary relation annotated with distinct PosBool
/// variables (a c-table / maybe-table workload).
pub fn random_ternary_ctable(seed: u64, size: usize, domain: usize) -> Database<PosBool> {
    let bag = random_ternary_bag(seed, size, domain, 1);
    let rel = bag.get("R").expect("generator produced R");
    let mut annotated: KRelation<PosBool> = KRelation::empty(rel.schema().clone());
    for (i, (tuple, _)) in rel.iter().enumerate() {
        annotated.insert(tuple.clone(), PosBool::var(format!("b{i}")));
    }
    Database::new().with("R", annotated)
}

/// The same random ternary relation abstractly tagged with tuple ids
/// (a provenance workload).
pub fn random_ternary_tagged(
    seed: u64,
    size: usize,
    domain: usize,
) -> Database<ProvenancePolynomial> {
    let bag = random_ternary_bag(seed, size, domain, 1);
    let rel = bag.get("R").expect("generator produced R");
    let mut annotated: KRelation<ProvenancePolynomial> = KRelation::empty(rel.schema().clone());
    for (i, (tuple, _)) in rel.iter().enumerate() {
        annotated.insert(tuple.clone(), ProvenancePolynomial::var(format!("t{i}")));
    }
    Database::new().with("R", annotated)
}

/// A random directed graph as an ℕ∞-annotated datalog edb (predicate
/// `R(src, dst)`), the workload for the datalog fixpoint benches.
///
/// Makes exactly `edges` draws; each picks source and destination
/// independently and uniformly from the `nodes` vertices `n0 .. n{nodes-1}`
/// (self-loops allowed) and a finite multiplicity uniformly from `1..=3`.
/// Re-drawn edges *sum* their multiplicities, so the store holds at most
/// `edges` distinct facts. Cycles are likely, which is the point: under bag
/// semantics their tuples have infinitely many derivations, exercising the
/// ℕ∞ (`NatInf::Inf`) side of exact datalog evaluation.
pub fn random_graph_store(seed: u64, nodes: usize, edges: usize) -> FactStore<NatInf> {
    let mut rng = rng(seed);
    let mut store = FactStore::new();
    for _ in 0..edges {
        let s = rng.gen_range(0..nodes);
        let d = rng.gen_range(0..nodes);
        store.insert(
            Fact::new("R", [format!("n{s}"), format!("n{d}")]),
            NatInf::Fin(rng.gen_range(1..4)),
        );
    }
    store
}

/// A random *acyclic* layered graph: `layers` layers of `width` nodes each
/// (vertex `l{layer}_{index}`), where every forward edge between consecutive
/// layers is included independently with probability ½ at multiplicity 1.
///
/// Acyclicity guarantees every tuple has finitely many derivation trees, so
/// bag-datalog multiplicities stay finite and provenance polynomials stay
/// polynomial-sized — this is the workload for the All-Trees and datalog
/// provenance benches (`fig7`, `fig8`), which would diverge on cyclic input.
/// Expected edge count is `(layers - 1) · width² / 2`.
pub fn random_dag_store(seed: u64, layers: usize, width: usize) -> FactStore<NatInf> {
    let mut rng = rng(seed);
    let mut store = FactStore::new();
    for layer in 0..layers.saturating_sub(1) {
        for i in 0..width {
            for j in 0..width {
                if rng.gen_bool(0.5) {
                    store.insert(
                        Fact::new(
                            "R",
                            [format!("l{layer}_{i}"), format!("l{}_{j}", layer + 1)],
                        ),
                        NatInf::Fin(1),
                    );
                }
            }
        }
    }
    store
}

/// A random tuple-independent probabilistic edge relation `R(src, dst)`,
/// the workload for the Figure 4 (Fuhr–Rölleke–Zimányi) bench.
///
/// Makes exactly `edges` draws; each picks endpoints independently and
/// uniformly from `n0 .. n{nodes-1}` and a marginal probability uniformly
/// from `[0.1, 0.9)`. Duplicate endpoint pairs are retained as *separate*
/// independent tuples. Keep `edges` small: exact event-table evaluation
/// enumerates all `2^edges` possible worlds.
pub fn random_probabilistic_graph(seed: u64, nodes: usize, edges: usize) -> TupleIndependentDb {
    let mut rng = rng(seed);
    let mut db = TupleIndependentDb::new();
    for _ in 0..edges {
        let s = rng.gen_range(0..nodes);
        let d = rng.gen_range(0..nodes);
        db.insert(
            "R",
            Tuple::new([("src", format!("n{s}")), ("dst", format!("n{d}"))]),
            rng.gen_range(0.1..0.9),
        );
    }
    db
}

/// Converts a ℕ-annotated database to any other semiring by mapping the
/// multiplicity `n` to the `n`-fold sum of 1 (the canonical ℕ → K map).
pub fn reannotate<K: Semiring>(db: &Database<Natural>) -> Database<K> {
    db.map_annotations(|n| K::one().repeat(n.value()))
}

/// Prints a labelled reproduction of one of the paper's figures; used by the
/// benches so that `cargo bench` output contains the same rows the paper
/// reports next to the timings.
///
/// Output goes to stderr as a `--- title ---` header followed by one
/// left-aligned `key value` line per row, e.g. the Figure 3(b) rows printed
/// by the `fig3_bag` bench alongside its measurements. Checking a figure
/// against the paper therefore never requires a separate tool: run the bench
/// and read the rows above the timings.
pub fn report_rows(title: &str, rows: &[(String, String)]) {
    eprintln!("--- {title} ---");
    for (key, value) in rows {
        eprintln!("    {key:<16} {value}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = random_ternary_bag(7, 20, 4, 3);
        let b = random_ternary_bag(7, 20, 4, 3);
        assert_eq!(a, b);
        let g1 = random_graph_store(7, 10, 30);
        let g2 = random_graph_store(7, 10, 30);
        assert_eq!(g1, g2);
    }

    #[test]
    fn generators_respect_sizes() {
        let db = random_ternary_bag(1, 50, 10, 2);
        assert!(db.get("R").unwrap().len() <= 50);
        assert!(!db.get("R").unwrap().is_empty());
        let dag = random_dag_store(3, 4, 3);
        // A layered DAG has no cycles: exact evaluation is all-finite.
        let out = provsem_datalog::evaluate_natinf(
            &provsem_datalog::Program::transitive_closure("R", "Q"),
            &dag,
        );
        assert!(out.facts().all(|(_, k)| !k.is_infinite()));
    }

    #[test]
    fn probabilistic_generator_stays_small() {
        let db = random_probabilistic_graph(5, 4, 6);
        assert!(db.len() <= 6);
        assert!(db.num_worlds() <= 64);
    }

    #[test]
    fn reannotation_maps_multiplicities() {
        let db = random_ternary_bag(2, 10, 3, 3);
        let b: Database<provsem_semiring::Bool> = reannotate(&db);
        assert_eq!(b.get("R").unwrap().len(), db.get("R").unwrap().len());
    }

    #[test]
    fn ctable_and_tagged_generators_use_distinct_variables() {
        let ct = random_ternary_ctable(4, 12, 5);
        let annotations: std::collections::BTreeSet<PosBool> = ct
            .get("R")
            .unwrap()
            .iter()
            .map(|(_, k)| k.clone())
            .collect();
        assert_eq!(annotations.len(), ct.get("R").unwrap().len());
        let tagged = random_ternary_tagged(4, 12, 5);
        assert_eq!(tagged.get("R").unwrap().len(), ct.get("R").unwrap().len());
    }
}

//! Translating conjunctive queries to RA⁺ and evaluating them on the
//! planned K-relation engine of [`provsem_core::plan`].
//!
//! A safe non-recursive rule `Q(x̄) :- A₁(t̄₁), …, Aₙ(t̄ₙ)` is exactly a
//! select-project-join expression (Section 5 of the paper relates the two
//! formalisms; Propositions 5.2/5.3 translate RA⁺ ↔ datalog). We use that
//! correspondence in the *other* direction here: instead of grounding the
//! rule and running the datalog fixpoint machinery for what is a single
//! non-recursive rule, build the RA⁺ expression once and let the planner's
//! rewrites (selection pushdown, join-input pruning) and positional hash
//! joins evaluate it.
//!
//! The translation, per body atom `Aᵢ`:
//!
//! * the positional columns of `Aᵢ`'s relation are renamed so that the
//!   first occurrence of each variable `x` (within the atom) becomes the
//!   attribute `?x` — shared variables across atoms then join naturally;
//! * a repeated variable within the atom gets a fresh column equated to
//!   `?x` by a selection, and a constant gets a fresh column equated to the
//!   constant;
//! * the join of all atoms is projected onto the head variables, which
//!   performs datalog's sum over valuations of the product of body
//!   annotations — the Definition 3.2 semantics on both sides, so
//!   annotations agree for **every** semiring (checked by the differential
//!   suite in `tests/ra_vs_datalog.rs`).
//!
//! Relations are keyed by `(predicate, arity)` (a [`FactStore`] may hold
//! facts of mixed arity under one predicate); an atom whose `(predicate,
//! arity)` has no facts scans an empty relation.

use provsem_core::plan::ExecContext;
use provsem_core::{
    Attribute, Database, KRelation, Plan, Predicate, RaExpr, RelationSource, Renaming, Schema,
    Tuple, Value,
};
use provsem_datalog::{Fact, FactStore, Rule, Term};
use provsem_semiring::Semiring;
use std::collections::BTreeSet;

/// Which RA evaluation path to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RaRoute {
    /// The planned engine (logical plan → optimizer → physical operators).
    Planned,
    /// The tree-walking reference interpreter
    /// ([`RaExpr::eval_interpreted`]); kept for differential testing and
    /// benchmarking against the planned engine.
    Interpreted,
}

/// The attribute holding column `j` of a positional relation. Zero-padded
/// so attribute (string) order equals positional order.
fn col_attr(j: usize) -> Attribute {
    debug_assert!(j < 100, "positional translation supports arity < 100");
    Attribute::new(format!("c{j:02}"))
}

/// The attribute carrying datalog variable `x` (the `?` prefix cannot occur
/// in column or fresh-attribute names).
fn var_attr(name: &str) -> Attribute {
    Attribute::new(format!("?{name}"))
}

/// A fresh attribute for body position `(i, j)` (constants and repeated
/// variables).
fn tmp_attr(i: usize, j: usize) -> Attribute {
    Attribute::new(format!("#{i}.{j}"))
}

/// The relation name for `(predicate, arity)`.
fn rel_name(predicate: &str, arity: usize) -> String {
    format!("{predicate}#{arity}")
}

/// A rule translated to RA⁺: the expression, plus how to rebuild head facts
/// from output tuples.
struct CompiledRule {
    expr: RaExpr,
    head_predicate: String,
    head_cols: Vec<HeadCol>,
}

enum HeadCol {
    Attr(Attribute),
    Const(Value),
}

/// Is the rule expressible as a single select-project-join over the edb?
/// (Everything except bodyless rules, rules whose own head predicate
/// appears in the body, and atoms too wide for the two-digit column
/// naming — those stay on the datalog route.)
fn translatable(rule: &Rule) -> bool {
    !rule.body.is_empty()
        && rule
            .body
            .iter()
            .all(|atom| atom.predicate != rule.head.predicate && atom.arity() < 100)
}

/// Translates one rule; `relations` collects the `(predicate, arity)` pairs
/// its body scans.
fn compile_rule(rule: &Rule, relations: &mut BTreeSet<(String, usize)>) -> CompiledRule {
    let mut expr: Option<RaExpr> = None;
    for (i, atom) in rule.body.iter().enumerate() {
        relations.insert((atom.predicate.clone(), atom.arity()));
        let mut pairs: Vec<(Attribute, Attribute)> = Vec::new();
        let mut equalities: Vec<Predicate> = Vec::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for (j, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Var(x) => {
                    if seen.insert(&x.0) {
                        pairs.push((col_attr(j), var_attr(&x.0)));
                    } else {
                        let tmp = tmp_attr(i, j);
                        equalities.push(Predicate::eq_attrs(var_attr(&x.0), tmp.clone()));
                        pairs.push((col_attr(j), tmp));
                    }
                }
                Term::Const(v) => {
                    let tmp = tmp_attr(i, j);
                    equalities.push(Predicate::eq_value(tmp.clone(), v.clone()));
                    pairs.push((col_attr(j), tmp));
                }
            }
        }
        let mut atom_expr =
            RaExpr::relation(rel_name(&atom.predicate, atom.arity())).rename(Renaming::new(pairs));
        for p in equalities {
            atom_expr = atom_expr.select(p);
        }
        expr = Some(match expr {
            None => atom_expr,
            Some(joined) => joined.join(atom_expr),
        });
    }
    let body = expr.expect("translatable rules have a non-empty body");
    let head_vars: BTreeSet<Attribute> = rule
        .head
        .terms
        .iter()
        .filter_map(|t| t.as_var().map(|x| var_attr(&x.0)))
        .collect();
    let expr = RaExpr::Project(Schema::new(head_vars), Box::new(body));
    let head_cols = rule
        .head
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(x) => HeadCol::Attr(var_attr(&x.0)),
            Term::Const(v) => HeadCol::Const(v.clone()),
        })
        .collect();
    CompiledRule {
        expr,
        head_predicate: rule.head.predicate.clone(),
        head_cols,
    }
}

/// Imports the `(predicate, arity)` relations a translated query scans into
/// a positional-column [`Database`].
fn edb_database<K: Semiring>(
    edb: &FactStore<K>,
    relations: &BTreeSet<(String, usize)>,
) -> Database<K> {
    let mut db = Database::new();
    for (predicate, arity) in relations {
        let schema = Schema::new((0..*arity).map(col_attr));
        let mut relation = KRelation::empty(schema.clone());
        for (fact, k) in edb.facts_of(predicate) {
            if fact.arity() == *arity {
                relation.insert(
                    Tuple::from_values(&schema, fact.values.iter().cloned()),
                    k.clone(),
                );
            }
        }
        db.insert(rel_name(predicate, *arity), relation);
    }
    db
}

/// Evaluates a set of safe non-recursive rules (the disjuncts of a UCQ)
/// over `edb` via RA⁺, summing the per-disjunct results into one fact
/// store. Returns `None` when some rule is not translatable (the caller
/// falls back to the datalog route).
pub(crate) fn evaluate_rules<K: Semiring>(
    rules: &[&Rule],
    edb: &FactStore<K>,
    route: RaRoute,
) -> Option<FactStore<K>> {
    evaluate_rules_in(rules, edb, route, None)
}

/// [`evaluate_rules`] with the planned route pinned to an explicit
/// [`ExecContext`] (engine + thread budget) instead of the process-wide
/// default; `None` keeps the default. The interpreted route ignores the
/// context.
pub(crate) fn evaluate_rules_in<K: Semiring>(
    rules: &[&Rule],
    edb: &FactStore<K>,
    route: RaRoute,
    ctx: Option<&ExecContext>,
) -> Option<FactStore<K>> {
    if !rules.iter().all(|r| translatable(r)) {
        return None;
    }
    let mut relations = BTreeSet::new();
    let compiled: Vec<CompiledRule> = rules
        .iter()
        .map(|rule| compile_rule(rule, &mut relations))
        .collect();
    let db = edb_database(edb, &relations);
    let catalog = db.catalog();
    let mut out = FactStore::new();
    for rule in &compiled {
        let result = match route {
            RaRoute::Planned => {
                let plan = Plan::new(&rule.expr, &catalog)
                    .expect("translated conjunctive queries are well-typed");
                match ctx {
                    Some(ctx) => plan.execute_with(&db, ctx),
                    None => plan.execute(&db),
                }
            }
            RaRoute::Interpreted => rule
                .expr
                .eval_interpreted(&db)
                .expect("translated conjunctive queries are well-typed"),
        };
        for (tuple, k) in result.iter() {
            let values: Vec<Value> = rule
                .head_cols
                .iter()
                .map(|col| match col {
                    HeadCol::Attr(a) => tuple
                        .get(a)
                        .expect("head variables survive the projection")
                        .clone(),
                    HeadCol::Const(v) => v.clone(),
                })
                .collect();
            out.insert(Fact::new(rule.head_predicate.clone(), values), k.clone());
        }
    }
    Some(out)
}

/// The RA⁺ expression a single rule translates to (for inspection, e.g.
/// `Plan::explain`), or `None` when the rule is not translatable.
pub fn rule_to_ra_expr(rule: &Rule) -> Option<RaExpr> {
    translatable(rule).then(|| {
        let mut relations = BTreeSet::new();
        compile_rule(rule, &mut relations).expr
    })
}

//! # provsem-containment
//!
//! Query containment with respect to K-relation semantics — Section 9 of
//! *Provenance Semirings*: conjunctive queries, canonical databases,
//! Chandra–Merlin containment mappings, Sagiv–Yannakakis containment of
//! unions of conjunctive queries, and the Theorem 9.2 transfer result
//! (`⊑_K` = `⊑_𝔹` for distributive lattices), together with an empirical
//! instance-level checker used to exhibit the bag-semantics counterexamples.
//!
//! ```
//! use provsem_containment::prelude::*;
//!
//! let q1 = ConjunctiveQuery::parse("Q(x, y) :- R(x, y), R(y, y).").unwrap();
//! let q2 = ConjunctiveQuery::parse("Q(x, y) :- R(x, y).").unwrap();
//! assert!(q1.contained_in(&q2));
//! assert!(!q2.contained_in(&q1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cq;
pub mod ra;

/// Convenience prelude.
pub mod prelude {
    pub use crate::cq::{
        check_containment_on_instance, ConjunctiveQuery, UnionOfConjunctiveQueries,
    };
    pub use crate::ra::{rule_to_ra_expr, RaRoute};
}

pub use prelude::*;

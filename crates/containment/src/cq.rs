//! Conjunctive queries, containment mappings, and containment decision
//! procedures (Section 9 of the paper).
//!
//! * Chandra–Merlin: `q1 ⊑_𝔹 q2` iff there is a homomorphism from `q2` to
//!   `q1` (equivalently, `q2` applied to the canonical database of `q1`
//!   produces `q1`'s head).
//! * Sagiv–Yannakakis: for unions of conjunctive queries, `Q1 ⊑_𝔹 Q2` iff
//!   every disjunct of `Q1` is contained in some disjunct of `Q2`.
//! * Theorem 9.2: when K is a distributive lattice, `⊑_K` coincides with
//!   `⊑_𝔹` for unions of conjunctive queries — decided here by the same
//!   homomorphism procedure, and validated empirically by
//!   [`check_containment_on_instance`].

use provsem_core::plan::ExecContext;
use provsem_core::Value;
use provsem_datalog::{Fact, FactStore, Program, Rule, Term};
use provsem_semiring::{NaturallyOrdered, Semiring};
use std::collections::BTreeMap;

/// A conjunctive query, written as a single datalog rule
/// `head(x̄) :- body₁, …, bodyₙ`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    /// The defining rule.
    pub rule: Rule,
}

impl ConjunctiveQuery {
    /// Wraps a rule as a conjunctive query. The rule must be safe.
    pub fn new(rule: Rule) -> Self {
        assert!(rule.is_safe(), "conjunctive queries must be safe rules");
        ConjunctiveQuery { rule }
    }

    /// Parses a conjunctive query from a single datalog rule.
    pub fn parse(text: &str) -> Result<Self, provsem_datalog::ParseError> {
        Ok(ConjunctiveQuery::new(provsem_datalog::parse_rule(text)?))
    }

    /// The canonical ("frozen") database of the query: each body atom becomes
    /// a fact whose values are the frozen variables/constants. Returns the
    /// fact store (annotated with `1`) and the frozen head fact.
    pub fn canonical_database<K: Semiring>(&self) -> (FactStore<K>, Fact) {
        let freeze = |t: &Term| match t {
            Term::Const(v) => v.clone(),
            Term::Var(x) => Value::str(format!("⟨{}⟩", x.0)),
        };
        let mut store = FactStore::new();
        for atom in &self.rule.body {
            let fact = Fact::new(
                atom.predicate.clone(),
                atom.terms.iter().map(freeze).collect::<Vec<Value>>(),
            );
            store.set(fact, K::one());
        }
        let head = Fact::new(
            self.rule.head.predicate.clone(),
            self.rule
                .head
                .terms
                .iter()
                .map(freeze)
                .collect::<Vec<Value>>(),
        );
        (store, head)
    }

    /// Evaluates the query over a K-annotated fact store (Definition 3.2 /
    /// Section 5 semantics for a single non-recursive rule: sum over
    /// satisfying valuations of the product of body annotations).
    ///
    /// The rule is translated to RA⁺ (see [`crate::ra`]) and run on the
    /// planned K-relation engine; rules the translation does not cover
    /// (bodyless, or head predicate in the body) fall back to
    /// [`ConjunctiveQuery::evaluate_datalog`]. All three routes agree on
    /// every semiring (checked by the differential suite).
    pub fn evaluate<K: Semiring>(&self, edb: &FactStore<K>) -> FactStore<K> {
        crate::ra::evaluate_rules(&[&self.rule], edb, crate::ra::RaRoute::Planned)
            .unwrap_or_else(|| self.evaluate_datalog(edb))
    }

    /// Like [`ConjunctiveQuery::evaluate`], but pinning the planned engine
    /// to an explicit [`ExecContext`] (row vs batch engine, thread budget)
    /// instead of the process-wide `PROVSEM_EXEC`/`PROVSEM_THREADS`
    /// defaults. Used to benchmark the two engines side by side in one
    /// process.
    pub fn evaluate_in<K: Semiring>(&self, edb: &FactStore<K>, ctx: &ExecContext) -> FactStore<K> {
        crate::ra::evaluate_rules_in(&[&self.rule], edb, crate::ra::RaRoute::Planned, Some(ctx))
            .unwrap_or_else(|| self.evaluate_datalog(edb))
    }

    /// Like [`ConjunctiveQuery::evaluate`], but running the translated RA⁺
    /// expression on the tree-walking reference interpreter instead of the
    /// planned engine — the differential/benchmark baseline.
    pub fn evaluate_interpreted<K: Semiring>(&self, edb: &FactStore<K>) -> FactStore<K> {
        crate::ra::evaluate_rules(&[&self.rule], edb, crate::ra::RaRoute::Interpreted)
            .unwrap_or_else(|| self.evaluate_datalog(edb))
    }

    /// Evaluates the query through the datalog engine (bounded Kleene
    /// iteration of the one-rule program) — the pre-planner route, kept as
    /// a second reference implementation and for untranslatable rules.
    pub fn evaluate_datalog<K: Semiring>(&self, edb: &FactStore<K>) -> FactStore<K> {
        let program = Program::new(vec![self.rule.clone()]);
        provsem_datalog::kleene_iterate(&program, edb, 2).idb
    }

    /// Is there a containment mapping (homomorphism) from `other` to `self`?
    /// By Chandra–Merlin this holds iff `self ⊑_𝔹 other`.
    pub fn contained_in(&self, other: &ConjunctiveQuery) -> bool {
        if self.rule.head.arity() != other.rule.head.arity()
            || self.rule.head.predicate != other.rule.head.predicate
        {
            return false;
        }
        // Evaluate `other` over the canonical database of `self` and check
        // that the frozen head of `self` is produced.
        let (canonical, frozen_head) = self.canonical_database::<provsem_semiring::Bool>();
        let out = other.evaluate(&canonical);
        out.contains(&frozen_head)
    }

    /// Query equivalence under set semantics.
    pub fn equivalent_to(&self, other: &ConjunctiveQuery) -> bool {
        self.contained_in(other) && other.contained_in(self)
    }
}

/// A union of conjunctive queries (UCQ): disjuncts sharing one head
/// predicate and arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionOfConjunctiveQueries {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionOfConjunctiveQueries {
    /// Builds a UCQ from disjuncts (must be non-empty and share head
    /// predicate/arity).
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Self {
        assert!(!disjuncts.is_empty(), "a UCQ needs at least one disjunct");
        let head = &disjuncts[0].rule.head;
        assert!(
            disjuncts
                .iter()
                .all(|d| d.rule.head.predicate == head.predicate
                    && d.rule.head.arity() == head.arity()),
            "all disjuncts must share the head predicate and arity"
        );
        UnionOfConjunctiveQueries { disjuncts }
    }

    /// Parses a UCQ from a datalog program text in which every rule has the
    /// same head predicate.
    pub fn parse(text: &str) -> Result<Self, provsem_datalog::ParseError> {
        let program = provsem_datalog::parse_program(text)?;
        Ok(UnionOfConjunctiveQueries::new(
            program
                .rules
                .into_iter()
                .map(ConjunctiveQuery::new)
                .collect(),
        ))
    }

    /// Evaluates the UCQ over a K-annotated fact store (sum over
    /// disjuncts), on the planned RA engine — see
    /// [`ConjunctiveQuery::evaluate`]. Falls back to the datalog route when
    /// some disjunct is not translatable.
    pub fn evaluate<K: Semiring>(&self, edb: &FactStore<K>) -> FactStore<K> {
        let rules: Vec<&Rule> = self.disjuncts.iter().map(|d| &d.rule).collect();
        crate::ra::evaluate_rules(&rules, edb, crate::ra::RaRoute::Planned)
            .unwrap_or_else(|| self.evaluate_datalog(edb))
    }

    /// Like [`UnionOfConjunctiveQueries::evaluate`] with the planned engine
    /// pinned to an explicit [`ExecContext`] — see
    /// [`ConjunctiveQuery::evaluate_in`].
    pub fn evaluate_in<K: Semiring>(&self, edb: &FactStore<K>, ctx: &ExecContext) -> FactStore<K> {
        let rules: Vec<&Rule> = self.disjuncts.iter().map(|d| &d.rule).collect();
        crate::ra::evaluate_rules_in(&rules, edb, crate::ra::RaRoute::Planned, Some(ctx))
            .unwrap_or_else(|| self.evaluate_datalog(edb))
    }

    /// Like [`UnionOfConjunctiveQueries::evaluate`] on the tree-walking RA
    /// interpreter — the differential/benchmark baseline.
    pub fn evaluate_interpreted<K: Semiring>(&self, edb: &FactStore<K>) -> FactStore<K> {
        let rules: Vec<&Rule> = self.disjuncts.iter().map(|d| &d.rule).collect();
        crate::ra::evaluate_rules(&rules, edb, crate::ra::RaRoute::Interpreted)
            .unwrap_or_else(|| self.evaluate_datalog(edb))
    }

    /// Evaluates the UCQ through the datalog engine (the pre-planner
    /// route).
    pub fn evaluate_datalog<K: Semiring>(&self, edb: &FactStore<K>) -> FactStore<K> {
        let program = Program::new(self.disjuncts.iter().map(|d| d.rule.clone()).collect());
        provsem_datalog::kleene_iterate(&program, edb, 2).idb
    }

    /// Set-semantics containment by the Sagiv–Yannakakis criterion: every
    /// disjunct of `self` is contained in some disjunct of `other`.
    pub fn contained_in(&self, other: &UnionOfConjunctiveQueries) -> bool {
        self.disjuncts
            .iter()
            .all(|d| other.disjuncts.iter().any(|e| d.contained_in(e)))
    }

    /// Containment with respect to K-relation semantics **decided via
    /// Theorem 9.2**: valid when K is a distributive lattice, in which case
    /// `⊑_K` coincides with `⊑_𝔹` and the Sagiv–Yannakakis procedure applies.
    pub fn contained_in_lattice_semantics(&self, other: &UnionOfConjunctiveQueries) -> bool {
        self.contained_in(other)
    }
}

/// Empirically checks `q1 ⊑_K q2` on one concrete instance: evaluates both
/// queries and verifies `q1(R)(t) ≤_K q2(R)(t)` for every tuple. Used by the
/// tests and benches to validate Theorem 9.2 (lattices) and to exhibit the
/// counterexamples showing that `⊑_𝔹` does **not** imply `⊑_ℕ` (bag
/// semantics).
pub fn check_containment_on_instance<K>(
    q1: &UnionOfConjunctiveQueries,
    q2: &UnionOfConjunctiveQueries,
    edb: &FactStore<K>,
) -> bool
where
    K: Semiring + NaturallyOrdered,
{
    let out1 = q1.evaluate(edb);
    let out2 = q2.evaluate(edb);
    let mut facts: BTreeMap<Fact, ()> = BTreeMap::new();
    for (f, _) in out1.facts().chain(out2.facts()) {
        facts.insert(f, ());
    }
    facts
        .keys()
        .all(|f| out1.annotation(f).natural_leq(&out2.annotation(f)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use provsem_datalog::edge_facts;
    use provsem_semiring::{Bool, Natural, PosBool, Tropical};

    fn cq(text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(text).unwrap()
    }

    fn ucq(text: &str) -> UnionOfConjunctiveQueries {
        UnionOfConjunctiveQueries::parse(text).unwrap()
    }

    #[test]
    fn classic_chandra_merlin_containment() {
        // q1: paths of length 2; q2: pairs connected by any two edges from x
        // — q1 asks for more structure, so q1 ⊑ q2? A homomorphism from q2's
        // body {R(x,z'), R(x,z'')} into q1's body {R(x,z), R(z,y)} must map
        // both atoms to atoms with first argument x... Use the textbook
        // example instead: triangle query vs edge query.
        let path2 = cq("Q(x, y) :- R(x, z), R(z, y).");
        let edge = cq("Q(x, y) :- R(x, y).");
        // Every edge gives... no containment either way for these two:
        assert!(!edge.contained_in(&path2));
        assert!(!path2.contained_in(&edge));

        // Specializing a query contains it: Q(x,y) :- R(x,y), R(y,y) is
        // contained in Q(x,y) :- R(x,y).
        let specialized = cq("Q(x, y) :- R(x, y), R(y, y).");
        assert!(specialized.contained_in(&edge));
        assert!(!edge.contained_in(&specialized));
    }

    #[test]
    fn redundant_atoms_give_equivalent_queries() {
        // Q(x,y) :- R(x,y), R(x,y') is equivalent to Q(x,y) :- R(x,y):
        // the extra atom is subsumed by a homomorphism y' ↦ y.
        let redundant = cq("Q(x, y) :- R(x, y), R(x, y2).");
        let simple = cq("Q(x, y) :- R(x, y).");
        assert!(redundant.equivalent_to(&simple));
    }

    #[test]
    fn canonical_database_freezes_variables() {
        let q = cq("Q(x, y) :- R(x, z), R(z, y).");
        let (canonical, head) = q.canonical_database::<Bool>();
        assert_eq!(canonical.len(), 2);
        assert_eq!(head.predicate, "Q");
        assert_eq!(head.arity(), 2);
    }

    #[test]
    fn ucq_containment_sagiv_yannakakis() {
        // Q1 = edges ∪ length-2 paths; Q2 = edges ∪ length-2 paths ∪ loops.
        let q1 = ucq("Q(x, y) :- R(x, y).\nQ(x, y) :- R(x, z), R(z, y).");
        let q2 = ucq("Q(x, y) :- R(x, y).\nQ(x, y) :- R(x, z), R(z, y).\nQ(x, x) :- R(x, x).");
        assert!(q1.contained_in(&q2));
        // And q2 ⊑ q1 as well: the loop disjunct is contained in the edge
        // disjunct.
        assert!(q2.contained_in(&q1));
        // A disjunct that genuinely adds answers breaks containment.
        let q3 = ucq("Q(x, y) :- R(x, y).\nQ(x, y) :- R(y, x).");
        assert!(q1.contained_in(&q1));
        assert!(!q3.contained_in(&q1));
    }

    #[test]
    fn theorem_9_2_lattice_containment_matches_boolean_containment() {
        // For distributive lattices (PosBool, Tropical is *not* a lattice but
        // is idempotent — we use PosBool and 𝔹), containment decided by the
        // homomorphism procedure is confirmed on concrete annotated
        // instances.
        let q1 = ucq("Q(x, y) :- R(x, z), R(z, y), R(x, y).");
        let q2 = ucq("Q(x, y) :- R(x, y).");
        assert!(q1.contained_in(&q2));

        let edb_bool = edge_facts(
            "R",
            &[
                ("a", "b", Bool::from(true)),
                ("b", "b", Bool::from(true)),
                ("a", "a", Bool::from(true)),
            ],
        );
        assert!(check_containment_on_instance(&q1, &q2, &edb_bool));

        let edb_posbool = edge_facts(
            "R",
            &[
                ("a", "b", PosBool::var("e1")),
                ("b", "b", PosBool::var("e2")),
                ("a", "a", PosBool::var("e3")),
            ],
        );
        assert!(check_containment_on_instance(&q1, &q2, &edb_posbool));

        let edb_trop = edge_facts(
            "R",
            &[
                ("a", "b", Tropical::cost(1)),
                ("b", "b", Tropical::cost(2)),
                ("a", "a", Tropical::cost(3)),
            ],
        );
        assert!(check_containment_on_instance(&q1, &q2, &edb_trop));
    }

    #[test]
    fn boolean_containment_does_not_imply_bag_containment() {
        // The classic counterexample: Q1(x) :- R(x,y), R(x,z) is equivalent
        // to Q2(x) :- R(x,y) under set semantics, but under bag semantics Q1
        // squares the out-degree while Q2 does not, so Q1 ⋢_ℕ Q2.
        let q1 = ucq("Q(x) :- R(x, y), R(x, z).");
        let q2 = ucq("Q(x) :- R(x, y).");
        assert!(q1.contained_in(&q2));
        assert!(q2.contained_in(&q1));
        let edb = edge_facts(
            "R",
            &[
                ("a", "b", Natural::from(1u64)),
                ("a", "c", Natural::from(1u64)),
            ],
        );
        // Q1(a) = 4 but Q2(a) = 2: the 𝔹-containment does not transfer to ℕ.
        assert!(!check_containment_on_instance(&q1, &q2, &edb));
        // The other direction does hold on this instance (2 ≤ 4).
        assert!(check_containment_on_instance(&q2, &q1, &edb));
    }

    #[test]
    fn surjective_homomorphism_direction_of_section_9() {
        // Section 9: if h : K → K' is surjective then ⊑_K implies ⊑_K'.
        // Instance-level illustration: ℕ-containment on an instance implies
        // 𝔹-containment on its support image.
        let q1 = ucq("Q(x) :- R(x, y).");
        let q2 = ucq("Q(x) :- R(x, y), R(x, z).");
        let edb_nat = edge_facts(
            "R",
            &[
                ("a", "b", Natural::from(2u64)),
                ("a", "c", Natural::from(1u64)),
            ],
        );
        assert!(check_containment_on_instance(&q1, &q2, &edb_nat));
        let edb_bool = edb_nat.map_annotations(|n| Bool::from(!n.is_zero()));
        assert!(check_containment_on_instance(&q1, &q2, &edb_bool));
    }

    #[test]
    #[should_panic(expected = "safe")]
    fn unsafe_rules_are_rejected() {
        let _ = cq("Q(x, y) :- R(x, x).");
    }
}
